// Quickstart: train the three context models on a synthetic lab
// collection, generate one unseen cloud-gaming session, and run the full
// real-time pipeline over it — title classification from the first five
// seconds of launch traffic, continuous player-activity-stage tracking,
// gameplay-activity-pattern inference, and objective vs effective QoE.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/model_suite.hpp"

using namespace cgctx;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2028;

  std::puts("== cgctx quickstart ==");
  std::puts("[1/3] Training models on a synthetic lab collection...");
  core::TrainingBudget budget;
  budget.lab_scale = 0.4;
  budget.gameplay_seconds = 150.0;
  budget.augment_copies = 2;
  double title_acc = 0.0;
  double stage_acc = 0.0;
  double pattern_acc = 0.0;
  const core::ModelSuite suite =
      core::train_model_suite(budget, &title_acc, &stage_acc, &pattern_acc);
  std::printf("    held-out accuracy: title %.1f%%  stage %.1f%%  pattern %.1f%%\n",
              100 * title_acc, 100 * stage_acc, 100 * pattern_acc);

  std::puts("[2/3] Generating an unseen CS:GO session (10 min gameplay)...");
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = seed;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  std::printf("    %s | peak %.1f Mbps | %.1f min total\n",
              spec.config.describe().c_str(), session.peak_down_mbps,
              session.duration_seconds() / 60.0);

  std::puts("[3/3] Running the real-time pipeline...");
  const core::RealtimePipeline pipeline(suite.models(),
                                        core::default_pipeline_params());
  const core::SessionReport report = pipeline.process_session(session);

  std::printf("\n  game title    : %s (confidence %.0f%%)\n",
              report.title.label ? report.title.class_name.c_str()
                                 : "unknown",
              100 * report.title.confidence);
  if (report.pattern) {
    std::printf("  activity type : %s (confidence %.0f%%, decided %.0fs in)\n",
                core::pattern_class_names()[static_cast<std::size_t>(
                                                report.pattern->label)]
                    .c_str(),
                100 * report.pattern->confidence, report.pattern_decided_at_s);
  }
  std::printf("  stage minutes : active %.1f | passive %.1f | idle %.1f\n",
              report.stage_seconds[0] / 60.0, report.stage_seconds[1] / 60.0,
              report.stage_seconds[2] / 60.0);
  std::printf("  mean downlink : %.1f Mbps\n", report.mean_down_mbps);
  std::printf("  QoE           : objective=%s  effective=%s\n",
              core::to_string(report.objective_session),
              core::to_string(report.effective_session));

  // Show the headline correction: why the two QoE labels can differ.
  std::size_t corrected = 0;
  for (const core::SlotRecord& slot : report.slots)
    if (slot.effective > slot.objective) ++corrected;
  std::printf(
      "  %zu of %zu slots were objectively 'degraded' but effectively fine\n"
      "  (idle/passive stages legitimately need less bandwidth & frame rate).\n",
      corrected, report.slots.size());
  return 0;
}
