// ISP-scale deployment simulation (paper §5 in miniature): draws a
// popularity-weighted fleet of sessions across device mixes and network
// conditions, runs every session through the real-time pipeline, and
// prints the operator's aggregate views — per-title stage-duration
// profiles (Fig. 11), bandwidth demand (Fig. 12), and the objective vs
// effective QoE correction (Fig. 13). Also dumps the raw aggregates as
// CSV for downstream analytics.
//
// The pipeline publishes its classification-health counters and stage
// timers into a metrics registry; `--metrics-out` dumps it as Prometheus
// text exposition and `--trace-out` dumps every session's decision trace
// as JSONL ("-" means stdout for either).
//
//   ./isp_deployment [n_sessions] [csv_path]
//                    [--metrics-out PATH|-] [--trace-out PATH|-]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/model_suite.hpp"
#include "core/pipeline_metrics.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fleet.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/provisioning.hpp"

using namespace cgctx;

int main(int argc, char** argv) {
  int n_sessions = 300;
  const char* csv_path = nullptr;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  int n_positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (n_positional == 0) {
      n_sessions = std::atoi(argv[i]);
      ++n_positional;
    } else if (n_positional == 1) {
      csv_path = argv[i];
      ++n_positional;
    } else {
      std::fprintf(stderr,
                   "usage: %s [n_sessions] [csv_path] "
                   "[--metrics-out PATH|-] [--trace-out PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }

  std::puts("Training models...");
  core::TrainingBudget budget;
  budget.lab_scale = 0.25;
  budget.gameplay_seconds = 180.0;
  budget.augment_copies = 1;
  const core::ModelSuite suite = core::train_model_suite(budget);
  core::RealtimePipeline pipeline(suite.models(),
                                  core::default_pipeline_params());

  // Telemetry plane: one registry for the whole run; the trace ring
  // keeps the last ~32 decisions per expected session.
  obs::MetricsRegistry registry;
  const core::PipelineMetrics metrics = core::PipelineMetrics::create(registry);
  pipeline.set_metrics(&metrics);
  obs::DecisionTraceRing trace(
      static_cast<std::size_t>(n_sessions > 0 ? n_sessions : 1) * 32);
  if (trace_out != nullptr) pipeline.set_trace(&trace);

  std::printf("Simulating %d fleet sessions...\n", n_sessions);
  sim::FleetOptions options;
  options.seed = 20250301;
  options.duration_scale = 0.12;  // keep the demo fast; ratios preserved
  sim::FleetSampler sampler(options);
  const sim::SessionGenerator generator;

  telemetry::FleetAggregator by_title;
  telemetry::FleetAggregator by_pattern;
  std::size_t correct_titles = 0;
  std::size_t known_titles = 0;
  for (int i = 0; i < n_sessions; ++i) {
    const sim::SessionSpec spec = sampler.sample();
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    const core::SessionReport report = pipeline.process_session(session);

    // Field validation against "server logs" (the simulator's ground
    // truth), as the paper does one month before deployment.
    const bool in_catalog =
        static_cast<std::size_t>(spec.title) < sim::kNumPopularTitles;
    if (in_catalog && report.title.label) {
      ++known_titles;
      if (report.title.class_name == sim::info(spec.title).name)
        ++correct_titles;
    }

    const std::string title_key =
        report.title.label ? report.title.class_name : "(unknown)";
    by_title.add(telemetry::summarize(report, title_key));
    if (report.pattern) {
      by_pattern.add(telemetry::summarize(
          report, core::pattern_class_names()[static_cast<std::size_t>(
                      report.pattern->label)]));
    }
  }

  if (known_titles > 0) {
    std::printf("\nField validation: %.1f%% of confidently classified "
                "catalog sessions matched server logs (%zu/%zu)\n",
                100.0 * static_cast<double>(correct_titles) /
                    static_cast<double>(known_titles),
                correct_titles, known_titles);
  }

  std::puts("\n== Per-title operator view (classified titles) ==");
  std::puts("title                 sessions  dur(min)  act/pas/idl(min)"
            "   Mbps   objQoE good  effQoE good");
  for (const auto& [key, group] : by_title.groups()) {
    std::printf("%-22s %7zu %9.1f  %5.1f/%4.1f/%4.1f %7.1f %11.0f%% %11.0f%%\n",
                key.c_str(), group.sessions, group.duration_minutes.mean(),
                group.stage_minutes[0].mean(), group.stage_minutes[1].mean(),
                group.stage_minutes[2].mean(), group.mean_down_mbps.mean(),
                100 * group.objective_fraction(core::QoeLevel::kGood),
                100 * group.effective_fraction(core::QoeLevel::kGood));
  }

  std::puts("\n== Per-pattern view (incl. unknown titles) ==");
  for (const auto& [key, group] : by_pattern.groups()) {
    std::printf("%-22s %7zu sessions, %5.1f min, %5.1f Mbps, good QoE "
                "%.0f%% -> %.0f%% after calibration\n",
                key.c_str(), group.sessions, group.duration_minutes.mean(),
                group.mean_down_mbps.mean(),
                100 * group.objective_fraction(core::QoeLevel::kGood),
                100 * group.effective_fraction(core::QoeLevel::kGood));
  }

  // Feed the measurement into the provisioning advisor: the operator's
  // actionable output (paper §5.1) — per-context slice recommendations.
  telemetry::ProvisioningAdvisor advisor;
  advisor.learn(by_title);
  advisor.learn(by_pattern);
  std::puts("\n== Slice provisioning recommendations ==");
  for (const auto& rec : advisor.all()) {
    std::printf("%-22s reserve %5.1f Mbps for ~%.0f min (%s, %zu sessions"
                " evidence)\n",
                rec.context.c_str(), rec.capacity_mbps, rec.expected_minutes,
                to_string(rec.priority), rec.evidence_sessions);
  }

  if (csv_path != nullptr) {
    std::ofstream out(csv_path, std::ios::trunc);
    out << by_title.to_csv();
    std::printf("\nwrote per-title aggregates to %s\n", csv_path);
  }

  if (metrics_out != nullptr) {
    const std::string page = obs::to_prometheus(registry.snapshot());
    if (std::strcmp(metrics_out, "-") == 0) {
      std::fputs(page.c_str(), stdout);
    } else {
      std::ofstream out(metrics_out, std::ios::trunc);
      out << page;
      std::printf("wrote metrics to %s\n", metrics_out);
    }
  }
  if (trace_out != nullptr) {
    if (std::strcmp(trace_out, "-") == 0) {
      obs::write_jsonl(trace, std::cout);
    } else {
      std::ofstream out(trace_out, std::ios::trunc);
      obs::write_jsonl(trace, out);
      std::printf("wrote %zu trace events to %s\n", trace.size(), trace_out);
    }
  }
  return 0;
}
