// Capture-file workflow tool: synthesizes a labeled session, writes it as
// a genuine .pcap (Ethernet/IPv4/UDP/RTP framing), reads the file back,
// and prints a text rendering of the paper's Fig. 3 — the full / steady /
// sparse packet groups per one-second slot of the launch window.
//
//   ./pcap_tool write <file.pcap[ng]> [title_index] [seed]   generate + save
//   ./pcap_tool groups <file.pcap[ng]> <client_ip>            analyze a capture
//
// The container format follows the file extension: ".pcapng" files use
// the pcapng writer/reader, anything else the classic pcap format.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/packet_groups.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

bool is_pcapng(const char* path) {
  const std::string text(path);
  return text.size() >= 7 && text.substr(text.size() - 7) == ".pcapng";
}

int cmd_write(const char* path, int title_index, std::uint64_t seed) {
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = static_cast<sim::GameTitle>(title_index);
  spec.gameplay_seconds = 30.0;
  spec.seed = seed;
  const sim::LabeledSession session = generator.generate(spec);
  const std::size_t frames = is_pcapng(path)
                                 ? net::write_pcapng(path, session.packets)
                                 : net::write_pcap(path, session.packets);
  std::printf("wrote %zu frames of a '%s' session to %s\n", frames,
              sim::to_string(spec.title), path);
  std::printf("client endpoint: %s (pass this to 'groups')\n",
              net::to_string(session.client_ip).c_str());
  return 0;
}

int cmd_groups(const char* path, const char* client_ip_text) {
  const auto client_ip = net::parse_ipv4(client_ip_text);
  if (!client_ip) {
    std::fprintf(stderr, "bad client IP '%s'\n", client_ip_text);
    return 1;
  }
  const auto packets = is_pcapng(path) ? net::read_pcapng(path, *client_ip)
                                       : net::read_pcap(path, *client_ip);
  if (packets.empty()) {
    std::fprintf(stderr, "no decodable packets in %s\n", path);
    return 1;
  }
  std::printf("loaded %zu packets from %s\n\n", packets.size(), path);

  // Fig. 3 as text: per launch-window slot, the group census and the
  // payload bands the steady packets occupy.
  const std::size_t slots = 60;
  const auto labeled = core::label_window(packets, packets.front().timestamp,
                                          net::kNanosPerSecond, slots);
  std::puts("slot |  full steady sparse | steady payload bands (bytes)");
  std::puts("-----+---------------------+-----------------------------");
  for (std::size_t s = 0; s < slots; ++s) {
    if (labeled[s].empty()) continue;
    std::size_t census[core::kNumPacketGroups] = {};
    std::uint32_t steady_min = 0;
    std::uint32_t steady_max = 0;
    for (const core::LabeledPacket& pkt : labeled[s]) {
      ++census[static_cast<std::size_t>(pkt.group)];
      if (pkt.group == core::PacketGroup::kSteady) {
        if (steady_min == 0 || pkt.payload_size < steady_min)
          steady_min = pkt.payload_size;
        if (pkt.payload_size > steady_max) steady_max = pkt.payload_size;
      }
    }
    std::printf("%4zu | %5zu %6zu %6zu |", s, census[0], census[1], census[2]);
    if (steady_max > 0) std::printf(" %u-%u", steady_min, steady_max);
    std::putchar('\n');
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "write") == 0) {
    const int title = argc > 3 ? std::atoi(argv[3]) : 1;  // Genshin Impact
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
    if (title < 0 || static_cast<std::size_t>(title) >= sim::kNumTitles) {
      std::fprintf(stderr, "title_index must be 0..14\n");
      return 1;
    }
    return cmd_write(argv[2], title, seed);
  }
  if (argc >= 4 && std::strcmp(argv[1], "groups") == 0)
    return cmd_groups(argv[2], argv[3]);
  std::fprintf(stderr,
               "usage:\n  %s write <file.pcap> [title_index] [seed]\n"
               "  %s groups <file.pcap> <client_ip>\n",
               argv[0], argv[0]);
  return 2;
}
