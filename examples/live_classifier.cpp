// Live classification demo: replays a packet stream (platform admin
// flows, a gaming session, and household cross-traffic) through the
// StreamingAnalyzer exactly as an inline probe would see it, printing
// classification events as they happen — flow detection, the five-second
// title verdict, player activity stage changes, and the pattern
// inference once confident.
//
//   ./live_classifier [title_index 0-12] [seed]
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "core/model_suite.hpp"
#include "core/streaming_analyzer.hpp"
#include "sim/cross_traffic.hpp"
#include "sim/platform_anatomy.hpp"

using namespace cgctx;

int main(int argc, char** argv) {
  const int title_index = argc > 1 ? std::atoi(argv[1]) : 10;  // CS:GO
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  if (title_index < 0 ||
      static_cast<std::size_t>(title_index) >= sim::kNumPopularTitles) {
    std::fprintf(stderr, "title_index must be 0..12\n");
    return 1;
  }

  std::puts("Training models...");
  core::TrainingBudget budget;
  budget.lab_scale = 0.3;
  budget.gameplay_seconds = 180.0;
  budget.augment_copies = 1;
  const core::ModelSuite suite = core::train_model_suite(budget);

  // Build the wire view: platform anatomy, then the gaming session,
  // interleaved with VoIP and web browsing from the same subscriber.
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = static_cast<sim::GameTitle>(title_index);
  spec.gameplay_seconds = 300.0;
  spec.seed = seed;
  spec.start_time = net::duration_from_seconds(30.0);
  const sim::LabeledSession session = generator.generate(spec);
  ml::Rng rng(seed ^ 0xabcd);
  std::vector<net::PacketRecord> wire = session.packets;
  for (const auto& pkt : sim::flatten(sim::platform_session_anatomy(
           session.client_ip, session.tuple.dst_ip, session.launch_begin, rng)))
    wire.push_back(pkt);
  for (const auto& pkt : sim::voip_flow(session.client_ip, 380.0, rng))
    wire.push_back(pkt);
  for (const auto& pkt : sim::web_browsing_flow(session.client_ip, 380.0, rng))
    wire.push_back(pkt);
  std::sort(wire.begin(), wire.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  std::printf("Replaying %zu packets (platform + gaming + VoIP + web) for"
              " '%s'...\n\n",
              wire.size(), sim::to_string(spec.title));

  core::StreamingAnalyzer analyzer(
      suite.models(), core::default_pipeline_params(),
      [](const core::StreamEvent& event) {
        std::printf("[%7.2fs] %s", event.at_seconds,
                    core::to_string(event.type));
        if (event.detection)
          std::printf(": %s on %s",
                      net::to_string(event.detection->flow).c_str(),
                      core::to_string(event.detection->platform));
        if (event.title)
          std::printf(": %s (confidence %.0f%%)",
                      event.title->label ? event.title->class_name.c_str()
                                         : "unknown",
                      100 * event.title->confidence);
        if (event.stage)
          std::printf(" -> %s",
                      core::stage_class_names()[static_cast<std::size_t>(
                                                    *event.stage)]
                          .c_str());
        if (event.pattern)
          std::printf(": %s (confidence %.0f%%)",
                      core::pattern_class_names()[static_cast<std::size_t>(
                                                      event.pattern->label)]
                          .c_str(),
                      100 * event.pattern->confidence);
        std::putchar('\n');
      });

  for (const net::PacketRecord& pkt : wire) analyzer.push(pkt);
  const core::SessionReport report = analyzer.finish();

  std::printf("\nSession report: %.1f min analyzed | mean %.1f Mbps |"
              " QoE objective=%s effective=%s\n",
              report.duration_s / 60.0, report.mean_down_mbps,
              core::to_string(report.objective_session),
              core::to_string(report.effective_session));
  std::printf("Ground truth: title '%s', pattern '%s'.\n",
              sim::to_string(spec.title),
              sim::to_string(sim::info(spec.title).pattern));
  return 0;
}
