// Dataset export tool — the counterpart of the paper's shared dataset and
// preprocessing scripts (Appendix B): renders a labeled lab collection
// and writes the extracted attribute matrices as CSV files that external
// tooling (pandas, R, spreadsheets) can consume directly:
//   - title attributes: 51 packet-group statistics per session, labeled
//     by game title;
//   - stage attributes: 4 volumetric statistics per slot, labeled by
//     player activity stage;
//   - transition attributes: 9 stage-transition probabilities per
//     session, labeled by gameplay activity pattern.
//
//   ./dataset_export [output_dir] [scale]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/model_suite.hpp"
#include "core/training.hpp"
#include "ml/csv.hpp"

using namespace cgctx;

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "cgctx_dataset";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  std::filesystem::create_directories(out_dir);

  std::printf("Rendering a %.0f%%-scale lab collection...\n", 100 * scale);

  // Title attributes (short gameplay tail; the launch window matters).
  {
    sim::LabPlanOptions plan;
    plan.seed = 61;
    plan.scale = scale;
    plan.gameplay_seconds = 10.0;
    const auto data =
        core::build_title_dataset(sim::lab_session_plan(plan), {});
    const auto path = out_dir / "title_attributes.csv";
    ml::write_csv(path, data);
    std::printf("  %s: %zu sessions x %zu attributes\n",
                path.string().c_str(), data.size(), data.num_features());
  }

  // Stage attributes (per-slot).
  sim::LabPlanOptions plan;
  plan.seed = 62;
  plan.scale = scale;
  plan.gameplay_seconds = 240.0;
  const auto specs = sim::lab_session_plan(plan);
  core::StageClassifier stages;
  {
    const auto data = core::build_stage_dataset(specs);
    const auto path = out_dir / "stage_attributes.csv";
    ml::write_csv(path, data);
    std::printf("  %s: %zu slots x %zu attributes\n", path.string().c_str(),
                data.size(), data.num_features());
    stages.train(data);
  }

  // Transition attributes (per session, via the just-trained stage model).
  {
    sim::LabPlanOptions pattern_plan;
    pattern_plan.seed = 63;
    pattern_plan.scale = scale;
    pattern_plan.gameplay_seconds = 900.0;
    const auto data = core::build_pattern_dataset(
        sim::lab_session_plan(pattern_plan), stages);
    const auto path = out_dir / "transition_attributes.csv";
    ml::write_csv(path, data);
    std::printf("  %s: %zu matrices x %zu attributes\n",
                path.string().c_str(), data.size(), data.num_features());
  }

  std::puts("Done. Files round-trip through ml::read_csv().");
  return 0;
}
