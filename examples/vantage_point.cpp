// Vantage-point demo: the deployment shape. One aggregate packet stream
// carries several subscribers' concurrent cloud-gaming sessions plus
// their household cross-traffic; the MultiSessionProbe demultiplexes,
// classifies and retires each session independently, emitting one report
// per subscriber session.
//
//   ./vantage_point [n_subscribers] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/model_suite.hpp"
#include "core/multi_session_probe.hpp"
#include "sim/cross_traffic.hpp"

using namespace cgctx;

int main(int argc, char** argv) {
  const int n_subscribers = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 77;

  std::puts("Training models...");
  core::TrainingBudget budget;
  budget.lab_scale = 0.25;
  budget.gameplay_seconds = 180.0;
  budget.augment_copies = 1;
  const core::ModelSuite suite = core::train_model_suite(budget);

  // Stagger each subscriber's session start and mix in cross traffic.
  const sim::SessionGenerator generator;
  ml::Rng rng(seed);
  std::vector<net::PacketRecord> wire;
  std::vector<std::string> truths;
  for (int i = 0; i < n_subscribers; ++i) {
    sim::SessionSpec spec;
    spec.title = static_cast<sim::GameTitle>(
        rng.next_below(sim::kNumPopularTitles));
    spec.gameplay_seconds = 120.0;
    spec.seed = seed * 100 + static_cast<std::uint64_t>(i);
    spec.start_time = net::duration_from_seconds(15.0 * i);
    const auto session = generator.generate(spec);
    truths.push_back(std::string(sim::to_string(spec.title)) + " @ " +
                     net::to_string(session.client_ip));
    wire.insert(wire.end(), session.packets.begin(), session.packets.end());
    for (const auto& pkt :
         sim::web_browsing_flow(session.client_ip, 200.0, rng))
      wire.push_back(pkt);
  }
  std::sort(wire.begin(), wire.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  std::printf("Replaying %zu packets from %d subscribers...\n\n", wire.size(),
              n_subscribers);

  std::size_t reports = 0;
  core::MultiSessionProbe probe(
      suite.models(),
      core::MultiSessionProbeParams{core::default_pipeline_params()},
      [&](const core::SessionReport& report) {
        ++reports;
        std::printf("session %zu: %-20s | %5.1f min | %5.1f Mbps | pattern %-18s"
                    " | QoE %s -> %s\n",
                    reports,
                    report.title.label ? report.title.class_name.c_str()
                                       : "(unknown)",
                    report.duration_s / 60.0, report.mean_down_mbps,
                    report.pattern
                        ? core::pattern_class_names()[static_cast<std::size_t>(
                              report.pattern->label)]
                              .c_str()
                        : "-",
                    core::to_string(report.objective_session),
                    core::to_string(report.effective_session));
      });
  for (const auto& pkt : wire) probe.push(pkt);
  probe.flush();

  std::puts("\nGround truth sessions:");
  for (const std::string& truth : truths) std::printf("  %s\n", truth.c_str());
  return 0;
}
