// Vantage-point demo: the deployment shape. One aggregate packet stream
// carries several subscribers' concurrent cloud-gaming sessions plus
// their household cross-traffic; the ShardedProbe partitions the
// five-tuple space across worker shards, each demultiplexing,
// classifying and retiring its sessions independently, emitting one
// report per subscriber session.
//
// On exit the probe's telemetry plane is surfaced the way a deployment
// would scrape it: the aggregated ProbeStats snapshot prints to stdout,
// `--metrics-out` dumps the full registry as Prometheus text exposition,
// and `--trace-out` dumps every session's decision trace as JSONL.
//
//   ./vantage_point [n_subscribers] [seed] [n_shards]
//                   [--metrics-out PATH|-] [--trace-out PATH|-]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/model_suite.hpp"
#include "core/sharded_probe.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "sim/cross_traffic.hpp"

using namespace cgctx;

namespace {

/// Writes `text` to `path`, with "-" meaning stdout.
void dump(const char* what, const char* path, const std::string& text) {
  if (std::strcmp(path, "-") == 0) {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text;
  std::printf("wrote %s to %s\n", what, path);
}

}  // namespace

int main(int argc, char** argv) {
  int positional[3] = {3, 77, 2};  // n_subscribers, seed, n_shards
  int n_positional = 0;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (n_positional < 3) {
      positional[n_positional++] = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [n_subscribers] [seed] [n_shards] "
                   "[--metrics-out PATH|-] [--trace-out PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }
  const int n_subscribers = positional[0];
  const auto seed = static_cast<std::uint64_t>(positional[1]);
  const std::size_t n_shards =
      positional[2] > 0 ? static_cast<std::size_t>(positional[2]) : 1;

  std::puts("Training models...");
  core::TrainingBudget budget;
  budget.lab_scale = 0.25;
  budget.gameplay_seconds = 180.0;
  budget.augment_copies = 1;
  const core::ModelSuite suite = core::train_model_suite(budget);

  // Stagger each subscriber's session start and mix in cross traffic.
  const sim::SessionGenerator generator;
  ml::Rng rng(seed);
  std::vector<net::PacketRecord> wire;
  std::vector<std::string> truths;
  for (int i = 0; i < n_subscribers; ++i) {
    sim::SessionSpec spec;
    spec.title = static_cast<sim::GameTitle>(
        rng.next_below(sim::kNumPopularTitles));
    spec.gameplay_seconds = 120.0;
    spec.seed = seed * 100 + static_cast<std::uint64_t>(i);
    spec.start_time = net::duration_from_seconds(15.0 * i);
    const auto session = generator.generate(spec);
    truths.push_back(std::string(sim::to_string(spec.title)) + " @ " +
                     net::to_string(session.client_ip));
    wire.insert(wire.end(), session.packets.begin(), session.packets.end());
    for (const auto& pkt :
         sim::web_browsing_flow(session.client_ip, 200.0, rng))
      wire.push_back(pkt);
  }
  std::sort(wire.begin(), wire.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  std::printf("Replaying %zu packets from %d subscribers over %zu shards"
              "...\n\n",
              wire.size(), n_subscribers, n_shards);

  std::size_t reports = 0;
  core::ShardedProbeParams params;
  params.probe = core::MultiSessionProbeParams{core::default_pipeline_params()};
  params.num_shards = n_shards;
  // Always keep a decision trace; ~64 events per expected session is
  // plenty (a 2-minute session emits well under that).
  params.trace_capacity = static_cast<std::size_t>(n_subscribers) * 64;
  core::ShardedProbe probe(
      suite.models(), params,
      [&](const core::SessionReport& report) {
        ++reports;
        std::printf("session %zu: %-20s | %5.1f min | %5.1f Mbps | pattern %-18s"
                    " | QoE %s -> %s\n",
                    reports,
                    report.title.label ? report.title.class_name.c_str()
                                       : "(unknown)",
                    report.duration_s / 60.0, report.mean_down_mbps,
                    report.pattern
                        ? core::pattern_class_names()[static_cast<std::size_t>(
                              report.pattern->label)]
                              .c_str()
                        : "-",
                    core::to_string(report.objective_session),
                    core::to_string(report.effective_session));
      });
  for (const auto& pkt : wire) probe.push(pkt);
  probe.flush();

  std::puts("\nGround truth sessions:");
  for (const std::string& truth : truths) std::printf("  %s\n", truth.c_str());

  // Telemetry-plane dump: the aggregated probe counters, then (opted in)
  // the full metrics registry and the per-session decision traces.
  std::printf("\nProbe stats: %s\n", probe.stats().to_string().c_str());
  if (metrics_out != nullptr)
    dump("metrics", metrics_out, obs::to_prometheus(probe.metrics_snapshot()));
  if (trace_out != nullptr) {
    const std::vector<obs::TraceEvent> events = probe.drain_trace();
    if (std::strcmp(trace_out, "-") == 0) {
      obs::write_jsonl(events, std::cout);
    } else {
      std::ofstream out(trace_out, std::ios::trunc);
      obs::write_jsonl(events, out);
      std::printf("wrote %zu trace events to %s\n", events.size(), trace_out);
    }
  }
  return 0;
}
