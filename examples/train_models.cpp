// Trains the full model suite at lab scale (the 531-session Table 2 plan)
// and persists the three models as text files, the way the deployment
// trains offline in the lab and ships models to the ISP's observability
// platform.
//
//   ./train_models [output_dir] [lab_scale]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/model_suite.hpp"

using namespace cgctx;

namespace {

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.string().c_str());
    std::exit(1);
  }
  std::printf("    wrote %s (%zu bytes)\n", path.string().c_str(), text.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "cgctx_models";
  const double lab_scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  std::filesystem::create_directories(out_dir);

  std::printf("Training on a %.0f%%-scale Table 2 lab plan...\n",
              100 * lab_scale);
  core::TrainingBudget budget;
  budget.lab_scale = lab_scale;
  budget.gameplay_seconds = 180.0;
  budget.augment_copies = 2;  // variation-based augmentation (paper §4.4)
  double title_acc = 0.0;
  double stage_acc = 0.0;
  double pattern_acc = 0.0;
  const core::ModelSuite suite =
      core::train_model_suite(budget, &title_acc, &stage_acc, &pattern_acc);

  std::printf("Held-out accuracy: title %.1f%% | stage %.1f%% | pattern %.1f%%\n",
              100 * title_acc, 100 * stage_acc, 100 * pattern_acc);
  write_file(out_dir / "title_classifier.model", suite.title.serialize());
  write_file(out_dir / "stage_classifier.model", suite.stage.serialize());
  write_file(out_dir / "pattern_inferrer.model", suite.pattern.serialize());
  std::puts("Done. Load with {TitleClassifier,StageClassifier,PatternInferrer}"
            "::deserialize().");
  return 0;
}
