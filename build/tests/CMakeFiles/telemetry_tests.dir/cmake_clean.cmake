file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tests.dir/telemetry/aggregator_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/aggregator_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/provisioning_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/provisioning_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/stats_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/stats_test.cpp.o.d"
  "telemetry_tests"
  "telemetry_tests.pdb"
  "telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
