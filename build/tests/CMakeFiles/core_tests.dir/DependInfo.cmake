
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/flow_detector_test.cpp" "tests/CMakeFiles/core_tests.dir/core/flow_detector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/flow_detector_test.cpp.o.d"
  "/root/repo/tests/core/launch_attributes_test.cpp" "tests/CMakeFiles/core_tests.dir/core/launch_attributes_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/launch_attributes_test.cpp.o.d"
  "/root/repo/tests/core/model_suite_test.cpp" "tests/CMakeFiles/core_tests.dir/core/model_suite_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/model_suite_test.cpp.o.d"
  "/root/repo/tests/core/multi_session_probe_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multi_session_probe_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multi_session_probe_test.cpp.o.d"
  "/root/repo/tests/core/packet_groups_test.cpp" "tests/CMakeFiles/core_tests.dir/core/packet_groups_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/packet_groups_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/qoe_estimator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/qoe_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/qoe_estimator_test.cpp.o.d"
  "/root/repo/tests/core/qoe_test.cpp" "tests/CMakeFiles/core_tests.dir/core/qoe_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/qoe_test.cpp.o.d"
  "/root/repo/tests/core/stage_classifier_test.cpp" "tests/CMakeFiles/core_tests.dir/core/stage_classifier_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/stage_classifier_test.cpp.o.d"
  "/root/repo/tests/core/streaming_analyzer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/streaming_analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/streaming_analyzer_test.cpp.o.d"
  "/root/repo/tests/core/title_classifier_test.cpp" "tests/CMakeFiles/core_tests.dir/core/title_classifier_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/title_classifier_test.cpp.o.d"
  "/root/repo/tests/core/training_test.cpp" "tests/CMakeFiles/core_tests.dir/core/training_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/training_test.cpp.o.d"
  "/root/repo/tests/core/transition_model_test.cpp" "tests/CMakeFiles/core_tests.dir/core/transition_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/transition_model_test.cpp.o.d"
  "/root/repo/tests/core/volumetric_tracker_test.cpp" "tests/CMakeFiles/core_tests.dir/core/volumetric_tracker_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/volumetric_tracker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgctx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cgctx_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
