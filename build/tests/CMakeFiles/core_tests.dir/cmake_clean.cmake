file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/flow_detector_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/flow_detector_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/launch_attributes_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/launch_attributes_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/model_suite_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/model_suite_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multi_session_probe_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multi_session_probe_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/packet_groups_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/packet_groups_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/qoe_estimator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/qoe_estimator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/qoe_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/qoe_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/stage_classifier_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/stage_classifier_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/streaming_analyzer_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/streaming_analyzer_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/title_classifier_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/title_classifier_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/training_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/training_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/transition_model_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/transition_model_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/volumetric_tracker_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/volumetric_tracker_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
