
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/byte_io_test.cpp" "tests/CMakeFiles/net_tests.dir/net/byte_io_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/byte_io_test.cpp.o.d"
  "/root/repo/tests/net/flow_table_test.cpp" "tests/CMakeFiles/net_tests.dir/net/flow_table_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/flow_table_test.cpp.o.d"
  "/root/repo/tests/net/framing_test.cpp" "tests/CMakeFiles/net_tests.dir/net/framing_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/framing_test.cpp.o.d"
  "/root/repo/tests/net/fuzz_test.cpp" "tests/CMakeFiles/net_tests.dir/net/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/fuzz_test.cpp.o.d"
  "/root/repo/tests/net/packet_test.cpp" "tests/CMakeFiles/net_tests.dir/net/packet_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/packet_test.cpp.o.d"
  "/root/repo/tests/net/pcap_test.cpp" "tests/CMakeFiles/net_tests.dir/net/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/pcap_test.cpp.o.d"
  "/root/repo/tests/net/pcapng_test.cpp" "tests/CMakeFiles/net_tests.dir/net/pcapng_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/pcapng_test.cpp.o.d"
  "/root/repo/tests/net/rtp_test.cpp" "tests/CMakeFiles/net_tests.dir/net/rtp_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/rtp_test.cpp.o.d"
  "/root/repo/tests/net/time_test.cpp" "tests/CMakeFiles/net_tests.dir/net/time_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgctx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cgctx_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
