file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net/byte_io_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/byte_io_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/flow_table_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/flow_table_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/framing_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/framing_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/fuzz_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/fuzz_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/pcap_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/pcap_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/pcapng_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/pcapng_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/rtp_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/rtp_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/time_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/time_test.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
