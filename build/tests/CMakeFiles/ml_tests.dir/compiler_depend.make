# Empty compiler generated dependencies file for ml_tests.
# This may be replaced when dependencies are built.
