file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/classifier_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/classifier_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/csv_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/csv_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/gradient_boosting_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/gradient_boosting_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/grid_search_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/grid_search_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/rng_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/rng_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/scaler_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/scaler_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/svm_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/svm_test.cpp.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
