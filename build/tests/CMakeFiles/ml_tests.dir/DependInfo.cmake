
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/classifier_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/classifier_test.cpp.o.d"
  "/root/repo/tests/ml/csv_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/csv_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/csv_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/feature_selection_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o.d"
  "/root/repo/tests/ml/gradient_boosting_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/gradient_boosting_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/gradient_boosting_test.cpp.o.d"
  "/root/repo/tests/ml/grid_search_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/grid_search_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/grid_search_test.cpp.o.d"
  "/root/repo/tests/ml/importance_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o.d"
  "/root/repo/tests/ml/knn_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/random_forest_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/random_forest_test.cpp.o.d"
  "/root/repo/tests/ml/rng_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/rng_test.cpp.o.d"
  "/root/repo/tests/ml/scaler_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/scaler_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/scaler_test.cpp.o.d"
  "/root/repo/tests/ml/svm_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/svm_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/svm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgctx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cgctx_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
