file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/config_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/config_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/cross_traffic_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/cross_traffic_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fleet_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fleet_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/launch_signature_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/launch_signature_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/platform_anatomy_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/platform_anatomy_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/platform_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/platform_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/session_edge_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/session_edge_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/session_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/session_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/stage_model_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/stage_model_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
