
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/catalog_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o.d"
  "/root/repo/tests/sim/config_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/config_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/config_test.cpp.o.d"
  "/root/repo/tests/sim/cross_traffic_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/cross_traffic_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/cross_traffic_test.cpp.o.d"
  "/root/repo/tests/sim/fleet_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fleet_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fleet_test.cpp.o.d"
  "/root/repo/tests/sim/launch_signature_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/launch_signature_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/launch_signature_test.cpp.o.d"
  "/root/repo/tests/sim/platform_anatomy_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/platform_anatomy_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/platform_anatomy_test.cpp.o.d"
  "/root/repo/tests/sim/platform_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/platform_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/platform_test.cpp.o.d"
  "/root/repo/tests/sim/session_edge_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/session_edge_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/session_edge_test.cpp.o.d"
  "/root/repo/tests/sim/session_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/session_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/session_test.cpp.o.d"
  "/root/repo/tests/sim/stage_model_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/stage_model_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/stage_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgctx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cgctx_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
