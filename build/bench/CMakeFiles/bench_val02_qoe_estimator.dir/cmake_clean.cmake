file(REMOVE_RECURSE
  "CMakeFiles/bench_val02_qoe_estimator.dir/bench_val02_qoe_estimator.cpp.o"
  "CMakeFiles/bench_val02_qoe_estimator.dir/bench_val02_qoe_estimator.cpp.o.d"
  "bench_val02_qoe_estimator"
  "bench_val02_qoe_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_val02_qoe_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
