# Empty dependencies file for bench_val02_qoe_estimator.
# This may be replaced when dependencies are built.
