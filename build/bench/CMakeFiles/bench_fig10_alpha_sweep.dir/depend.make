# Empty dependencies file for bench_fig10_alpha_sweep.
# This may be replaced when dependencies are built.
