file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_catalog.dir/bench_tab01_catalog.cpp.o"
  "CMakeFiles/bench_tab01_catalog.dir/bench_tab01_catalog.cpp.o.d"
  "bench_tab01_catalog"
  "bench_tab01_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
