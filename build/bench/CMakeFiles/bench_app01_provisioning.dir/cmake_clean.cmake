file(REMOVE_RECURSE
  "CMakeFiles/bench_app01_provisioning.dir/bench_app01_provisioning.cpp.o"
  "CMakeFiles/bench_app01_provisioning.dir/bench_app01_provisioning.cpp.o.d"
  "bench_app01_provisioning"
  "bench_app01_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app01_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
