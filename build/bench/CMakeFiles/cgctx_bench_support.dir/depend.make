# Empty dependencies file for cgctx_bench_support.
# This may be replaced when dependencies are built.
