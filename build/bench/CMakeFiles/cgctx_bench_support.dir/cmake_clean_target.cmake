file(REMOVE_RECURSE
  "libcgctx_bench_support.a"
)
