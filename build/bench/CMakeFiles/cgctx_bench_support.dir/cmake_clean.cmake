file(REMOVE_RECURSE
  "CMakeFiles/cgctx_bench_support.dir/common/bench_support.cpp.o"
  "CMakeFiles/cgctx_bench_support.dir/common/bench_support.cpp.o.d"
  "libcgctx_bench_support.a"
  "libcgctx_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
