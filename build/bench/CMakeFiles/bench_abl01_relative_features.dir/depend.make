# Empty dependencies file for bench_abl01_relative_features.
# This may be replaced when dependencies are built.
