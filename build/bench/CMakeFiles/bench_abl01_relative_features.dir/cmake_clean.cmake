file(REMOVE_RECURSE
  "CMakeFiles/bench_abl01_relative_features.dir/bench_abl01_relative_features.cpp.o"
  "CMakeFiles/bench_abl01_relative_features.dir/bench_abl01_relative_features.cpp.o.d"
  "bench_abl01_relative_features"
  "bench_abl01_relative_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl01_relative_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
