# Empty dependencies file for bench_par01_v_sweep.
# This may be replaced when dependencies are built.
