file(REMOVE_RECURSE
  "CMakeFiles/bench_par01_v_sweep.dir/bench_par01_v_sweep.cpp.o"
  "CMakeFiles/bench_par01_v_sweep.dir/bench_par01_v_sweep.cpp.o.d"
  "bench_par01_v_sweep"
  "bench_par01_v_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_par01_v_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
