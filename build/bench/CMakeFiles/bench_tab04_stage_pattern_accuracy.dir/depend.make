# Empty dependencies file for bench_tab04_stage_pattern_accuracy.
# This may be replaced when dependencies are built.
