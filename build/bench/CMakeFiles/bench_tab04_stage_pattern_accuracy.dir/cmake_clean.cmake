file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_stage_pattern_accuracy.dir/bench_tab04_stage_pattern_accuracy.cpp.o"
  "CMakeFiles/bench_tab04_stage_pattern_accuracy.dir/bench_tab04_stage_pattern_accuracy.cpp.o.d"
  "bench_tab04_stage_pattern_accuracy"
  "bench_tab04_stage_pattern_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_stage_pattern_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
