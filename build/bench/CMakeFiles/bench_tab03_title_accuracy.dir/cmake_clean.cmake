file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_title_accuracy.dir/bench_tab03_title_accuracy.cpp.o"
  "CMakeFiles/bench_tab03_title_accuracy.dir/bench_tab03_title_accuracy.cpp.o.d"
  "bench_tab03_title_accuracy"
  "bench_tab03_title_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_title_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
