# Empty compiler generated dependencies file for bench_tab03_title_accuracy.
# This may be replaced when dependencies are built.
