# Empty dependencies file for bench_fig08_window_sweep.
# This may be replaced when dependencies are built.
