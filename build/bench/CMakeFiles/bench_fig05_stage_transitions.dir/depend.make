# Empty dependencies file for bench_fig05_stage_transitions.
# This may be replaced when dependencies are built.
