# Empty dependencies file for bench_fig11_stage_durations.
# This may be replaced when dependencies are built.
