file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_stage_durations.dir/bench_fig11_stage_durations.cpp.o"
  "CMakeFiles/bench_fig11_stage_durations.dir/bench_fig11_stage_durations.cpp.o.d"
  "bench_fig11_stage_durations"
  "bench_fig11_stage_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_stage_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
