# Empty dependencies file for bench_abl02_group_labeling.
# This may be replaced when dependencies are built.
