file(REMOVE_RECURSE
  "CMakeFiles/bench_abl02_group_labeling.dir/bench_abl02_group_labeling.cpp.o"
  "CMakeFiles/bench_abl02_group_labeling.dir/bench_abl02_group_labeling.cpp.o.d"
  "bench_abl02_group_labeling"
  "bench_abl02_group_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl02_group_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
