# Empty compiler generated dependencies file for bench_fig13_effective_qoe.
# This may be replaced when dependencies are built.
