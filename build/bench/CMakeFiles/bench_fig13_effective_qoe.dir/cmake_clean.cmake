file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_effective_qoe.dir/bench_fig13_effective_qoe.cpp.o"
  "CMakeFiles/bench_fig13_effective_qoe.dir/bench_fig13_effective_qoe.cpp.o.d"
  "bench_fig13_effective_qoe"
  "bench_fig13_effective_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_effective_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
