file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_volumetrics.dir/bench_fig04_volumetrics.cpp.o"
  "CMakeFiles/bench_fig04_volumetrics.dir/bench_fig04_volumetrics.cpp.o.d"
  "bench_fig04_volumetrics"
  "bench_fig04_volumetrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_volumetrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
