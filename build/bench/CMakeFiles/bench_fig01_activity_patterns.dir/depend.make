# Empty dependencies file for bench_fig01_activity_patterns.
# This may be replaced when dependencies are built.
