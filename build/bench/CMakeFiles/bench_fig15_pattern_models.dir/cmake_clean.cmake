file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_pattern_models.dir/bench_fig15_pattern_models.cpp.o"
  "CMakeFiles/bench_fig15_pattern_models.dir/bench_fig15_pattern_models.cpp.o.d"
  "bench_fig15_pattern_models"
  "bench_fig15_pattern_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_pattern_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
