# Empty compiler generated dependencies file for bench_fig15_pattern_models.
# This may be replaced when dependencies are built.
