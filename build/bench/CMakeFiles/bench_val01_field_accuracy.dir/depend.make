# Empty dependencies file for bench_val01_field_accuracy.
# This may be replaced when dependencies are built.
