file(REMOVE_RECURSE
  "CMakeFiles/bench_val01_field_accuracy.dir/bench_val01_field_accuracy.cpp.o"
  "CMakeFiles/bench_val01_field_accuracy.dir/bench_val01_field_accuracy.cpp.o.d"
  "bench_val01_field_accuracy"
  "bench_val01_field_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_val01_field_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
