# Empty compiler generated dependencies file for bench_par02_confidence_sweep.
# This may be replaced when dependencies are built.
