file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_lab_dataset.dir/bench_tab02_lab_dataset.cpp.o"
  "CMakeFiles/bench_tab02_lab_dataset.dir/bench_tab02_lab_dataset.cpp.o.d"
  "bench_tab02_lab_dataset"
  "bench_tab02_lab_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_lab_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
