# Empty dependencies file for bench_tab02_lab_dataset.
# This may be replaced when dependencies are built.
