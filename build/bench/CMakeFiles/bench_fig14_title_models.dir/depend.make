# Empty dependencies file for bench_fig14_title_models.
# This may be replaced when dependencies are built.
