# Empty compiler generated dependencies file for bench_ext01_gbt.
# This may be replaced when dependencies are built.
