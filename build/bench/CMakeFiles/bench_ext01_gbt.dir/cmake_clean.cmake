file(REMOVE_RECURSE
  "CMakeFiles/bench_ext01_gbt.dir/bench_ext01_gbt.cpp.o"
  "CMakeFiles/bench_ext01_gbt.dir/bench_ext01_gbt.cpp.o.d"
  "bench_ext01_gbt"
  "bench_ext01_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext01_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
