file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_transition_importance.dir/bench_tab05_transition_importance.cpp.o"
  "CMakeFiles/bench_tab05_transition_importance.dir/bench_tab05_transition_importance.cpp.o.d"
  "bench_tab05_transition_importance"
  "bench_tab05_transition_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_transition_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
