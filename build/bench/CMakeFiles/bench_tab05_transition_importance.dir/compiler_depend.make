# Empty compiler generated dependencies file for bench_tab05_transition_importance.
# This may be replaced when dependencies are built.
