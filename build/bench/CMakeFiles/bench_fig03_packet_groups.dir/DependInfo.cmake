
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03_packet_groups.cpp" "bench/CMakeFiles/bench_fig03_packet_groups.dir/bench_fig03_packet_groups.cpp.o" "gcc" "bench/CMakeFiles/bench_fig03_packet_groups.dir/bench_fig03_packet_groups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cgctx_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cgctx_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cgctx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
