file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_packet_groups.dir/bench_fig03_packet_groups.cpp.o"
  "CMakeFiles/bench_fig03_packet_groups.dir/bench_fig03_packet_groups.cpp.o.d"
  "bench_fig03_packet_groups"
  "bench_fig03_packet_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_packet_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
