# Empty dependencies file for bench_fig03_packet_groups.
# This may be replaced when dependencies are built.
