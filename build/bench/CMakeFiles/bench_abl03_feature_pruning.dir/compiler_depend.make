# Empty compiler generated dependencies file for bench_abl03_feature_pruning.
# This may be replaced when dependencies are built.
