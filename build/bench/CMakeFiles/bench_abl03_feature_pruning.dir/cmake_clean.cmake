file(REMOVE_RECURSE
  "CMakeFiles/bench_abl03_feature_pruning.dir/bench_abl03_feature_pruning.cpp.o"
  "CMakeFiles/bench_abl03_feature_pruning.dir/bench_abl03_feature_pruning.cpp.o.d"
  "bench_abl03_feature_pruning"
  "bench_abl03_feature_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl03_feature_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
