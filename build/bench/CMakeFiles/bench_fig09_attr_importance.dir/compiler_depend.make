# Empty compiler generated dependencies file for bench_fig09_attr_importance.
# This may be replaced when dependencies are built.
