file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_attr_importance.dir/bench_fig09_attr_importance.cpp.o"
  "CMakeFiles/bench_fig09_attr_importance.dir/bench_fig09_attr_importance.cpp.o.d"
  "bench_fig09_attr_importance"
  "bench_fig09_attr_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_attr_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
