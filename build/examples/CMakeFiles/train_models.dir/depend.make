# Empty dependencies file for train_models.
# This may be replaced when dependencies are built.
