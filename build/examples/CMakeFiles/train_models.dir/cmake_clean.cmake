file(REMOVE_RECURSE
  "CMakeFiles/train_models.dir/train_models.cpp.o"
  "CMakeFiles/train_models.dir/train_models.cpp.o.d"
  "train_models"
  "train_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
