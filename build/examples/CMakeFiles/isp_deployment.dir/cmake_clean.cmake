file(REMOVE_RECURSE
  "CMakeFiles/isp_deployment.dir/isp_deployment.cpp.o"
  "CMakeFiles/isp_deployment.dir/isp_deployment.cpp.o.d"
  "isp_deployment"
  "isp_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
