file(REMOVE_RECURSE
  "CMakeFiles/live_classifier.dir/live_classifier.cpp.o"
  "CMakeFiles/live_classifier.dir/live_classifier.cpp.o.d"
  "live_classifier"
  "live_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
