# Empty dependencies file for live_classifier.
# This may be replaced when dependencies are built.
