# Empty dependencies file for pcap_tool.
# This may be replaced when dependencies are built.
