file(REMOVE_RECURSE
  "CMakeFiles/pcap_tool.dir/pcap_tool.cpp.o"
  "CMakeFiles/pcap_tool.dir/pcap_tool.cpp.o.d"
  "pcap_tool"
  "pcap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
