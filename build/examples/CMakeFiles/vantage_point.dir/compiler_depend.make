# Empty compiler generated dependencies file for vantage_point.
# This may be replaced when dependencies are built.
