file(REMOVE_RECURSE
  "CMakeFiles/vantage_point.dir/vantage_point.cpp.o"
  "CMakeFiles/vantage_point.dir/vantage_point.cpp.o.d"
  "vantage_point"
  "vantage_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vantage_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
