file(REMOVE_RECURSE
  "CMakeFiles/cgctx_core.dir/flow_detector.cpp.o"
  "CMakeFiles/cgctx_core.dir/flow_detector.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/launch_attributes.cpp.o"
  "CMakeFiles/cgctx_core.dir/launch_attributes.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/model_suite.cpp.o"
  "CMakeFiles/cgctx_core.dir/model_suite.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/multi_session_probe.cpp.o"
  "CMakeFiles/cgctx_core.dir/multi_session_probe.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/packet_groups.cpp.o"
  "CMakeFiles/cgctx_core.dir/packet_groups.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/pipeline.cpp.o"
  "CMakeFiles/cgctx_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/qoe.cpp.o"
  "CMakeFiles/cgctx_core.dir/qoe.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/qoe_estimator.cpp.o"
  "CMakeFiles/cgctx_core.dir/qoe_estimator.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/stage_classifier.cpp.o"
  "CMakeFiles/cgctx_core.dir/stage_classifier.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/streaming_analyzer.cpp.o"
  "CMakeFiles/cgctx_core.dir/streaming_analyzer.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/title_classifier.cpp.o"
  "CMakeFiles/cgctx_core.dir/title_classifier.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/training.cpp.o"
  "CMakeFiles/cgctx_core.dir/training.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/transition_model.cpp.o"
  "CMakeFiles/cgctx_core.dir/transition_model.cpp.o.d"
  "CMakeFiles/cgctx_core.dir/volumetric_tracker.cpp.o"
  "CMakeFiles/cgctx_core.dir/volumetric_tracker.cpp.o.d"
  "libcgctx_core.a"
  "libcgctx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
