# Empty compiler generated dependencies file for cgctx_core.
# This may be replaced when dependencies are built.
