
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/flow_detector.cpp" "src/core/CMakeFiles/cgctx_core.dir/flow_detector.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/flow_detector.cpp.o.d"
  "/root/repo/src/core/launch_attributes.cpp" "src/core/CMakeFiles/cgctx_core.dir/launch_attributes.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/launch_attributes.cpp.o.d"
  "/root/repo/src/core/model_suite.cpp" "src/core/CMakeFiles/cgctx_core.dir/model_suite.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/model_suite.cpp.o.d"
  "/root/repo/src/core/multi_session_probe.cpp" "src/core/CMakeFiles/cgctx_core.dir/multi_session_probe.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/multi_session_probe.cpp.o.d"
  "/root/repo/src/core/packet_groups.cpp" "src/core/CMakeFiles/cgctx_core.dir/packet_groups.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/packet_groups.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/cgctx_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/qoe.cpp" "src/core/CMakeFiles/cgctx_core.dir/qoe.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/qoe.cpp.o.d"
  "/root/repo/src/core/qoe_estimator.cpp" "src/core/CMakeFiles/cgctx_core.dir/qoe_estimator.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/qoe_estimator.cpp.o.d"
  "/root/repo/src/core/stage_classifier.cpp" "src/core/CMakeFiles/cgctx_core.dir/stage_classifier.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/stage_classifier.cpp.o.d"
  "/root/repo/src/core/streaming_analyzer.cpp" "src/core/CMakeFiles/cgctx_core.dir/streaming_analyzer.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/streaming_analyzer.cpp.o.d"
  "/root/repo/src/core/title_classifier.cpp" "src/core/CMakeFiles/cgctx_core.dir/title_classifier.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/title_classifier.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/cgctx_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/training.cpp.o.d"
  "/root/repo/src/core/transition_model.cpp" "src/core/CMakeFiles/cgctx_core.dir/transition_model.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/transition_model.cpp.o.d"
  "/root/repo/src/core/volumetric_tracker.cpp" "src/core/CMakeFiles/cgctx_core.dir/volumetric_tracker.cpp.o" "gcc" "src/core/CMakeFiles/cgctx_core.dir/volumetric_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgctx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
