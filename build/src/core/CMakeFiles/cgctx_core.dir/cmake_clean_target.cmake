file(REMOVE_RECURSE
  "libcgctx_core.a"
)
