file(REMOVE_RECURSE
  "CMakeFiles/cgctx_ml.dir/classifier.cpp.o"
  "CMakeFiles/cgctx_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/csv.cpp.o"
  "CMakeFiles/cgctx_ml.dir/csv.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/dataset.cpp.o"
  "CMakeFiles/cgctx_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/cgctx_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/cgctx_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/gradient_boosting.cpp.o"
  "CMakeFiles/cgctx_ml.dir/gradient_boosting.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/grid_search.cpp.o"
  "CMakeFiles/cgctx_ml.dir/grid_search.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/importance.cpp.o"
  "CMakeFiles/cgctx_ml.dir/importance.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/knn.cpp.o"
  "CMakeFiles/cgctx_ml.dir/knn.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/metrics.cpp.o"
  "CMakeFiles/cgctx_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/random_forest.cpp.o"
  "CMakeFiles/cgctx_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/scaler.cpp.o"
  "CMakeFiles/cgctx_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/cgctx_ml.dir/svm.cpp.o"
  "CMakeFiles/cgctx_ml.dir/svm.cpp.o.d"
  "libcgctx_ml.a"
  "libcgctx_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
