
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/csv.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/csv.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/csv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/gradient_boosting.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/grid_search.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/grid_search.cpp.o.d"
  "/root/repo/src/ml/importance.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/importance.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/importance.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/cgctx_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/cgctx_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
