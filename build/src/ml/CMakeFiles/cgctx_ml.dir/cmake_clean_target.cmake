file(REMOVE_RECURSE
  "libcgctx_ml.a"
)
