# Empty compiler generated dependencies file for cgctx_ml.
# This may be replaced when dependencies are built.
