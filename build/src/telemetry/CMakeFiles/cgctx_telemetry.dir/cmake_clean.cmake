file(REMOVE_RECURSE
  "CMakeFiles/cgctx_telemetry.dir/aggregator.cpp.o"
  "CMakeFiles/cgctx_telemetry.dir/aggregator.cpp.o.d"
  "CMakeFiles/cgctx_telemetry.dir/provisioning.cpp.o"
  "CMakeFiles/cgctx_telemetry.dir/provisioning.cpp.o.d"
  "CMakeFiles/cgctx_telemetry.dir/stats.cpp.o"
  "CMakeFiles/cgctx_telemetry.dir/stats.cpp.o.d"
  "libcgctx_telemetry.a"
  "libcgctx_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
