# Empty compiler generated dependencies file for cgctx_telemetry.
# This may be replaced when dependencies are built.
