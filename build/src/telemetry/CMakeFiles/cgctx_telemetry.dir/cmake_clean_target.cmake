file(REMOVE_RECURSE
  "libcgctx_telemetry.a"
)
