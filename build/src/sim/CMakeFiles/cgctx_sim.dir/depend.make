# Empty dependencies file for cgctx_sim.
# This may be replaced when dependencies are built.
