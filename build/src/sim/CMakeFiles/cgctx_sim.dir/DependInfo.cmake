
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/catalog.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/cross_traffic.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/cross_traffic.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/fleet.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/fleet.cpp.o.d"
  "/root/repo/src/sim/lab_dataset.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/lab_dataset.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/lab_dataset.cpp.o.d"
  "/root/repo/src/sim/launch_signature.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/launch_signature.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/launch_signature.cpp.o.d"
  "/root/repo/src/sim/platform_anatomy.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/platform_anatomy.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/platform_anatomy.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/session.cpp.o.d"
  "/root/repo/src/sim/stage_model.cpp" "src/sim/CMakeFiles/cgctx_sim.dir/stage_model.cpp.o" "gcc" "src/sim/CMakeFiles/cgctx_sim.dir/stage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cgctx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cgctx_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
