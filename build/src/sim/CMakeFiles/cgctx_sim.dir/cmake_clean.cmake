file(REMOVE_RECURSE
  "CMakeFiles/cgctx_sim.dir/catalog.cpp.o"
  "CMakeFiles/cgctx_sim.dir/catalog.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/config.cpp.o"
  "CMakeFiles/cgctx_sim.dir/config.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/cross_traffic.cpp.o"
  "CMakeFiles/cgctx_sim.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/fleet.cpp.o"
  "CMakeFiles/cgctx_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/lab_dataset.cpp.o"
  "CMakeFiles/cgctx_sim.dir/lab_dataset.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/launch_signature.cpp.o"
  "CMakeFiles/cgctx_sim.dir/launch_signature.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/platform_anatomy.cpp.o"
  "CMakeFiles/cgctx_sim.dir/platform_anatomy.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/session.cpp.o"
  "CMakeFiles/cgctx_sim.dir/session.cpp.o.d"
  "CMakeFiles/cgctx_sim.dir/stage_model.cpp.o"
  "CMakeFiles/cgctx_sim.dir/stage_model.cpp.o.d"
  "libcgctx_sim.a"
  "libcgctx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
