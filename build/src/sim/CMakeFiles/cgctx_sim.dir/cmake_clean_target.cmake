file(REMOVE_RECURSE
  "libcgctx_sim.a"
)
