file(REMOVE_RECURSE
  "libcgctx_net.a"
)
