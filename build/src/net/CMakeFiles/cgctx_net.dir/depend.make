# Empty dependencies file for cgctx_net.
# This may be replaced when dependencies are built.
