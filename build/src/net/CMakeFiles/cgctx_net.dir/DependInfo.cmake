
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/byte_io.cpp" "src/net/CMakeFiles/cgctx_net.dir/byte_io.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/byte_io.cpp.o.d"
  "/root/repo/src/net/flow_table.cpp" "src/net/CMakeFiles/cgctx_net.dir/flow_table.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/flow_table.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/net/CMakeFiles/cgctx_net.dir/framing.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/framing.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/cgctx_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/cgctx_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/pcapng.cpp" "src/net/CMakeFiles/cgctx_net.dir/pcapng.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/pcapng.cpp.o.d"
  "/root/repo/src/net/rtp.cpp" "src/net/CMakeFiles/cgctx_net.dir/rtp.cpp.o" "gcc" "src/net/CMakeFiles/cgctx_net.dir/rtp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
