file(REMOVE_RECURSE
  "CMakeFiles/cgctx_net.dir/byte_io.cpp.o"
  "CMakeFiles/cgctx_net.dir/byte_io.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/flow_table.cpp.o"
  "CMakeFiles/cgctx_net.dir/flow_table.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/framing.cpp.o"
  "CMakeFiles/cgctx_net.dir/framing.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/packet.cpp.o"
  "CMakeFiles/cgctx_net.dir/packet.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/pcap.cpp.o"
  "CMakeFiles/cgctx_net.dir/pcap.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/pcapng.cpp.o"
  "CMakeFiles/cgctx_net.dir/pcapng.cpp.o.d"
  "CMakeFiles/cgctx_net.dir/rtp.cpp.o"
  "CMakeFiles/cgctx_net.dir/rtp.cpp.o.d"
  "libcgctx_net.a"
  "libcgctx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgctx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
