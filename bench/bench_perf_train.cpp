// Deterministic parallel training throughput (PERF-TRAIN).
//
// Builds the title-classification dataset from a Table 2 lab plan, then
// fits the title classifier's Random Forest at 1/2/4/N worker threads
// and times a (candidate x fold) grid search. Reports wall times and
// speedups, and writes a machine-readable BENCH_TRAIN.json next to the
// binary's working directory.
//
// Correctness gate (always enforced, including --smoke): every parallel
// fit must serialize byte-identically to the single-thread fit and
// report the same OOB score, and the parallel grid search must agree
// with the serial one on every score and on the winner. Any divergence
// exits non-zero — the determinism contract of DESIGN.md §9 is what
// keeps the bench model cache and the paper tables reproducible.
//
// Scaling expectation: >= 3x forest-fit speedup at 4 threads vs 1 on a
// host with >= 4 hardware threads (tree fits are embarrassingly parallel
// once seeds are pre-drawn). On smaller hosts the workers time-slice, so
// the bench prints the detected concurrency and flags under-provisioned
// runs instead of pretending.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/title_classifier.hpp"
#include "core/training.hpp"
#include "ml/grid_search.hpp"
#include "ml/random_forest.hpp"
#include "sim/lab_dataset.hpp"

using namespace cgctx;

namespace {

double seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

struct FitRun {
  std::size_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  // --smoke: a minimal-workload run for CI — smaller plan, fewer trees,
  // thread counts {1, 2}. The bitwise-identity gates still run, so the
  // job fails on determinism regressions, not just crashes.
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::cout << "== PERF-TRAIN: deterministic parallel training ==\n";
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << "\n";
  if (smoke) std::cout << "mode: smoke (minimal workload; numbers are noise)\n";
  if (hw < 4)
    std::cout << "NOTE: < 4 hardware threads; training workers time-slice "
                 "one core,\nso multi-thread speedups cannot materialize on "
                 "this host.\n";

  // Catalog-sized workload: the Table 2 lab plan rendered to the
  // 51-attribute title dataset (the heaviest training input in the
  // repro), fit with the production title-classifier forest parameters.
  sim::LabPlanOptions plan_options;
  plan_options.scale = smoke ? 0.05 : 0.35;
  plan_options.gameplay_seconds = smoke ? 20.0 : 60.0;
  core::TitleDatasetOptions dataset_options;
  dataset_options.augment_copies = smoke ? 0 : 1;
  const std::vector<sim::SessionSpec> plan = sim::lab_session_plan(plan_options);

  const auto build_begin = std::chrono::steady_clock::now();
  const ml::Dataset data = core::build_title_dataset(plan, dataset_options);
  const double build_seconds = seconds_since(build_begin);
  std::cout << "dataset: " << data.size() << " rows x " << data.num_features()
            << " attributes, " << data.num_classes() << " classes ("
            << std::fixed << std::setprecision(2) << build_seconds
            << " s to build)\n\n";

  ml::RandomForestParams forest_params = core::TitleClassifierParams{}.forest;
  if (smoke) forest_params.n_trees = 60;
  std::cout << "forest: " << forest_params.n_trees << " trees, depth "
            << forest_params.max_depth << "\n";

  // Forest fit at 1/2/4/N threads. The single-thread fit is the
  // reference for both the speedup column and the bitwise gate.
  std::vector<std::size_t> thread_counts = smoke
                                               ? std::vector<std::size_t>{1, 2}
                                               : std::vector<std::size_t>{1, 2, 4};
  const std::size_t native = std::max<std::size_t>(1, hw);
  if (!smoke && native > thread_counts.back()) thread_counts.push_back(native);

  std::cout << std::setw(8) << "threads" << std::setw(12) << "fit_s"
            << std::setw(10) << "speedup" << std::setw(12) << "identical"
            << "\n";
  std::string reference_model;
  double reference_oob = 0.0;
  double serial_seconds = 0.0;
  bool identical = true;
  std::vector<FitRun> fit_runs;
  for (const std::size_t threads : thread_counts) {
    core::ThreadPool pool(threads);
    ml::RandomForest forest(forest_params);
    const auto begin = std::chrono::steady_clock::now();
    forest.fit(data, pool);
    FitRun run;
    run.threads = threads;
    run.seconds = seconds_since(begin);
    const std::string model = forest.serialize();
    bool match = true;
    if (threads == 1) {
      serial_seconds = run.seconds;
      reference_model = model;
      reference_oob = forest.oob_score();
    } else {
      match = model == reference_model && forest.oob_score() == reference_oob;
      identical = identical && match;
    }
    run.speedup = serial_seconds / run.seconds;
    fit_runs.push_back(run);
    std::cout << std::setw(8) << threads << std::setw(12)
              << std::setprecision(2) << run.seconds << std::setw(9)
              << run.speedup << "x" << std::setw(12)
              << (match ? "yes" : "NO — DIVERGED") << "\n";
  }
  std::cout << "\n";

  // Grid-search wall time: a small RF grid, (candidate x fold) tasks in
  // flight at once. Serial pool first (reference), then the widest pool.
  std::vector<ml::GridCandidate> grid;
  for (const std::size_t trees : {forest_params.n_trees / 5,
                                  forest_params.n_trees / 2}) {
    for (const std::size_t depth : {std::size_t{6}, std::size_t{10}}) {
      ml::RandomForestParams p = forest_params;
      p.n_trees = trees;
      p.max_depth = depth;
      grid.push_back({std::to_string(trees) + "t/d" + std::to_string(depth),
                      [p] { return std::make_unique<ml::RandomForest>(p); }});
    }
  }
  const std::size_t folds = 3;
  core::ThreadPool serial_pool(1);
  ml::Rng grid_rng_serial(2026);
  const auto grid_serial_begin = std::chrono::steady_clock::now();
  const ml::GridSearchResult grid_serial = ml::grid_search(
      grid, data, folds, grid_rng_serial, &serial_pool);
  const double grid_serial_seconds = seconds_since(grid_serial_begin);

  core::ThreadPool wide_pool(thread_counts.back());
  ml::Rng grid_rng_parallel(2026);
  const auto grid_parallel_begin = std::chrono::steady_clock::now();
  const ml::GridSearchResult grid_parallel = ml::grid_search(
      grid, data, folds, grid_rng_parallel, &wide_pool);
  const double grid_parallel_seconds = seconds_since(grid_parallel_begin);

  const bool grid_identical =
      grid_serial.scores == grid_parallel.scores &&
      grid_serial.best_index == grid_parallel.best_index;
  identical = identical && grid_identical;
  std::cout << "grid search (" << grid.size() << " candidates x " << folds
            << " folds): " << std::setprecision(2) << grid_serial_seconds
            << " s serial, " << grid_parallel_seconds << " s at "
            << thread_counts.back() << " threads ("
            << grid_serial_seconds / grid_parallel_seconds << "x), winner "
            << grid[grid_parallel.best_index].name << ", identical: "
            << (grid_identical ? "yes" : "NO — DIVERGED") << "\n";

  std::ofstream json("BENCH_TRAIN.json");
  json << "{\n"
       << "  \"bench\": \"perf_train\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"dataset\": {\"rows\": " << data.size() << ", \"features\": "
       << data.num_features() << ", \"classes\": " << data.num_classes()
       << ", \"build_seconds\": " << build_seconds << "},\n"
       << "  \"forest\": {\"trees\": " << forest_params.n_trees
       << ", \"max_depth\": " << forest_params.max_depth << "},\n"
       << "  \"fit\": [";
  for (std::size_t i = 0; i < fit_runs.size(); ++i) {
    if (i > 0) json << ", ";
    json << "{\"threads\": " << fit_runs[i].threads << ", \"seconds\": "
         << fit_runs[i].seconds << ", \"speedup\": " << fit_runs[i].speedup
         << "}";
  }
  json << "],\n"
       << "  \"grid_search\": {\"candidates\": " << grid.size()
       << ", \"folds\": " << folds << ", \"serial_seconds\": "
       << grid_serial_seconds << ", \"parallel_seconds\": "
       << grid_parallel_seconds << "},\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_TRAIN.json\n";

  if (!identical) {
    std::cout << "FAIL: parallel training diverged from the serial "
                 "reference\n";
    return 1;
  }
  return 0;
}
