// Reproduces paper Fig. 4: downstream throughput and upstream packet rate
// of game streaming flows over time, color-coded (here letter-coded) by
// the ground-truth player activity stage, for representative sessions —
// and verifies the §3.3 volumetric ordering (active ~ peak both ways;
// passive keeps downstream high but upstream low; idle drops both).
#include <cstdio>

#include "common/bench_support.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

void render(sim::GameTitle title, std::uint64_t seed) {
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = 600.0;
  spec.seed = seed;
  const sim::LabeledSession session = generator.generate_slots_only(spec);

  std::printf("\n--- %s ---\n", sim::to_string(title));
  std::puts("   t(s) st | down Mbps                                | up pps");
  // Per-stage means for the ordering check.
  std::array<double, 4> down_sum{};  // L, A, P, I
  std::array<double, 4> up_sum{};
  std::array<double, 4> count{};
  double peak_mbps = 0.0;
  for (const auto& slot : session.slots)
    peak_mbps = std::max(peak_mbps,
                         static_cast<double>(slot.down_bytes) * 8.0 / 1e6);

  for (std::size_t s = 0; s < session.slots.size(); s += 20) {
    const net::Timestamp mid =
        session.launch_begin + net::duration_from_seconds(s + 0.5);
    char stage_char = 'L';
    if (!session.in_launch(mid)) {
      switch (session.stage_label_at(mid)) {
        case sim::Stage::kActive: stage_char = 'A'; break;
        case sim::Stage::kPassive: stage_char = 'P'; break;
        case sim::Stage::kIdle: stage_char = 'I'; break;
      }
    }
    const double mbps =
        static_cast<double>(session.slots[s].down_bytes) * 8.0 / 1e6;
    const double pps = static_cast<double>(session.slots[s].up_packets);
    std::printf("  %5zu  %c | %5.1f %s | %4.0f\n", s, stage_char, mbps,
                bench::bar(mbps, peak_mbps).c_str(), pps);
  }

  for (std::size_t s = 0; s < session.slots.size(); ++s) {
    const net::Timestamp mid =
        session.launch_begin + net::duration_from_seconds(s + 0.5);
    std::size_t index = 0;  // launch
    if (!session.in_launch(mid))
      index = 1 + static_cast<std::size_t>(session.stage_label_at(mid));
    down_sum[index] += static_cast<double>(session.slots[s].down_bytes) * 8.0 / 1e6;
    up_sum[index] += static_cast<double>(session.slots[s].up_packets);
    count[index] += 1.0;
  }
  std::puts("  per-stage means:        down Mbps   up pps");
  const char* names[] = {"launch", "active", "passive", "idle"};
  for (std::size_t i = 0; i < 4; ++i) {
    if (count[i] == 0) continue;
    std::printf("    %-8s %16.1f %8.0f\n", names[i], down_sum[i] / count[i],
                up_sum[i] / count[i]);
  }
}

}  // namespace

int main() {
  std::puts("== Fig. 4: flow volumetrics by player activity stage ==");
  render(sim::GameTitle::kOverwatch2, 41);     // (a)/(b) spectate-and-play
  render(sim::GameTitle::kCsgo, 42);           // (c)
  render(sim::GameTitle::kCyberpunk2077, 43);  // (d) continuous-play
  std::puts("\nShape check (paper): active tops both directions; passive"
            " keeps downstream near active but upstream drops ~4x; idle"
            " drops downstream ~7x. The relative ordering holds across"
            " titles.");
  return 0;
}
