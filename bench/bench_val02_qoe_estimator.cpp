// Validation bench for the passive QoE estimator (the paper's gray-box
// dependency [Lyu et al. PAM'24]): estimated frame rate and loss rate
// from RTP packet streams vs the simulator's ground truth, across client
// settings and network conditions.
#include <cmath>
#include <cstdio>

#include "core/qoe_estimator.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

struct Score {
  double fps_mae = 0.0;       ///< mean |estimated - true| fps, gameplay slots
  double loss_bias = 0.0;     ///< mean estimated minus configured loss
  std::size_t slots = 0;
};

Score score_session(const sim::SessionSpec& spec) {
  const sim::SessionGenerator generator;
  const sim::LabeledSession session = generator.generate(spec);
  const auto estimates = core::estimate_slot_qoe(
      session.packets, session.launch_begin, net::kNanosPerSecond,
      session.slots.size(), spec.config.fps);
  Score score;
  double loss_sum = 0.0;
  for (std::size_t s = 0; s < session.slots.size(); ++s) {
    const net::Timestamp mid =
        session.launch_begin + net::duration_from_seconds(s + 0.5);
    if (session.in_launch(mid) || mid >= session.end) continue;
    score.fps_mae +=
        std::abs(estimates[s].frame_rate - session.slots[s].frames);
    loss_sum += estimates[s].loss_rate;
    ++score.slots;
  }
  score.fps_mae /= static_cast<double>(score.slots);
  score.loss_bias =
      loss_sum / static_cast<double>(score.slots) - spec.network.loss_rate;
  return score;
}

}  // namespace

int main() {
  std::puts("== Validation: passive QoE estimation vs ground truth ==\n");
  std::printf("%-34s %12s %14s\n", "scenario", "fps MAE", "loss bias");

  struct Case {
    const char* name;
    int fps;
    sim::NetworkConditions network;
  };
  const Case kCases[] = {
      {"FHD@30, lab network", 30, sim::NetworkConditions::lab()},
      {"FHD@60, lab network", 60, sim::NetworkConditions::lab()},
      {"FHD@120, lab network", 120, sim::NetworkConditions::lab()},
      {"FHD@60, good subscriber path", 60, sim::NetworkConditions::good()},
      {"FHD@60, mildly degraded", 60, {45.0, 6.0, 0.01, 18.0}},
      {"FHD@60, congested", 60, sim::NetworkConditions::congested()},
  };
  for (const Case& test_case : kCases) {
    sim::SessionSpec spec;
    spec.title = sim::GameTitle::kFortnite;
    spec.gameplay_seconds = 90;
    spec.seed = 4242;
    spec.config.fps = test_case.fps;
    spec.network = test_case.network;
    const Score score = score_session(spec);
    std::printf("%-34s %9.2f fps %+13.4f\n", test_case.name, score.fps_mae,
                score.loss_bias);
  }

  std::puts("\nShape check: frame-rate estimates track ground truth within"
            " a few fps at every setting (markers delimit frames); loss"
            " estimates are nearly unbiased up to the congested case,"
            " where heavy jitter-induced reordering adds a small positive"
            " bias the RFC 3550 extended-sequence accounting bounds.");
  return 0;
}
