// Reproduces paper Fig. 1: the two gameplay activity patterns. A CS:GO
// (shooter) session follows a divided spectate-and-play pattern — repeated
// lobby / match / spectate slots — while a Cyberpunk 2077 (role-playing)
// session plays continuously with only occasional idle dialogue breaks.
// Printed as a per-10-second stage strip plus downstream throughput bars.
#include <cstdio>

#include "common/bench_support.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

void render_session(sim::GameTitle title, std::uint64_t seed) {
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = 1500.0;
  spec.seed = seed;
  const sim::LabeledSession session = generator.generate_slots_only(spec);

  std::printf("\n--- %s (%s) ---\n", sim::to_string(title),
              sim::to_string(sim::info(title).pattern));
  std::puts("  t(min) stage strip (L=launch A=active P=passive I=idle), "
            "10 s per character | mean Mbps");
  const std::size_t bucket = 10;  // seconds per character
  const std::size_t per_line = 30;
  for (std::size_t line = 0; line * per_line * bucket < session.slots.size();
       ++line) {
    std::string strip;
    double mbps = 0.0;
    std::size_t counted = 0;
    for (std::size_t b = 0; b < per_line; ++b) {
      const std::size_t begin = (line * per_line + b) * bucket;
      if (begin >= session.slots.size()) break;
      const net::Timestamp mid =
          session.launch_begin +
          net::duration_from_seconds(static_cast<double>(begin) + 5.0);
      char c = 0;
      if (session.in_launch(mid)) {
        c = 'L';
      } else {
        switch (session.stage_label_at(mid)) {
          case sim::Stage::kActive: c = 'A'; break;
          case sim::Stage::kPassive: c = 'P'; break;
          case sim::Stage::kIdle: c = 'I'; break;
        }
      }
      strip.push_back(c);
      for (std::size_t s = begin; s < std::min(begin + bucket,
                                               session.slots.size());
           ++s) {
        mbps += static_cast<double>(session.slots[s].down_bytes) * 8.0 / 1e6;
        ++counted;
      }
    }
    std::printf("  %5.1f  %-30s | %5.1f\n",
                static_cast<double>(line * per_line * bucket) / 60.0,
                strip.c_str(), counted == 0 ? 0.0 : mbps / counted);
  }

  const auto seconds = sim::stage_seconds(session.stages);
  const double total = seconds[0] + seconds[1] + seconds[2];
  std::printf("  stage mix: active %s passive %s idle %s\n",
              bench::pct(seconds[0] / total).c_str(),
              bench::pct(seconds[1] / total).c_str(),
              bench::pct(seconds[2] / total).c_str());
}

}  // namespace

int main() {
  std::puts("== Fig. 1: gameplay activity patterns ==");
  render_session(sim::GameTitle::kCsgo, 31);          // spectate-and-play
  render_session(sim::GameTitle::kCyberpunk2077, 32); // continuous-play
  std::puts("\nShape check (paper): the shooter alternates idle/active/"
            "passive slots repeatedly; the role-playing session is one long"
            " active run with occasional idle breaks and almost no passive.");
  return 0;
}
