// Reproduces paper Table 5: permutation importance of the nine
// stage-transition attributes in the best-performing Random Forest
// pattern classifier, printed as the 3x3 from/to matrix.
#include <cstdio>

#include "common/bench_support.hpp"
#include "core/training.hpp"
#include "ml/importance.hpp"
#include "ml/metrics.hpp"

using namespace cgctx;

int main() {
  std::puts("== Table 5: transition-attribute importance ==\n");
  const core::ModelSuite& suite = bench::bench_models();

  sim::LabPlanOptions plan;
  plan.seed = 50505;
  plan.scale = 1.0;
  plan.gameplay_seconds = 900.0;
  const auto specs = sim::lab_session_plan(plan);
  const ml::Dataset data = core::build_pattern_dataset(
      specs, suite.stage, {}, /*include_prefix_horizons=*/false);

  ml::Rng rng(55);
  const auto split = ml::stratified_split(data, 0.3, rng);
  core::PatternInferrer inferrer;
  inferrer.train(split.train);
  std::printf("pattern accuracy on held-out sessions: %.1f%%\n\n",
              100 * inferrer.forest().score(split.test));

  const auto result =
      ml::permutation_importance(inferrer.forest(), split.test, 10, rng);

  const char* kStages[] = {"Active", "Passive", "Idle"};
  std::printf("%10s", "From \\ To");
  for (const char* s : kStages) std::printf(" %9s", s);
  std::putchar('\n');
  for (std::size_t from = 0; from < 3; ++from) {
    std::printf("%10s", kStages[from]);
    for (std::size_t to = 0; to < 3; ++to)
      std::printf(" %9.3f",
                  std::max(0.0, result.mean_drop[from * 3 + to]));
    std::putchar('\n');
  }

  std::puts("\nShape check (paper Table 5): every cell carries some"
            " predictive power; transitions out of the active stage"
            " (especially active->idle) and passive->idle are the most"
            " important discriminators between the two patterns.");
  return 0;
}
