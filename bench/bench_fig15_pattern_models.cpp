// Reproduces paper Fig. 15 (Appendix C.2): hyperparameter tuning of RF,
// SVM and KNN for gameplay-activity-pattern classification from the nine
// stage-transition attributes.
#include <cstdio>

#include "common/bench_support.hpp"
#include "core/training.hpp"
#include "ml/grid_search.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "ml/scaler.hpp"
#include "ml/svm.hpp"

using namespace cgctx;

namespace {

void print_grid(const char* title, const std::vector<std::string>& row_names,
                const std::vector<std::string>& col_names,
                const ml::GridSearchResult& result) {
  std::printf("\n--- %s ---\n%12s", title, "");
  for (const auto& col : col_names) std::printf(" %9s", col.c_str());
  std::putchar('\n');
  std::size_t index = 0;
  for (const auto& row : row_names) {
    std::printf("%12s", row.c_str());
    for (std::size_t c = 0; c < col_names.size(); ++c, ++index) {
      const bool best = index == result.best_index;
      std::printf(" %7.1f%%%c", 100 * result.scores[index], best ? '*' : ' ');
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::puts("== Fig. 15: model tuning for pattern classification ==");
  std::puts("(cross-validated accuracy over 9 transition attributes;"
            " * marks the best)");

  // Transition-attribute dataset built with the production stage
  // classifier, exactly as the deployed inference consumes it.
  const core::ModelSuite& suite = bench::bench_models();
  sim::LabPlanOptions plan;
  plan.seed = 1515;
  plan.scale = 1.0;
  plan.gameplay_seconds = 900.0;
  const auto specs = sim::lab_session_plan(plan);
  const ml::Dataset raw = core::build_pattern_dataset(
      specs, suite.stage, {}, /*include_prefix_horizons=*/false);
  ml::StandardScaler scaler;
  scaler.fit(raw);
  const ml::Dataset data = scaler.transform(raw);
  std::printf("(%zu sessions)\n", data.size());

  ml::Rng rng(15);

  {
    const std::size_t trees[] = {50, 100, 200, 500};
    const std::size_t depths[] = {5, 10, 20, 30};
    std::vector<ml::GridCandidate> grid;
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    for (std::size_t d : depths) cols.push_back("d=" + std::to_string(d));
    for (std::size_t t : trees) {
      rows.push_back(std::to_string(t) + " trees");
      for (std::size_t d : depths)
        grid.push_back({"rf", [t, d] {
                          return std::make_unique<ml::RandomForest>(
                              ml::RandomForestParams{.n_trees = t,
                                                     .max_depth = d,
                                                     .seed = 15});
                        }});
    }
    print_grid("Random Forest (trees x max depth)", rows, cols,
               ml::grid_search(grid, data, 5, rng));
  }

  {
    const double cs[] = {0.1, 1.0, 10.0};
    const ml::KernelType kernels[] = {ml::KernelType::kLinear,
                                      ml::KernelType::kRbf,
                                      ml::KernelType::kPoly};
    std::vector<ml::GridCandidate> grid;
    std::vector<std::string> rows;
    std::vector<std::string> cols = {"linear", "rbf", "poly"};
    for (double c : cs) {
      char name[16];
      std::snprintf(name, sizeof name, "C=%g", c);
      rows.push_back(name);
      for (ml::KernelType k : kernels)
        grid.push_back({"svm", [c, k] {
                          ml::SvmParams params;
                          params.c = c;
                          params.kernel = k;
                          // Grid-sized SMO budget: accuracy plateaus well
                          // before the default sweep cap.
                          params.max_passes = 3;
                          params.max_iterations = 60;
                          return std::make_unique<ml::Svm>(params);
                        }});
    }
    print_grid("SVM (C x kernel)", rows, cols,
               ml::grid_search(grid, data, 5, rng));
  }

  {
    const std::size_t ks[] = {1, 3, 7, 15};
    const ml::DistanceMetric metrics[] = {ml::DistanceMetric::kEuclidean,
                                          ml::DistanceMetric::kManhattan,
                                          ml::DistanceMetric::kChebyshev};
    std::vector<ml::GridCandidate> grid;
    std::vector<std::string> rows;
    std::vector<std::string> cols = {"euclid", "manhat", "cheby"};
    for (std::size_t k : ks) {
      rows.push_back("k=" + std::to_string(k));
      for (ml::DistanceMetric m : metrics)
        grid.push_back({"knn", [k, m] {
                          return std::make_unique<ml::Knn>(
                              ml::KnnParams{.k = k, .metric = m});
                        }});
    }
    print_grid("KNN (k x distance metric)", rows, cols,
               ml::grid_search(grid, data, 5, rng));
  }

  std::puts("\nShape check (paper): RF best (96.5% there), but SVM (95.9%)"
            " and KNN (93.7%) are close behind — the 9-dimensional"
            " transition space is far easier than the 51-dimensional"
            " title space.");
  return 0;
}
