// Reproduces the paper's §4.4.2 confidence-threshold study for gameplay-
// activity-pattern inference: for thresholds from 0 to 95%, the accuracy
// of the first emitted inference and the average time until it is
// emitted. Low thresholds answer in seconds but are wrong half the time;
// very high thresholds may not answer until session end.
#include <cstdio>

#include "common/bench_support.hpp"
#include "core/training.hpp"

using namespace cgctx;

int main() {
  std::puts("== §4.4.2: pattern-inference confidence threshold ==\n");
  const core::ModelSuite& suite = bench::bench_models();

  // Evaluation sessions (30 min, both patterns).
  sim::LabPlanOptions plan;
  plan.seed = 20202;
  plan.scale = 0.25;
  plan.gameplay_seconds = 1800.0;
  const auto specs = sim::lab_session_plan(plan);

  // Per session, record the confidence trajectory once; evaluate every
  // threshold against it.
  struct Trajectory {
    std::vector<core::PatternResult> per_slot;
    ml::Label truth;
  };
  std::vector<Trajectory> trajectories;
  const sim::SessionGenerator generator;
  for (const sim::SessionSpec& spec : specs) {
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    Trajectory trajectory;
    trajectory.truth = sim::info(spec.title).pattern ==
                               sim::ActivityPattern::kContinuousPlay
                           ? core::kPatternContinuous
                           : core::kPatternSpectate;
    core::VolumetricTracker tracker;
    core::TransitionTracker transitions;
    for (const sim::SlotSample& sample : session.slots) {
      const ml::FeatureRow attrs = tracker.push(
          core::RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                   sample.up_bytes, sample.up_packets});
      transitions.push(suite.stage.classify(attrs));
      trajectory.per_slot.push_back(
          transitions.transition_count() > 0
              ? suite.pattern.infer_unchecked(transitions)
              : core::PatternResult{});
    }
    trajectories.push_back(std::move(trajectory));
  }

  const double kThresholds[] = {0.0, 0.2, 0.4, 0.55, 0.65, 0.75, 0.85, 0.95};
  std::printf("%10s %10s %14s %12s\n", "threshold", "accuracy",
              "time-to-result", "no-result");
  for (double threshold : kThresholds) {
    std::size_t decided = 0;
    std::size_t correct = 0;
    double total_time = 0.0;
    std::size_t undecided = 0;
    for (const Trajectory& trajectory : trajectories) {
      bool done = false;
      // Respect the pipeline's two-minute transition floor so thresholds
      // compare on decision *quality*, not launch noise.
      for (std::size_t s = 120; s < trajectory.per_slot.size(); ++s) {
        const core::PatternResult& r = trajectory.per_slot[s];
        if (r.label >= 0 && r.confidence >= threshold) {
          ++decided;
          if (r.label == trajectory.truth) ++correct;
          total_time += static_cast<double>(s + 1);
          done = true;
          break;
        }
      }
      if (!done) ++undecided;
    }
    std::printf("%9.0f%% %9.1f%% %12.0f s %11zu\n", 100 * threshold,
                decided > 0 ? 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(decided)
                            : 0.0,
                decided > 0 ? total_time / static_cast<double>(decided) : 0.0,
                undecided);
  }

  std::puts("\nShape check (paper): the accuracy/responsiveness trade-off"
            " is monotone — low thresholds decide within seconds of the"
            " floor with poor accuracy, high thresholds decide minutes in"
            " with the best accuracy, and 95% sometimes never answers."
            " (Our vote-share confidences are less calibrated than the"
            " paper's, so the deployed pipeline keeps refining after the"
            " first confident verdict; see EXPERIMENTS.md.)");
  return 0;
}
