// Reproduces paper Fig. 12: per-session average downstream throughput
// distributions, (a) per classified game title (with the per-resolution
// demand clusters) and (b) per gameplay activity pattern.
#include <cstdio>

#include "common/bench_support.hpp"
#include "sim/session.hpp"

using namespace cgctx;

int main() {
  std::puts("== Fig. 12: bandwidth demand per game context ==\n");

  bench::FleetRunOptions options;
  options.sessions = 700;
  options.seed = 1212;
  const bench::FleetMeasurement fleet = bench::run_fleet(options);

  std::puts("(a) per classified (validated) title — session-mean Mbps:");
  std::printf("%-26s %4s %7s %7s %7s %7s\n", "title", "n", "p5", "median",
              "p95", "max");
  for (const auto& [key, group] : fleet.by_title.groups()) {
    std::printf("%-26s %4zu %7.1f %7.1f %7.1f %7.1f  %s\n", key.c_str(),
                group.sessions, group.mean_down_mbps.percentile(0.05),
                group.mean_down_mbps.percentile(0.5),
                group.mean_down_mbps.percentile(0.95),
                group.mean_down_mbps.max(),
                bench::bar(group.mean_down_mbps.percentile(0.5), 30.0, 24)
                    .c_str());
  }

  std::puts("\n(b) per inferred pattern (unknown titles):");
  for (const auto& [key, group] : fleet.by_pattern.groups()) {
    std::printf("%-26s %4zu  median %5.1f Mbps  p95 %5.1f  max %5.1f\n",
                key.c_str(), group.sessions,
                group.mean_down_mbps.percentile(0.5),
                group.mean_down_mbps.percentile(0.95),
                group.mean_down_mbps.max());
  }

  // The per-title demand clusters: active-stage throughput of one title
  // across the discrete resolution settings (paper: Destiny 2 shows 3
  // clusters mapped to resolution groups).
  std::puts("\nDestiny 2 demand clusters by resolution setting"
            " (active-stage throughput, lab network):");
  const sim::GameInfo& destiny = sim::info(sim::GameTitle::kDestiny2);
  for (const sim::Resolution res :
       {sim::Resolution::kSd, sim::Resolution::kHd, sim::Resolution::kFhd,
        sim::Resolution::kQhd, sim::Resolution::kUhd}) {
    sim::ClientConfig lo;
    lo.resolution = res;
    lo.fps = 30;
    sim::ClientConfig hi = lo;
    hi.fps = 120;
    std::printf("  %-4s: %4.1f - %4.1f Mbps\n", to_string(res),
                sim::demand_mbps(destiny, lo), sim::demand_mbps(destiny, hi));
  }

  std::puts("\nShape check (paper): Hearthstone is the low-demand outlier"
            " (~20 Mbps max); Fortnite/Baldur's Gate reach ~68 Mbps;"
            " each title shows discrete demand clusters tracking the"
            " resolution settings; the two patterns have similar 10-25"
            " Mbps bodies with spectate-and-play slightly higher.");
  return 0;
}
