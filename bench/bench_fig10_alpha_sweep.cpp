// Reproduces paper Fig. 10: player-activity-stage classification accuracy
// as a function of the EMA current-slot weight alpha (0.1-1.0) and the
// classification slot size I (0.1 / 0.5 / 1 / 2 s). Sessions are rendered
// at packet fidelity once; the raw slot series for each I is cached and
// re-processed per alpha.
#include <cstdio>
#include <map>

#include "core/training.hpp"
#include "ml/metrics.hpp"

using namespace cgctx;

namespace {

const double kSlotSizes[] = {0.1, 0.5, 1.0, 2.0};
const double kAlphas[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

/// Raw per-slot volumetrics plus ground-truth labels for one session at
/// one slot size.
struct RawSeries {
  std::vector<core::RawSlotVolumetrics> slots;
  std::vector<ml::Label> labels;  ///< -1 = launch (prime tracker, no row)
};

ml::Label label_of(const sim::LabeledSession& session, net::Timestamp mid) {
  if (session.in_launch(mid) || mid >= session.end) return -1;
  return static_cast<ml::Label>(session.stage_label_at(mid));
}

}  // namespace

int main() {
  std::puts("== Fig. 10: stage accuracy vs EMA weight alpha and slot I ==\n");

  sim::LabPlanOptions plan;
  plan.seed = 1010;
  plan.scale = 0.12;
  plan.gameplay_seconds = 130.0;
  const auto specs = sim::lab_session_plan(plan);

  // Phase 1: render once, cache raw slot series per slot size.
  std::map<double, std::vector<RawSeries>> series;
  core::for_each_rendered_session(specs, [&](const sim::LabeledSession& s) {
    for (double slot_s : kSlotSizes) {
      const auto slot_duration = net::duration_from_seconds(slot_s);
      const auto slot_count = static_cast<std::size_t>(
          (s.end - s.launch_begin) / slot_duration);
      RawSeries raw;
      raw.slots = core::aggregate_slots(s.packets, s.launch_begin,
                                        slot_duration, slot_count);
      raw.labels.reserve(slot_count);
      for (std::size_t i = 0; i < slot_count; ++i) {
        const net::Timestamp mid = s.launch_begin +
                                   static_cast<net::Timestamp>(i) *
                                       slot_duration +
                                   slot_duration / 2;
        raw.labels.push_back(label_of(s, mid));
      }
      series[slot_s].push_back(std::move(raw));
    }
  });

  // Phase 2: per (I, alpha), run trackers, train, evaluate.
  std::printf("%9s", "alpha \\ I");
  for (double slot_s : kSlotSizes) std::printf(" %7.1fs", slot_s);
  std::putchar('\n');
  for (double alpha : kAlphas) {
    std::printf("%9.1f", alpha);
    for (double slot_s : kSlotSizes) {
      core::VolumetricTrackerParams tracker_params;
      tracker_params.slot_seconds = slot_s;
      tracker_params.alpha = alpha;
      ml::Dataset data(core::volumetric_attribute_names(),
                       core::stage_class_names());
      // Sub-second slots generate 10x the rows; train on a stride so the
      // sweep stays fast (the tracker still processes every slot).
      const std::size_t stride = slot_s < 0.3 ? 5 : slot_s < 0.8 ? 2 : 1;
      for (const RawSeries& raw : series[slot_s]) {
        core::VolumetricTracker tracker(tracker_params);
        for (std::size_t i = 0; i < raw.slots.size(); ++i) {
          const ml::FeatureRow attrs = tracker.push(raw.slots[i]);
          if (raw.labels[i] >= 0 && i % stride == 0)
            data.add(attrs, raw.labels[i]);
        }
      }
      ml::Rng rng(3);
      const auto split = ml::stratified_split(data, 0.3, rng);
      core::StageClassifierParams classifier_params;
      classifier_params.forest.n_trees = 60;  // sweep-sized forest
      core::StageClassifier classifier(classifier_params);
      classifier.train(split.train);
      std::printf("  %6.1f%%", 100 * classifier.forest().score(split.test));
    }
    std::putchar('\n');
  }

  std::puts("\nShape check (paper): the 1 s slot performs best (0.1 s is"
            " too granular, 2 s mixes stages); accuracy peaks for alpha"
            " around 0.5-0.6 and degrades toward both extremes.");
  return 0;
}
