// Sharded vantage-point probe throughput (PERF-PROBE).
//
// Replays one synthesized multi-subscriber wire (sim/fleet packet-
// fidelity replay: concurrent gaming sessions + household cross traffic)
// through the probe engine at 1/2/4/8 shards and reports packets/sec,
// drops, queue high-water marks, state bounds, and per-packet latency
// percentiles. Also verifies that the single-shard engine reproduces
// MultiSessionProbe's reports byte-identically — sharding is a pure
// scale-out transform, not a behavior change.
//
// Scaling expectation: >= 2x packets/sec at 4 shards vs 1 shard on a
// host with >= 4 hardware threads. On smaller hosts the engine still
// runs correctly but time-slices, so the bench prints the detected
// concurrency and flags under-provisioned runs instead of pretending.
#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "common/bench_support.hpp"
#include "core/multi_session_probe.hpp"
#include "core/sharded_probe.hpp"
#include "sim/fleet.hpp"

using namespace cgctx;

namespace {

struct RunResult {
  double seconds = 0.0;
  double packets_per_sec = 0.0;
  std::vector<core::SessionReport> reports;
  core::ProbeStatsSnapshot stats;
};

RunResult run_sharded(const std::vector<net::PacketRecord>& wire,
                      core::PipelineModels models, std::size_t shards) {
  core::ShardedProbeParams params;
  params.probe.pipeline = core::default_pipeline_params();
  params.num_shards = shards;
  RunResult result;
  core::ShardedProbe probe(models, params,
                           [&result](const core::SessionReport& report) {
                             result.reports.push_back(report);
                           });
  const auto begin = std::chrono::steady_clock::now();
  for (const net::PacketRecord& pkt : wire) probe.push(pkt);
  probe.flush();
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - begin).count();
  result.packets_per_sec =
      static_cast<double>(wire.size()) / result.seconds;
  result.stats = probe.stats();
  return result;
}

RunResult run_baseline(const std::vector<net::PacketRecord>& wire,
                       core::PipelineModels models) {
  RunResult result;
  core::MultiSessionProbe probe(
      models, core::MultiSessionProbeParams{core::default_pipeline_params()},
      [&result](const core::SessionReport& report) {
        result.reports.push_back(report);
      });
  const auto begin = std::chrono::steady_clock::now();
  for (const net::PacketRecord& pkt : wire) probe.push(pkt);
  probe.flush();
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - begin).count();
  result.packets_per_sec =
      static_cast<double>(wire.size()) / result.seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: a minimal-workload run for CI — fewer sessions, shorter
  // wire, shard counts {1, 2}. The single-shard parity check still runs,
  // so the job fails on behavior regressions, not just crashes.
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::cout << "== PERF-PROBE: sharded multi-subscriber probe throughput ==\n";
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << "\n";
  if (smoke) std::cout << "mode: smoke (minimal workload; numbers are noise)\n";
  if (hw < 4)
    std::cout << "NOTE: < 4 hardware threads; shard workers time-slice one "
                 "core,\nso multi-shard speedups cannot materialize on this "
                 "host.\n";

  sim::FleetReplayOptions options;
  options.sessions = smoke ? 3 : 8;
  options.gameplay_seconds = smoke ? 20.0 : 40.0;
  options.start_spread_s = smoke ? 10.0 : 20.0;
  options.cross_traffic_flows = smoke ? 4 : 9;
  const sim::FleetReplay replay = sim::build_fleet_replay(options);
  std::cout << "wire: " << replay.wire.size() << " packets, "
            << replay.session_flows.size() << " gaming sessions, "
            << options.cross_traffic_flows << " cross-traffic flows\n\n";

  const core::PipelineModels models = bench::bench_models().models();

  const RunResult baseline = run_baseline(replay.wire, models);
  std::cout << "MultiSessionProbe (inline, no shards): " << std::fixed
            << std::setprecision(0) << baseline.packets_per_sec
            << " pkts/s, " << baseline.reports.size() << " reports\n\n";

  std::cout << std::setw(7) << "shards" << std::setw(12) << "pkts/s"
            << std::setw(10) << "speedup" << std::setw(9) << "drops"
            << std::setw(8) << "q_hwm" << std::setw(10) << "evicted"
            << std::setw(9) << "reports" << std::setw(10) << "p50_us"
            << std::setw(10) << "p99_us" << "\n";
  double one_shard_pps = 0.0;
  bool parity_ok = true;
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t shards : shard_counts) {
    const RunResult run = run_sharded(replay.wire, models, shards);
    if (shards == 1) one_shard_pps = run.packets_per_sec;
    const auto latency = run.stats.latency();
    std::cout << std::setw(7) << shards << std::setw(12)
              << std::setprecision(0) << run.packets_per_sec << std::setw(9)
              << std::setprecision(2)
              << run.packets_per_sec / one_shard_pps << "x" << std::setw(9)
              << run.stats.packets_dropped << std::setw(8)
              << run.stats.queue_depth_hwm << std::setw(10)
              << run.stats.flow_evictions << std::setw(9)
              << run.reports.size() << std::setw(10) << std::setprecision(1)
              << latency.p50_us << std::setw(10) << latency.p99_us << "\n";

    if (shards == 1) {
      parity_ok = run.reports == baseline.reports;
      std::cout << "        single-shard reports identical to "
                   "MultiSessionProbe: "
                << (parity_ok ? "yes" : "NO — REGRESSION") << "\n";
    }
  }
  return parity_ok ? 0 : 1;
}
