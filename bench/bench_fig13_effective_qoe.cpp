// Reproduces paper Fig. 13: fraction of sessions at good / medium / bad
// user experience under the objective QoE mapping vs the context-
// calibrated effective QoE mapping, (a) per classified title and (b) per
// gameplay activity pattern. The headline: context calibration recovers
// the sessions that were only "bad" because their title or activity stage
// legitimately needs less bandwidth and frame rate — while genuinely
// network-degraded sessions stay bad.
#include <cstdio>

#include "common/bench_support.hpp"

using namespace cgctx;

namespace {

void print_row(const std::string& key, const telemetry::GroupStats& group) {
  std::printf("%-26s %4zu |", key.c_str(), group.sessions);
  for (const auto level :
       {core::QoeLevel::kBad, core::QoeLevel::kMedium, core::QoeLevel::kGood})
    std::printf(" %s", bench::pct(group.objective_fraction(level)).c_str());
  std::printf(" |");
  for (const auto level :
       {core::QoeLevel::kBad, core::QoeLevel::kMedium, core::QoeLevel::kGood})
    std::printf(" %s", bench::pct(group.effective_fraction(level)).c_str());
  std::putchar('\n');
}

}  // namespace

int main() {
  std::puts("== Fig. 13: objective vs effective QoE ==\n");

  bench::FleetRunOptions options;
  options.sessions = 700;
  options.seed = 1313;
  const bench::FleetMeasurement fleet = bench::run_fleet(options);

  std::puts("                                |  objective QoE      |"
            "  effective QoE");
  std::printf("%-26s %4s | %6s %6s %6s | %6s %6s %6s\n", "title", "n", "bad",
              "med", "good", "bad", "med", "good");
  for (const auto& [key, group] : fleet.by_title.groups())
    print_row(key, group);
  std::puts("");
  for (const auto& [key, group] : fleet.by_pattern.groups())
    print_row(key, group);

  // Aggregate correction statistics.
  std::size_t obj_not_good = 0;
  std::size_t eff_not_good = 0;
  std::size_t eff_bad = 0;
  std::size_t obj_bad = 0;
  std::size_t sessions = 0;
  auto tally = [&](const telemetry::FleetAggregator& agg) {
    for (const auto& [key, group] : agg.groups()) {
      sessions += group.sessions;
      obj_bad += group.objective_counts[0];
      eff_bad += group.effective_counts[0];
      obj_not_good += group.objective_counts[0] + group.objective_counts[1];
      eff_not_good += group.effective_counts[0] + group.effective_counts[1];
    }
  };
  tally(fleet.by_title);
  tally(fleet.by_pattern);
  std::printf("\nacross %zu sessions: objectively degraded %s -> effectively"
              " degraded %s (bad: %s -> %s)\n",
              sessions,
              bench::pct(static_cast<double>(obj_not_good) / sessions).c_str(),
              bench::pct(static_cast<double>(eff_not_good) / sessions).c_str(),
              bench::pct(static_cast<double>(obj_bad) / sessions).c_str(),
              bench::pct(static_cast<double>(eff_bad) / sessions).c_str());

  std::puts("\nShape check (paper): every title gains good-QoE sessions"
            " after calibration; the low-demand card game (Hearthstone)"
            " flips from all-medium/bad to mostly good; role-playing"
            " titles with large idle fractions gain strongly; the residual"
            " bad sessions are the genuinely congested tail the operator"
            " should actually troubleshoot.");
  return 0;
}
