// Reproduces paper Table 1: the thirteen popular cloud game titles with
// genre, gameplay activity pattern, and playtime popularity — and
// verifies the fleet sampler actually realizes that playtime mix.
#include <cstdio>
#include <map>

#include "sim/fleet.hpp"

using namespace cgctx;

int main() {
  std::puts("== Table 1: popular cloud game titles ==\n");
  std::printf("%-20s %-13s %-18s %10s %12s\n", "Game title", "Genre",
              "Activity pattern", "Popularity", "Sampled");

  // Empirical popularity from the fleet sampler, weighted by duration
  // (Table 1 popularity is fraction of total playtime).
  sim::FleetOptions options;
  options.seed = 11;
  sim::FleetSampler sampler(options);
  std::map<sim::GameTitle, double> playtime;
  double total = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const auto spec = sampler.sample();
    playtime[spec.title] += spec.gameplay_seconds;
    total += spec.gameplay_seconds;
  }

  for (const sim::GameInfo& game : sim::popular_titles()) {
    std::printf("%-20s %-13s %-18s %9.2f%% %11.2f%%\n", game.name,
                to_string(game.genre), to_string(game.pattern),
                100 * game.popularity, 100 * playtime[game.title] / total);
  }
  const double tail = playtime[sim::GameTitle::kOtherContinuous] +
                      playtime[sim::GameTitle::kOtherSpectate];
  std::printf("%-20s %-13s %-18s %10s %11.2f%%\n", "(long tail)", "-", "-", "-",
              100 * tail / total);
  std::puts("\nShape check (paper): top 13 titles cover ~69% of playtime;"
            " Fortnite ~37.8%, Genshin ~20.1%.");
  return 0;
}
