// Reproduces paper Table 4: player-activity-stage classification accuracy
// (per stage, by time slot) and gameplay-activity-pattern inference
// accuracy (by session), reported separately for continuous-play and
// spectate-and-play games.
#include <cstdio>

#include "common/bench_support.hpp"
#include "core/training.hpp"
#include "ml/metrics.hpp"

using namespace cgctx;

int main() {
  std::puts("== Table 4: stage & pattern accuracy by gameplay type ==\n");
  const core::ModelSuite& suite = bench::bench_models();

  // Evaluation sessions, held out from training by seed.
  sim::LabPlanOptions plan;
  plan.seed = 40404;
  plan.scale = 0.5;
  plan.gameplay_seconds = 1500.0;
  const auto specs = sim::lab_session_plan(plan);

  // Per-pattern stage confusion and pattern tallies.
  ml::ConfusionMatrix stage_cm[2] = {ml::ConfusionMatrix(3),
                                     ml::ConfusionMatrix(3)};
  std::size_t pattern_total[2] = {};
  std::size_t pattern_correct[2] = {};

  const sim::SessionGenerator generator;
  for (const sim::SessionSpec& spec : specs) {
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    const auto pattern = sim::info(spec.title).pattern;
    const std::size_t p =
        pattern == sim::ActivityPattern::kContinuousPlay ? 0 : 1;

    core::VolumetricTracker tracker;
    core::TransitionTracker transitions;
    for (std::size_t s = 0; s < session.slots.size(); ++s) {
      const auto& sample = session.slots[s];
      const ml::FeatureRow attrs = tracker.push(
          core::RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                   sample.up_bytes, sample.up_packets});
      const ml::Label predicted = suite.stage.classify(attrs);
      transitions.push(predicted);
      const net::Timestamp mid =
          session.launch_begin + net::duration_from_seconds(s + 0.5);
      if (!session.in_launch(mid) && mid < session.end)
        stage_cm[p].add(static_cast<ml::Label>(session.stage_label_at(mid)),
                        predicted);
    }
    const auto inferred = suite.pattern.infer_unchecked(transitions);
    ++pattern_total[p];
    if ((inferred.label == core::kPatternContinuous) == (p == 0))
      ++pattern_correct[p];
  }

  const char* kPatterns[] = {"Continuous-play", "Spectate-and-play"};
  const char* kStages[] = {"Active", "Passive", "Idle"};
  std::printf("%-20s %8s   %-14s %8s\n", "Gameplay pattern", "Accur.",
              "Player stage", "Accur.");
  for (std::size_t p = 0; p < 2; ++p) {
    const double pattern_acc =
        static_cast<double>(pattern_correct[p]) /
        static_cast<double>(pattern_total[p]);
    for (std::size_t s = 0; s < 3; ++s) {
      std::printf("%-20s %8s   %-14s %7.1f%%\n",
                  s == 0 ? kPatterns[p] : "",
                  s == 0 ? bench::pct(pattern_acc).c_str() : "", kStages[s],
                  100 * stage_cm[p].per_class_accuracy(
                            static_cast<ml::Label>(s)));
    }
  }

  std::puts("\nShape check (paper): stage accuracy 92-98% per label for"
            " both gameplay types (idle easiest, passive hardest);"
            " pattern inference ~96-97% per type.");
  return 0;
}
