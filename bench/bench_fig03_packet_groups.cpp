// Reproduces paper Fig. 3: downstream packet groups (full / steady /
// sparse) during the first 60 seconds of four representative sessions —
// Genshin Impact under three different client configurations (the profile
// must stay nearly identical) and Fortnite (the profile must differ).
// Quantified with a cross-session profile-distance metric.
#include <cmath>
#include <cstdio>

#include "core/packet_groups.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

struct SlotCensus {
  std::array<double, core::kNumPacketGroups> counts{};
  double steady_center = 0.0;
};

std::vector<SlotCensus> census_of(const sim::LabeledSession& session,
                                  std::size_t slots) {
  const auto labeled = core::label_window(session.packets, session.launch_begin,
                                          net::kNanosPerSecond, slots);
  std::vector<SlotCensus> out(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    double steady_sum = 0.0;
    for (const core::LabeledPacket& pkt : labeled[s]) {
      out[s].counts[static_cast<std::size_t>(pkt.group)] += 1.0;
      if (pkt.group == core::PacketGroup::kSteady)
        steady_sum += pkt.payload_size;
    }
    const double n_steady = out[s].counts[1];
    out[s].steady_center = n_steady > 0 ? steady_sum / n_steady : 0.0;
  }
  return out;
}

/// Mean per-slot relative difference between two group-census profiles.
double profile_distance(const std::vector<SlotCensus>& a,
                        const std::vector<SlotCensus>& b) {
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t s = 0; s < std::min(a.size(), b.size()); ++s) {
    for (std::size_t g = 0; g < core::kNumPacketGroups; ++g) {
      const double denom = std::max(1.0, a[s].counts[g] + b[s].counts[g]);
      total += std::abs(a[s].counts[g] - b[s].counts[g]) / denom;
      ++n;
    }
  }
  return total / static_cast<double>(n);
}

void print_profile(const char* label, const std::vector<SlotCensus>& census) {
  std::printf("\n%s\n", label);
  std::puts("  slot:   0    5   10   15   20   25   30   35   40   45");
  const char* kGroupNames[] = {"full ", "stead", "spars"};
  for (std::size_t g = 0; g < core::kNumPacketGroups; ++g) {
    std::printf("  %s", kGroupNames[g]);
    for (std::size_t s = 0; s < std::min<std::size_t>(50, census.size());
         s += 5) {
      std::printf(" %4.0f", census[s].counts[g]);
    }
    std::putchar('\n');
  }
}

sim::LabeledSession make(sim::GameTitle title, sim::Resolution res, int fps,
                         sim::DeviceClass device, std::uint64_t seed) {
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = 10.0;
  spec.seed = seed;
  spec.config.resolution = res;
  spec.config.fps = fps;
  spec.config.device = device;
  return generator.generate(spec);
}

}  // namespace

int main() {
  std::puts("== Fig. 3: launch-stage packet groups across sessions ==");
  const std::size_t slots = 50;

  const auto genshin_a = census_of(
      make(sim::GameTitle::kGenshinImpact, sim::Resolution::kFhd, 60,
           sim::DeviceClass::kPc, 1),
      slots);
  const auto genshin_b = census_of(
      make(sim::GameTitle::kGenshinImpact, sim::Resolution::kUhd, 120,
           sim::DeviceClass::kPc, 2),
      slots);
  const auto genshin_c = census_of(
      make(sim::GameTitle::kGenshinImpact, sim::Resolution::kHd, 30,
           sim::DeviceClass::kMobile, 3),
      slots);
  const auto fortnite = census_of(
      make(sim::GameTitle::kFortnite, sim::Resolution::kFhd, 60,
           sim::DeviceClass::kPc, 4),
      slots);

  print_profile("(a) Genshin Impact, PC FHD@60 — packets/slot by group:",
                genshin_a);
  print_profile("(b) Genshin Impact, PC UHD@120:", genshin_b);
  print_profile("(c) Genshin Impact, Mobile HD@30:", genshin_c);
  print_profile("(d) Fortnite, PC FHD@60:", fortnite);

  std::puts("\nProfile distances (0 = identical):");
  std::printf("  Genshin(a) vs Genshin(b) [same title, diff settings]: %.3f\n",
              profile_distance(genshin_a, genshin_b));
  std::printf("  Genshin(a) vs Genshin(c) [same title, diff device]  : %.3f\n",
              profile_distance(genshin_a, genshin_c));
  std::printf("  Genshin(a) vs Fortnite(d) [different title]         : %.3f\n",
              profile_distance(genshin_a, fortnite));
  std::puts("\nShape check (paper): same-title distances are small and the"
            " cross-title distance is clearly larger — the packet-group"
            " schedule is a per-title fingerprint invariant to settings.");
  return 0;
}
