// Reproduces the paper's §5 pre-deployment validation: classified game
// titles checked against the cloud server logs (here: simulator ground
// truth) over a deployment-scale session mix — overall accuracy among
// confident verdicts, per-title accuracy, coverage, and how often
// long-tail titles correctly fall through to "unknown".
#include <cstdio>
#include <map>

#include "common/bench_support.hpp"
#include "sim/fleet.hpp"

using namespace cgctx;

int main() {
  std::puts("== §5 validation: field title-classification accuracy ==\n");
  const core::ModelSuite& suite = bench::bench_models();

  sim::FleetOptions options;
  options.seed = 555;
  options.duration_scale = 0.05;  // only the launch window matters here
  sim::FleetSampler sampler(options);
  const sim::SessionGenerator generator;

  struct TitleTally {
    std::size_t sessions = 0;
    std::size_t confident = 0;
    std::size_t correct = 0;
  };
  std::map<std::string, TitleTally> per_title;
  std::size_t tail_sessions = 0;
  std::size_t tail_unknown = 0;

  const int n = 1200;
  for (int i = 0; i < n; ++i) {
    const sim::SessionSpec spec = sampler.sample();
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    const auto result =
        suite.title.classify(session.packets, session.launch_begin);
    const bool in_catalog =
        static_cast<std::size_t>(spec.title) < sim::kNumPopularTitles;
    if (!in_catalog) {
      ++tail_sessions;
      if (!result.label) ++tail_unknown;
      continue;
    }
    TitleTally& tally = per_title[sim::info(spec.title).name];
    ++tally.sessions;
    if (result.label) {
      ++tally.confident;
      if (result.class_name == sim::info(spec.title).name) ++tally.correct;
    }
  }

  std::printf("%-20s %9s %10s %10s %10s\n", "Game title", "sessions",
              "confident", "correct", "accuracy");
  std::size_t total_sessions = 0;
  std::size_t total_confident = 0;
  std::size_t total_correct = 0;
  for (const auto& [name, tally] : per_title) {
    total_sessions += tally.sessions;
    total_confident += tally.confident;
    total_correct += tally.correct;
    std::printf("%-20s %9zu %10zu %10zu %9.1f%%\n", name.c_str(),
                tally.sessions, tally.confident, tally.correct,
                tally.confident > 0
                    ? 100.0 * static_cast<double>(tally.correct) /
                          static_cast<double>(tally.confident)
                    : 0.0);
  }
  std::printf("\ncatalog sessions: %zu | confident verdicts: %zu (%.1f%%"
              " coverage) | accuracy among confident: %.1f%%\n",
              total_sessions, total_confident,
              100.0 * static_cast<double>(total_confident) /
                  static_cast<double>(total_sessions),
              total_confident > 0
                  ? 100.0 * static_cast<double>(total_correct) /
                        static_cast<double>(total_confident)
                  : 0.0);
  std::printf("long-tail sessions: %zu | correctly left 'unknown': %.1f%%\n",
              tail_sessions,
              tail_sessions > 0
                  ? 100.0 * static_cast<double>(tail_unknown) /
                        static_cast<double>(tail_sessions)
                  : 0.0);
  std::puts("\nShape check (paper): overall accuracy above ~95% among the"
            " popular titles, consistent with the lab evaluation; unknown"
            " titles fall back to pattern inference.");
  return 0;
}
