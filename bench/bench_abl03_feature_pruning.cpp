// Ablation (paper §4.4.1, citing the CATO line of work): attributes with
// zero permutation importance "can be excluded in the classification
// pipeline to optimize the processing cost". This bench prunes the
// 51-attribute title classifier down to its top-k attributes and reports
// accuracy and single-row inference cost at each size.
#include <chrono>
#include <cstdio>

#include "core/training.hpp"
#include "ml/feature_selection.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

int main() {
  std::puts("== Ablation: attribute pruning for the title classifier ==\n");

  sim::LabPlanOptions plan;
  plan.seed = 232323;
  plan.scale = 0.5;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);
  core::TitleDatasetOptions options;
  options.augment_copies = 1;
  const ml::Dataset data = core::build_title_dataset(specs, options);

  ml::Rng rng(23);
  const auto split = ml::stratified_split(data, 0.3, rng);
  ml::RandomForest full(
      ml::RandomForestParams{.n_trees = 300, .max_depth = 10, .seed = 1});
  full.fit(split.train);
  const auto importance =
      ml::permutation_importance(full, split.test, 5, rng);

  std::printf("%10s %10s %16s\n", "attrs", "accuracy", "inference (us)");
  for (const std::size_t k : {51u, 43u, 32u, 24u, 16u, 8u, 4u}) {
    const auto selection = ml::FeatureSelection::top_k(importance, k);
    const ml::Dataset train = selection.project(split.train);
    const ml::Dataset test = selection.project(split.test);
    ml::RandomForest forest(
        ml::RandomForestParams{.n_trees = 300, .max_depth = 10, .seed = 2});
    forest.fit(train);

    // Crude single-row inference timing.
    const auto& probe = test.row(0);
    const auto start = std::chrono::steady_clock::now();
    constexpr int kReps = 2000;
    ml::Label sink = 0;
    for (int r = 0; r < kReps; ++r) sink ^= forest.predict(probe);
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kReps;
    std::printf("%10zu %9.1f%% %15.1f %s\n", selection.output_width(),
                100 * forest.score(test), us, sink == 99 ? "!" : "");
  }

  std::puts("\nShape check: accuracy is flat down to a few dozen retained"
            " attributes (the paper's 43-of-51 observation), then drops as"
            " genuinely informative statistics are discarded; shallower"
            " attribute vectors also cut feature-extraction cost in a"
            " deployed pipeline.");
  return 0;
}
