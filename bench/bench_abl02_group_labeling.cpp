// Ablation (DESIGN.md §5): the paper's majority-voting packet-group
// labeler considers several adjacent packets. This bench compares the
// title-classification accuracy with the full voting window against a
// degenerate nearest-neighbor-only labeler (window = 1), and against
// coarser/finer windows.
#include <cstdio>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

int main() {
  std::puts("== Ablation: packet-group majority-voting window ==\n");

  sim::LabPlanOptions plan;
  plan.seed = 222222;
  plan.scale = 0.4;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);

  std::printf("%18s %10s\n", "neighbor window", "accuracy");
  for (const std::size_t window : {1u, 2u, 3u, 5u, 8u}) {
    core::TitleDatasetOptions options;
    options.attributes.group_params.neighbor_window = window;
    options.augment_copies = 1;
    const ml::Dataset data = core::build_title_dataset(specs, options);
    ml::Rng rng(22);
    const auto split = ml::stratified_split(data, 0.3, rng);
    ml::RandomForest forest(
        ml::RandomForestParams{.n_trees = 200, .max_depth = 10, .seed = 4});
    forest.fit(split.train);
    std::printf("%14zu pkt %9.1f%%\n", static_cast<std::size_t>(window),
                100 * forest.score(split.test));
  }

  std::puts("\nShape check: a single-neighbor vote is noisy (interleaved"
            " sparse packets shatter steady bands); widening the vote"
            " stabilizes the group census the attributes are built on,"
            " with accuracy saturating around a window of 5-8 packets.");
  return 0;
}
