#include "bench_support.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cgctx::bench {

namespace {

/// Bump when the simulator or feature pipeline changes in a way that
/// invalidates previously trained models.
constexpr const char* kCacheEpoch = "cgctx-bench-v7";

const std::filesystem::path kCacheDir = "cgctx_bench_model_cache";

/// CGCTX_BENCH_SMOKE=1 trades model quality for training time (CI runs
/// the benches as a smoke test, not for numbers). Smoke models live in
/// their own cache subdirectory and carry their budget in the version
/// string, so the two modes can never load each other's models.
bool smoke_mode() {
  const char* env = std::getenv("CGCTX_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

core::TrainingBudget bench_budget() {
  core::TrainingBudget budget;
  if (smoke_mode()) {
    budget.lab_scale = 0.12;
    budget.gameplay_seconds = 150.0;
    budget.augment_copies = 1;
  } else {
    budget.lab_scale = 1.0;
    budget.gameplay_seconds = 180.0;
    budget.augment_copies = 2;
  }
  return budget;
}

std::filesystem::path cache_dir() {
  return smoke_mode() ? kCacheDir / "smoke" : kCacheDir;
}

std::string forest_signature(const ml::RandomForestParams& p) {
  std::ostringstream os;
  os << p.n_trees << 'x' << p.max_depth << 'x' << p.min_samples_split << 'x'
     << p.min_samples_leaf << 'x' << p.max_features << 'x'
     << (p.bootstrap ? 1 : 0) << 'x' << p.seed;
  return os.str();
}

/// Cache version string: epoch plus every forest hyperparameter of the
/// three default classifiers, so a params change invalidates stale cached
/// models instead of silently loading them.
std::string cache_version() {
  const core::TrainingBudget budget = bench_budget();
  std::ostringstream os;
  os << kCacheEpoch
     << "|budget=" << budget.lab_scale << 'x' << budget.gameplay_seconds << 'x'
     << budget.augment_copies
     << "|title=" << forest_signature(core::TitleClassifierParams{}.forest)
     << "|stage=" << forest_signature(core::StageClassifierParams{}.forest)
     << "|pattern=" << forest_signature(core::PatternInferrerParams{}.forest);
  return os.str();
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return in ? os.str() : std::string{};
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

core::ModelSuite train_and_cache() {
  std::fprintf(stderr, "[bench] training %s models (cached in %s)...\n",
               smoke_mode() ? "smoke-scale" : "production-scale",
               cache_dir().string().c_str());
  const auto start = std::chrono::steady_clock::now();
  const core::TrainingBudget budget = bench_budget();
  double title_acc = 0.0;
  double stage_acc = 0.0;
  double pattern_acc = 0.0;
  core::ModelSuite suite =
      core::train_model_suite(budget, &title_acc, &stage_acc, &pattern_acc);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::fprintf(stderr,
               "[bench] trained in %llds (held-out: title %.1f%%, stage "
               "%.1f%%, pattern %.1f%%)\n",
               static_cast<long long>(elapsed), 100 * title_acc,
               100 * stage_acc, 100 * pattern_acc);

  std::error_code ec;
  const std::filesystem::path dir = cache_dir();
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    const bool ok = write_file(dir / "version", cache_version()) &&
                    write_file(dir / "title.model",
                               suite.title.serialize()) &&
                    write_file(dir / "stage.model",
                               suite.stage.serialize()) &&
                    write_file(dir / "pattern.model",
                               suite.pattern.serialize());
    if (!ok)
      std::fprintf(stderr, "[bench] warning: model cache write failed\n");
  }
  return suite;
}

core::ModelSuite load_or_train() {
  const std::filesystem::path dir = cache_dir();
  if (read_file(dir / "version") == cache_version()) {
    try {
      core::ModelSuite suite;
      suite.title = core::TitleClassifier::deserialize(
          read_file(dir / "title.model"));
      suite.stage = core::StageClassifier::deserialize(
          read_file(dir / "stage.model"));
      suite.pattern = core::PatternInferrer::deserialize(
          read_file(dir / "pattern.model"));
      std::fprintf(stderr, "[bench] loaded cached models from %s\n",
                   dir.string().c_str());
      return suite;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] cache unreadable (%s); retraining\n",
                   e.what());
    }
  }
  return train_and_cache();
}

}  // namespace

const core::ModelSuite& bench_models() {
  static const core::ModelSuite suite = load_or_train();
  return suite;
}

FleetMeasurement run_fleet(const FleetRunOptions& options) {
  const core::ModelSuite& suite = bench_models();
  const core::RealtimePipeline pipeline(suite.models(),
                                        core::default_pipeline_params());
  sim::FleetOptions fleet_options;
  fleet_options.seed = options.seed;
  fleet_options.duration_scale = options.duration_scale;
  sim::FleetSampler sampler(fleet_options);
  const sim::SessionGenerator generator;

  FleetMeasurement out;
  for (std::size_t i = 0; i < options.sessions; ++i) {
    const sim::SessionSpec spec = sampler.sample();
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    const core::SessionReport report = pipeline.process_session(session);
    ++out.total_sessions;

    const bool in_catalog =
        static_cast<std::size_t>(spec.title) < sim::kNumPopularTitles;
    if (in_catalog) {
      ++out.catalog_sessions;
      if (report.title.label) {
        ++out.confident;
        if (report.title.class_name == sim::info(spec.title).name)
          ++out.confident_correct;
      }
    }

    if (report.title.label) {
      // Keep only field-validated rows in the per-title view, as the
      // paper validates against server logs before reporting.
      if (in_catalog && report.title.class_name == sim::info(spec.title).name)
        out.by_title.add(telemetry::summarize(report, report.title.class_name));
    } else if (report.pattern) {
      out.by_pattern.add(telemetry::summarize(
          report, core::pattern_class_names()[static_cast<std::size_t>(
                      report.pattern->label)]));
    }
  }
  return out;
}

std::string bar(double value, double max_value, std::size_t width) {
  const double fraction =
      max_value > 0.0 ? std::min(1.0, value / max_value) : 0.0;
  const auto filled = static_cast<std::size_t>(fraction * width);
  std::string out(filled, '#');
  out.resize(width, ' ');
  return out;
}

std::string pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%5.1f%%", 100.0 * fraction);
  return buf;
}

}  // namespace cgctx::bench
