// Shared support for the reproduction benches: a disk-cached,
// production-scale model suite (so twenty bench binaries don't retrain),
// a fleet-measurement runner used by the §5 benches, and small table
// printing helpers.
#pragma once

#include <string>
#include <vector>

#include "core/model_suite.hpp"
#include "sim/fleet.hpp"
#include "telemetry/aggregator.hpp"

namespace cgctx::bench {

/// Returns the production-scale model suite (lab_scale 1.0, augmentation
/// x2). The first call trains and serializes the three models into
/// `cgctx_bench_model_cache/` under the current working directory;
/// subsequent calls (and other bench binaries) load from disk. Delete the
/// directory to force retraining.
const core::ModelSuite& bench_models();

/// Everything the §5 benches need from one simulated deployment window.
struct FleetMeasurement {
  /// Aggregates keyed by *validated* classified title (sessions whose
  /// confident classification matched ground truth), mirroring the
  /// paper's field validation against server logs.
  telemetry::FleetAggregator by_title;
  /// Aggregates keyed by inferred gameplay activity pattern for sessions
  /// the title classifier answered "unknown" (Fig. 11(b)/12(b)/13(b)).
  telemetry::FleetAggregator by_pattern;
  /// Title-classification field validation (popular titles only).
  std::size_t catalog_sessions = 0;
  std::size_t confident = 0;
  std::size_t confident_correct = 0;
  std::size_t total_sessions = 0;
};

struct FleetRunOptions {
  std::size_t sessions = 400;
  std::uint64_t seed = 20241201;
  /// Scale on per-title session durations; 0.35 keeps mean sessions in
  /// the tens of minutes (enough for stable stage/pattern statistics)
  /// while staying fast.
  double duration_scale = 0.35;
};

/// Runs a fleet through the pipeline and aggregates (shared by the
/// Fig. 11/12/13 and validation benches).
FleetMeasurement run_fleet(const FleetRunOptions& options);

/// Prints a horizontal bar of `value` scaled against `max_value`.
std::string bar(double value, double max_value, std::size_t width = 40);

/// Prints "xx.x%" with fixed width.
std::string pct(double fraction);

}  // namespace cgctx::bench
