// Reproduces paper Fig. 8: game-title classification accuracy as a
// function of the observation window N (1-60 s) and the time-slot size T
// (0.1 / 0.5 / 1 / 2 s), for five representative game titles. Sessions
// are rendered once; all (N, T) feature variants are extracted from the
// same packet streams.
#include <cstdio>
#include <map>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

namespace {

// One representative title per genre, as the paper sweeps five titles.
const sim::GameTitle kTitles[] = {
    sim::GameTitle::kFortnite, sim::GameTitle::kGenshinImpact,
    sim::GameTitle::kRocketLeague, sim::GameTitle::kDota2,
    sim::GameTitle::kHearthstone};

const double kWindows[] = {1, 2, 3, 5, 10, 20, 40, 60};
const double kSlots[] = {0.1, 0.5, 1.0, 2.0};

}  // namespace

int main() {
  std::puts("== Fig. 8: title accuracy vs window N and slot T ==");
  std::puts("(five representative titles, one per genre)\n");

  // Build the session list: the lab plan filtered to the five titles,
  // with a gameplay tail long enough to fill the 60 s window even for the
  // shortest launch animation.
  sim::LabPlanOptions plan;
  plan.seed = 808;
  plan.scale = 1.0;
  plan.gameplay_seconds = 35.0;
  std::vector<sim::SessionSpec> specs;
  for (sim::SessionSpec& spec : sim::lab_session_plan(plan)) {
    for (std::size_t t = 0; t < std::size(kTitles); ++t) {
      if (spec.title == kTitles[t]) {
        // Relabel classes 0..4 by remapping later; keep the spec.
        specs.push_back(spec);
        break;
      }
    }
  }

  // Extract every (N, T) feature set in one rendering pass.
  std::map<std::pair<double, double>, ml::Dataset> datasets;
  std::vector<std::string> class_names;
  for (sim::GameTitle t : kTitles) class_names.push_back(sim::to_string(t));
  for (double t_slot : kSlots)
    for (double n_window : kWindows)
      datasets.emplace(std::make_pair(t_slot, n_window),
                       ml::Dataset(core::launch_attribute_names(), class_names));

  core::for_each_rendered_session(
      specs, [&](const sim::LabeledSession& session) {
        ml::Label label = 0;
        for (std::size_t t = 0; t < std::size(kTitles); ++t)
          if (session.spec.title == kTitles[t])
            label = static_cast<ml::Label>(t);
        for (double t_slot : kSlots) {
          for (double n_window : kWindows) {
            core::LaunchAttributeParams params;
            params.window_seconds = n_window;
            params.slot_seconds = t_slot;
            datasets.at({t_slot, n_window})
                .add(core::launch_attributes(session.packets,
                                             session.launch_begin, params),
                     label);
          }
        }
      });

  std::printf("%8s", "N(s) \\ T");
  for (double t_slot : kSlots) std::printf(" %7.1fs", t_slot);
  std::putchar('\n');
  for (double n_window : kWindows) {
    std::printf("%8.0f", n_window);
    for (double t_slot : kSlots) {
      const ml::Dataset& data = datasets.at({t_slot, n_window});
      ml::Rng rng(99);
      const auto split = ml::stratified_split(data, 0.3, rng);
      ml::RandomForest forest(
          ml::RandomForestParams{.n_trees = 150, .max_depth = 10, .seed = 5});
      forest.fit(split.train);
      std::printf("  %6.1f%%", 100 * forest.score(split.test));
    }
    std::putchar('\n');
  }

  std::puts("\nShape check (paper): accuracy rises with N and saturates"
            " within the first few seconds (>95% by N=3-5 s at T=1 s);"
            " very small slots (0.1 s) underperform; T=1-2 s is best.");
  return 0;
}
