// Performance microbenchmarks (google-benchmark): the per-packet and
// per-slot costs that determine whether the method runs in real time at
// an operator vantage point — flow-table accounting, RTP parsing, packet
// group labeling, launch-attribute extraction, model inference, the
// end-to-end per-session pipeline, and the SessionEngine steady-state
// hot path (which must not touch the heap — asserted, not just
// reported: the binary exits non-zero if a steady-state bench
// allocates).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/bench_support.hpp"
#include "core/pipeline_metrics.hpp"
#include "core/session_engine.hpp"
#include "core/trace_sink.hpp"
#include "core/training.hpp"
#include "net/flow_table.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/session.hpp"

// --- Heap allocation counter -------------------------------------------
// Every global new is routed through malloc with a counter bump so the
// steady-state benches can report (and assert) exact allocations per
// operation. GCC flags free() inside a replaced operator delete as a
// mismatched pair; the pairing is consistent (new -> malloc, delete ->
// free), so the diagnostic is suppressed for this block.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

using namespace cgctx;

namespace {

/// Set when a zero-allocation bench observed a heap allocation; main()
/// turns it into a non-zero exit so CI fails on a hot-path regression.
bool g_zero_alloc_violation = false;

/// Runs `fn` under the benchmark loop and reports allocations per op.
template <typename Fn>
void run_counted(benchmark::State& state, Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) fn();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs/op"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(after - before) /
                static_cast<double>(state.iterations());
}

/// run_counted plus the steady-state contract: any allocation fails the
/// bench (and, via g_zero_alloc_violation, the whole binary).
template <typename Fn>
void run_zero_alloc(benchmark::State& state, Fn&& fn) {
  run_counted(state, std::forward<Fn>(fn));
  if (state.counters["allocs/op"] != 0.0) {
    g_zero_alloc_violation = true;
    state.SkipWithError("steady-state hot path allocated");
  }
}

const sim::LabeledSession& sample_session() {
  static const sim::LabeledSession session = [] {
    sim::SessionGenerator generator;
    sim::SessionSpec spec;
    spec.title = sim::GameTitle::kFortnite;
    spec.gameplay_seconds = 60.0;
    spec.seed = 9;
    return generator.generate(spec);
  }();
  return session;
}

void BM_FlowTableIngest(benchmark::State& state) {
  const auto& packets = sample_session().packets;
  for (auto _ : state) {
    net::FlowTable table;
    for (const auto& pkt : packets) benchmark::DoNotOptimize(&table.add(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_FlowTableIngest);

void BM_RtpParse(benchmark::State& state) {
  net::RtpHeader header;
  header.payload_type = 98;
  header.sequence = 1234;
  header.ssrc = 0xabcd;
  const auto bytes = header.serialize();
  for (auto _ : state) benchmark::DoNotOptimize(net::parse_rtp(bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtpParse);

void BM_FrameDecode(benchmark::State& state) {
  const auto& pkt = sample_session().packets.front();
  const auto frame = net::encode_udp_frame(pkt.tuple, net::build_payload(pkt));
  for (auto _ : state) benchmark::DoNotOptimize(net::decode_udp_frame(frame));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameDecode);

void BM_PacketGroupLabeling(benchmark::State& state) {
  // A realistic launch slot: ~300 packets mixing all three groups.
  ml::Rng rng(3);
  std::vector<std::uint32_t> sizes;
  for (int i = 0; i < 300; ++i) {
    const double u = rng.next_double();
    sizes.push_back(u < 0.4    ? 1432u
                    : u < 0.75 ? static_cast<std::uint32_t>(
                                     rng.uniform(780.0, 820.0))
                               : static_cast<std::uint32_t>(
                                     rng.uniform(80.0, 1400.0)));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(core::label_packet_groups(sizes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 300);
}
BENCHMARK(BM_PacketGroupLabeling);

void BM_LaunchAttributeExtraction(benchmark::State& state) {
  const auto& session = sample_session();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::launch_attributes(session.packets, session.launch_begin));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LaunchAttributeExtraction);

void BM_TitleForestInference(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  const auto row = core::launch_attributes(sample_session().packets,
                                           sample_session().launch_begin);
  for (auto _ : state)
    benchmark::DoNotOptimize(suite.title.classify_features(row));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TitleForestInference);

void BM_StageSlotClassification(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  core::VolumetricTracker tracker;
  const core::RawSlotVolumetrics slot{2'500'000, 1900, 9'000, 95};
  for (auto _ : state) {
    const ml::FeatureRow attrs = tracker.push(slot);
    benchmark::DoNotOptimize(suite.stage.classify(attrs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageSlotClassification);

void BM_EndToEndSession(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  const core::RealtimePipeline pipeline(suite.models(),
                                        core::default_pipeline_params());
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = 10;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(pipeline.process_session(session));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(session.slots.size()));
}
BENCHMARK(BM_EndToEndSession);

// --- SessionEngine steady-state hot path -------------------------------

/// Rotating pool of distinct packets so the branch predictor cannot
/// memorize one packet's path. A power of two: the cursor wraps with a
/// mask, not a divide.
constexpr std::size_t kPacketPool = 256;
static_assert((kPacketPool & (kPacketPool - 1)) == 0);

void BM_EnginePacketSteadyState(benchmark::State& state) {
  // Drive an engine through a full session so the title verdict is in
  // and every buffer is at capacity, then measure re-delivering
  // mid-session packets. Their timestamps precede the current slot
  // boundary, so each call exercises exactly the steady-state per-packet
  // work: direction tally plus QoE accumulation, zero heap traffic.
  const auto& suite = bench::bench_models();
  static const core::PipelineParams params = core::default_pipeline_params();
  const auto& packets = sample_session().packets;
  core::SessionEngine engine(suite.models(), &params);
  core::NullSessionSink sink;
  engine.start(packets.front().timestamp);
  for (const auto& pkt : packets) engine.on_packet(pkt, sink);

  const std::size_t mid = packets.size() / 2;
  std::size_t next = 0;
  run_zero_alloc(state, [&] {
    engine.on_packet(packets[mid + next], sink);
    next = (next + 1) & (kPacketPool - 1);
  });
}
BENCHMARK(BM_EnginePacketSteadyState);

void BM_EngineTelemetrySessionSteadyState(benchmark::State& state) {
  // Whole telemetry-mode sessions through one pooled engine:
  // reset -> start -> set_title -> push_slot xN -> finish. After the
  // first session installs buffer capacities, subsequent sessions must
  // not allocate — this is the MultiSessionProbe reuse contract.
  const auto& suite = bench::bench_models();
  static const core::PipelineParams params = core::default_pipeline_params();
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = 10;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  const core::TitleResult title =
      suite.models().title->classify(session.packets, session.launch_begin);

  core::SessionEngine engine(suite.models(), &params);
  core::NullSessionSink sink;
  const auto run_session = [&] {
    engine.reset();
    engine.start(session.launch_begin);
    engine.set_title(title);
    for (const sim::SlotSample& sample : session.slots) {
      core::SlotTelemetry slot;
      slot.volumetrics =
          core::RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                   sample.up_bytes, sample.up_packets};
      slot.frames = sample.frames;
      slot.rtt_ms = sample.rtt_ms;
      slot.loss_rate = sample.loss_rate;
      engine.push_slot(slot, sink);
    }
    benchmark::DoNotOptimize(&engine.finish(sink));
  };
  run_session();  // warm-up: install buffer capacities
  run_zero_alloc(state, run_session);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(session.slots.size()));
}
BENCHMARK(BM_EngineTelemetrySessionSteadyState);

// --- Instrumented steady state -----------------------------------------
// Same hot paths with the full telemetry plane enabled: a registry-bound
// PipelineMetrics and a decision-trace sink. The 0-allocs/op contract
// must hold with observability ON — that is the deployment configuration.

void BM_EnginePacketSteadyStateInstrumented(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  static const core::PipelineParams params = core::default_pipeline_params();
  const auto& packets = sample_session().packets;

  obs::MetricsRegistry registry;
  const core::PipelineMetrics metrics = core::PipelineMetrics::create(registry);
  obs::DecisionTraceRing ring(1024);
  core::TraceSessionSink sink{&ring, 1};

  core::SessionEngine engine(suite.models(), &params);
  engine.set_metrics(&metrics);
  engine.start(packets.front().timestamp);
  for (const auto& pkt : packets) engine.on_packet(pkt, sink);

  const std::size_t mid = packets.size() / 2;
  std::size_t next = 0;
  run_zero_alloc(state, [&] {
    engine.on_packet(packets[mid + next], sink);
    next = (next + 1) & (kPacketPool - 1);
  });
}
BENCHMARK(BM_EnginePacketSteadyStateInstrumented);

void BM_EngineTelemetrySessionSteadyStateInstrumented(
    benchmark::State& state) {
  const auto& suite = bench::bench_models();
  static const core::PipelineParams params = core::default_pipeline_params();
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = 10;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  const core::TitleResult title =
      suite.models().title->classify(session.packets, session.launch_begin);

  obs::MetricsRegistry registry;
  const core::PipelineMetrics metrics = core::PipelineMetrics::create(registry);
  obs::DecisionTraceRing ring(1024);
  core::TraceSessionSink sink{&ring, 1};

  core::SessionEngine engine(suite.models(), &params);
  engine.set_metrics(&metrics);
  const auto run_session = [&] {
    engine.reset();
    engine.start(session.launch_begin);
    engine.set_title(title);
    for (const sim::SlotSample& sample : session.slots) {
      core::SlotTelemetry slot;
      slot.volumetrics =
          core::RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                   sample.up_bytes, sample.up_packets};
      slot.frames = sample.frames;
      slot.rtt_ms = sample.rtt_ms;
      slot.loss_rate = sample.loss_rate;
      engine.push_slot(slot, sink);
    }
    benchmark::DoNotOptimize(&engine.finish(sink));
  };
  run_session();  // warm-up: install buffer capacities
  run_zero_alloc(state, run_session);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(session.slots.size()));
}
BENCHMARK(BM_EngineTelemetrySessionSteadyStateInstrumented);

// --- Instrumented-overhead gate ----------------------------------------
// CI mode (--instrumented-gate): measures the telemetry-mode session
// throughput with the telemetry plane off vs fully on (metrics +
// tracing) and fails if instrumentation costs more than 10% throughput
// or allocates on the steady-state path. Best-of-N minimum times resist
// scheduler noise on shared CI runners.

int run_instrumented_gate() {
  constexpr int kReps = 7;
  constexpr int kSessionsPerRep = 10;
  constexpr double kMaxRegression = 0.10;

  const auto& suite = bench::bench_models();
  static const core::PipelineParams params = core::default_pipeline_params();
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = 10;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  const core::TitleResult title =
      suite.models().title->classify(session.packets, session.launch_begin);

  obs::MetricsRegistry registry;
  const core::PipelineMetrics metrics = core::PipelineMetrics::create(registry);
  obs::DecisionTraceRing ring(1024);
  core::TraceSessionSink trace_sink{&ring, 1};
  core::NullSessionSink null_sink;

  core::SessionEngine plain(suite.models(), &params);
  core::SessionEngine instrumented(suite.models(), &params);
  instrumented.set_metrics(&metrics);

  const auto run_session = [&](core::SessionEngine& engine, auto& sink) {
    engine.reset();
    engine.start(session.launch_begin);
    engine.set_title(title);
    for (const sim::SlotSample& sample : session.slots) {
      core::SlotTelemetry slot;
      slot.volumetrics =
          core::RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                   sample.up_bytes, sample.up_packets};
      slot.frames = sample.frames;
      slot.rtt_ms = sample.rtt_ms;
      slot.loss_rate = sample.loss_rate;
      engine.push_slot(slot, sink);
    }
    benchmark::DoNotOptimize(&engine.finish(sink));
  };

  // Warm-up: install buffer capacities in both engines.
  run_session(plain, null_sink);
  run_session(instrumented, trace_sink);

  using Clock = std::chrono::steady_clock;
  double plain_min_s = 1e300;
  double instr_min_s = 1e300;
  std::uint64_t instr_allocs = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto begin = Clock::now();
    for (int i = 0; i < kSessionsPerRep; ++i) run_session(plain, null_sink);
    const double plain_s =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (plain_s < plain_min_s) plain_min_s = plain_s;

    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    begin = Clock::now();
    for (int i = 0; i < kSessionsPerRep; ++i)
      run_session(instrumented, trace_sink);
    const double instr_s =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (instr_s < instr_min_s) instr_min_s = instr_s;
    instr_allocs +=
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
  }

  const double regression = instr_min_s / plain_min_s - 1.0;
  const double slots =
      static_cast<double>(session.slots.size()) * kSessionsPerRep;
  std::printf(
      "instrumented-gate: plain %.1f slots/ms, instrumented %.1f slots/ms "
      "(overhead %+.1f%%), instrumented allocs %llu\n",
      slots / (plain_min_s * 1e3), slots / (instr_min_s * 1e3),
      100.0 * regression,
      static_cast<unsigned long long>(instr_allocs));

  bool failed = false;
  if (instr_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: instrumented steady state performed %llu heap "
                 "allocations (contract: 0)\n",
                 static_cast<unsigned long long>(instr_allocs));
    failed = true;
  }
  if (regression > kMaxRegression) {
    std::fprintf(stderr,
                 "FAIL: telemetry plane costs %.1f%% throughput "
                 "(budget: %.0f%%)\n",
                 100.0 * regression, 100.0 * kMaxRegression);
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --instrumented-gate before benchmark::Initialize (it rejects
  // unknown flags).
  bool gate = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instrumented-gate") == 0)
      gate = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int rc = 0;
  if (gate) rc = run_instrumented_gate();
  if (g_zero_alloc_violation) {
    std::fprintf(stderr,
                 "FAIL: a steady-state hot path performed heap allocations\n");
    rc = 1;
  }
  return rc;
}
