// Performance microbenchmarks (google-benchmark): the per-packet and
// per-slot costs that determine whether the method runs in real time at
// an operator vantage point — flow-table accounting, RTP parsing, packet
// group labeling, launch-attribute extraction, model inference, and the
// end-to-end per-session pipeline.
#include <benchmark/benchmark.h>

#include "common/bench_support.hpp"
#include "core/training.hpp"
#include "net/flow_table.hpp"
#include "net/framing.hpp"
#include "sim/session.hpp"

using namespace cgctx;

namespace {

const sim::LabeledSession& sample_session() {
  static const sim::LabeledSession session = [] {
    sim::SessionGenerator generator;
    sim::SessionSpec spec;
    spec.title = sim::GameTitle::kFortnite;
    spec.gameplay_seconds = 60.0;
    spec.seed = 9;
    return generator.generate(spec);
  }();
  return session;
}

void BM_FlowTableIngest(benchmark::State& state) {
  const auto& packets = sample_session().packets;
  for (auto _ : state) {
    net::FlowTable table;
    for (const auto& pkt : packets) benchmark::DoNotOptimize(&table.add(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_FlowTableIngest);

void BM_RtpParse(benchmark::State& state) {
  net::RtpHeader header;
  header.payload_type = 98;
  header.sequence = 1234;
  header.ssrc = 0xabcd;
  const auto bytes = header.serialize();
  for (auto _ : state) benchmark::DoNotOptimize(net::parse_rtp(bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RtpParse);

void BM_FrameDecode(benchmark::State& state) {
  const auto& pkt = sample_session().packets.front();
  const auto frame = net::encode_udp_frame(pkt.tuple, net::build_payload(pkt));
  for (auto _ : state) benchmark::DoNotOptimize(net::decode_udp_frame(frame));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameDecode);

void BM_PacketGroupLabeling(benchmark::State& state) {
  // A realistic launch slot: ~300 packets mixing all three groups.
  ml::Rng rng(3);
  std::vector<std::uint32_t> sizes;
  for (int i = 0; i < 300; ++i) {
    const double u = rng.next_double();
    sizes.push_back(u < 0.4    ? 1432u
                    : u < 0.75 ? static_cast<std::uint32_t>(
                                     rng.uniform(780.0, 820.0))
                               : static_cast<std::uint32_t>(
                                     rng.uniform(80.0, 1400.0)));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(core::label_packet_groups(sizes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 300);
}
BENCHMARK(BM_PacketGroupLabeling);

void BM_LaunchAttributeExtraction(benchmark::State& state) {
  const auto& session = sample_session();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::launch_attributes(session.packets, session.launch_begin));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LaunchAttributeExtraction);

void BM_TitleForestInference(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  const auto row = core::launch_attributes(sample_session().packets,
                                           sample_session().launch_begin);
  for (auto _ : state)
    benchmark::DoNotOptimize(suite.title.classify_features(row));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TitleForestInference);

void BM_StageSlotClassification(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  core::VolumetricTracker tracker;
  const core::RawSlotVolumetrics slot{2'500'000, 1900, 9'000, 95};
  for (auto _ : state) {
    const ml::FeatureRow attrs = tracker.push(slot);
    benchmark::DoNotOptimize(suite.stage.classify(attrs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageSlotClassification);

void BM_EndToEndSession(benchmark::State& state) {
  const auto& suite = bench::bench_models();
  const core::RealtimePipeline pipeline(suite.models(),
                                        core::default_pipeline_params());
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 600.0;
  spec.seed = 10;
  const sim::LabeledSession session = generator.generate_slots_only(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(pipeline.process_session(session));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(session.slots.size()));
}
BENCHMARK(BM_EndToEndSession);

}  // namespace

BENCHMARK_MAIN();
