// Reproduces paper Table 3: per-title game classification accuracy of the
// best-performing Random Forest using the specialized packet-group
// attributes vs the standard flow-volumetric attributes baseline.
#include <cstdio>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

int main() {
  std::puts("== Table 3: title accuracy, packet-group vs flow-volumetric ==");
  std::puts("(training on the full Table 2 lab plan with x1 augmentation)\n");

  sim::LabPlanOptions plan;
  plan.seed = 303;
  plan.scale = 1.0;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);
  core::TitleDatasetOptions options;
  options.augment_copies = 1;

  const ml::Dataset group_data = core::build_title_dataset(specs, options);
  const ml::Dataset vol_data =
      core::build_flow_volumetric_dataset(specs, options);

  ml::Rng rng(7);
  const auto group_split = ml::stratified_split(group_data, 0.25, rng);
  const auto vol_split = ml::stratified_split(vol_data, 0.25, rng);

  const ml::RandomForestParams forest_params{
      .n_trees = 500, .max_depth = 10, .min_samples_split = 2,
      .min_samples_leaf = 1, .max_features = 0, .bootstrap = true,
      .seed = 1};
  ml::RandomForest group_forest(forest_params);
  group_forest.fit(group_split.train);
  ml::RandomForest vol_forest(forest_params);
  vol_forest.fit(vol_split.train);

  const auto group_cm = ml::evaluate(group_forest, group_split.test);
  const auto vol_cm = ml::evaluate(vol_forest, vol_split.test);

  std::printf("%-20s %20s %18s\n", "Game title", "Accur. (pkt. group)",
              "Accur. (flow vol.)");
  for (std::size_t c = 0; c < group_data.num_classes(); ++c) {
    std::printf("%-20s %19.1f%% %17.1f%%\n",
                group_data.class_names()[c].c_str(),
                100 * group_cm.per_class_accuracy(static_cast<ml::Label>(c)),
                100 * vol_cm.per_class_accuracy(static_cast<ml::Label>(c)));
  }
  std::printf("%-20s %19.1f%% %17.1f%%\n", "OVERALL",
              100 * group_cm.accuracy(), 100 * vol_cm.accuracy());

  std::puts("\nShape check (paper): packet-group attributes reach ~93-98%"
            " per title; the flow-volumetric baseline drops ~10 points"
            " (80-92%). Packet-group wins for every title overall.");
  return 0;
}
