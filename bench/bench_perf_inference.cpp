// Compiled vs. reference forest inference (google-benchmark).
//
// The deployment's hot path is pure inference: a 500-tree title verdict
// per detected session and a 100-tree stage verdict per session-second
// (§4.2–4.3). This bench pins the single-row and batched predictions/
// second of ml::CompiledForest against the reference RandomForest walk,
// and counts heap allocations per prediction (a global operator new hook)
// to prove the compiled path allocates nothing.
//
// Single-row latency is measured over a rotating pool of distinct rows:
// production never classifies the same flow-second twice, and repeating
// one row would let the branch predictor memorize the reference walk's
// entire descent path, flattering it far beyond deployment behavior.
// Both engines see the identical row sequence.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/bench_support.hpp"
#include "core/launch_attributes.hpp"
#include "ml/compiled_forest.hpp"
#include "sim/session.hpp"

// --- Heap allocation counter -------------------------------------------
// Every global new is routed through malloc with a counter bump, so each
// benchmark can report exact allocations per operation. GCC flags
// free() inside a replaced operator delete as a mismatched pair; the
// pairing is consistent (new -> malloc, delete -> free), so the
// diagnostic is suppressed for this block.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

using namespace cgctx;

namespace {

/// Launch-attribute row of one generated session (title forest input).
ml::FeatureRow title_row(std::uint64_t seed) {
  sim::SessionGenerator generator;
  sim::SessionSpec spec;
  spec.title = static_cast<sim::GameTitle>(seed % sim::kNumPopularTitles);
  spec.gameplay_seconds = 10.0;
  spec.seed = seed;
  const sim::LabeledSession session = generator.generate(spec);
  return core::launch_attributes(session.packets, session.launch_begin);
}

/// Volumetric-attribute row a few slots into a session (stage input).
/// `variant` perturbs the slot volumetrics so a pool of these rows takes
/// distinct paths through the stage forest.
ml::FeatureRow stage_row(std::uint64_t variant = 0) {
  core::VolumetricTracker tracker;
  ml::FeatureRow attrs;
  const core::RawSlotVolumetrics slot{
      2'500'000 + 40'000 * (variant % 17), 1900 + 13 * (variant % 23),
      9'000 + 250 * (variant % 11), 95 + variant % 7};
  for (int i = 0; i < 8; ++i) attrs = tracker.push(slot);
  return attrs;
}

/// Rotating pool of distinct single rows (see file comment). A power of
/// two so the cursor wraps with a mask, not a divide.
constexpr std::size_t kRowPool = 64;
static_assert((kRowPool & (kRowPool - 1)) == 0);

std::vector<ml::FeatureRow> title_pool() {
  std::vector<ml::FeatureRow> rows;
  rows.reserve(kRowPool);
  for (std::size_t i = 0; i < kRowPool; ++i) rows.push_back(title_row(i));
  return rows;
}

std::vector<ml::FeatureRow> stage_pool() {
  std::vector<ml::FeatureRow> rows;
  rows.reserve(kRowPool);
  for (std::size_t i = 0; i < kRowPool; ++i) rows.push_back(stage_row(i));
  return rows;
}

/// Runs `fn` under the benchmark loop and reports allocations per op.
template <typename Fn>
void run_counted(benchmark::State& state, Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) fn();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs/op"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(after - before) /
                static_cast<double>(state.iterations());
}

// --- Title forest: 500 trees, depth 10 ---------------------------------

void BM_TitleReference(benchmark::State& state) {
  const ml::RandomForest& forest = bench::bench_models().title.forest();
  const std::vector<ml::FeatureRow> rows = title_pool();
  std::vector<double> out(forest.num_classes());
  std::size_t next = 0;
  run_counted(state, [&] {
    forest.predict_proba_into(rows[next], out);
    next = (next + 1) & (kRowPool - 1);
    benchmark::DoNotOptimize(out.data());
  });
}
BENCHMARK(BM_TitleReference);

void BM_TitleCompiled(benchmark::State& state) {
  const ml::CompiledForest& compiled = bench::bench_models().title.compiled();
  const std::vector<ml::FeatureRow> rows = title_pool();
  std::vector<double> out(compiled.num_classes());
  std::size_t next = 0;
  run_counted(state, [&] {
    compiled.predict_proba_into(rows[next], out);
    next = (next + 1) & (kRowPool - 1);
    benchmark::DoNotOptimize(out.data());
  });
}
BENCHMARK(BM_TitleCompiled);

// --- Stage forest: 100 trees, depth 10 ---------------------------------

void BM_StageReference(benchmark::State& state) {
  const ml::RandomForest& forest = bench::bench_models().stage.forest();
  const std::vector<ml::FeatureRow> rows = stage_pool();
  std::vector<double> out(forest.num_classes());
  std::size_t next = 0;
  run_counted(state, [&] {
    forest.predict_proba_into(rows[next], out);
    next = (next + 1) & (kRowPool - 1);
    benchmark::DoNotOptimize(out.data());
  });
}
BENCHMARK(BM_StageReference);

void BM_StageCompiled(benchmark::State& state) {
  const ml::CompiledForest& compiled = bench::bench_models().stage.compiled();
  const std::vector<ml::FeatureRow> rows = stage_pool();
  std::vector<double> out(compiled.num_classes());
  std::size_t next = 0;
  run_counted(state, [&] {
    compiled.predict_proba_into(rows[next], out);
    next = (next + 1) & (kRowPool - 1);
    benchmark::DoNotOptimize(out.data());
  });
}
BENCHMARK(BM_StageCompiled);

// --- Batched title predictions -----------------------------------------

constexpr std::size_t kBatch = 256;

std::vector<ml::FeatureRow> title_batch() {
  std::vector<ml::FeatureRow> rows;
  rows.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    rows.push_back(title_row(100 + i % 16));
  return rows;
}

void BM_TitleBatchReference(benchmark::State& state) {
  const ml::RandomForest& forest = bench::bench_models().title.forest();
  const std::vector<ml::FeatureRow> rows = title_batch();
  std::vector<ml::Label> out(rows.size());
  std::vector<double> scratch(forest.num_classes());
  run_counted(state, [&] {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      forest.predict_proba_into(rows[i], scratch);
      out[i] = static_cast<ml::Label>(
          std::max_element(scratch.begin(), scratch.end()) - scratch.begin());
    }
    benchmark::DoNotOptimize(out.data());
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_TitleBatchReference);

void BM_TitleBatchCompiled(benchmark::State& state) {
  const ml::CompiledForest& compiled = bench::bench_models().title.compiled();
  const std::vector<ml::FeatureRow> rows = title_batch();
  std::vector<ml::Label> out(rows.size());
  run_counted(state, [&] {
    compiled.predict_rows(rows, out);
    benchmark::DoNotOptimize(out.data());
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_TitleBatchCompiled);

}  // namespace

BENCHMARK_MAIN();
