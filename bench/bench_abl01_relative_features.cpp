// Ablation (DESIGN.md §5): the paper's stage attributes are peak-relative
// and EMA-smoothed. This bench quantifies what each design choice buys by
// training the stage classifier with (a) the full design, (b) EMA
// disabled, (c) absolute instead of peak-relative values, and (d) both
// off. Evaluation holds out ENTIRE sessions (not rows), so absolute
// features cannot cheat by memorizing a session's traffic level — the
// honest deployment setting, where unseen titles/settings/paths produce
// absolute levels never seen in training.
#include <cstdio>

#include "core/training.hpp"
#include "ml/metrics.hpp"

using namespace cgctx;

int main() {
  std::puts("== Ablation: peak-relative + EMA stage attributes ==");
  std::puts("(held-out evaluation at session granularity)\n");

  sim::LabPlanOptions train_plan;
  train_plan.seed = 212121;
  train_plan.scale = 0.3;
  train_plan.gameplay_seconds = 240.0;
  const auto train_specs = sim::lab_session_plan(train_plan);
  sim::LabPlanOptions test_plan = train_plan;
  test_plan.seed = 434343;  // disjoint sessions, same config coverage
  test_plan.scale = 0.15;
  const auto test_specs = sim::lab_session_plan(test_plan);

  struct Variant {
    const char* name;
    bool relative;
    bool ema;
  };
  const Variant kVariants[] = {
      {"relative + EMA (paper design)", true, true},
      {"relative, no EMA", true, false},
      {"absolute + EMA", false, true},
      {"absolute, no EMA", false, false},
  };

  std::printf("%-32s %8s %8s %8s %8s\n", "variant", "overall", "active",
              "passive", "idle");
  for (const Variant& variant : kVariants) {
    core::VolumetricTrackerParams params;
    params.relative_to_peak = variant.relative;
    params.enable_ema = variant.ema;
    const ml::Dataset train = core::build_stage_dataset(train_specs, params);
    const ml::Dataset test = core::build_stage_dataset(test_specs, params);
    core::StageClassifier classifier;
    classifier.train(train);
    const auto cm = ml::evaluate(classifier.forest(), test);
    std::printf("%-32s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", variant.name,
                100 * cm.accuracy(),
                100 * cm.per_class_accuracy(core::kStageActive),
                100 * cm.per_class_accuracy(core::kStagePassive),
                100 * cm.per_class_accuracy(core::kStageIdle));
  }

  std::puts("\nShape check: peak-relative normalization is the load-bearing"
            " choice — absolute volumetric levels do not transfer across"
            " titles and streaming settings; EMA adds robustness to"
            " short contradictory bursts, mostly visible in the passive"
            " class.");
  return 0;
}
