// Reproduces paper Fig. 11: average minutes per session spent in the
// active, passive and idle player activity stages, (a) per classified
// game title and (b) per gameplay activity pattern for unknown titles,
// measured over a simulated deployment window.
#include <cstdio>

#include "common/bench_support.hpp"

using namespace cgctx;

namespace {

void print_group(const std::string& key, const telemetry::GroupStats& group) {
  const double active = group.stage_minutes[0].mean();
  const double passive = group.stage_minutes[1].mean();
  const double idle = group.stage_minutes[2].mean();
  std::printf("%-26s %4zu %8.1f %8.1f %8.1f %8.1f  %s\n", key.c_str(),
              group.sessions, group.duration_minutes.mean(), active, passive,
              idle, bench::bar(group.duration_minutes.mean(), 40.0, 24).c_str());
}

}  // namespace

int main() {
  std::puts("== Fig. 11: stage durations per session ==");
  std::puts("(fleet durations scaled x0.35 of paper scale; ratios preserved)\n");

  bench::FleetRunOptions options;
  options.sessions = 700;
  options.seed = 1111;
  const bench::FleetMeasurement fleet = bench::run_fleet(options);

  std::puts("(a) per classified (validated) game title:");
  std::printf("%-26s %4s %8s %8s %8s %8s\n", "title", "n", "dur(min)",
              "active", "passive", "idle");
  for (const auto& [key, group] : fleet.by_title.groups())
    print_group(key, group);

  std::puts("\n(b) per inferred pattern (titles outside the catalog):");
  std::printf("%-26s %4s %8s %8s %8s %8s\n", "pattern", "n", "dur(min)",
              "active", "passive", "idle");
  for (const auto& [key, group] : fleet.by_pattern.groups())
    print_group(key, group);

  std::puts("\nShape check (paper): Baldur's Gate 3 and Cyberpunk 2077 have"
            " the longest sessions with large idle fractions (dialogue);"
            " Rocket League and CS:GO the shortest; Fortnite and Dota 2"
            " are the most active-heavy; role-playing/continuous sessions"
            " show a substantial idle share and almost no passive time.");
  return 0;
}
