// Reproduces paper Fig. 9: permutation importance of the 51 packet-group
// attributes in the best-performing Random Forest title classifier, with
// each attribute tagged by its packet group (full/steady/sparse) and
// metric family (count/size/inter-arrival).
#include <algorithm>
#include <cstdio>

#include "common/bench_support.hpp"
#include "core/training.hpp"
#include "ml/importance.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

int main() {
  std::puts("== Fig. 9: permutation importance of the 51 launch attributes ==\n");

  sim::LabPlanOptions plan;
  plan.seed = 909;
  plan.scale = 0.6;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);
  core::TitleDatasetOptions options;
  options.augment_copies = 1;
  const ml::Dataset data = core::build_title_dataset(specs, options);

  ml::Rng rng(9);
  const auto split = ml::stratified_split(data, 0.3, rng);
  ml::RandomForest forest(
      ml::RandomForestParams{.n_trees = 300, .max_depth = 10, .seed = 2});
  forest.fit(split.train);
  std::printf("baseline accuracy: %.1f%%\n\n",
              100 * forest.score(split.test));

  const auto result = ml::permutation_importance(forest, split.test, 5, rng);
  const auto names = core::launch_attribute_names();

  // Sort attributes by importance, descending.
  std::vector<std::size_t> order(names.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.mean_drop[a] > result.mean_drop[b];
  });

  double max_drop = result.mean_drop[order.front()];
  std::printf("%-22s %10s  %s\n", "attribute", "acc. drop", "");
  std::size_t zero_importance = 0;
  for (std::size_t i : order) {
    const double drop = std::max(0.0, result.mean_drop[i]);
    if (drop <= 1e-9) {
      ++zero_importance;
      continue;
    }
    std::printf("%-22s %9.2f%%  %s\n", names[i].c_str(), 100 * drop,
                bench::bar(drop, max_drop, 30).c_str());
  }
  std::printf("\n%zu of %zu attributes show no measurable importance "
              "(candidates for pipeline cost optimization, as the paper "
              "notes for 8 of its 51).\n",
              zero_importance, names.size());
  std::puts("Shape check (paper): 43 of 51 attributes carry predictive"
            " power; steady/sparse size and timing attributes dominate,"
            " while several full-group statistics (e.g. the nearly constant"
            " full packet size) contribute nothing.");
  return 0;
}
