// Reproduces paper Fig. 5: per-pattern player-activity-stage playtime
// fractions and the per-slot transition probability matrices, computed
// from ground-truth stage timelines of the whole lab collection.
#include <array>
#include <cstdio>

#include "sim/lab_dataset.hpp"

using namespace cgctx;

int main() {
  std::puts("== Fig. 5: stage fractions & transition probabilities ==");

  sim::LabPlanOptions options;
  options.seed = 5;
  options.gameplay_seconds = 1800.0;  // long sessions for stable statistics
  options.scale = 0.5;
  const auto plan = sim::lab_session_plan(options);

  struct PatternStats {
    std::array<double, 3> seconds{};
    std::array<std::array<double, 3>, 3> transitions{};
    std::size_t sessions = 0;
  };
  std::array<PatternStats, 2> stats;  // [continuous, spectate]

  for (const sim::SessionSpec& spec : plan) {
    // Only the ground-truth timeline is needed; skip traffic rendering.
    const auto model = sim::StageMarkovModel::for_title(sim::info(spec.title));
    ml::Rng rng(spec.seed);
    const auto timeline = model.generate(
        0, net::duration_from_seconds(spec.gameplay_seconds), rng);
    const auto pattern_index =
        sim::info(spec.title).pattern == sim::ActivityPattern::kContinuousPlay
            ? 0u
            : 1u;
    PatternStats& p = stats[pattern_index];
    ++p.sessions;
    const auto seconds = sim::stage_seconds(timeline);
    for (std::size_t s = 0; s < 3; ++s) p.seconds[s] += seconds[s];
    // Per-slot transitions at 1 s granularity.
    sim::Stage previous = sim::Stage::kIdle;
    bool first = true;
    for (double t = 0.5; t < spec.gameplay_seconds; t += 1.0) {
      const sim::Stage stage =
          sim::stage_at(timeline, net::duration_from_seconds(t));
      if (!first)
        p.transitions[static_cast<std::size_t>(previous)]
                     [static_cast<std::size_t>(stage)] += 1.0;
      previous = stage;
      first = false;
    }
  }

  const char* kPatternNames[] = {"Continuous-play", "Spectate-and-play"};
  const char* kStageNames[] = {"active", "passive", "idle"};
  for (std::size_t p = 0; p < 2; ++p) {
    const PatternStats& s = stats[p];
    const double total = s.seconds[0] + s.seconds[1] + s.seconds[2];
    std::printf("\n--- %s (%zu sessions) ---\n", kPatternNames[p], s.sessions);
    std::puts("  playtime fractions:");
    for (std::size_t i = 0; i < 3; ++i)
      std::printf("    %-8s %5.1f%%\n", kStageNames[i],
                  100.0 * s.seconds[i] / total);
    std::puts("  per-slot transition probabilities (row = from):");
    std::printf("    %-8s", "");
    for (const char* name : kStageNames) std::printf(" %8s", name);
    std::putchar('\n');
    for (std::size_t i = 0; i < 3; ++i) {
      double row_total = 0.0;
      for (std::size_t j = 0; j < 3; ++j) row_total += s.transitions[i][j];
      std::printf("    %-8s", kStageNames[i]);
      for (std::size_t j = 0; j < 3; ++j)
        std::printf(" %8.4f",
                    row_total > 0 ? s.transitions[i][j] / row_total : 0.0);
      std::putchar('\n');
    }
  }

  std::puts("\nShape check (paper): spectate-and-play spends 40-60% active"
            " with passive taking most of the rest; continuous-play spends"
            " >95% in active+idle with <5% passive. Self-transitions"
            " dominate every row.");
  return 0;
}
