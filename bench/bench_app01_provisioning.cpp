// Application bench (paper §5.1-§5.2): what the operator actually does
// with the measured contexts — upon detecting a new session of a known
// context, provision a 5G slice with an expected duration and capacity.
// This bench learns slice recommendations from one deployment window and
// scores them against a second, disjoint window: how often was the
// reserved capacity sufficient, and how much was over-provisioned versus
// a context-blind flat reservation?
#include <cstdio>

#include "common/bench_support.hpp"
#include "telemetry/provisioning.hpp"

using namespace cgctx;

int main() {
  std::puts("== §5.1: context-driven slice provisioning ==\n");

  // Learning window.
  bench::FleetRunOptions learn_options;
  learn_options.sessions = 500;
  learn_options.seed = 1801;
  const bench::FleetMeasurement learn_window = bench::run_fleet(learn_options);
  telemetry::ProvisioningAdvisor advisor;
  advisor.learn(learn_window.by_title);
  advisor.learn(learn_window.by_pattern);

  std::puts("learned slice recommendations:");
  std::printf("%-26s %9s %12s %13s %9s\n", "context", "capacity",
              "expect(min)", "priority", "evidence");
  for (const auto& rec : advisor.all())
    std::printf("%-26s %6.1f Mb %12.1f %13s %9zu\n", rec.context.c_str(),
                rec.capacity_mbps, rec.expected_minutes,
                to_string(rec.priority), rec.evidence_sessions);
  if (const auto fallback = advisor.fleet_default())
    std::printf("%-26s %6.1f Mb %12.1f %13s %9zu\n", fallback->context.c_str(),
                fallback->capacity_mbps, fallback->expected_minutes,
                to_string(fallback->priority), fallback->evidence_sessions);

  // Evaluation window: score sufficiency and over-provisioning.
  bench::FleetRunOptions eval_options;
  eval_options.sessions = 300;
  eval_options.seed = 1901;
  const bench::FleetMeasurement eval_window = bench::run_fleet(eval_options);

  double context_reserved = 0.0;
  double flat_reserved = 0.0;
  std::size_t sessions = 0;
  std::size_t sufficient = 0;
  const double flat_mbps = advisor.fleet_default()->capacity_mbps;
  auto score = [&](const telemetry::FleetAggregator& agg) {
    for (const auto& [key, stats] : agg.groups()) {
      const auto rec = advisor.recommend(key);
      if (!rec) continue;
      for (double demand : stats.mean_down_mbps.values()) {
        ++sessions;
        context_reserved += rec->capacity_mbps;
        flat_reserved += flat_mbps;
        if (demand <= rec->capacity_mbps) ++sufficient;
      }
    }
  };
  score(eval_window.by_title);
  score(eval_window.by_pattern);

  std::printf("\nevaluation window (%zu sessions):\n", sessions);
  std::printf("  capacity sufficient for %s of sessions\n",
              bench::pct(static_cast<double>(sufficient) /
                         static_cast<double>(sessions))
                  .c_str());
  std::printf("  context-aware reservation averages %.1f Mbps/session vs"
              " %.1f Mbps flat (%.0f%% of flat)\n",
              context_reserved / static_cast<double>(sessions), flat_mbps,
              100.0 * context_reserved / flat_reserved);

  std::puts("\nShape check (paper): knowing the context lets the operator"
            " 'prioritize premium users with the appropriate QoS profiles"
            " ... without over-provisioning' — low-demand contexts"
            " (Hearthstone, idle-heavy role-playing) reserve far below the"
            " flat rate while high-demand shooters keep premium slices.");
  return 0;
}
