// Reproduces paper Table 2: the lab traffic-collection plan — eight
// device/OS/software configuration rows, 531 sessions, with per-row
// session counts and playtime — as realized by the synthetic lab
// collection generator.
#include <cstdio>
#include <map>

#include "sim/lab_dataset.hpp"

using namespace cgctx;

int main() {
  std::puts("== Table 2: lab capture dataset plan ==\n");
  sim::LabPlanOptions options;
  options.seed = 2024;
  options.gameplay_seconds = 420.0;  // ~7 min gameplay, as in the lab
  const auto plan = sim::lab_session_plan(options);

  struct RowStats {
    int sessions = 0;
    double playtime_h = 0.0;
    int min_res = 99;
    int max_res = -1;
  };
  std::map<std::string, RowStats> rows;
  std::vector<std::string> order;
  for (const sim::SessionSpec& spec : plan) {
    std::string key = std::string(to_string(spec.config.device)) + " / " +
                      to_string(spec.config.os) + " / " +
                      to_string(spec.config.software);
    if (rows.find(key) == rows.end()) order.push_back(key);
    RowStats& stats = rows[key];
    ++stats.sessions;
    stats.playtime_h +=
        (spec.gameplay_seconds + sim::info(spec.title).launch_seconds) / 3600.0;
    stats.min_res = std::min(stats.min_res, static_cast<int>(spec.config.resolution));
    stats.max_res = std::max(stats.max_res, static_cast<int>(spec.config.resolution));
  }

  std::printf("%-32s %22s %10s %10s\n", "Device / OS / Software",
              "Streaming settings", "#Sessions", "Playtime");
  int total_sessions = 0;
  double total_hours = 0.0;
  for (const std::string& key : order) {
    const RowStats& stats = rows[key];
    char settings[32];
    std::snprintf(settings, sizeof settings, "%s-%s; 30-120 fps",
                  to_string(static_cast<sim::Resolution>(stats.max_res)),
                  to_string(static_cast<sim::Resolution>(stats.min_res)));
    std::printf("%-32s %22s %10d %8.1f h\n", key.c_str(), settings,
                stats.sessions, stats.playtime_h);
    total_sessions += stats.sessions;
    total_hours += stats.playtime_h;
  }
  std::printf("%-32s %22s %10d %8.1f h\n", "TOTAL", "", total_sessions,
              total_hours);
  std::puts("\nShape check (paper): 531 sessions, 67 hours, 8 config rows,"
            " PC rows largest (89/76 sessions).");
  return 0;
}
