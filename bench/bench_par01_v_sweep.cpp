// Reproduces the paper's §4.4.1 V-parameter study: the payload-variation
// tolerance used by the majority-voting packet-group labeler, swept over
// 1-20%. Two views: (1) labeling precision/recall against constructed
// streams with known group membership; (2) end-to-end title-classification
// accuracy when the pipeline uses each V.
#include <cstdio>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

namespace {

const double kVs[] = {0.01, 0.05, 0.10, 0.15, 0.20};

/// Constructs a slot of interleaved steady-band packets (ground truth:
/// steady) and uniformly random packets (ground truth: sparse), then
/// scores the labeler. Band width ~8% of center: tight enough that V=10%
/// keeps it together, loose enough that V=1% shatters it.
void labeling_quality(double v, double* steady_recall, double* sparse_recall) {
  ml::Rng rng(42);
  std::size_t steady_total = 0;
  std::size_t steady_hit = 0;
  std::size_t sparse_total = 0;
  std::size_t sparse_hit = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> sizes;
    std::vector<bool> is_steady;
    const double center = rng.uniform(300.0, 1100.0);
    for (int i = 0; i < 60; ++i) {
      if (rng.chance(0.65)) {
        sizes.push_back(static_cast<std::uint32_t>(
            center * rng.uniform(0.96, 1.04)));
        is_steady.push_back(true);
      } else {
        sizes.push_back(static_cast<std::uint32_t>(rng.uniform(60.0, 1400.0)));
        is_steady.push_back(false);
      }
    }
    core::GroupLabelerParams params;
    params.v_fraction = v;
    const auto labels = core::label_packet_groups(sizes, params);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == core::PacketGroup::kFull) continue;
      if (is_steady[i]) {
        ++steady_total;
        if (labels[i] == core::PacketGroup::kSteady) ++steady_hit;
      } else {
        ++sparse_total;
        if (labels[i] == core::PacketGroup::kSparse) ++sparse_hit;
      }
    }
  }
  *steady_recall = static_cast<double>(steady_hit) / steady_total;
  *sparse_recall = static_cast<double>(sparse_hit) / sparse_total;
}

}  // namespace

int main() {
  std::puts("== §4.4.1: payload-variation tolerance V ==\n");

  std::puts("(1) group-labeling quality on constructed slots:");
  std::printf("%6s %15s %15s\n", "V", "steady recall", "sparse recall");
  for (double v : kVs) {
    double steady = 0.0;
    double sparse = 0.0;
    labeling_quality(v, &steady, &sparse);
    std::printf("%5.0f%% %14.1f%% %14.1f%%\n", 100 * v, 100 * steady,
                100 * sparse);
  }

  std::puts("\n(2) end-to-end title accuracy per V:");
  sim::LabPlanOptions plan;
  plan.seed = 101;
  plan.scale = 0.4;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);
  std::printf("%6s %10s\n", "V", "accuracy");
  for (double v : kVs) {
    core::TitleDatasetOptions options;
    options.attributes.group_params.v_fraction = v;
    options.augment_copies = 1;
    const ml::Dataset data = core::build_title_dataset(specs, options);
    ml::Rng rng(11);
    const auto split = ml::stratified_split(data, 0.3, rng);
    ml::RandomForest forest(
        ml::RandomForestParams{.n_trees = 200, .max_depth = 10, .seed = 3});
    forest.fit(split.train);
    std::printf("%5.0f%% %9.1f%%\n", 100 * v, 100 * forest.score(split.test));
  }

  std::puts("\nShape check (paper): very low V (1-5%) mislabels slightly"
            " varying steady packets as sparse; very high V (15-20%)"
            " absorbs sparse packets into steady; V=10% balances both and"
            " yields the best labeling.");
  return 0;
}
