// Extension bench (beyond the paper): would gradient-boosted trees beat
// the paper's Random Forest choice for game-title classification? The
// paper evaluates RF/SVM/KNN; GBT is the natural fourth candidate an
// operator would try next. Compared on identical splits, with training
// and inference cost reported.
#include <chrono>
#include <cstdio>

#include "core/training.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace cgctx;

namespace {

template <typename Model>
void evaluate(const char* name, Model& model, const ml::Dataset& train,
              const ml::Dataset& test) {
  const auto t0 = std::chrono::steady_clock::now();
  model.fit(train);
  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto t1 = std::chrono::steady_clock::now();
  const double accuracy = model.score(test);
  const double infer_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t1)
          .count() /
      static_cast<double>(test.size());
  std::printf("%-28s %9.1f%% %10.2f s %12.1f us\n", name, 100 * accuracy,
              train_s, infer_us);
}

}  // namespace

int main() {
  std::puts("== Extension: gradient boosting vs the paper's Random Forest ==\n");

  sim::LabPlanOptions plan;
  plan.seed = 3131;
  plan.scale = 0.5;
  plan.gameplay_seconds = 10.0;
  const auto specs = sim::lab_session_plan(plan);
  core::TitleDatasetOptions options;
  options.augment_copies = 1;
  const ml::Dataset data = core::build_title_dataset(specs, options);
  ml::Rng rng(31);
  const auto split = ml::stratified_split(data, 0.3, rng);
  std::printf("(%zu train / %zu test sessions, 13 classes)\n\n",
              split.train.size(), split.test.size());

  std::printf("%-28s %10s %12s %15s\n", "model", "accuracy", "train",
              "infer/row");
  {
    ml::RandomForest model(ml::RandomForestParams{
        .n_trees = 500, .max_depth = 10, .seed = 1});
    evaluate("RandomForest(500, d10)", model, split.train, split.test);
  }
  {
    ml::GradientBoosting model(ml::GradientBoostingParams{
        .n_rounds = 100, .max_depth = 3, .learning_rate = 0.15, .seed = 2});
    evaluate("GBT(100 rounds, d3)", model, split.train, split.test);
  }
  {
    ml::GradientBoosting model(ml::GradientBoostingParams{
        .n_rounds = 250, .max_depth = 3, .learning_rate = 0.08, .seed = 3});
    evaluate("GBT(250 rounds, d3)", model, split.train, split.test);
  }
  {
    ml::GradientBoosting model(ml::GradientBoostingParams{
        .n_rounds = 100, .max_depth = 5, .learning_rate = 0.1, .seed = 4});
    evaluate("GBT(100 rounds, d5)", model, split.train, split.test);
  }

  std::puts("\nShape check: boosting is competitive with the forest on"
            " accuracy but trains one tree per class per round (13x the"
            " sequential work here) — the paper's RF pick remains the"
            " better operational trade-off for this task.");
  return 0;
}
