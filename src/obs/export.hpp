// Snapshot exporters: Prometheus text exposition and JSON.
//
// The registry snapshot is the single source; both exporters are pure
// functions over it so a scrape endpoint, a `--metrics-out` file dump,
// and a test golden-compare all see the same bytes for the same state.
//
// Prometheus specifics:
//  - metric names are sanitized to [a-zA-Z0-9_:] (invalid bytes -> '_');
//  - label values escape backslash, double quote and newline per the
//    text-exposition spec; HELP text escapes backslash and newline;
//  - histogram series expose cumulative `le` buckets at power-of-two
//    nanosecond boundaries (every other octave of the log-linear
//    histogram), then `+Inf`, `_sum`, and `_count`. The `le="+Inf"`
//    sample always equals `_count`.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cgctx::obs {

/// Cumulative `le` bucket bounds used for histogram exposition, in the
/// histogram's value unit (nanoseconds for the pipeline's timers):
/// 2^10, 2^12, ..., 2^32. Exposed for the golden-format tests.
inline constexpr unsigned kExportBucketMinOctave = 10;
inline constexpr unsigned kExportBucketOctaveStep = 2;
inline constexpr unsigned kExportBucketMaxOctave = 32;

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string prometheus_escape_label(std::string_view value);

/// Sanitizes a metric name to the Prometheus charset.
std::string prometheus_sanitize_name(std::string_view name);

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view value);

/// Full text-exposition-format page for a snapshot.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON object {"metrics":[...]} with one entry per series; histograms
/// carry count/sum/max plus the summarized percentiles.
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace cgctx::obs
