// Lock-free log-linear histogram (HdrHistogram-style).
//
// The unified telemetry plane's distribution primitive: each power-of-two
// range is split into 16 linear sub-buckets, giving ~6% relative
// resolution over [0, ~4.4 s in nanoseconds] with a fixed 528-counter
// footprint and wait-free recording (one relaxed fetch_add). Grown out of
// core::ProbeStats (which now aliases these types) so every registry
// histogram — probe latencies, pipeline stage timers — shares one bucket
// scheme and one percentile summarizer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace cgctx::obs {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 4;   ///< sub-buckets per octave: 16
  static constexpr unsigned kOctaves = 32;  ///< covers up to 2^32 ns
  static constexpr std::size_t kNumBuckets = (kOctaves + 1) << kSubBits;

  void record(std::uint64_t nanos);

  /// Bucket index for a value (exposed for the bucket math tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t nanos);
  /// Lower bound of a bucket's value range, the inverse of bucket_index.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t index);

  /// Relaxed-read copy of all counters.
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Percentile summary computed from histogram buckets.
struct LatencySummary {
  std::uint64_t samples = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Summarizes histogram bucket counts (as returned by
/// LatencyHistogram::snapshot, or several of them summed element-wise).
/// `max_ns` is the exact observed maximum, carried separately because
/// buckets only bound it from below.
LatencySummary summarize_latency(std::span<const std::uint64_t> buckets,
                                 std::uint64_t max_ns);

}  // namespace cgctx::obs
