#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace cgctx::obs {

namespace {

/// Prometheus sample values: exact integers print without an exponent or
/// trailing ".0" (counters stay grep-able); everything else gets enough
/// digits to round-trip.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// Renders a label set as {k="v",...}; `extra` appends one final pair
/// (the histogram `le` label). Empty set and empty extra -> "".
std::string render_labels(const MetricLabels& labels,
                          std::string_view extra_key = {},
                          std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_sanitize_name(key);
    out += "=\"";
    out += prometheus_escape_label(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string prometheus_sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += alpha || (digit && i > 0) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string_view last_name;
  for (const MetricSeries& series : snapshot.series) {
    const std::string name = prometheus_sanitize_name(series.name);
    // HELP/TYPE once per metric family; the snapshot is name-sorted so
    // same-name series (label variants) are adjacent.
    if (series.name != last_name) {
      last_name = series.name;
      if (!series.help.empty())
        out += "# HELP " + name + " " + escape_help(series.help) + "\n";
      out += "# TYPE " + name + " ";
      out += to_string(series.kind);
      out += '\n';
    }
    if (series.kind != MetricKind::kHistogram) {
      out += name + render_labels(series.labels) + " " +
             format_number(series.value) + "\n";
      continue;
    }
    // Cumulative le buckets at power-of-two boundaries. A raw log-linear
    // bucket's values all lie below the next octave boundary, so the
    // prefix sum up to bucket_index(2^k) is exactly the count of samples
    // below 2^k.
    std::uint64_t cumulative = 0;
    std::size_t next_raw = 0;
    for (unsigned octave = kExportBucketMinOctave;
         octave <= kExportBucketMaxOctave; octave += kExportBucketOctaveStep) {
      const std::uint64_t bound = 1ull << octave;
      const std::size_t end = LatencyHistogram::bucket_index(bound);
      for (; next_raw < end && next_raw < series.buckets.size(); ++next_raw)
        cumulative += series.buckets[next_raw];
      char le[32];
      std::snprintf(le, sizeof(le), "%" PRIu64, bound);
      out += name + "_bucket" + render_labels(series.labels, "le", le) + " " +
             format_number(static_cast<double>(cumulative)) + "\n";
    }
    out += name + "_bucket" + render_labels(series.labels, "le", "+Inf") +
           " " + format_number(static_cast<double>(series.count)) + "\n";
    out += name + "_sum" + render_labels(series.labels) + " " +
           format_number(static_cast<double>(series.sum)) + "\n";
    out += name + "_count" + render_labels(series.labels) + " " +
           format_number(static_cast<double>(series.count)) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricSeries& series : snapshot.series) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(series.name) << "\",\"kind\":\""
       << to_string(series.kind) << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : series.labels) {
      if (!first_label) os << ',';
      first_label = false;
      os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
    }
    os << '}';
    if (series.kind == MetricKind::kHistogram) {
      const LatencySummary summary =
          summarize_latency(series.buckets, series.max);
      os << ",\"count\":" << series.count << ",\"sum\":" << series.sum
         << ",\"max\":" << series.max << ",\"p50_us\":" << summary.p50_us
         << ",\"p90_us\":" << summary.p90_us
         << ",\"p99_us\":" << summary.p99_us;
    } else {
      os << ",\"value\":" << format_number(series.value);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace cgctx::obs
