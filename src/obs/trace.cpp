#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

namespace cgctx::obs {

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFlowPromoted: return "flow-promoted";
    case TraceEventType::kTitleVerdict: return "title-verdict";
    case TraceEventType::kStageTransition: return "stage-transition";
    case TraceEventType::kPatternDecision: return "pattern-decision";
    case TraceEventType::kQoeChange: return "qoe-change";
    case TraceEventType::kSessionRetired: return "session-retired";
  }
  return "?";
}

void TraceEvent::set_name(std::string_view s) {
  const std::size_t n = std::min(s.size(), name.size() - 1);
  std::memcpy(name.data(), s.data(), n);
  name[n] = '\0';
}

std::string_view TraceEvent::name_view() const {
  return std::string_view(name.data());
}

DecisionTraceRing::DecisionTraceRing(std::size_t capacity) {
  ring_.resize(std::bit_ceil(std::max<std::size_t>(capacity, 2)));
}

void DecisionTraceRing::push(const TraceEvent& event) {
  ring_[pushed_ & (ring_.size() - 1)] = event;
  ++pushed_;
}

std::size_t DecisionTraceRing::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(pushed_, ring_.size()));
}

std::uint64_t DecisionTraceRing::overwritten() const {
  return pushed_ - size();
}

const TraceEvent& DecisionTraceRing::at(std::size_t i) const {
  const std::uint64_t oldest = pushed_ - size();
  return ring_[(oldest + i) & (ring_.size() - 1)];
}

void DecisionTraceRing::clear() { pushed_ = 0; }

void DecisionTraceRing::append_to(std::vector<TraceEvent>& out) const {
  const std::size_t n = size();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(at(i));
}

std::string to_jsonl(const TraceEvent& event) {
  // The name field is operator-supplied class-name text; escape the JSON
  // specials by hand (it cannot contain control characters in practice,
  // but a quote or backslash must not break the line format).
  std::string name;
  for (const char c : event.name_view()) {
    if (c == '\\') name += "\\\\";
    else if (c == '"') name += "\\\"";
    else name += c;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"session\":%llu,\"t\":%.3f,\"event\":\"%s\",\"label\":%d,"
                "\"confidence\":%.4f,\"name\":\"%s\"}\n",
                static_cast<unsigned long long>(event.session_id),
                event.at_seconds, to_string(event.type), event.label,
                event.confidence, name.c_str());
  return buf;
}

void write_jsonl(const DecisionTraceRing& ring, std::ostream& out) {
  for (std::size_t i = 0; i < ring.size(); ++i) out << to_jsonl(ring.at(i));
}

void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  for (const TraceEvent& event : events) out << to_jsonl(event);
}

}  // namespace cgctx::obs
