// Scoped profiling timer feeding a registry histogram.
//
// Wraps a pipeline stage (title classify, stage classify, pattern gate)
// in two steady_clock reads and one wait-free histogram record. Null
// histogram -> fully disarmed: no clock reads, so un-instrumented
// engines pay one branch per scope and nothing else.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace cgctx::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin_)
            .count();
    histogram_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace cgctx::obs
