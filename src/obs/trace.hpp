// Per-session decision tracing: why did the probe say what it said?
//
// Aggregate metrics tell an operator *that* unknown-title verdicts are
// climbing; the decision trace tells them *why a given session* was
// classified the way it was: flow promotion, the title verdict and its
// confidence, every stage transition, pattern decisions and flips, QoE
// level changes, and retirement. Events are fixed-size POD records (the
// class name is truncated into an inline char array) appended to a
// fixed-capacity ring, so tracing a hot session performs zero heap
// allocations and old sessions age out instead of growing state.
//
// The ring is single-writer: each probe shard (or single-threaded
// driver) owns one and drains it after the writer has stopped (or from
// the writer thread). Drained events serialize as JSONL — one JSON
// object per line, one stream per session_id.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cgctx::obs {

enum class TraceEventType : std::uint8_t {
  kFlowPromoted,     ///< detector promoted a flow to a session
  kTitleVerdict,     ///< launch-window title classification (or unknown)
  kStageTransition,  ///< player-activity stage changed
  kPatternDecision,  ///< confident pattern inference (first or flip)
  kQoeChange,        ///< effective QoE level changed
  kSessionRetired,   ///< session idled out / flushed; report emitted
};

const char* to_string(TraceEventType type);

struct TraceEvent {
  std::uint64_t session_id = 0;
  double at_seconds = 0.0;  ///< seconds since the session's flow began
  TraceEventType type = TraceEventType::kFlowPromoted;
  /// Label index of the decision (stage / pattern / title / QoE level);
  /// -1 when not applicable (unknown title, flow promotion).
  std::int32_t label = -1;
  /// Model confidence of the decision; 0 when not applicable.
  double confidence = 0.0;
  /// Human-readable decision name, truncated to the inline capacity.
  std::array<char, 24> name{};

  void set_name(std::string_view s);
  [[nodiscard]] std::string_view name_view() const;
};

class DecisionTraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit DecisionTraceRing(std::size_t capacity);

  /// Appends one event, overwriting the oldest once full. Single-writer;
  /// not synchronized with concurrent drains.
  void push(const TraceEvent& event);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Lifetime events pushed.
  [[nodiscard]] std::uint64_t recorded() const { return pushed_; }
  /// Events lost to overwriting (recorded() - size()).
  [[nodiscard]] std::uint64_t overwritten() const;

  /// i-th held event, 0 = oldest surviving.
  [[nodiscard]] const TraceEvent& at(std::size_t i) const;

  void clear();

  /// Appends all held events, oldest first.
  void append_to(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;
};

/// One JSONL line (with trailing newline) for an event.
std::string to_jsonl(const TraceEvent& event);

/// Writes every held event as JSONL, oldest first.
void write_jsonl(const DecisionTraceRing& ring, std::ostream& out);
void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out);

}  // namespace cgctx::obs
