// MetricsRegistry: the unified telemetry plane's instrument store.
//
// Every component that wants operator visibility — probes, session
// engines, the batch pipeline — registers named counters, gauges, and
// histograms here once (registration takes a mutex; it happens at
// construction time, never on a packet), then records through stable
// instrument references whose mutators are single relaxed atomics:
// wait-free, shareable across threads, and safe to hammer from the
// per-packet hot path. snapshot() can run from any thread (a scrape
// endpoint, a bench, a test) while recorders keep counting; the result
// feeds the Prometheus/JSON exporters in obs/export.hpp.
//
// Series identity is (name, sorted labels): registering the same identity
// twice returns the same instrument (so facades can bind lazily), while
// the same name with different labels yields distinct series — the shard
// label pattern ShardedProbe uses. Re-registering a name under a
// different instrument kind throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace cgctx::obs {

/// One label pair; a series' label set is kept sorted by key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Wait-free recording, exact under concurrency.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (live flows, queue depth). record_max() is the
/// high-water-mark flavor: raises the gauge, never lowers it.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void record_max(std::int64_t v) {
    std::int64_t seen = v_.load(std::memory_order_relaxed);
    while (v > seen &&
           !v_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Distribution instrument: log-linear buckets plus exact count, sum and
/// max (buckets only bound the max from below). Values are unitless
/// uint64s; the naming convention puts the unit in the metric name
/// (`_ns` for the pipeline's timers).
class Histogram {
 public:
  void record(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<std::uint64_t> bucket_snapshot() const {
    return buckets_.snapshot();
  }
  [[nodiscard]] LatencySummary summary() const;

 private:
  LatencyHistogram buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// One series of a snapshot. Counter/gauge series carry `value`;
/// histogram series carry the raw log-linear buckets plus count/sum/max.
struct MetricSeries {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  MetricLabels labels;
  double value = 0.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
};

/// Relaxed-read copy of every registered series, sorted by
/// (name, labels) so exports are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSeries> series;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) an instrument. Returned references are stable
  /// for the registry's lifetime. Throws std::invalid_argument when the
  /// name is already registered under a different kind, or when `name`
  /// is empty.
  Counter& counter(std::string_view name, std::string_view help,
                   MetricLabels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               MetricLabels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       MetricLabels labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        MetricKind kind, MetricLabels labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace cgctx::obs
