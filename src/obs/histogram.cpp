#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace cgctx::obs {

std::size_t LatencyHistogram::bucket_index(std::uint64_t nanos) {
  // Values below 2^kSubBits land in the linear bottom range one-to-one;
  // above it, the top kSubBits bits after the leading one select the
  // sub-bucket within the value's octave.
  if (nanos < (1ull << kSubBits)) return static_cast<std::size_t>(nanos);
  const unsigned msb = std::bit_width(nanos) - 1;  // >= kSubBits
  const unsigned octave = std::min(msb, kOctaves + kSubBits - 1);
  const std::uint64_t clamped =
      octave == msb ? nanos : (1ull << (octave + 1)) - 1;
  const std::uint64_t sub =
      (clamped >> (octave - kSubBits)) & ((1ull << kSubBits) - 1);
  return ((octave - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t index) {
  if (index < (1ull << kSubBits)) return index;
  const unsigned octave =
      static_cast<unsigned>(index >> kSubBits) - 1 + kSubBits;
  const std::uint64_t sub = index & ((1ull << kSubBits) - 1);
  return (1ull << octave) + (sub << (octave - kSubBits));
}

void LatencyHistogram::record(std::uint64_t nanos) {
  buckets_[bucket_index(nanos)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> LatencyHistogram::snapshot() const {
  std::vector<std::uint64_t> out(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

LatencySummary summarize_latency(std::span<const std::uint64_t> buckets,
                                 std::uint64_t max_ns) {
  LatencySummary summary;
  for (const std::uint64_t count : buckets) summary.samples += count;
  summary.max_us = static_cast<double>(max_ns) / 1e3;
  if (summary.samples == 0) return summary;

  const auto value_at = [&](double fraction) {
    const auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(summary.samples - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen > target)
        return static_cast<double>(LatencyHistogram::bucket_floor(i)) / 1e3;
    }
    return summary.max_us;
  };
  summary.p50_us = value_at(0.50);
  summary.p90_us = value_at(0.90);
  summary.p99_us = value_at(0.99);
  return summary;
}

}  // namespace cgctx::obs
