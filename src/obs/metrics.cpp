#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgctx::obs {

void Histogram::record(std::uint64_t value) {
  buckets_.record(value);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

LatencySummary Histogram::summary() const {
  return summarize_latency(buckets_.snapshot(), max());
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, MetricKind kind,
    MetricLabels labels) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: metric name is empty");
  std::sort(labels.begin(), labels.end());
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name != name) continue;
    if (entry->kind != kind)
      throw std::invalid_argument(
          "MetricsRegistry: metric '" + std::string(name) +
          "' already registered as a different kind");
    if (entry->labels == labels) return *entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = kind;
  entry->labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help,
                                  MetricLabels labels) {
  return *find_or_create(name, help, MetricKind::kCounter, std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              MetricLabels labels) {
  return *find_or_create(name, help, MetricKind::kGauge, std::move(labels))
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      MetricLabels labels) {
  return *find_or_create(name, help, MetricKind::kHistogram,
                         std::move(labels))
              .histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap.series.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSeries series;
      series.name = entry->name;
      series.help = entry->help;
      series.kind = entry->kind;
      series.labels = entry->labels;
      switch (entry->kind) {
        case MetricKind::kCounter:
          series.value = static_cast<double>(entry->counter->value());
          break;
        case MetricKind::kGauge:
          series.value = static_cast<double>(entry->gauge->value());
          break;
        case MetricKind::kHistogram:
          series.buckets = entry->histogram->bucket_snapshot();
          series.count = entry->histogram->count();
          series.sum = entry->histogram->sum();
          series.max = entry->histogram->max();
          break;
      }
      snap.series.push_back(std::move(series));
    }
  }
  std::sort(snap.series.begin(), snap.series.end(),
            [](const MetricSeries& a, const MetricSeries& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

}  // namespace cgctx::obs
