#include "net/framing.hpp"

#include "net/byte_io.hpp"

namespace cgctx::net {

namespace {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::size_t kEthernetHeaderSize = 14;
constexpr std::size_t kIpv4HeaderSize = 20;
constexpr std::size_t kUdpHeaderSize = 8;

}  // namespace

std::vector<std::uint8_t> encode_udp_frame(const FiveTuple& tuple,
                                           std::span<const std::uint8_t> payload) {
  ByteWriter w;
  // Ethernet II. Destination first. Direction on the wire is implied by
  // the IP addresses; MACs are cosmetic.
  w.write_bytes(std::span<const std::uint8_t>(kServerMac, 6));
  w.write_bytes(std::span<const std::uint8_t>(kClientMac, 6));
  w.write_u16_be(kEtherTypeIpv4);

  // IPv4 header, built separately so its checksum can be patched in.
  ByteWriter ip;
  const auto total_len =
      static_cast<std::uint16_t>(kIpv4HeaderSize + kUdpHeaderSize + payload.size());
  ip.write_u8(0x45);  // version 4, IHL 5
  ip.write_u8(0x00);  // DSCP/ECN
  ip.write_u16_be(total_len);
  ip.write_u16_be(0x0000);  // identification
  ip.write_u16_be(0x4000);  // flags: DF
  ip.write_u8(64);          // TTL
  ip.write_u8(tuple.protocol);
  ip.write_u16_be(0);  // checksum placeholder
  ip.write_u32_be(tuple.src_ip.value);
  ip.write_u32_be(tuple.dst_ip.value);
  auto ip_bytes = ip.take();
  const std::uint16_t csum = internet_checksum(ip_bytes);
  ip_bytes[10] = static_cast<std::uint8_t>(csum >> 8);
  ip_bytes[11] = static_cast<std::uint8_t>(csum & 0xff);
  w.write_bytes(ip_bytes);

  // UDP header. Checksum 0 = "not computed", valid for UDP/IPv4.
  w.write_u16_be(tuple.src_port);
  w.write_u16_be(tuple.dst_port);
  w.write_u16_be(static_cast<std::uint16_t>(kUdpHeaderSize + payload.size()));
  w.write_u16_be(0);

  w.write_bytes(payload);
  return w.take();
}

std::optional<DecodedFrame> decode_udp_frame(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  r.skip(12);  // MACs
  const std::uint16_t ethertype = r.read_u16_be();
  if (!r.ok() || ethertype != kEtherTypeIpv4) return std::nullopt;

  const std::size_t ip_start = r.offset();
  const std::uint8_t ver_ihl = r.read_u8();
  if (!r.ok() || (ver_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl_bytes = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl_bytes < kIpv4HeaderSize) return std::nullopt;
  r.skip(1);  // DSCP/ECN
  const std::uint16_t total_len = r.read_u16_be();
  r.skip(2);  // identification
  const std::uint16_t flags_frag = r.read_u16_be();
  if ((flags_frag & 0x2000) != 0 || (flags_frag & 0x1fff) != 0)
    return std::nullopt;  // fragmented
  r.skip(1);  // TTL
  const std::uint8_t protocol = r.read_u8();
  r.skip(2);  // checksum (verified over the whole header below)
  const std::uint32_t src_ip = r.read_u32_be();
  const std::uint32_t dst_ip = r.read_u32_be();
  if (!r.ok() || protocol != 17) return std::nullopt;
  if (frame.size() < ip_start + ihl_bytes) return std::nullopt;
  if (internet_checksum(frame.subspan(ip_start, ihl_bytes)) != 0)
    return std::nullopt;
  r.skip(ihl_bytes - kIpv4HeaderSize);  // IPv4 options, if any

  const std::uint16_t src_port = r.read_u16_be();
  const std::uint16_t dst_port = r.read_u16_be();
  const std::uint16_t udp_len = r.read_u16_be();
  r.skip(2);  // UDP checksum
  if (!r.ok() || udp_len < kUdpHeaderSize) return std::nullopt;
  const std::size_t payload_len = udp_len - kUdpHeaderSize;
  // Cross-check IP total length.
  if (total_len != ihl_bytes + udp_len) return std::nullopt;

  DecodedFrame out;
  out.tuple = FiveTuple{Ipv4Addr{src_ip}, Ipv4Addr{dst_ip}, src_port, dst_port, 17};
  out.payload = r.read_bytes(payload_len);
  if (!r.ok()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> build_payload(const PacketRecord& pkt) {
  ByteWriter w;
  std::size_t header_bytes = 0;
  if (pkt.rtp.has_value()) {
    auto rtp_bytes = pkt.rtp->serialize();
    header_bytes = rtp_bytes.size();
    w.write_bytes(rtp_bytes);
  }
  if (pkt.payload_size > header_bytes) {
    const std::size_t fill = pkt.payload_size - header_bytes;
    const std::uint8_t seed =
        pkt.rtp ? static_cast<std::uint8_t>(pkt.rtp->sequence & 0xff) : 0xa5;
    w.write_fill(fill, seed);
  }
  return w.take();
}

PacketRecord record_from_frame(const DecodedFrame& frame, Timestamp timestamp,
                               Ipv4Addr client_ip) {
  PacketRecord pkt;
  pkt.timestamp = timestamp;
  pkt.tuple = frame.tuple;
  pkt.payload_size = static_cast<std::uint32_t>(frame.payload.size());
  pkt.direction = frame.tuple.src_ip == client_ip ? Direction::kUpstream
                                                  : Direction::kDownstream;
  pkt.rtp = parse_rtp(frame.payload);
  return pkt;
}

}  // namespace cgctx::net
