#include "net/byte_io.hpp"

#include <algorithm>

namespace cgctx::net {

bool ByteReader::require(std::size_t n) {
  if (failed_ || data_.size() - offset_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::read_u8() {
  if (!require(1)) return 0;
  return data_[offset_++];
}

std::uint16_t ByteReader::read_u16_be() {
  if (!require(2)) return 0;
  const auto hi = static_cast<std::uint16_t>(data_[offset_]);
  const auto lo = static_cast<std::uint16_t>(data_[offset_ + 1]);
  offset_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::read_u32_be() {
  if (!require(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[offset_ + i];
  offset_ += 4;
  return v;
}

std::uint16_t ByteReader::read_u16_le() {
  if (!require(2)) return 0;
  const auto lo = static_cast<std::uint16_t>(data_[offset_]);
  const auto hi = static_cast<std::uint16_t>(data_[offset_ + 1]);
  offset_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::read_u32_le() {
  if (!require(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | data_[offset_ + static_cast<std::size_t>(i)];
  offset_ += 4;
  return v;
}

std::vector<std::uint8_t> ByteReader::read_bytes(std::size_t n) {
  if (!require(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                                data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  if (require(n)) offset_ += n;
}

void ByteWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::write_u16_be(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::write_u32_be(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift & 0xff));
}

void ByteWriter::write_u16_le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32_le(std::uint32_t v) {
  for (int shift = 0; shift <= 24; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift & 0xff));
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_fill(std::size_t n, std::uint8_t fill) {
  buf_.insert(buf_.end(), n, fill);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2)
    sum += static_cast<std::uint32_t>(bytes[i]) << 8 | bytes[i + 1];
  if (i < bytes.size()) sum += static_cast<std::uint32_t>(bytes[i]) << 8;
  while (sum >> 16 != 0) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace cgctx::net
