#include "net/rtp.hpp"

#include "net/byte_io.hpp"

namespace cgctx::net {

std::vector<std::uint8_t> RtpHeader::serialize() const {
  ByteWriter w;
  w.write_u8(0x80);  // V=2, P=0, X=0, CC=0
  w.write_u8(static_cast<std::uint8_t>((marker ? 0x80 : 0x00) |
                                       (payload_type & 0x7f)));
  w.write_u16_be(sequence);
  w.write_u32_be(rtp_timestamp);
  w.write_u32_be(ssrc);
  return w.take();
}

std::optional<RtpHeader> parse_rtp(std::span<const std::uint8_t> payload) {
  if (payload.size() < RtpHeader::kWireSize) return std::nullopt;
  ByteReader r(payload);
  const std::uint8_t b0 = r.read_u8();
  if ((b0 >> 6) != 2) return std::nullopt;       // version must be 2
  if ((b0 & 0x20) != 0) return std::nullopt;     // padding unsupported
  if ((b0 & 0x10) != 0) return std::nullopt;     // extension unsupported
  if ((b0 & 0x0f) != 0) return std::nullopt;     // CSRC list unsupported
  const std::uint8_t b1 = r.read_u8();
  RtpHeader h;
  h.marker = (b1 & 0x80) != 0;
  h.payload_type = b1 & 0x7f;
  h.sequence = r.read_u16_be();
  h.rtp_timestamp = r.read_u32_be();
  h.ssrc = r.read_u32_be();
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace cgctx::net
