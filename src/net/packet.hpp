// Core packet and flow-key types shared by the whole library.
//
// A PacketRecord is the library's lingua franca: the simulator produces
// them, the PCAP layer converts them to and from capture bytes, and the
// classification pipeline consumes them. It deliberately carries only the
// metadata the paper's method uses — timestamps, sizes, direction, the
// UDP five-tuple, and the parsed RTP header when present — not raw payload.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "net/rtp.hpp"
#include "net/time.hpp"

namespace cgctx::net {

/// Direction of a packet relative to the subscriber (client) side.
enum class Direction : std::uint8_t {
  kUpstream,    ///< client -> cloud server (player inputs)
  kDownstream,  ///< cloud server -> client (game video/audio)
};

/// Returns "up" or "down".
const char* to_string(Direction d);

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr{static_cast<std::uint32_t>(a) << 24 |
                    static_cast<std::uint32_t>(b) << 16 |
                    static_cast<std::uint32_t>(c) << 8 | d};
  }

  auto operator<=>(const Ipv4Addr&) const = default;
};

/// Renders dotted-quad notation, e.g. "10.0.0.1".
std::string to_string(Ipv4Addr addr);

/// Parses dotted-quad notation; nullopt on malformed input.
std::optional<Ipv4Addr> parse_ipv4(const std::string& text);

/// UDP/TCP flow five-tuple. For cloud-gaming streaming flows the protocol
/// is always UDP (17), but the field is kept so cross-traffic (TCP web
/// flows) can share the flow table.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 17;  // IPPROTO_UDP

  auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the opposite direction.
  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Canonical form: the lexicographically smaller of {this, reversed()},
  /// so both directions of one conversation map to one flow-table key.
  [[nodiscard]] FiveTuple canonical() const {
    FiveTuple rev = reversed();
    return *this < rev ? *this : rev;
  }
};

std::string to_string(const FiveTuple& t);

/// Stable FNV-1a hash of a tuple's fields. Hash the *canonical* tuple to
/// get a direction-independent flow hash (used to pick a probe shard, so
/// both directions of one conversation land on the same shard).
[[nodiscard]] std::size_t flow_hash(const FiveTuple& t);

/// One observed packet, as used by the classification pipeline.
struct PacketRecord {
  Timestamp timestamp = 0;        ///< arrival time, ns since trace epoch
  Direction direction = Direction::kDownstream;
  FiveTuple tuple;                ///< as seen on the wire (src = sender)
  std::uint32_t payload_size = 0; ///< application payload bytes (above UDP)
  std::optional<RtpHeader> rtp;   ///< parsed RTP header when the flow is RTP

  /// Total on-wire IP packet length: IPv4 (20) + UDP (8) + payload.
  [[nodiscard]] std::uint32_t ip_length() const { return 28 + payload_size; }
};

}  // namespace cgctx::net
