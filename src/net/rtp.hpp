// Real-time Transport Protocol (RFC 3550) fixed-header model.
//
// Cloud gaming platforms stream rendered video downstream and user inputs
// upstream inside RTP over UDP (paper §3.2). The pipeline needs the header
// fields for flow detection (version/SSRC consistency), frame-rate
// estimation (marker bit + RTP timestamp), and loss estimation (sequence
// numbers).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cgctx::net {

/// Parsed RTP fixed header (12 bytes, no CSRC/extension support needed for
/// the synthetic flows in this repo; packets carrying either are rejected
/// by parse and treated as non-RTP).
struct RtpHeader {
  std::uint8_t payload_type = 0;   ///< 7-bit PT
  bool marker = false;             ///< set on the last packet of a video frame
  std::uint16_t sequence = 0;      ///< increments per packet
  std::uint32_t rtp_timestamp = 0; ///< media clock; constant within a frame
  std::uint32_t ssrc = 0;          ///< stream source identifier

  static constexpr std::size_t kWireSize = 12;

  /// Serializes the 12-byte fixed header (V=2, P=0, X=0, CC=0).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
};

/// Parses an RTP fixed header from the start of a UDP payload. Returns
/// nullopt when the bytes cannot be a plain RTP v2 fixed header (wrong
/// version, padding/extension/CSRC present, or fewer than 12 bytes).
std::optional<RtpHeader> parse_rtp(std::span<const std::uint8_t> payload);

}  // namespace cgctx::net
