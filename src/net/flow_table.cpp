#include "net/flow_table.hpp"

#include <algorithm>

namespace cgctx::net {

void DirectionStats::add(const PacketRecord& pkt) {
  if (packets == 0) {
    min_payload = pkt.payload_size;
    max_payload = pkt.payload_size;
  } else {
    min_payload = std::min(min_payload, pkt.payload_size);
    max_payload = std::max(max_payload, pkt.payload_size);
  }
  ++packets;
  bytes += pkt.payload_size;
  if (pkt.rtp) {
    ++rtp_packets;
    if (!rtp_ssrc) rtp_ssrc = pkt.rtp->ssrc;
    if (*rtp_ssrc == pkt.rtp->ssrc) ++rtp_same_ssrc;
  }
}

double FlowState::downstream_bps() const {
  const Duration span = age();
  if (span <= 0) return 0.0;
  return static_cast<double>(down.bytes) * 8.0 / duration_to_seconds(span);
}

double FlowState::downstream_rtp_consistency() const {
  if (down.packets == 0) return 0.0;
  return static_cast<double>(down.rtp_same_ssrc) /
         static_cast<double>(down.packets);
}

const FlowState& FlowTable::add(const PacketRecord& pkt) {
  // Amortized lazy eviction: a periodic full scan keeps the table bounded
  // under flow churn without the owner having to run a timer. The scan
  // runs before the insert so it can never drop the packet's own flow.
  if (++adds_since_sweep_ >= kLazyEvictStride) {
    adds_since_sweep_ = 0;
    sweep_idle(pkt.timestamp, nullptr);
  }

  const FiveTuple key = pkt.tuple.canonical();
  auto [it, inserted] = flows_.try_emplace(key);
  FlowState& state = it->second;
  if (inserted) {
    state.key = key;
    state.first_seen = pkt.timestamp;
  }
  state.last_seen = std::max(state.last_seen, pkt.timestamp);
  (pkt.direction == Direction::kUpstream ? state.up : state.down).add(pkt);
  return state;
}

std::size_t FlowTable::sweep_idle(Timestamp now, std::vector<FlowState>* out) {
  std::size_t count = 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen > idle_timeout_) {
      if (out != nullptr) out->push_back(std::move(it->second));
      it = flows_.erase(it);
      ++count;
    } else {
      ++it;
    }
  }
  evictions_ += count;
  return count;
}

std::vector<FlowState> FlowTable::evict_idle(Timestamp now) {
  std::vector<FlowState> evicted;
  sweep_idle(now, &evicted);
  return evicted;
}

bool FlowTable::erase(const FiveTuple& tuple) {
  return flows_.erase(tuple.canonical()) > 0;
}

const FlowState* FlowTable::find(const FiveTuple& tuple) const {
  auto it = flows_.find(tuple.canonical());
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<const FlowState*> FlowTable::flows() const {
  std::vector<const FlowState*> out;
  out.reserve(flows_.size());
  for (const auto& [key, state] : flows_) out.push_back(&state);
  return out;
}

}  // namespace cgctx::net
