// Bounds-checked byte-buffer readers and writers.
//
// Network formats (Ethernet/IPv4/UDP/RTP headers, PCAP records) are
// serialized through these helpers so that every parse is explicitly
// bounds-checked and byte order is spelled out at each access. No struct
// punning, no reinterpret_cast of wire bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cgctx::net {

/// Reads integers from a byte span with explicit endianness and bounds
/// checks. All read_* calls advance the cursor; a failed read (not enough
/// bytes) sets the error flag and returns 0, after which ok() is false and
/// further reads also fail. Callers check ok() once after a parse sequence.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const {
    return failed_ ? 0 : data_.size() - offset_;
  }

  std::uint8_t read_u8();
  std::uint16_t read_u16_be();
  std::uint32_t read_u32_be();
  std::uint16_t read_u16_le();
  std::uint32_t read_u32_le();

  /// Copies `n` bytes into a vector; empty on failure.
  std::vector<std::uint8_t> read_bytes(std::size_t n);

  /// Skips `n` bytes.
  void skip(std::size_t n);

 private:
  [[nodiscard]] bool require(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

/// Appends integers to a growable byte buffer with explicit endianness.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u16_be(std::uint16_t v);
  void write_u32_be(std::uint32_t v);
  void write_u16_le(std::uint16_t v);
  void write_u32_le(std::uint32_t v);
  void write_bytes(std::span<const std::uint8_t> bytes);
  /// Appends `n` copies of `fill`.
  void write_fill(std::size_t n, std::uint8_t fill);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// RFC 1071 Internet checksum over a byte span (used by the IPv4 header).
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

}  // namespace cgctx::net
