#include "net/pcap.hpp"

#include <array>
#include <bit>
#include <stdexcept>

#include "net/byte_io.hpp"
#include "net/framing.hpp"

namespace cgctx::net {

namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

std::uint32_t byteswap32(std::uint32_t v) {
  return v >> 24 | (v >> 8 & 0xff00) | (v << 8 & 0xff0000) | v << 24;
}

std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>(v >> 8 | v << 8);
}

}  // namespace

PcapWriter::PcapWriter(const std::filesystem::path& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  if (!out_) throw std::runtime_error("PcapWriter: cannot open " + path.string());
  ByteWriter w;
  w.write_u32_le(kMagicNano);
  w.write_u16_le(2);  // version major
  w.write_u16_le(4);  // version minor
  w.write_u32_le(0);  // thiszone
  w.write_u32_le(0);  // sigfigs
  w.write_u32_le(snaplen_);
  w.write_u32_le(kLinkTypeEthernet);
  const auto& hdr = w.data();
  out_.write(reinterpret_cast<const char*>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
  if (!out_) throw std::runtime_error("PcapWriter: header write failed");
}

PcapWriter::~PcapWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() reports errors.
  }
}

void PcapWriter::write(const CapturedFrame& frame) {
  if (!out_.is_open()) throw std::runtime_error("PcapWriter: write after close");
  const std::uint32_t incl_len =
      std::min<std::uint32_t>(snaplen_, static_cast<std::uint32_t>(frame.bytes.size()));
  ByteWriter w;
  w.write_u32_le(static_cast<std::uint32_t>(frame.timestamp / kNanosPerSecond));
  w.write_u32_le(static_cast<std::uint32_t>(frame.timestamp % kNanosPerSecond));
  w.write_u32_le(incl_len);
  w.write_u32_le(frame.original_length != 0
                     ? frame.original_length
                     : static_cast<std::uint32_t>(frame.bytes.size()));
  const auto& rec = w.data();
  out_.write(reinterpret_cast<const char*>(rec.data()),
             static_cast<std::streamsize>(rec.size()));
  out_.write(reinterpret_cast<const char*>(frame.bytes.data()),
             static_cast<std::streamsize>(incl_len));
  if (!out_) throw std::runtime_error("PcapWriter: record write failed");
  ++frames_written_;
}

void PcapWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) throw std::runtime_error("PcapWriter: flush failed");
    out_.close();
  }
}

PcapReader::PcapReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("PcapReader: cannot open " + path.string());
  const std::uint32_t magic = read_u32();
  switch (magic) {
    case kMagicMicro: break;
    case kMagicNano: nanosecond_ = true; break;
    case kMagicMicroSwapped: swap_ = true; break;
    case kMagicNanoSwapped: swap_ = true; nanosecond_ = true; break;
    default: throw std::runtime_error("PcapReader: not a classic pcap file");
  }
  read_u16();  // version major
  read_u16();  // version minor
  read_u32();  // thiszone
  read_u32();  // sigfigs
  snaplen_ = read_u32();
  const std::uint32_t linktype = read_u32();
  if (!in_) throw std::runtime_error("PcapReader: truncated file header");
  if (linktype != kLinkTypeEthernet)
    throw std::runtime_error("PcapReader: unsupported link type");
}

std::uint32_t PcapReader::read_u32() {
  std::array<char, 4> raw{};
  in_.read(raw.data(), 4);
  std::uint32_t v = 0;
  // File values are stored in the writer's native order; we assemble
  // little-endian and swap if the magic said otherwise.
  for (int i = 3; i >= 0; --i)
    v = v << 8 | static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]);
  return swap_ ? byteswap32(v) : v;
}

std::uint16_t PcapReader::read_u16() {
  std::array<char, 2> raw{};
  in_.read(raw.data(), 2);
  auto v = static_cast<std::uint16_t>(static_cast<std::uint8_t>(raw[0]) |
                                      static_cast<std::uint8_t>(raw[1]) << 8);
  return swap_ ? byteswap16(v) : v;
}

std::optional<CapturedFrame> PcapReader::next() {
  const std::uint32_t ts_sec = read_u32();
  if (in_.eof()) return std::nullopt;
  const std::uint32_t ts_frac = read_u32();
  const std::uint32_t incl_len = read_u32();
  const std::uint32_t orig_len = read_u32();
  if (!in_) throw std::runtime_error("PcapReader: truncated record header");
  if (incl_len > snaplen_ && incl_len > (1u << 20))
    throw std::runtime_error("PcapReader: implausible record length");
  CapturedFrame frame;
  frame.timestamp = static_cast<Timestamp>(ts_sec) * kNanosPerSecond +
                    (nanosecond_ ? ts_frac : static_cast<Timestamp>(ts_frac) * 1000);
  frame.original_length = orig_len;
  frame.bytes.resize(incl_len);
  in_.read(reinterpret_cast<char*>(frame.bytes.data()), incl_len);
  if (!in_) throw std::runtime_error("PcapReader: truncated record body");
  return frame;
}

std::vector<CapturedFrame> PcapReader::read_all() {
  std::vector<CapturedFrame> frames;
  while (auto f = next()) frames.push_back(std::move(*f));
  return frames;
}

std::size_t write_pcap(const std::filesystem::path& path,
                       std::span<const PacketRecord> packets) {
  PcapWriter writer(path);
  for (const PacketRecord& pkt : packets) {
    const auto payload = build_payload(pkt);
    CapturedFrame frame;
    frame.timestamp = pkt.timestamp;
    frame.bytes = encode_udp_frame(pkt.tuple, payload);
    writer.write(frame);
  }
  writer.close();
  return writer.frames_written();
}

std::vector<PacketRecord> read_pcap(const std::filesystem::path& path,
                                    Ipv4Addr client_ip) {
  PcapReader reader(path);
  std::vector<PacketRecord> packets;
  while (auto frame = reader.next()) {
    auto decoded = decode_udp_frame(frame->bytes);
    if (!decoded) continue;
    packets.push_back(record_from_frame(*decoded, frame->timestamp, client_ip));
  }
  return packets;
}

}  // namespace cgctx::net
