// Minimal pcapng (pcap next generation) capture-file reader/writer.
//
// Modern Wireshark writes pcapng by default, so a capture pipeline that
// claims to consume field traces needs both formats. This implementation
// covers the blocks a single-interface Ethernet capture uses: Section
// Header (SHB), Interface Description (IDB, nanosecond timestamp
// resolution), and Enhanced Packet (EPB). Unknown blocks are skipped on
// read, as the spec requires; both byte orders are read, little-endian
// is written.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "net/pcap.hpp"  // CapturedFrame

namespace cgctx::net {

class PcapngWriter {
 public:
  /// Opens (truncates) `path`, writing the SHB and one Ethernet IDB with
  /// nanosecond timestamp resolution. Throws std::runtime_error on I/O
  /// failure.
  explicit PcapngWriter(const std::filesystem::path& path,
                        std::uint32_t snaplen = 65535);
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  /// Appends one Enhanced Packet Block (truncating to snaplen).
  void write(const CapturedFrame& frame);

  void close();

  [[nodiscard]] std::size_t frames_written() const { return frames_written_; }

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::size_t frames_written_ = 0;
};

class PcapngReader {
 public:
  /// Opens `path` and parses the SHB/IDB. Throws std::runtime_error when
  /// the file is not pcapng or the first interface is not Ethernet.
  explicit PcapngReader(const std::filesystem::path& path);

  /// Next packet frame, or nullopt at end of section/file. Non-packet
  /// blocks are skipped. Throws on structural corruption.
  std::optional<CapturedFrame> next();

  std::vector<CapturedFrame> read_all();

 private:
  std::uint32_t read_u32();
  std::uint16_t read_u16();
  /// Parses the interface's if_tsresol option into ticks-per-second.
  void parse_idb_options(std::span<const std::uint8_t> options);

  std::ifstream in_;
  bool swap_ = false;
  bool idb_seen_ = false;
  /// Timestamp ticks per second for interface 0 (default 1e6 per spec).
  std::uint64_t ticks_per_second_ = 1'000'000;
};

/// Whole-session conveniences mirroring write_pcap/read_pcap.
std::size_t write_pcapng(const std::filesystem::path& path,
                         std::span<const PacketRecord> packets);
std::vector<PacketRecord> read_pcapng(const std::filesystem::path& path,
                                      Ipv4Addr client_ip);

}  // namespace cgctx::net
