// Flow demultiplexer and per-flow accounting.
//
// The pipeline front-end receives an interleaved packet stream (many
// subscribers, gaming and cross traffic). The FlowTable groups packets by
// canonical five-tuple and maintains the running statistics the
// cloud-gaming flow detector consumes: per-direction packet/byte counts,
// rates over a sliding start window, RTP header consistency, and payload
// size extremes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/time.hpp"

namespace cgctx::net {

/// Running statistics for one direction of a flow.
struct DirectionStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  ///< payload bytes
  std::uint32_t min_payload = 0;
  std::uint32_t max_payload = 0;
  /// RTP bookkeeping: SSRC seen, count of packets that parsed as RTP, and
  /// count of RTP packets whose SSRC matched the first one.
  std::optional<std::uint32_t> rtp_ssrc;
  std::uint64_t rtp_packets = 0;
  std::uint64_t rtp_same_ssrc = 0;

  void add(const PacketRecord& pkt);
};

/// Aggregate state of one bidirectional flow.
struct FlowState {
  FiveTuple key;  ///< canonical tuple
  Timestamp first_seen = 0;
  Timestamp last_seen = 0;
  DirectionStats up;
  DirectionStats down;

  [[nodiscard]] Duration age() const { return last_seen - first_seen; }
  [[nodiscard]] std::uint64_t total_packets() const {
    return up.packets + down.packets;
  }

  /// Mean downstream payload throughput in bits/s over the flow lifetime;
  /// 0 while the flow has no measurable age.
  [[nodiscard]] double downstream_bps() const;

  /// Fraction of downstream packets that parsed as RTP with a consistent
  /// SSRC; 0 when no downstream packets have been seen.
  [[nodiscard]] double downstream_rtp_consistency() const;
};

/// Demultiplexes packets into FlowStates. Flows idle longer than
/// `idle_timeout` are evicted lazily: every `kLazyEvictStride` calls to
/// add(), the table sweeps and discards idle entries (amortized O(1) per
/// packet, no timer machinery), so the table stays bounded under
/// sustained churn even if the owner never sweeps explicitly. Callers
/// that want the evicted states call evict_idle() themselves.
class FlowTable {
 public:
  /// One internal idle sweep per this many add() calls.
  static constexpr std::uint64_t kLazyEvictStride = 512;

  explicit FlowTable(Duration idle_timeout = 60 * kNanosPerSecond)
      : idle_timeout_(idle_timeout) {}

  /// Accounts one packet; returns the (updated) state of its flow. The
  /// returned reference stays valid until the flow itself is evicted or
  /// erased (map nodes are stable under other erasures).
  const FlowState& add(const PacketRecord& pkt);

  /// Removes and returns flows idle at `now` for longer than the timeout.
  std::vector<FlowState> evict_idle(Timestamp now);

  /// Drops one flow by (any orientation of) its tuple; returns whether an
  /// entry existed. Erasure is not counted as an eviction.
  bool erase(const FiveTuple& tuple);

  [[nodiscard]] std::size_t size() const { return flows_.size(); }

  /// Total flows evicted for idleness over the table's lifetime (both
  /// explicit evict_idle() sweeps and the lazy add() sweeps).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Looks up a flow by (any orientation of) its tuple.
  [[nodiscard]] const FlowState* find(const FiveTuple& tuple) const;

  /// Snapshot of all live flows (ordered by canonical key).
  [[nodiscard]] std::vector<const FlowState*> flows() const;

 private:
  /// Shared sweep: erases idle entries, moving them into `out` if given.
  std::size_t sweep_idle(Timestamp now, std::vector<FlowState>* out);

  std::map<FiveTuple, FlowState> flows_;
  Duration idle_timeout_;
  std::uint64_t adds_since_sweep_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cgctx::net
