#include "net/packet.hpp"

#include <charconv>
#include <sstream>

namespace cgctx::net {

const char* to_string(Direction d) {
  return d == Direction::kUpstream ? "up" : "down";
}

std::string to_string(Ipv4Addr addr) {
  std::ostringstream os;
  os << (addr.value >> 24 & 0xff) << '.' << (addr.value >> 16 & 0xff) << '.'
     << (addr.value >> 8 & 0xff) << '.' << (addr.value & 0xff);
  return os.str();
}

std::optional<Ipv4Addr> parse_ipv4(const std::string& text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    value = value << 8 | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{value};
}

std::string to_string(const FiveTuple& t) {
  std::ostringstream os;
  os << to_string(t.src_ip) << ':' << t.src_port << " -> "
     << to_string(t.dst_ip) << ':' << t.dst_port << '/'
     << (t.protocol == 17 ? "udp" : t.protocol == 6 ? "tcp" : "other");
  return os.str();
}

}  // namespace cgctx::net
