#include "net/packet.hpp"

#include <charconv>
#include <sstream>

namespace cgctx::net {

const char* to_string(Direction d) {
  return d == Direction::kUpstream ? "up" : "down";
}

std::string to_string(Ipv4Addr addr) {
  std::ostringstream os;
  os << (addr.value >> 24 & 0xff) << '.' << (addr.value >> 16 & 0xff) << '.'
     << (addr.value >> 8 & 0xff) << '.' << (addr.value & 0xff);
  return os.str();
}

std::optional<Ipv4Addr> parse_ipv4(const std::string& text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    value = value << 8 | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{value};
}

std::string to_string(const FiveTuple& t) {
  std::ostringstream os;
  os << to_string(t.src_ip) << ':' << t.src_port << " -> "
     << to_string(t.dst_ip) << ':' << t.dst_port << '/'
     << (t.protocol == 17 ? "udp" : t.protocol == 6 ? "tcp" : "other");
  return os.str();
}

std::size_t flow_hash(const FiveTuple& t) {
  // FNV-1a over the tuple fields, widened to 64 bits so the low bits a
  // modulo shard-picker consumes are well mixed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(t.src_ip.value, 4);
  mix(t.dst_ip.value, 4);
  mix(t.src_port, 2);
  mix(t.dst_port, 2);
  mix(t.protocol, 1);
  return static_cast<std::size_t>(h);
}

}  // namespace cgctx::net
