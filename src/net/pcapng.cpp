#include "net/pcapng.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "net/byte_io.hpp"
#include "net/framing.hpp"
#include "net/time.hpp"

namespace cgctx::net {

namespace {

constexpr std::uint32_t kShbType = 0x0A0D0D0A;
constexpr std::uint32_t kIdbType = 0x00000001;
constexpr std::uint32_t kEpbType = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;
constexpr std::uint32_t kByteOrderMagicSwapped = 0x4D3C2B1A;
constexpr std::uint16_t kLinkEthernet = 1;
constexpr std::uint16_t kOptTsResol = 9;
constexpr std::uint16_t kOptEnd = 0;

std::uint32_t byteswap32(std::uint32_t v) {
  return v >> 24 | (v >> 8 & 0xff00) | (v << 8 & 0xff0000) | v << 24;
}

std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>(v >> 8 | v << 8);
}

std::size_t padded4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

void write_block(std::ofstream& out, std::uint32_t type,
                 const std::vector<std::uint8_t>& body) {
  ByteWriter w;
  const auto total = static_cast<std::uint32_t>(12 + padded4(body.size()));
  w.write_u32_le(type);
  w.write_u32_le(total);
  w.write_bytes(body);
  w.write_fill(padded4(body.size()) - body.size(), 0);
  w.write_u32_le(total);
  const auto& bytes = w.data();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

PcapngWriter::PcapngWriter(const std::filesystem::path& path,
                           std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  if (!out_)
    throw std::runtime_error("PcapngWriter: cannot open " + path.string());

  // Section Header Block.
  {
    ByteWriter body;
    body.write_u32_le(kByteOrderMagic);
    body.write_u16_le(1);  // major
    body.write_u16_le(0);  // minor
    body.write_u32_le(0xFFFFFFFF);  // section length unknown (-1)
    body.write_u32_le(0xFFFFFFFF);
    write_block(out_, kShbType, body.data());
  }
  // Interface Description Block: Ethernet, nanosecond timestamps.
  {
    ByteWriter body;
    body.write_u16_le(kLinkEthernet);
    body.write_u16_le(0);  // reserved
    body.write_u32_le(snaplen_);
    // if_tsresol option: one byte, value 9 => 10^-9 s ticks.
    body.write_u16_le(kOptTsResol);
    body.write_u16_le(1);
    body.write_u8(9);
    body.write_fill(3, 0);  // pad option value to 4 bytes
    body.write_u16_le(kOptEnd);
    body.write_u16_le(0);
    write_block(out_, kIdbType, body.data());
  }
  if (!out_) throw std::runtime_error("PcapngWriter: header write failed");
}

PcapngWriter::~PcapngWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; explicit close() reports errors.
  }
}

void PcapngWriter::write(const CapturedFrame& frame) {
  if (!out_.is_open())
    throw std::runtime_error("PcapngWriter: write after close");
  const std::uint32_t captured = std::min<std::uint32_t>(
      snaplen_, static_cast<std::uint32_t>(frame.bytes.size()));
  const auto ticks = static_cast<std::uint64_t>(frame.timestamp);
  ByteWriter body;
  body.write_u32_le(0);  // interface id
  body.write_u32_le(static_cast<std::uint32_t>(ticks >> 32));
  body.write_u32_le(static_cast<std::uint32_t>(ticks & 0xffffffff));
  body.write_u32_le(captured);
  body.write_u32_le(frame.original_length != 0
                        ? frame.original_length
                        : static_cast<std::uint32_t>(frame.bytes.size()));
  body.write_bytes(std::span<const std::uint8_t>(frame.bytes.data(), captured));
  body.write_fill(padded4(captured) - captured, 0);
  write_block(out_, kEpbType, body.data());
  if (!out_) throw std::runtime_error("PcapngWriter: record write failed");
  ++frames_written_;
}

void PcapngWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_) throw std::runtime_error("PcapngWriter: flush failed");
    out_.close();
  }
}

PcapngReader::PcapngReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_)
    throw std::runtime_error("PcapngReader: cannot open " + path.string());
  // The SHB begins with its type; endianness is discovered from the
  // byte-order magic inside.
  const std::uint32_t type = read_u32();
  if (type != kShbType)
    throw std::runtime_error("PcapngReader: not a pcapng file");
  const std::uint32_t total_length_raw = read_u32();
  const std::uint32_t magic_raw = read_u32();
  if (magic_raw == kByteOrderMagicSwapped) {
    swap_ = true;
  } else if (magic_raw != kByteOrderMagic) {
    throw std::runtime_error("PcapngReader: bad byte-order magic");
  }
  const std::uint32_t total_length =
      swap_ ? byteswap32(total_length_raw) : total_length_raw;
  if (total_length < 28)
    throw std::runtime_error("PcapngReader: SHB too short");
  // Skip the rest of the SHB (version, section length, options, trailer).
  in_.seekg(static_cast<std::streamoff>(total_length - 12),
            std::ios::cur);
  if (!in_) throw std::runtime_error("PcapngReader: truncated SHB");
}

std::uint32_t PcapngReader::read_u32() {
  std::array<char, 4> raw{};
  in_.read(raw.data(), 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = v << 8 | static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]);
  return swap_ ? byteswap32(v) : v;
}

std::uint16_t PcapngReader::read_u16() {
  std::array<char, 2> raw{};
  in_.read(raw.data(), 2);
  auto v = static_cast<std::uint16_t>(static_cast<std::uint8_t>(raw[0]) |
                                      static_cast<std::uint8_t>(raw[1]) << 8);
  return swap_ ? byteswap16(v) : v;
}

void PcapngReader::parse_idb_options(std::span<const std::uint8_t> options) {
  std::size_t offset = 0;
  while (offset + 4 <= options.size()) {
    auto code = static_cast<std::uint16_t>(options[offset] |
                                           options[offset + 1] << 8);
    auto length = static_cast<std::uint16_t>(options[offset + 2] |
                                             options[offset + 3] << 8);
    if (swap_) {
      code = byteswap16(code);
      length = byteswap16(length);
    }
    offset += 4;
    if (code == kOptEnd) break;
    if (code == kOptTsResol && length >= 1 && offset < options.size()) {
      const std::uint8_t resol = options[offset];
      if ((resol & 0x80) != 0) {
        ticks_per_second_ = 1ull << (resol & 0x7f);
      } else {
        ticks_per_second_ = 1;
        for (int i = 0; i < (resol & 0x7f); ++i) ticks_per_second_ *= 10;
      }
    }
    offset += padded4(length);
  }
}

std::optional<CapturedFrame> PcapngReader::next() {
  while (true) {
    const std::uint32_t type = read_u32();
    if (in_.eof()) return std::nullopt;
    const std::uint32_t total_length = read_u32();
    if (!in_) return std::nullopt;
    if (total_length < 12 || total_length % 4 != 0 ||
        total_length > (1u << 26))
      throw std::runtime_error("PcapngReader: implausible block length");
    const std::size_t body_length = total_length - 12;

    std::vector<std::uint8_t> body(body_length);
    in_.read(reinterpret_cast<char*>(body.data()),
             static_cast<std::streamsize>(body_length));
    const std::uint32_t trailer = read_u32();
    if (!in_) throw std::runtime_error("PcapngReader: truncated block");
    if (trailer != total_length)
      throw std::runtime_error("PcapngReader: block trailer mismatch");

    if (type == kIdbType && !idb_seen_) {
      idb_seen_ = true;
      if (body.size() < 8)
        throw std::runtime_error("PcapngReader: IDB too short");
      auto linktype = static_cast<std::uint16_t>(body[0] | body[1] << 8);
      if (swap_) linktype = byteswap16(linktype);
      if (linktype != kLinkEthernet)
        throw std::runtime_error("PcapngReader: unsupported link type");
      parse_idb_options(std::span<const std::uint8_t>(body).subspan(8));
      continue;
    }
    if (type != kEpbType) continue;  // skip unknown/auxiliary blocks

    if (body.size() < 20)
      throw std::runtime_error("PcapngReader: EPB too short");
    ByteReader r(body);
    r.skip(4);  // interface id
    std::uint32_t ts_high = 0;
    std::uint32_t ts_low = 0;
    if (swap_) {
      ts_high = byteswap32([&] {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(body[4 + i]) << (8 * i);
        return v;
      }());
      ts_low = byteswap32([&] {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(body[8 + i]) << (8 * i);
        return v;
      }());
      r.skip(8);
    } else {
      ts_high = r.read_u32_le();
      ts_low = r.read_u32_le();
    }
    std::uint32_t captured = r.read_u32_le();
    std::uint32_t original = r.read_u32_le();
    if (swap_) {
      captured = byteswap32(captured);
      original = byteswap32(original);
    }
    if (!r.ok() || r.remaining() < captured)
      throw std::runtime_error("PcapngReader: EPB payload truncated");

    CapturedFrame frame;
    const std::uint64_t ticks =
        static_cast<std::uint64_t>(ts_high) << 32 | ts_low;
    // Convert interface ticks to nanoseconds.
    frame.timestamp = ticks_per_second_ == 1'000'000'000
                          ? static_cast<Timestamp>(ticks)
                          : static_cast<Timestamp>(
                                static_cast<double>(ticks) * 1e9 /
                                static_cast<double>(ticks_per_second_));
    frame.original_length = original;
    frame.bytes = r.read_bytes(captured);
    return frame;
  }
}

std::vector<CapturedFrame> PcapngReader::read_all() {
  std::vector<CapturedFrame> frames;
  while (auto f = next()) frames.push_back(std::move(*f));
  return frames;
}

std::size_t write_pcapng(const std::filesystem::path& path,
                         std::span<const PacketRecord> packets) {
  PcapngWriter writer(path);
  for (const PacketRecord& pkt : packets) {
    CapturedFrame frame;
    frame.timestamp = pkt.timestamp;
    frame.bytes = encode_udp_frame(pkt.tuple, build_payload(pkt));
    writer.write(frame);
  }
  writer.close();
  return writer.frames_written();
}

std::vector<PacketRecord> read_pcapng(const std::filesystem::path& path,
                                      Ipv4Addr client_ip) {
  PcapngReader reader(path);
  std::vector<PacketRecord> packets;
  while (auto frame = reader.next()) {
    auto decoded = decode_udp_frame(frame->bytes);
    if (!decoded) continue;
    packets.push_back(record_from_frame(*decoded, frame->timestamp, client_ip));
  }
  return packets;
}

}  // namespace cgctx::net
