// Minimal libpcap capture-file reader/writer (no external dependency).
//
// Supports the classic pcap format (magic 0xa1b2c3d4 microsecond and
// 0xa1b23c4d nanosecond variants, both byte orders on read; nanosecond
// little-endian on write) with LINKTYPE_ETHERNET. This is what Wireshark
// and tcpdump produced for the paper's lab dataset; regenerated synthetic
// sessions round-trip through genuine .pcap bytes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/time.hpp"

namespace cgctx::net {

/// One raw captured frame with its capture metadata.
struct CapturedFrame {
  Timestamp timestamp = 0;  ///< ns since Unix epoch (trace epoch for synthetic)
  std::vector<std::uint8_t> bytes;  ///< link-layer frame (possibly truncated)
  std::uint32_t original_length = 0;  ///< on-wire length before any snaplen cut
};

/// Streams frames into a pcap file. The file header is written on open;
/// frames are appended per call. Throws std::runtime_error on I/O failure.
class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the nanosecond-resolution header.
  explicit PcapWriter(const std::filesystem::path& path,
                      std::uint32_t snaplen = 65535);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one frame; bytes beyond snaplen are truncated (original
  /// length is still recorded, as libpcap does).
  void write(const CapturedFrame& frame);

  /// Flushes and closes; called by the destructor if not called earlier.
  void close();

  [[nodiscard]] std::size_t frames_written() const { return frames_written_; }

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::size_t frames_written_ = 0;
};

/// Reads frames from a pcap file. Handles both endiannesses and both
/// microsecond/nanosecond timestamp resolutions.
class PcapReader {
 public:
  /// Opens `path`; throws std::runtime_error when the file cannot be read
  /// or is not a classic pcap capture of Ethernet link type.
  explicit PcapReader(const std::filesystem::path& path);

  /// Returns the next frame or nullopt at end of file. Throws on a
  /// corrupt/truncated record.
  std::optional<CapturedFrame> next();

  /// Convenience: reads every remaining frame.
  std::vector<CapturedFrame> read_all();

  [[nodiscard]] std::uint32_t snaplen() const { return snaplen_; }

 private:
  std::ifstream in_;
  bool swap_ = false;       ///< file endianness differs from host order we read in
  bool nanosecond_ = false; ///< timestamp fraction is ns rather than us
  std::uint32_t snaplen_ = 0;

  std::uint32_t read_u32();
  std::uint16_t read_u16();
};

/// Writes a whole session's PacketRecords as an Ethernet pcap, framing each
/// record via encode_udp_frame/build_payload. Returns frames written.
std::size_t write_pcap(const std::filesystem::path& path,
                       std::span<const PacketRecord> packets);

/// Reads a pcap written by write_pcap (or any Ethernet/IPv4/UDP capture)
/// back into PacketRecords. Non-UDP/undecodable frames are skipped.
/// `client_ip` identifies the subscriber endpoint for Direction labeling.
std::vector<PacketRecord> read_pcap(const std::filesystem::path& path,
                                    Ipv4Addr client_ip);

}  // namespace cgctx::net
