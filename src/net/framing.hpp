// Ethernet/IPv4/UDP framing for capture-file interchange.
//
// The simulator produces PacketRecords; to write genuine .pcap files (and
// to prove the parse path works on real capture bytes) we frame each
// record as Ethernet II + IPv4 + UDP (+ RTP header when present) and can
// decode such frames back into PacketRecords.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace cgctx::net {

/// Fixed synthetic MAC addresses used when framing generated traffic; the
/// classification pipeline never looks at layer 2.
inline constexpr std::uint8_t kClientMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
inline constexpr std::uint8_t kServerMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};

/// A decoded Ethernet/IPv4/UDP frame. `payload` is the UDP payload bytes.
struct DecodedFrame {
  FiveTuple tuple;
  std::vector<std::uint8_t> payload;
};

/// Builds a full Ethernet II + IPv4 + UDP frame around `payload`.
/// The IPv4 header checksum is computed; the UDP checksum is left 0
/// (legal for UDP over IPv4).
std::vector<std::uint8_t> encode_udp_frame(const FiveTuple& tuple,
                                           std::span<const std::uint8_t> payload);

/// Decodes an Ethernet II + IPv4 + UDP frame. Returns nullopt for non-IPv4
/// ethertypes, non-UDP protocols, truncated headers, fragmented datagrams,
/// or a bad IPv4 header checksum.
std::optional<DecodedFrame> decode_udp_frame(std::span<const std::uint8_t> frame);

/// Builds the UDP payload for a PacketRecord: the serialized RTP header
/// (when present) followed by deterministic filler bytes up to
/// `payload_size`. Filler content is a function of the RTP sequence number
/// so captures are reproducible byte-for-byte.
std::vector<std::uint8_t> build_payload(const PacketRecord& pkt);

/// Reconstructs a PacketRecord from a decoded frame. `client_ip` tells the
/// decoder which endpoint is the subscriber so it can assign Direction.
/// RTP is parsed opportunistically from the payload head.
PacketRecord record_from_frame(const DecodedFrame& frame, Timestamp timestamp,
                               Ipv4Addr client_ip);

}  // namespace cgctx::net
