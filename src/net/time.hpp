// Time representation used throughout cgctx.
//
// All packet timestamps are nanoseconds since an arbitrary epoch (for
// synthetic traffic, the start of the simulation; for PCAP files, the Unix
// epoch). A plain signed 64-bit count keeps arithmetic trivial and gives
// ~292 years of range, far beyond any capture.
#pragma once

#include <cstdint>

namespace cgctx::net {

/// Nanoseconds since the trace epoch.
using Timestamp = std::int64_t;

/// A signed span between two timestamps, also in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosPerMicro = 1'000;
inline constexpr Duration kNanosPerMilli = 1'000'000;
inline constexpr Duration kNanosPerSecond = 1'000'000'000;

/// Converts seconds (possibly fractional) to a Duration.
constexpr Duration duration_from_seconds(double seconds) {
  return static_cast<Duration>(seconds * static_cast<double>(kNanosPerSecond));
}

/// Converts a Duration to fractional seconds.
constexpr double duration_to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerSecond);
}

/// Converts milliseconds to a Duration.
constexpr Duration duration_from_millis(double millis) {
  return static_cast<Duration>(millis * static_cast<double>(kNanosPerMilli));
}

/// Converts a Duration to fractional milliseconds.
constexpr double duration_to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerMilli);
}

}  // namespace cgctx::net
