#include "ml/importance.hpp"

#include <cmath>
#include <stdexcept>

namespace cgctx::ml {

ImportanceResult permutation_importance(const Classifier& model,
                                        const Dataset& data,
                                        std::size_t repeats, Rng& rng) {
  if (data.empty())
    throw std::invalid_argument("permutation_importance: empty dataset");
  if (repeats == 0)
    throw std::invalid_argument("permutation_importance: repeats must be > 0");

  ImportanceResult out;
  out.baseline_accuracy = model.score(data);
  const std::size_t width = data.num_features();
  out.mean_drop.assign(width, 0.0);
  out.stddev.assign(width, 0.0);

  // Work on a mutable copy; restore the shuffled column after each repeat.
  Dataset scratch = data;
  auto& rows = scratch.mutable_rows();
  std::vector<double> column(rows.size());

  for (std::size_t f = 0; f < width; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) column[i] = rows[i][f];
    std::vector<double> drops(repeats);
    for (std::size_t r = 0; r < repeats; ++r) {
      std::vector<double> shuffled = column;
      shuffle(shuffled, rng);
      for (std::size_t i = 0; i < rows.size(); ++i) rows[i][f] = shuffled[i];
      drops[r] = out.baseline_accuracy - model.score(scratch);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i][f] = column[i];

    double mean = 0.0;
    for (double d : drops) mean += d;
    mean /= static_cast<double>(repeats);
    double var = 0.0;
    for (double d : drops) var += (d - mean) * (d - mean);
    out.mean_drop[f] = mean;
    out.stddev[f] = std::sqrt(var / static_cast<double>(repeats));
  }
  return out;
}

}  // namespace cgctx::ml
