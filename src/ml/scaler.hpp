// Feature standardization (zero mean, unit variance).
//
// SVM and KNN are scale-sensitive; the paper's attribute vectors mix byte
// counts (thousands) with inter-arrival times (milliseconds), so both are
// trained on standardized features. Random Forest is scale-invariant and
// skips this.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace cgctx::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Columns with zero
  /// variance get scale 1 so transform leaves them centered but finite.
  void fit(const Dataset& data);

  /// Applies (x - mean) / std per column. Throws std::logic_error before
  /// fit, std::invalid_argument on width mismatch.
  [[nodiscard]] FeatureRow transform(const FeatureRow& row) const;

  /// Transforms every row of a dataset into a new dataset.
  [[nodiscard]] Dataset transform(const Dataset& data) const;

  [[nodiscard]] bool fitted() const { return !means_.empty(); }
  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

  /// Round-trippable text form ("mean scale" per line).
  [[nodiscard]] std::string serialize() const;
  static StandardScaler deserialize(const std::string& text);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace cgctx::ml
