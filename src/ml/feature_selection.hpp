// Importance-driven feature selection.
//
// The paper observes that 8 of its 51 attributes carry no permutation
// importance and "can be excluded in the classification pipeline to
// optimize the processing cost" (citing the CATO line of work). This
// module implements that step: select the attribute subset worth
// computing, project datasets/rows onto it, and keep the mapping so a
// deployed pipeline can extract only what the model consumes.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/importance.hpp"

namespace cgctx::ml {

/// A retained-attribute mapping from an original feature space onto a
/// selected subspace.
class FeatureSelection {
 public:
  /// Keeps features whose mean importance exceeds `min_drop` (default:
  /// strictly positive importance). Throws when nothing survives.
  static FeatureSelection from_importance(const ImportanceResult& importance,
                                          double min_drop = 0.0);

  /// Keeps the `k` most important features (k clamped to the width).
  static FeatureSelection top_k(const ImportanceResult& importance,
                                std::size_t k);

  /// Explicit index list (validated: sorted unique on construction).
  explicit FeatureSelection(std::vector<std::size_t> kept_indices);

  [[nodiscard]] const std::vector<std::size_t>& kept() const { return kept_; }
  [[nodiscard]] std::size_t output_width() const { return kept_.size(); }

  /// Projects one row. Throws std::invalid_argument when the row is
  /// narrower than the largest kept index.
  [[nodiscard]] FeatureRow project(const FeatureRow& row) const;

  /// Projects a whole dataset (labels and class names preserved; feature
  /// names filtered when present).
  [[nodiscard]] Dataset project(const Dataset& data) const;

  /// Filters a name list in the same way.
  [[nodiscard]] std::vector<std::string> project(
      const std::vector<std::string>& names) const;

  /// Round-trippable text form ("selection k i0 i1 ...").
  [[nodiscard]] std::string serialize() const;
  static FeatureSelection deserialize(const std::string& text);

 private:
  std::vector<std::size_t> kept_;
};

}  // namespace cgctx::ml
