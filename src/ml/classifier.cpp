#include "ml/classifier.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgctx::ml {

void Classifier::predict_proba_into(const FeatureRow& row,
                                    std::span<double> out) const {
  const ClassProbabilities probs = predict_proba(row);
  if (probs.size() != out.size())
    throw std::invalid_argument(
        "Classifier::predict_proba_into: output span size mismatch");
  std::copy(probs.begin(), probs.end(), out.begin());
}

Classifier::Prediction Classifier::predict_with_confidence(
    const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  Prediction out;
  if (probs.empty()) return out;
  const auto best = std::max_element(probs.begin(), probs.end());
  out.label = static_cast<Label>(best - probs.begin());
  out.confidence = *best;
  return out;
}

double Classifier::score(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.row(i)) == data.label(i)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace cgctx::ml
