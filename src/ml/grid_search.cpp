#include "ml/grid_search.hpp"

#include <numeric>
#include <stdexcept>

namespace cgctx::ml {

namespace {

double kfold_accuracy(const GridCandidate& candidate, const Dataset& data,
                      const std::vector<std::vector<std::size_t>>& folds) {
  double total_correct = 0.0;
  double total_rows = 0.0;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < folds.size(); ++g)
      if (g != f) train_idx.insert(train_idx.end(), folds[g].begin(),
                                   folds[g].end());
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(folds[f]);
    if (train.empty() || test.empty()) continue;
    ClassifierPtr model = candidate.make();
    model->fit(train);
    total_correct += model->score(test) * static_cast<double>(test.size());
    total_rows += static_cast<double>(test.size());
  }
  return total_rows == 0.0 ? 0.0 : total_correct / total_rows;
}

}  // namespace

double cross_val_score(const GridCandidate& candidate, const Dataset& data,
                       std::size_t k_folds, Rng& rng) {
  const auto folds = stratified_kfold(data, k_folds, rng);
  return kfold_accuracy(candidate, data, folds);
}

GridSearchResult grid_search(const std::vector<GridCandidate>& grid,
                             const Dataset& data, std::size_t k_folds,
                             Rng& rng) {
  if (grid.empty()) throw std::invalid_argument("grid_search: empty grid");
  // One shared fold assignment keeps candidate scores comparable.
  const auto folds = stratified_kfold(data, k_folds, rng);
  GridSearchResult result;
  result.scores.reserve(grid.size());
  for (const GridCandidate& candidate : grid)
    result.scores.push_back(kfold_accuracy(candidate, data, folds));
  result.best_index = static_cast<std::size_t>(
      std::max_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());
  return result;
}

}  // namespace cgctx::ml
