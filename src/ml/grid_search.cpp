#include "ml/grid_search.hpp"

#include <numeric>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace cgctx::ml {

namespace {

/// Train/test datasets for one fold, materialized once and shared
/// read-only by every (candidate, fold) task.
struct FoldData {
  Dataset train;
  Dataset test;
};

std::vector<FoldData> materialize_folds(
    const Dataset& data, const std::vector<std::vector<std::size_t>>& folds) {
  std::vector<FoldData> out(folds.size());
  std::vector<std::size_t> train_idx;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    train_idx.clear();
    for (std::size_t g = 0; g < folds.size(); ++g)
      if (g != f)
        train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());
    out[f].train = data.subset(train_idx);
    out[f].test = data.subset(folds[f]);
  }
  return out;
}

/// One task's contribution to a candidate's CV score.
struct FoldOutcome {
  double weighted_correct = 0.0;
  double rows = 0.0;
};

FoldOutcome evaluate_fold(const GridCandidate& candidate,
                          const FoldData& fold) {
  if (fold.train.empty() || fold.test.empty()) return {};
  ClassifierPtr model = candidate.make();
  model->fit(fold.train);
  const auto rows = static_cast<double>(fold.test.size());
  return {model->score(fold.test) * rows, rows};
}

/// Sums fold outcomes in ascending fold order — the exact addition order
/// of the serial loop, so parallel scores are bitwise-identical.
double reduce_folds(const FoldOutcome* outcomes, std::size_t fold_count) {
  double total_correct = 0.0;
  double total_rows = 0.0;
  for (std::size_t f = 0; f < fold_count; ++f) {
    total_correct += outcomes[f].weighted_correct;
    total_rows += outcomes[f].rows;
  }
  return total_rows == 0.0 ? 0.0 : total_correct / total_rows;
}

core::ThreadPool& resolve(core::ThreadPool* pool) {
  return pool != nullptr ? *pool : core::ThreadPool::training();
}

}  // namespace

double cross_val_score(const GridCandidate& candidate, const Dataset& data,
                       std::size_t k_folds, Rng& rng, core::ThreadPool* pool) {
  const auto folds = stratified_kfold(data, k_folds, rng);
  const auto fold_data = materialize_folds(data, folds);
  std::vector<FoldOutcome> outcomes(fold_data.size());
  resolve(pool).parallel_for(0, fold_data.size(), [&](std::size_t f) {
    outcomes[f] = evaluate_fold(candidate, fold_data[f]);
  });
  return reduce_folds(outcomes.data(), outcomes.size());
}

GridSearchResult grid_search(const std::vector<GridCandidate>& grid,
                             const Dataset& data, std::size_t k_folds,
                             Rng& rng, core::ThreadPool* pool) {
  if (grid.empty()) throw std::invalid_argument("grid_search: empty grid");
  // One shared fold assignment keeps candidate scores comparable.
  const auto folds = stratified_kfold(data, k_folds, rng);
  const auto fold_data = materialize_folds(data, folds);
  const std::size_t fold_count = fold_data.size();

  // Flatten to (candidate x fold) tasks: each trains one model and
  // writes its own slot. A model fit that itself uses the pool (e.g. a
  // RandomForest candidate) runs inline on the task's worker — nested
  // parallelism neither deadlocks nor changes any result.
  std::vector<FoldOutcome> outcomes(grid.size() * fold_count);
  resolve(pool).parallel_for(0, outcomes.size(), [&](std::size_t task) {
    const std::size_t c = task / fold_count;
    const std::size_t f = task % fold_count;
    outcomes[task] = evaluate_fold(grid[c], fold_data[f]);
  });

  GridSearchResult result;
  result.scores.reserve(grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c)
    result.scores.push_back(
        reduce_folds(outcomes.data() + c * fold_count, fold_count));
  result.best_index = static_cast<std::size_t>(
      std::max_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());
  return result;
}

}  // namespace cgctx::ml
