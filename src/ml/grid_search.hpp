// Cross-validated hyperparameter grid search.
//
// The paper fine-tunes RF (trees x depth), SVM (C x kernel) and KNN
// (k x metric) grids with the best combination selected by accuracy
// (Figs. 14-15). Candidates are expressed as named factory functions so
// the search is model-agnostic.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/rng.hpp"

namespace cgctx::ml {

/// One point of the hyperparameter grid: a label for reports plus a
/// factory building a fresh, unfitted classifier with those parameters.
/// Factories are invoked concurrently from pool workers and must be
/// safe to call from several threads at once (stateless captures are).
struct GridCandidate {
  std::string name;
  std::function<ClassifierPtr()> make;
};

/// Mean k-fold cross-validation accuracy of one candidate on `data`.
/// Folds evaluate in parallel on `pool` (nullptr: the shared training
/// pool); scores are bitwise-identical at any worker count because the
/// per-fold contributions are summed serially in fold order.
double cross_val_score(const GridCandidate& candidate, const Dataset& data,
                       std::size_t k_folds, Rng& rng,
                       core::ThreadPool* pool = nullptr);

struct GridSearchResult {
  /// Mean CV accuracy per candidate, same order as the input grid.
  std::vector<double> scores;
  std::size_t best_index = 0;
  [[nodiscard]] double best_score() const { return scores[best_index]; }
};

/// Evaluates every candidate with stratified k-fold CV. All candidates see
/// identical folds (drawn once before any training), so scores are
/// comparable. The (candidate x fold) grid evaluates in parallel on
/// `pool` (nullptr: the shared training pool); scores and best_index are
/// bitwise-identical at any worker count.
GridSearchResult grid_search(const std::vector<GridCandidate>& grid,
                             const Dataset& data, std::size_t k_folds,
                             Rng& rng, core::ThreadPool* pool = nullptr);

}  // namespace cgctx::ml
