// Classification metrics: confusion matrix, accuracy, precision/recall/F1.
//
// The paper reports overall accuracy, per-class (per-title / per-stage)
// accuracy, and uses cross-validation for model selection; all of that is
// derived from the ConfusionMatrix here.
#pragma once

#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace cgctx::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes)
      : num_classes_(num_classes),
        counts_(num_classes * num_classes, 0) {}

  void add(Label truth, Label predicted);

  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::uint64_t count(Label truth, Label predicted) const;
  [[nodiscard]] std::uint64_t total() const;

  /// Overall fraction correct.
  [[nodiscard]] double accuracy() const;
  /// Fraction of class-c examples predicted as c (a.k.a. recall; this is
  /// what the paper's per-title "accuracy" columns report).
  [[nodiscard]] double per_class_accuracy(Label c) const;
  [[nodiscard]] double precision(Label c) const;
  [[nodiscard]] double recall(Label c) const;
  [[nodiscard]] double f1(Label c) const;
  /// Unweighted mean of per-class F1.
  [[nodiscard]] double macro_f1() const;

  /// Text rendering with class names (for reports/benches).
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& class_names) const;

 private:
  std::size_t num_classes_;
  std::vector<std::uint64_t> counts_;  // row = truth, col = predicted
};

/// Runs the classifier over `data` and tallies a confusion matrix.
ConfusionMatrix evaluate(const Classifier& model, const Dataset& data);

}  // namespace cgctx::ml
