// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repo (bootstrap sampling, feature
// subsampling, data augmentation, traffic synthesis) draws from this
// xoshiro256** generator seeded explicitly, so whole experiments are
// reproducible bit-for-bit from a seed. std::mt19937 is avoided because
// its distributions are not specified cross-platform.
#pragma once

#include <cmath>
#include <cstdint>

namespace cgctx::ml {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ z >> 30) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ z >> 27) * 0x94d049bb133111ebULL;
      word = z ^ z >> 31;
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Debiased multiply-shift (Lemire).
    while (true) {
      const std::uint64_t x = next_u64();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const auto low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Derives an independent child generator (for parallel components).
  Rng fork() { return Rng(next_u64() ^ 0xd3833e804f4c574bULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return x << k | x >> (64 - k);
  }

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Fisher-Yates shuffle of any random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace cgctx::ml
