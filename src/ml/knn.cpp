#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cgctx::ml {

const char* to_string(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean: return "euclidean";
    case DistanceMetric::kManhattan: return "manhattan";
    case DistanceMetric::kChebyshev: return "chebyshev";
  }
  return "?";
}

double distance(const FeatureRow& a, const FeatureRow& b,
                DistanceMetric metric) {
  if (a.size() != b.size())
    throw std::invalid_argument("distance: width mismatch");
  double acc = 0.0;
  switch (metric) {
    case DistanceMetric::kEuclidean:
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
      }
      return std::sqrt(acc);
    case DistanceMetric::kManhattan:
      for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
      return acc;
    case DistanceMetric::kChebyshev:
      for (std::size_t i = 0; i < a.size(); ++i)
        acc = std::max(acc, std::abs(a[i] - b[i]));
      return acc;
  }
  return acc;
}

void Knn::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("Knn::fit: empty training set");
  if (params_.k == 0) throw std::invalid_argument("Knn::fit: k must be > 0");
  train_ = train;
}

ClassProbabilities Knn::predict_proba(const FeatureRow& row) const {
  if (train_.empty()) throw std::logic_error("Knn: predict before fit");
  const std::size_t k = std::min(params_.k, train_.size());

  // Partial sort of (distance, label) pairs; exhaustive scan is fine at
  // the dataset sizes this repo trains on.
  std::vector<std::pair<double, Label>> dists;
  dists.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i)
    dists.emplace_back(distance(row, train_.row(i), params_.metric),
                       train_.label(i));
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dists.end());

  ClassProbabilities probs(train_.num_classes(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto& [dist, label] = dists[i];
    // Inverse-distance weighting with a floor so exact matches dominate
    // without dividing by zero.
    const double w = params_.distance_weighted ? 1.0 / (dist + 1e-9) : 1.0;
    probs[static_cast<std::size_t>(label)] += w;
    total += w;
  }
  for (double& p : probs) p /= total;
  return probs;
}

Label Knn::predict(const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  return static_cast<Label>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
}

}  // namespace cgctx::ml
