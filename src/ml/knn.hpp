// K-Nearest-Neighbors classifier.
//
// One of the paper's three candidate models (§C.1/§C.2), tuned over the
// number of neighbors and the distance metric. Kept simple (exhaustive
// search) — the evaluation datasets are a few thousand rows.
#pragma once

#include <vector>

#include "ml/classifier.hpp"

namespace cgctx::ml {

enum class DistanceMetric {
  kEuclidean,
  kManhattan,
  kChebyshev,
};

const char* to_string(DistanceMetric metric);

struct KnnParams {
  std::size_t k = 5;
  DistanceMetric metric = DistanceMetric::kEuclidean;
  /// Weight votes by inverse distance instead of uniformly.
  bool distance_weighted = false;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] Label predict(const FeatureRow& row) const override;
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override;

  [[nodiscard]] const KnnParams& params() const { return params_; }

 private:
  KnnParams params_;
  Dataset train_;
};

/// Distance between two equal-width rows under the given metric.
double distance(const FeatureRow& a, const FeatureRow& b, DistanceMetric metric);

}  // namespace cgctx::ml
