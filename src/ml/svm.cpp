#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

const char* to_string(KernelType kernel) {
  switch (kernel) {
    case KernelType::kLinear: return "linear";
    case KernelType::kRbf: return "rbf";
    case KernelType::kPoly: return "poly";
  }
  return "?";
}

double Svm::kernel(const FeatureRow& a, const FeatureRow& b) const {
  switch (params_.kernel) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-effective_gamma_ * sq);
    }
    case KernelType::kPoly: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(dot + 1.0, params_.poly_degree);
    }
  }
  return 0.0;
}

Svm::BinaryMachine Svm::train_binary(const Dataset& train, Label positive,
                                     Rng& rng) const {
  const std::size_t n = train.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = train.label(i) == positive ? 1.0 : -1.0;

  // Precompute the kernel matrix; n is bounded by the evaluation dataset
  // sizes (a few thousand), so O(n^2) doubles is acceptable.
  std::vector<double> gram(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel(train.row(i), train.row(j));
      gram[i * n + j] = k;
      gram[j * n + i] = k;
    }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = params_.c;
  const double tol = params_.tolerance;

  auto decision_i = [&](std::size_t i) {
    double f = b;
    for (std::size_t j = 0; j < n; ++j)
      if (alpha[j] != 0.0) f += alpha[j] * y[j] * gram[j * n + i];
    return f;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < params_.max_passes && iterations < params_.max_iterations) {
    ++iterations;
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double error_i = decision_i(i) - y[i];
      const bool violates = (y[i] * error_i < -tol && alpha[i] < c) ||
                            (y[i] * error_i > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
      if (j >= i) ++j;
      const double error_j = decision_i(j) - y[j];

      const double alpha_i_old = alpha[i];
      const double alpha_j_old = alpha[j];
      double low = 0.0;
      double high = 0.0;
      if (y[i] != y[j]) {
        low = std::max(0.0, alpha[j] - alpha[i]);
        high = std::min(c, c + alpha[j] - alpha[i]);
      } else {
        low = std::max(0.0, alpha[i] + alpha[j] - c);
        high = std::min(c, alpha[i] + alpha[j]);
      }
      if (low >= high) continue;

      const double eta =
          2.0 * gram[i * n + j] - gram[i * n + i] - gram[j * n + j];
      if (eta >= 0.0) continue;

      double aj = alpha_j_old - y[j] * (error_i - error_j) / eta;
      aj = std::clamp(aj, low, high);
      if (std::abs(aj - alpha_j_old) < 1e-5) continue;
      const double ai = alpha_i_old + y[i] * y[j] * (alpha_j_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - error_i - y[i] * (ai - alpha_i_old) * gram[i * n + i] -
                        y[j] * (aj - alpha_j_old) * gram[i * n + j];
      const double b2 = b - error_j - y[i] * (ai - alpha_i_old) * gram[i * n + j] -
                        y[j] * (aj - alpha_j_old) * gram[j * n + j];
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  BinaryMachine machine;
  machine.bias = b;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      machine.support_vectors.push_back(train.row(i));
      machine.coefficients.push_back(alpha[i] * y[i]);
    }
  }
  return machine;
}

void Svm::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("Svm::fit: empty training set");
  num_features_ = train.num_features();
  effective_gamma_ = params_.gamma != 0.0
                         ? params_.gamma
                         : 1.0 / static_cast<double>(num_features_);
  machines_.clear();
  Rng rng(params_.seed);
  const std::size_t num_classes = train.num_classes();
  machines_.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c)
    machines_.push_back(train_binary(train, static_cast<Label>(c), rng));
}

double Svm::decision(const BinaryMachine& machine, const FeatureRow& row) const {
  double f = machine.bias;
  for (std::size_t i = 0; i < machine.support_vectors.size(); ++i)
    f += machine.coefficients[i] * kernel(machine.support_vectors[i], row);
  return f;
}

ClassProbabilities Svm::predict_proba(const FeatureRow& row) const {
  if (machines_.empty()) throw std::logic_error("Svm: predict before fit");
  if (row.size() != num_features_)
    throw std::invalid_argument("Svm: feature width mismatch");
  // Softmax over decision values, shifted for numeric stability.
  std::vector<double> scores(machines_.size());
  for (std::size_t c = 0; c < machines_.size(); ++c)
    scores[c] = decision(machines_[c], row);
  const double max_score = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (double& s : scores) s /= total;
  return scores;
}

Label Svm::predict(const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  return static_cast<Label>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
}

std::string Svm::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "svm " << machines_.size() << ' ' << num_features_ << ' '
     << effective_gamma_ << '\n';
  os << params_.c << ' ' << static_cast<int>(params_.kernel) << ' '
     << params_.gamma << ' ' << params_.poly_degree << '\n';
  for (const BinaryMachine& machine : machines_) {
    os << "machine " << machine.support_vectors.size() << ' ' << machine.bias
       << '\n';
    for (std::size_t i = 0; i < machine.support_vectors.size(); ++i) {
      os << machine.coefficients[i];
      for (double v : machine.support_vectors[i]) os << ' ' << v;
      os << '\n';
    }
  }
  return os.str();
}

Svm Svm::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t n_machines = 0;
  Svm out;
  is >> tag >> n_machines >> out.num_features_ >> out.effective_gamma_;
  if (!is || tag != "svm") throw std::invalid_argument("Svm: bad header");
  int kernel = 0;
  is >> out.params_.c >> kernel >> out.params_.gamma >> out.params_.poly_degree;
  if (kernel < 0 || kernel > 2)
    throw std::invalid_argument("Svm: bad kernel id");
  out.params_.kernel = static_cast<KernelType>(kernel);
  out.machines_.resize(n_machines);
  for (BinaryMachine& machine : out.machines_) {
    std::size_t n_sv = 0;
    is >> tag >> n_sv >> machine.bias;
    if (!is || tag != "machine")
      throw std::invalid_argument("Svm: bad machine header");
    machine.coefficients.resize(n_sv);
    machine.support_vectors.assign(n_sv, FeatureRow(out.num_features_));
    for (std::size_t i = 0; i < n_sv; ++i) {
      is >> machine.coefficients[i];
      for (double& v : machine.support_vectors[i]) is >> v;
    }
  }
  if (!is) throw std::invalid_argument("Svm: truncated payload");
  return out;
}

std::size_t Svm::support_vector_count() const {
  std::size_t total = 0;
  for (const BinaryMachine& m : machines_) total += m.support_vectors.size();
  return total;
}

}  // namespace cgctx::ml
