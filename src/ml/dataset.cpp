#include "ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgctx::ml {

void Dataset::add(FeatureRow row, Label label) {
  if (!feature_names_.empty() && row.size() != feature_names_.size())
    throw std::invalid_argument("Dataset::add: row width != feature_names size");
  if (!rows_.empty() && row.size() != rows_.front().size())
    throw std::invalid_argument("Dataset::add: inconsistent row width");
  if (label < 0 ||
      (!class_names_.empty() &&
       static_cast<std::size_t>(label) >= class_names_.size()))
    throw std::invalid_argument("Dataset::add: label out of range");
  rows_.push_back(std::move(row));
  labels_.push_back(label);
}

std::size_t Dataset::num_classes() const {
  if (!class_names_.empty()) return class_names_.size();
  Label max_label = -1;
  for (Label l : labels_) max_label = std::max(max_label, l);
  return static_cast<std::size_t>(max_label + 1);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(feature_names_, class_names_);
  for (std::size_t i : indices) out.add(rows_.at(i), labels_.at(i));
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (Label l : labels_) ++counts[static_cast<std::size_t>(l)];
  return counts;
}

namespace {

/// Row indices grouped by class, each group shuffled.
std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& data,
                                                       Rng& rng) {
  std::vector<std::vector<std::size_t>> groups(data.num_classes());
  for (std::size_t i = 0; i < data.size(); ++i)
    groups[static_cast<std::size_t>(data.label(i))].push_back(i);
  for (auto& g : groups) shuffle(g, rng);
  return groups;
}

}  // namespace

TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("stratified_split: fraction must be in (0,1)");
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (const auto& group : indices_by_class(data, rng)) {
    // Round per class so small classes still contribute test examples.
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(group.size()) * test_fraction + 0.5);
    for (std::size_t i = 0; i < group.size(); ++i)
      (i < n_test ? test_idx : train_idx).push_back(group[i]);
  }
  return TrainTestSplit{data.subset(train_idx), data.subset(test_idx)};
}

std::vector<std::vector<std::size_t>> stratified_kfold(const Dataset& data,
                                                       std::size_t k, Rng& rng) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  std::vector<std::vector<std::size_t>> folds(k);
  for (const auto& group : indices_by_class(data, rng))
    for (std::size_t i = 0; i < group.size(); ++i)
      folds[i % k].push_back(group[i]);
  return folds;
}

}  // namespace cgctx::ml
