#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "ml/rng.hpp"

namespace cgctx::ml {

namespace {

/// A small CART regression tree fit to residuals, with Friedman's
/// leaf-value update for multinomial deviance applied by the caller
/// through the `leaf_value` functional.
class RegressionTree {
 public:
  struct Node {
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = 0;
    std::int32_t right = 0;
    double value = 0.0;
    [[nodiscard]] bool is_leaf() const { return right == 0; }
  };

  /// Fits on `indices` rows of X to targets `residual`; leaf values are
  /// the multinomial-deviance Newton step computed from residuals and
  /// |residual| weights.
  void fit(const std::vector<FeatureRow>& x, const std::vector<double>& residual,
           std::vector<std::size_t>& indices, std::size_t max_depth,
           std::size_t min_samples_leaf, double k_classes) {
    nodes_.clear();
    build(x, residual, indices, 0, indices.size(), 0, max_depth,
          min_samples_leaf, k_classes);
  }

  [[nodiscard]] double predict(const FeatureRow& row) const {
    const Node* node = &nodes_.front();
    while (!node->is_leaf()) {
      node = &nodes_[static_cast<std::size_t>(
          row[static_cast<std::size_t>(node->feature)] <= node->threshold
              ? node->left
              : node->right)];
    }
    return node->value;
  }

 private:
  std::int32_t build(const std::vector<FeatureRow>& x,
                     const std::vector<double>& residual,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t depth, std::size_t max_depth,
                     std::size_t min_samples_leaf, double k_classes) {
    const std::size_t n = end - begin;
    double sum = 0.0;
    double abs_weight = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double r = residual[indices[i]];
      sum += r;
      abs_weight += std::abs(r) * (1.0 - std::abs(r));
    }

    auto make_leaf = [&]() -> std::int32_t {
      Node leaf;
      // Friedman's Newton-step leaf value for K-class deviance.
      leaf.value = abs_weight > 1e-12
                       ? (k_classes - 1.0) / k_classes * sum / abs_weight
                       : 0.0;
      nodes_.push_back(leaf);
      return static_cast<std::int32_t>(nodes_.size() - 1);
    };

    if (depth >= max_depth || n < 2 * min_samples_leaf) return make_leaf();

    // Best variance-reducing split over all features.
    const std::size_t width = x.front().size();
    double best_gain = 1e-12;
    std::int32_t best_feature = -1;
    double best_threshold = 0.0;
    std::vector<std::pair<double, double>> column(n);  // (value, residual)
    for (std::size_t f = 0; f < width; ++f) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t row = indices[begin + i];
        column[i] = {x[row][f], residual[row]};
      }
      std::sort(column.begin(), column.end());
      if (column.front().first == column.back().first) continue;
      double left_sum = 0.0;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        left_sum += column[i].second;
        if (column[i].first == column[i + 1].first) continue;
        const auto n_left = static_cast<double>(i + 1);
        const double n_right = static_cast<double>(n) - n_left;
        if (n_left < static_cast<double>(min_samples_leaf) ||
            n_right < static_cast<double>(min_samples_leaf))
          continue;
        const double right_sum = sum - left_sum;
        // Gain = increase of sum^2/n across children (variance reduction
        // up to constants).
        const double gain = left_sum * left_sum / n_left +
                            right_sum * right_sum / n_right -
                            sum * sum / static_cast<double>(n);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<std::int32_t>(f);
          best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }
    if (best_feature < 0) return make_leaf();

    const auto split_feature = static_cast<std::size_t>(best_feature);
    auto middle =
        std::partition(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                       indices.begin() + static_cast<std::ptrdiff_t>(end),
                       [&](std::size_t row) {
                         return x[row][split_feature] <= best_threshold;
                       });
    const auto mid = static_cast<std::size_t>(middle - indices.begin());
    if (mid == begin || mid == end) return make_leaf();

    const auto node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    const std::int32_t left = build(x, residual, indices, begin, mid, depth + 1,
                                    max_depth, min_samples_leaf, k_classes);
    const std::int32_t right = build(x, residual, indices, mid, end, depth + 1,
                                     max_depth, min_samples_leaf, k_classes);
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.left = left;
    node.right = right;
    return node_index;
  }

  std::vector<Node> nodes_;
};

}  // namespace

struct GradientBoosting::Impl {
  std::vector<std::vector<RegressionTree>> rounds;  // [round][class]
  std::size_t num_classes = 0;
  std::size_t num_features = 0;
  std::vector<double> base_score;  // log prior per class
};

GradientBoosting::GradientBoosting(GradientBoostingParams params)
    : params_(params) {}
GradientBoosting::~GradientBoosting() = default;
GradientBoosting::GradientBoosting(GradientBoosting&&) noexcept = default;
GradientBoosting& GradientBoosting::operator=(GradientBoosting&&) noexcept =
    default;

void GradientBoosting::fit(const Dataset& train) {
  if (train.empty())
    throw std::invalid_argument("GradientBoosting::fit: empty training set");
  if (params_.n_rounds == 0)
    throw std::invalid_argument("GradientBoosting::fit: n_rounds must be > 0");

  impl_ = std::make_unique<Impl>();
  impl_->num_classes = train.num_classes();
  impl_->num_features = train.num_features();
  const std::size_t n = train.size();
  const std::size_t k = impl_->num_classes;

  // Base score: class log-priors.
  impl_->base_score.assign(k, 0.0);
  const auto counts = train.class_counts();
  for (std::size_t c = 0; c < k; ++c)
    impl_->base_score[c] = std::log(
        std::max<double>(1.0, static_cast<double>(counts[c])) /
        static_cast<double>(n));

  // Raw scores per row per class, updated additively.
  std::vector<std::vector<double>> scores(n,
                                          std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < n; ++i) scores[i] = impl_->base_score;

  Rng rng(params_.seed);
  std::vector<double> residual(n);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});

  for (std::size_t round = 0; round < params_.n_rounds; ++round) {
    // Row subsample for this round.
    std::vector<std::size_t> rows = all_rows;
    if (params_.subsample < 1.0) {
      shuffle(rows, rng);
      rows.resize(std::max<std::size_t>(
          2, static_cast<std::size_t>(params_.subsample *
                                      static_cast<double>(n))));
    }

    // The boosting sequence is inherently serial (each round's residuals
    // depend on the previous round's scores), but the per-row scans
    // inside it are elementwise and parallelize without changing a bit:
    // every row's residual and score update is a pure function of that
    // row's state.
    core::ThreadPool& pool = core::ThreadPool::training();
    std::vector<RegressionTree> klass_trees(k);
    for (std::size_t c = 0; c < k; ++c) {
      // Residual = y_ic - p_ic under the current softmax.
      pool.parallel_for(0, n, [&](std::size_t i) {
        const auto& s = scores[i];
        const double max_s = *std::max_element(s.begin(), s.end());
        double total = 0.0;
        for (double v : s) total += std::exp(v - max_s);
        const double p = std::exp(s[c] - max_s) / total;
        residual[i] = (train.label(i) == static_cast<Label>(c) ? 1.0 : 0.0) - p;
      });
      std::vector<std::size_t> work = rows;
      klass_trees[c].fit(train.rows(), residual, work, params_.max_depth,
                         params_.min_samples_leaf, static_cast<double>(k));
      // Update scores for ALL rows (not just the subsample).
      const RegressionTree& tree = klass_trees[c];
      pool.parallel_for(0, n, [&](std::size_t i) {
        scores[i][c] += params_.learning_rate * tree.predict(train.row(i));
      });
    }
    impl_->rounds.push_back(std::move(klass_trees));
  }
}

ClassProbabilities GradientBoosting::predict_proba(const FeatureRow& row) const {
  if (!impl_) throw std::logic_error("GradientBoosting: predict before fit");
  if (row.size() != impl_->num_features)
    throw std::invalid_argument("GradientBoosting: feature width mismatch");
  std::vector<double> scores = impl_->base_score;
  for (const auto& klass_trees : impl_->rounds)
    for (std::size_t c = 0; c < scores.size(); ++c)
      scores[c] += params_.learning_rate * klass_trees[c].predict(row);
  const double max_s = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_s);
    total += s;
  }
  for (double& s : scores) s /= total;
  return scores;
}

Label GradientBoosting::predict(const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  return static_cast<Label>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
}

std::size_t GradientBoosting::rounds_fitted() const {
  return impl_ ? impl_->rounds.size() : 0;
}

}  // namespace cgctx::ml
