// CSV interchange for datasets.
//
// The paper shares its labeled dataset and preprocessing scripts with the
// community; this module provides the equivalent interchange path: write
// any ml::Dataset as a CSV (header = feature names + "label", label
// column = class name) and read it back, so extracted attribute matrices
// can move between this library and external analysis tooling.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "ml/dataset.hpp"

namespace cgctx::ml {

/// Writes `data` as CSV: a header row of feature names (auto-generated
/// f0..fN when the dataset carries none) plus a trailing "label" column
/// holding class names (or numeric labels when no names are set).
void write_csv(std::ostream& out, const Dataset& data);
void write_csv(const std::filesystem::path& path, const Dataset& data);

/// Reads a CSV produced by write_csv (or any numeric CSV whose last
/// column is a class name). Class names are collected in first-seen
/// order. Throws std::invalid_argument on ragged rows, a missing header,
/// or non-numeric feature cells.
Dataset read_csv(std::istream& in);
Dataset read_csv(const std::filesystem::path& path);

}  // namespace cgctx::ml
