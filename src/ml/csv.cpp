#include "ml/csv.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

namespace {

/// Quotes a cell when it contains a comma/quote/newline (RFC 4180).
std::string quote_if_needed(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honoring quotes.
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

void write_csv(std::ostream& out, const Dataset& data) {
  const std::size_t width = data.num_features();
  // Header.
  for (std::size_t j = 0; j < width; ++j) {
    const std::string name = j < data.feature_names().size()
                                 ? data.feature_names()[j]
                                 : "f" + std::to_string(j);
    out << quote_if_needed(name) << ',';
  }
  out << "label\n";
  // Rows.
  out.precision(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (double v : data.row(i)) out << v << ',';
    const auto label = static_cast<std::size_t>(data.label(i));
    out << quote_if_needed(label < data.class_names().size()
                               ? data.class_names()[label]
                               : std::to_string(label))
        << '\n';
  }
}

void write_csv(const std::filesystem::path& path, const Dataset& data) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  write_csv(out, data);
  if (!out) throw std::runtime_error("write_csv: write failed");
}

Dataset read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw std::invalid_argument("read_csv: missing header");
  auto header = split_line(line);
  if (header.size() < 2 || header.back() != "label")
    throw std::invalid_argument("read_csv: last header column must be 'label'");
  header.pop_back();
  const std::size_t width = header.size();

  std::vector<std::string> class_names;
  std::vector<FeatureRow> rows;
  std::vector<std::string> row_labels;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    const auto cells = split_line(line);
    if (cells.size() != width + 1)
      throw std::invalid_argument("read_csv: ragged row");
    FeatureRow row(width);
    for (std::size_t j = 0; j < width; ++j) {
      const std::string& cell = cells[j];
      const char* begin = cell.data();
      const char* end = begin + cell.size();
      auto [ptr, ec] = std::from_chars(begin, end, row[j]);
      if (ec != std::errc{} || ptr != end)
        throw std::invalid_argument("read_csv: non-numeric cell '" + cell + "'");
    }
    rows.push_back(std::move(row));
    row_labels.push_back(cells.back());
    if (std::find(class_names.begin(), class_names.end(), cells.back()) ==
        class_names.end())
      class_names.push_back(cells.back());
  }

  Dataset data(header, class_names);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto it =
        std::find(class_names.begin(), class_names.end(), row_labels[i]);
    data.add(std::move(rows[i]),
             static_cast<Label>(it - class_names.begin()));
  }
  return data;
}

Dataset read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  return read_csv(in);
}

}  // namespace cgctx::ml
