// Allocation-free compiled Random Forest inference engine.
//
// A fitted RandomForest stores each tree as std::vector<Node> with a
// heap-allocated std::vector<double> distribution inside every leaf —
// fine for training, hostile to the prediction hot path: a 500-tree
// title verdict chases ~5000 pointer-laden 48-byte nodes and touches as
// many scattered leaf vectors. CompiledForest flattens the whole
// ensemble once, after fit, into contiguous structure-of-arrays node
// storage (feature / threshold / left / right) with every leaf
// distribution pooled into one flat double array addressed by offset.
// predict_proba_into then runs with zero heap allocations per call.
//
// Tree descent is a chain of dependent loads, so a single walk is bound
// by memory latency, not compute. The engine therefore walks trees in
// interleaved blocks of kWalkGroup: the independent descent chains
// overlap their cache misses, which is where most of the speedup over
// the reference walk comes from. The hot loop reads a packed 16-byte
// traversal mirror of the SoA arrays (threshold + feature + one child
// index; siblings are laid out adjacently by a per-tree BFS) so each
// descent step touches one cache line instead of three. The walk itself
// is branchless — a leaf stores threshold = NaN and child = self - 1,
// so whatever the row holds (including NaN) the comparison is false and
// the chain spins in place on the leaf — and all chains simply advance
// for max_depth() passes with no per-node "am I done" branch to
// mispredict.
//
// Parity guarantee: predictions are bitwise-identical to the reference
// forest. Leaf distributions are accumulated strictly in tree order
// (walks may interleave, sums may not), per-class sums add in the same
// order, and the division by tree count matches
// RandomForest::predict_proba exactly; argmax resolves ties to the
// lowest label exactly as std::max_element does. The parity tests in
// tests/ml/compiled_forest_test.cpp pin this bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/random_forest.hpp"

namespace cgctx::ml {

class CompiledForest {
 public:
  /// Empty (uncompiled) engine; every predict throws std::logic_error.
  CompiledForest() = default;

  /// Flattens a fitted forest. Throws std::logic_error when the forest
  /// has no trees (compile before fit).
  explicit CompiledForest(const RandomForest& forest);

  [[nodiscard]] bool compiled() const { return !roots_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return roots_.size(); }
  [[nodiscard]] std::size_t node_count() const { return feature_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  /// Longest root-to-leaf path (edges) over all trees; the number of
  /// branchless descent passes each walk block runs.
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

  /// Averaged per-tree class probabilities, written into `out` with zero
  /// heap allocations. `row.size()` must equal num_features() and
  /// `out.size()` must equal num_classes().
  void predict_proba_into(std::span<const double> row,
                          std::span<double> out) const;

  /// Argmax over predict_proba_into using `scratch` (size num_classes())
  /// as the accumulation buffer; ties resolve to the lowest label.
  [[nodiscard]] Label predict(std::span<const double> row,
                              std::span<double> scratch) const;

  /// Label + winning-class confidence, allocation-free via `scratch`.
  [[nodiscard]] Classifier::Prediction predict_with_confidence(
      std::span<const double> row, std::span<double> scratch) const;

  /// Convenience forms. They stay allocation-free for class counts up to
  /// kStackClasses (a stack buffer); wider problems pay one allocation.
  [[nodiscard]] Label predict(const FeatureRow& row) const;
  [[nodiscard]] Classifier::Prediction predict_with_confidence(
      const FeatureRow& row) const;
  /// Allocates the returned vector (API-boundary convenience).
  [[nodiscard]] ClassProbabilities predict_proba(const FeatureRow& row) const;

  /// Batch prediction: `out.size()` must equal `rows.size()`. At most one
  /// scratch allocation per call, never one per row.
  void predict_rows(std::span<const FeatureRow> rows,
                    std::span<Label> out) const;

  /// Class counts the stack-buffer convenience paths cover.
  static constexpr std::size_t kStackClasses = 64;

  /// Tree walks interleaved per block (independent descent chains whose
  /// cache misses overlap).
  static constexpr std::size_t kWalkGroup = 16;

 private:
  void walk_accumulate(std::span<const double> row,
                       std::span<double> out) const;

  /// One packed traversal node: everything a descent step reads sits in
  /// one 16-byte (quarter-cache-line) record. Siblings are adjacent, so
  /// the step is `child + !(row[feature] <= threshold)`; a leaf stores a
  /// quiet NaN threshold and child = self - 1, making the step an
  /// unconditional self-loop (the comparison is false for every input,
  /// NaN included) with feature = 0 keeping the spin's row load valid.
  /// The NaN's low mantissa bits carry the leaf's pool offset, so the
  /// accumulation pass reads it straight from the node it already has in
  /// cache instead of chasing a side array.
  struct WalkNode {
    double threshold = 0.0;
    std::int32_t feature = 0;
    std::int32_t child = 0;
  };
  static_assert(sizeof(WalkNode) == 16);

  // Canonical structure-of-arrays node storage, all trees concatenated,
  // in the source forest's node order. Node i splits on feature_[i] at
  // threshold_[i]; its left/right children sit at children_[2i] /
  // children_[2i+1] (absolute indices). A leaf has feature_[i] = -1,
  // children_ pointing at itself, and leaf_offset_[i] holding the offset
  // of its num_classes_-wide distribution in leaf_pool_ (-1 for split
  // nodes).
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> children_;
  std::vector<std::int32_t> leaf_offset_;
  std::vector<double> leaf_pool_;
  /// Root node index per tree, in the reference forest's vote order.
  std::vector<std::int32_t> roots_;
  // Walk-optimized mirror of the node arrays (per-tree BFS order so
  // siblings are adjacent), derived from the canonical layout at
  // compile time and used by the hot descent loop.
  std::vector<WalkNode> walk_;
  std::vector<std::int32_t> walk_roots_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace cgctx::ml
