// Common classifier interface.
//
// Grid search, metrics and permutation importance operate on this
// interface so Random Forest, SVM and KNN are interchangeable, mirroring
// the paper's model bake-offs (Figs. 14-15).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace cgctx::ml {

/// Per-class scores summing to 1 (vote shares / pseudo-probabilities).
using ClassProbabilities = std::vector<double>;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Throws std::invalid_argument on an empty
  /// dataset or (for re-fit) a feature-width mismatch.
  virtual void fit(const Dataset& train) = 0;

  /// Predicts the class label for one feature row.
  [[nodiscard]] virtual Label predict(const FeatureRow& row) const = 0;

  /// Per-class confidence scores; index = label. Models without a natural
  /// probability output return a one-hot vector for their prediction.
  [[nodiscard]] virtual ClassProbabilities predict_proba(
      const FeatureRow& row) const = 0;

  /// Non-allocating variant: writes the per-class scores into `out`,
  /// whose size must equal the model's class count. The default
  /// implementation falls back to predict_proba (one allocation); models
  /// with an allocation-free path (RandomForest) override it.
  virtual void predict_proba_into(const FeatureRow& row,
                                  std::span<double> out) const;

  /// Convenience: predicted label and its confidence score.
  struct Prediction {
    Label label = -1;
    double confidence = 0.0;
  };
  [[nodiscard]] Prediction predict_with_confidence(const FeatureRow& row) const;

  /// Fraction of rows in `data` predicted correctly.
  [[nodiscard]] double score(const Dataset& data) const;
};

using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace cgctx::ml
