#include "ml/metrics.hpp"

#include <iomanip>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

void ConfusionMatrix::add(Label truth, Label predicted) {
  if (truth < 0 || static_cast<std::size_t>(truth) >= num_classes_ ||
      predicted < 0 || static_cast<std::size_t>(predicted) >= num_classes_)
    throw std::invalid_argument("ConfusionMatrix::add: label out of range");
  ++counts_[static_cast<std::size_t>(truth) * num_classes_ +
            static_cast<std::size_t>(predicted)];
}

std::uint64_t ConfusionMatrix::count(Label truth, Label predicted) const {
  return counts_[static_cast<std::size_t>(truth) * num_classes_ +
                 static_cast<std::size_t>(predicted)];
}

std::uint64_t ConfusionMatrix::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  std::uint64_t diag = 0;
  for (std::size_t c = 0; c < num_classes_; ++c)
    diag += counts_[c * num_classes_ + c];
  return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::recall(Label c) const {
  std::uint64_t row_total = 0;
  for (std::size_t p = 0; p < num_classes_; ++p)
    row_total += count(c, static_cast<Label>(p));
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(row_total);
}

double ConfusionMatrix::per_class_accuracy(Label c) const { return recall(c); }

double ConfusionMatrix::precision(Label c) const {
  std::uint64_t col_total = 0;
  for (std::size_t t = 0; t < num_classes_; ++t)
    col_total += count(static_cast<Label>(t), c);
  if (col_total == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(col_total);
}

double ConfusionMatrix::f1(Label c) const {
  const double p = precision(c);
  const double r = recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < num_classes_; ++c)
    sum += f1(static_cast<Label>(c));
  return sum / static_cast<double>(num_classes_);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  os << std::setw(20) << "truth \\ predicted";
  for (std::size_t c = 0; c < num_classes_; ++c)
    os << std::setw(10)
       << (c < class_names.size() ? class_names[c].substr(0, 9)
                                  : "c" + std::to_string(c));
  os << '\n';
  for (std::size_t t = 0; t < num_classes_; ++t) {
    os << std::setw(20)
       << (t < class_names.size() ? class_names[t].substr(0, 19)
                                  : "c" + std::to_string(t));
    for (std::size_t p = 0; p < num_classes_; ++p)
      os << std::setw(10) << count(static_cast<Label>(t), static_cast<Label>(p));
    os << '\n';
  }
  return os.str();
}

ConfusionMatrix evaluate(const Classifier& model, const Dataset& data) {
  ConfusionMatrix cm(data.num_classes());
  for (std::size_t i = 0; i < data.size(); ++i)
    cm.add(data.label(i), model.predict(data.row(i)));
  return cm;
}

}  // namespace cgctx::ml
