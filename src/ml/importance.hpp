// Permutation feature importance (Breiman 2001, as cited by the paper).
//
// Importance of attribute j = drop in model accuracy when column j of the
// evaluation set is randomly shuffled, averaged over repeats. Used for the
// paper's Fig. 9 (51 launch attributes) and Table 5 (9 transition
// attributes).
#pragma once

#include <vector>

#include "ml/classifier.hpp"
#include "ml/rng.hpp"

namespace cgctx::ml {

struct ImportanceResult {
  /// Mean accuracy drop per feature (may be slightly negative for
  /// irrelevant features; callers typically clamp at 0 for display).
  std::vector<double> mean_drop;
  /// Standard deviation of the drop across repeats.
  std::vector<double> stddev;
  double baseline_accuracy = 0.0;
};

/// Computes permutation importance of every feature on `data` (typically
/// a held-out test set) using `repeats` shuffles per feature.
ImportanceResult permutation_importance(const Classifier& model,
                                        const Dataset& data,
                                        std::size_t repeats, Rng& rng);

}  // namespace cgctx::ml
