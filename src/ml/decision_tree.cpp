#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

namespace {

/// Gini impurity from class counts and their total.
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

struct BestSplit {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double impurity = std::numeric_limits<double>::infinity();
};

}  // namespace

void DecisionTree::fit(const Dataset& train) {
  std::vector<std::size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit_on(train, indices);
}

void DecisionTree::fit_on(const Dataset& train,
                          const std::vector<std::size_t>& indices) {
  FitScratch scratch;
  fit_on(train, indices, scratch);
}

void DecisionTree::fit_on(const Dataset& train,
                          const std::vector<std::size_t>& indices,
                          FitScratch& scratch) {
  if (train.empty() || indices.empty())
    throw std::invalid_argument("DecisionTree::fit: empty training set");
  nodes_.clear();
  num_classes_ = train.num_classes();
  num_features_ = train.num_features();
  scratch.work = indices;
  Rng rng(params_.seed);
  build(train, scratch, 0, scratch.work.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& train, FitScratch& scratch,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, Rng& rng) {
  // All scratch buffers are live only until the child recursion at the
  // bottom: children overwrite them freely because a node never reads
  // its histograms or sorted column after choosing its split.
  const std::size_t n = end - begin;
  std::vector<std::size_t>& indices = scratch.work;
  std::vector<double>& counts = scratch.counts;
  counts.assign(num_classes_, 0.0);
  for (std::size_t i = begin; i < end; ++i)
    counts[static_cast<std::size_t>(train.label(indices[i]))] += 1.0;
  const double total = static_cast<double>(n);
  const double node_gini = gini(counts, total);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.distribution.resize(num_classes_);
    for (std::size_t c = 0; c < num_classes_; ++c)
      leaf.distribution[c] = counts[c] / total;
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool depth_capped = params_.max_depth != 0 && depth >= params_.max_depth;
  if (depth_capped || n < params_.min_samples_split || node_gini == 0.0)
    return make_leaf();

  // Choose the candidate feature set for this split. The shuffle always
  // covers the full feature vector (its RNG draws depend on the size),
  // and subsampling takes the first max_features entries — the same
  // candidates the shuffle-then-truncate form produced.
  std::vector<std::size_t>& features = scratch.features;
  features.resize(num_features_);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t candidate_count = num_features_;
  if (params_.max_features > 0 && params_.max_features < num_features_) {
    shuffle(features, rng);
    candidate_count = params_.max_features;
  }

  // Scan candidate thresholds per feature: sort (value, label) pairs once,
  // then sweep maintaining left-side class counts.
  BestSplit best;
  std::vector<std::pair<double, Label>>& column = scratch.column;
  column.resize(n);
  std::vector<double>& left_counts = scratch.left_counts;
  left_counts.resize(num_classes_);
  for (std::size_t fi = 0; fi < candidate_count; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {train.row(row)[f], train.label(row)};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_counts[static_cast<std::size_t>(column[i].second)] += 1.0;
      if (column[i].first == column[i + 1].first) continue;
      const auto n_left = static_cast<double>(i + 1);
      const double n_right = total - n_left;
      if (n_left < static_cast<double>(params_.min_samples_leaf) ||
          n_right < static_cast<double>(params_.min_samples_leaf))
        continue;
      double right_sq = 0.0;
      double left_sq = 0.0;
      for (std::size_t c = 0; c < num_classes_; ++c) {
        left_sq += left_counts[c] * left_counts[c];
        const double rc = counts[c] - left_counts[c];
        right_sq += rc * rc;
      }
      const double weighted =
          (n_left - left_sq / n_left) + (n_right - right_sq / n_right);
      if (weighted < best.impurity) {
        best.impurity = weighted;
        best.feature = static_cast<std::int32_t>(f);
        // Midpoint threshold generalizes better than the left value.
        best.threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best.feature < 0) return make_leaf();
  // Require an actual impurity decrease (weighted form: total*gini).
  if (best.impurity >= total * node_gini - 1e-12) return make_leaf();

  // Partition indices in place around the split.
  const auto split_feature = static_cast<std::size_t>(best.feature);
  auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return train.row(row)[split_feature] <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(middle - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // numeric edge case

  const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();  // placeholder; children may reallocate the vector
  const std::int32_t left = build(train, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right = build(train, scratch, mid, end, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::descend(const FeatureRow& row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: predict before fit");
  if (row.size() != num_features_)
    throw std::invalid_argument("DecisionTree: feature width mismatch");
  const Node* node = &nodes_.front();
  while (!node->is_leaf()) {
    const auto f = static_cast<std::size_t>(node->feature);
    node = &nodes_[static_cast<std::size_t>(row[f] <= node->threshold
                                                ? node->left
                                                : node->right)];
  }
  return *node;
}

Label DecisionTree::predict(const FeatureRow& row) const {
  const auto& dist = descend(row).distribution;
  return static_cast<Label>(std::max_element(dist.begin(), dist.end()) -
                            dist.begin());
}

ClassProbabilities DecisionTree::predict_proba(const FeatureRow& row) const {
  return descend(row).distribution;
}

const ClassProbabilities& DecisionTree::leaf_distribution(
    const FeatureRow& row) const {
  return descend(row).distribution;
}

std::size_t DecisionTree::depth_of(std::int32_t node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.is_leaf()) return 0;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t DecisionTree::depth() const {
  return nodes_.empty() ? 0 : depth_of(0);
}

void DecisionTree::serialize_to(std::ostream& os) const {
  os << "tree " << nodes_.size() << ' ' << num_classes_ << ' ' << num_features_
     << '\n';
  const auto old_precision = os.precision(17);
  for (const Node& n : nodes_) {
    if (n.is_leaf()) {
      os << "leaf";
      for (double d : n.distribution) os << ' ' << d;
      os << '\n';
    } else {
      os << "split " << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
         << n.right << '\n';
    }
  }
  os.precision(old_precision);
}

std::string DecisionTree::serialize() const {
  std::ostringstream os;
  serialize_to(os);
  return os.str();
}

DecisionTree DecisionTree::deserialize_from(std::istream& is) {
  std::string tag;
  std::size_t node_count = 0;
  DecisionTree out;
  is >> tag >> node_count >> out.num_classes_ >> out.num_features_;
  if (!is || tag != "tree")
    throw std::invalid_argument("DecisionTree: bad header");
  out.nodes_.resize(node_count);
  for (Node& n : out.nodes_) {
    is >> tag;
    if (tag == "leaf") {
      n.distribution.resize(out.num_classes_);
      for (double& d : n.distribution) is >> d;
    } else if (tag == "split") {
      is >> n.feature >> n.threshold >> n.left >> n.right;
      if (n.left <= 0 || n.right <= 0 ||
          static_cast<std::size_t>(n.left) >= node_count ||
          static_cast<std::size_t>(n.right) >= node_count)
        throw std::invalid_argument("DecisionTree: bad child index");
    } else {
      throw std::invalid_argument("DecisionTree: bad node tag");
    }
  }
  if (!is) throw std::invalid_argument("DecisionTree: truncated payload");
  return out;
}

DecisionTree DecisionTree::deserialize(const std::string& text) {
  std::istringstream is(text);
  return deserialize_from(is);
}

}  // namespace cgctx::ml
