#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace cgctx::ml {

namespace {
/// Exponent + quiet bit of a canonical quiet NaN. A leaf's WalkNode
/// threshold is this pattern with the leaf's pool offset in the low 32
/// mantissa bits — still a NaN for any offset, so it compares false
/// against every row value.
constexpr std::uint64_t kLeafNanBits = 0x7FF8'0000'0000'0000ULL;
constexpr std::uint64_t kLeafOffsetMask = 0xFFFF'FFFFULL;
}  // namespace

CompiledForest::CompiledForest(const RandomForest& forest) {
  if (forest.tree_count() == 0)
    throw std::logic_error("CompiledForest: compile before fit");
  num_classes_ = forest.num_classes();

  std::size_t total_nodes = 0;
  std::size_t total_leaves = 0;
  for (const DecisionTree& tree : forest.trees()) {
    total_nodes += tree.node_count();
    for (const DecisionTree::Node& node : tree.nodes())
      if (node.is_leaf()) ++total_leaves;
  }
  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  children_.reserve(2 * total_nodes);
  leaf_offset_.reserve(total_nodes);
  leaf_pool_.reserve(total_leaves * num_classes_);
  roots_.reserve(forest.tree_count());
  walk_.reserve(total_nodes);
  walk_roots_.reserve(forest.tree_count());

  std::vector<std::size_t> depth;
  std::vector<std::int32_t> order;   // tree-local node ids in BFS order
  std::vector<std::int32_t> newpos;  // tree-local node id -> BFS rank
  for (const DecisionTree& tree : forest.trees()) {
    if (tree.num_classes() != num_classes_)
      throw std::logic_error("CompiledForest: inconsistent class counts");
    if (num_features_ == 0) num_features_ = tree.num_features();
    if (tree.num_features() != num_features_)
      throw std::logic_error("CompiledForest: inconsistent feature widths");
    const auto base = static_cast<std::int32_t>(feature_.size());
    roots_.push_back(base);  // a tree's node 0 is its root
    // Children always sit at larger local indices than their parent, so
    // one forward pass yields every node's depth.
    depth.assign(tree.node_count(), 0);
    std::int32_t local = 0;
    for (const DecisionTree::Node& node : tree.nodes()) {
      const auto self = base + local;
      if (node.is_leaf()) {
        if (node.distribution.size() != num_classes_)
          throw std::logic_error("CompiledForest: bad leaf width");
        feature_.push_back(-1);
        threshold_.push_back(0.0);
        children_.push_back(self);
        children_.push_back(self);
        leaf_offset_.push_back(static_cast<std::int32_t>(leaf_pool_.size()));
        leaf_pool_.insert(leaf_pool_.end(), node.distribution.begin(),
                          node.distribution.end());
        max_depth_ = std::max(max_depth_,
                              depth[static_cast<std::size_t>(local)]);
      } else {
        feature_.push_back(node.feature);
        threshold_.push_back(node.threshold);
        children_.push_back(base + node.left);
        children_.push_back(base + node.right);
        leaf_offset_.push_back(-1);
        const std::size_t d = depth[static_cast<std::size_t>(local)] + 1;
        depth[static_cast<std::size_t>(node.left)] = d;
        depth[static_cast<std::size_t>(node.right)] = d;
      }
      ++local;
    }

    // Walk mirror: re-lay the tree out in BFS order. A BFS queue hands
    // sibling pairs consecutive ranks, so a split only needs its left
    // child's index (right = left + 1).
    const auto wbase = static_cast<std::int32_t>(walk_.size());
    walk_roots_.push_back(wbase);
    const auto& nodes = tree.nodes();
    order.clear();
    order.push_back(0);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const DecisionTree::Node& node =
          nodes[static_cast<std::size_t>(order[head])];
      if (!node.is_leaf()) {
        order.push_back(node.left);
        order.push_back(node.right);
      }
    }
    newpos.assign(nodes.size(), 0);
    for (std::size_t rank = 0; rank < order.size(); ++rank)
      newpos[static_cast<std::size_t>(order[rank])] =
          static_cast<std::int32_t>(rank);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const auto old_local = static_cast<std::size_t>(order[rank]);
      const DecisionTree::Node& node = nodes[old_local];
      const auto self = wbase + static_cast<std::int32_t>(rank);
      if (node.is_leaf()) {
        // Quiet NaN whose low bits are the leaf's pool offset: still
        // compares false against everything (the self-loop driver) and
        // doubles as the accumulation pass's distribution pointer.
        const auto offset = static_cast<std::uint64_t>(
            leaf_offset_[static_cast<std::size_t>(base) + old_local]);
        walk_.push_back(WalkNode{
            .threshold = std::bit_cast<double>(kLeafNanBits | offset),
            .feature = 0,
            .child = self - 1,
        });
      } else {
        walk_.push_back(WalkNode{
            .threshold = node.threshold,
            .feature = node.feature,
            .child = wbase + newpos[static_cast<std::size_t>(node.left)],
        });
      }
    }
  }
}

void CompiledForest::walk_accumulate(std::span<const double> row,
                                     std::span<double> out) const {
  const WalkNode* const walk = walk_.data();
  const double* const pool = leaf_pool_.data();
  const double* const x = row.data();
  const std::size_t classes = num_classes_;
  const std::size_t trees = walk_roots_.size();
  const std::size_t passes = max_depth_;
  std::size_t cursor[kWalkGroup];
  const auto step = [&](std::size_t i) {
    const WalkNode node = walk[cursor[i]];
    // !(x <= t) rather than (x > t): NaN features descend right,
    // exactly as the reference walk's ternary does. Leaves compare
    // against NaN, so the step degenerates to child + 1 == self.
    cursor[i] = static_cast<std::size_t>(node.child) +
                static_cast<std::size_t>(
                    !(x[static_cast<std::size_t>(node.feature)] <=
                      node.threshold));
  };
  for (std::size_t block = 0; block < trees; block += kWalkGroup) {
    const std::size_t n = std::min(kWalkGroup, trees - block);
    for (std::size_t i = 0; i < n; ++i)
      cursor[i] = static_cast<std::size_t>(walk_roots_[block + i]);
    // Advance the block's descent chains in lockstep for exactly
    // max_depth_ passes: the per-lane loads are independent, so their
    // cache misses overlap, and chains already parked on a leaf spin in
    // place — no "am I done" branch to mispredict. Full blocks unroll
    // the lane sweep at compile time (constant lane indices), partial
    // tail blocks take the generic loop.
    if (n == kWalkGroup) {
      for (std::size_t pass = 0; pass < passes; ++pass)
        [&]<std::size_t... I>(std::index_sequence<I...>) {
          (step(I), ...);
        }(std::make_index_sequence<kWalkGroup>{});
    } else {
      for (std::size_t pass = 0; pass < passes; ++pass)
        for (std::size_t i = 0; i < n; ++i) step(i);
    }
    // Resolve the block's distribution pointers (pool offsets ride in
    // the leaf NaNs' mantissas) and get their lines in flight before the
    // ordered accumulation consumes them one by one.
    const double* dists[kWalkGroup];
    for (std::size_t i = 0; i < n; ++i) {
      dists[i] = pool + (std::bit_cast<std::uint64_t>(
                             walk[cursor[i]].threshold) &
                         kLeafOffsetMask);
      __builtin_prefetch(dists[i]);
      __builtin_prefetch(dists[i] + 8);
    }
    // Accumulate this block's leaves strictly in tree order: the
    // per-class float sums stay bitwise-identical to the reference
    // RandomForest::predict_proba's sequential walk.
    for (std::size_t i = 0; i < n; ++i) {
      const double* const dist = dists[i];
      for (std::size_t c = 0; c < classes; ++c) out[c] += dist[c];
    }
  }
}

void CompiledForest::predict_proba_into(std::span<const double> row,
                                        std::span<double> out) const {
  if (!compiled())
    throw std::logic_error("CompiledForest: predict before compile");
  if (row.size() != num_features_)
    throw std::invalid_argument("CompiledForest: feature width mismatch");
  if (out.size() != num_classes_)
    throw std::invalid_argument(
        "CompiledForest: output span size must equal num_classes()");
  std::fill(out.begin(), out.end(), 0.0);
  walk_accumulate(row, out);
  const auto k = static_cast<double>(roots_.size());
  for (double& p : out) p /= k;
}

Label CompiledForest::predict(std::span<const double> row,
                              std::span<double> scratch) const {
  return predict_with_confidence(row, scratch).label;
}

Classifier::Prediction CompiledForest::predict_with_confidence(
    std::span<const double> row, std::span<double> scratch) const {
  predict_proba_into(row, scratch);
  // First maximum, exactly like std::max_element: ties go to the lowest
  // label (pinned by tests for both engines).
  std::size_t best = 0;
  for (std::size_t c = 1; c < scratch.size(); ++c)
    if (scratch[c] > scratch[best]) best = c;
  return Classifier::Prediction{static_cast<Label>(best), scratch[best]};
}

Label CompiledForest::predict(const FeatureRow& row) const {
  return predict_with_confidence(row).label;
}

Classifier::Prediction CompiledForest::predict_with_confidence(
    const FeatureRow& row) const {
  double stack[kStackClasses];
  if (num_classes_ <= kStackClasses && compiled())
    return predict_with_confidence(row, std::span(stack, num_classes_));
  std::vector<double> heap(num_classes_);
  return predict_with_confidence(row, heap);
}

ClassProbabilities CompiledForest::predict_proba(const FeatureRow& row) const {
  ClassProbabilities probs(num_classes_);
  predict_proba_into(row, probs);
  return probs;
}

void CompiledForest::predict_rows(std::span<const FeatureRow> rows,
                                  std::span<Label> out) const {
  if (out.size() != rows.size())
    throw std::invalid_argument(
        "CompiledForest::predict_rows: output span size mismatch");
  double stack[kStackClasses];
  std::vector<double> heap;
  std::span<double> scratch;
  if (num_classes_ <= kStackClasses && compiled()) {
    scratch = std::span(stack, num_classes_);
  } else {
    heap.resize(num_classes_);
    scratch = heap;
  }
  for (std::size_t i = 0; i < rows.size(); ++i)
    out[i] = predict(rows[i], scratch);
}

}  // namespace cgctx::ml
