// Tabular dataset container and resampling utilities.
//
// cgctx::ml is a self-contained statistical learning toolkit implementing
// exactly what the paper's evaluation needs: Random Forest, SVM and KNN
// classifiers, stratified splits and k-fold cross-validation, grid search,
// standard metrics, and permutation importance. No external ML dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/rng.hpp"

namespace cgctx::ml {

/// A feature vector; all models operate on dense doubles.
using FeatureRow = std::vector<double>;

/// Class label as an index into Dataset::class_names.
using Label = int;

/// A labeled tabular dataset. Rows all share the same width; labels map
/// into class_names. feature_names are carried for importance reports.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::string> class_names)
      : feature_names_(std::move(feature_names)),
        class_names_(std::move(class_names)) {}

  /// Appends one example. Throws std::invalid_argument when the row width
  /// disagrees with feature_names (if set) or earlier rows, or the label
  /// is out of range for class_names (if set).
  void add(FeatureRow row, Label label);

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] std::size_t num_features() const {
    return !feature_names_.empty() ? feature_names_.size()
           : rows_.empty()         ? 0
                                   : rows_.front().size();
  }
  [[nodiscard]] std::size_t num_classes() const;

  [[nodiscard]] const FeatureRow& row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] Label label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<FeatureRow>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<Label>& labels() const { return labels_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// Mutable access used by permutation importance (column shuffling).
  std::vector<FeatureRow>& mutable_rows() { return rows_; }

  /// Builds a new dataset from a subset of row indices.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Count of examples per class (indexed by label).
  [[nodiscard]] std::vector<std::size_t> class_counts() const;

 private:
  std::vector<FeatureRow> rows_;
  std::vector<Label> labels_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
};

/// Result of a train/test split.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Splits preserving per-class proportions. `test_fraction` in (0,1).
/// Deterministic given the RNG state.
TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                Rng& rng);

/// Index folds for stratified k-fold cross-validation: each fold is a list
/// of test-row indices; folds partition [0, size).
std::vector<std::vector<std::size_t>> stratified_kfold(const Dataset& data,
                                                       std::size_t k, Rng& rng);

}  // namespace cgctx::ml
