// Support Vector Machine classifier (SMO solver, one-vs-rest multiclass).
//
// One of the paper's three candidate models, tuned over the regularization
// parameter C and the kernel type (§C.1). The solver is the simplified
// Sequential Minimal Optimization of Platt (1998): adequate for the few
// thousand standardized attribute rows the evaluation trains on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/rng.hpp"

namespace cgctx::ml {

enum class KernelType {
  kLinear,  ///< k(a,b) = a.b
  kRbf,     ///< k(a,b) = exp(-gamma * |a-b|^2)
  kPoly,    ///< k(a,b) = (a.b + 1)^degree
};

const char* to_string(KernelType kernel);

struct SvmParams {
  double c = 1.0;  ///< soft-margin regularization
  KernelType kernel = KernelType::kRbf;
  /// RBF width; 0 means 1 / num_features (the usual "scale"-free default).
  double gamma = 0.0;
  int poly_degree = 3;
  double tolerance = 1e-3;
  /// SMO gives up after this many passes without an alpha update.
  int max_passes = 5;
  /// Hard bound on total SMO sweeps (safety valve on pathological data).
  int max_iterations = 200;
  std::uint64_t seed = 7;
};

class Svm final : public Classifier {
 public:
  explicit Svm(SvmParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;
  [[nodiscard]] Label predict(const FeatureRow& row) const override;
  /// Softmax over the per-class decision values; not calibrated
  /// probabilities, but a usable confidence ordering.
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override;

  [[nodiscard]] const SvmParams& params() const { return params_; }

  /// Total support vectors across the one-vs-rest machines.
  [[nodiscard]] std::size_t support_vector_count() const;

  /// Round-trippable text form (params + every machine's support vectors).
  [[nodiscard]] std::string serialize() const;
  static Svm deserialize(const std::string& text);

 private:
  /// One binary machine: sign(sum_i alpha_i y_i k(x_i, x) + b).
  struct BinaryMachine {
    std::vector<FeatureRow> support_vectors;
    std::vector<double> coefficients;  ///< alpha_i * y_i
    double bias = 0.0;
  };

  [[nodiscard]] double kernel(const FeatureRow& a, const FeatureRow& b) const;
  [[nodiscard]] double decision(const BinaryMachine& machine,
                                const FeatureRow& row) const;
  BinaryMachine train_binary(const Dataset& train, Label positive, Rng& rng) const;

  SvmParams params_;
  std::vector<BinaryMachine> machines_;  ///< one per class (one-vs-rest)
  std::size_t num_features_ = 0;
  double effective_gamma_ = 0.0;
};

}  // namespace cgctx::ml
