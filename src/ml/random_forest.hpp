// Random Forest classifier (Breiman 2001).
//
// This is the model the paper selects for both of its classification
// tasks: game titles (500 trees, depth 10 — §C.1) and gameplay activity
// patterns (100 trees, depth 10 — §C.2). Confidence is the averaged
// per-tree class probability of the winning class, which the paper
// thresholds (<40% -> "unknown" title; >=75% -> emit pattern inference).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"

namespace cgctx::ml {

struct RandomForestParams {
  std::size_t n_trees = 100;
  std::size_t max_depth = 10;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means floor(sqrt(num_features)).
  std::size_t max_features = 0;
  /// Draw bootstrap samples (with replacement) per tree.
  bool bootstrap = true;
  std::uint64_t seed = 42;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {}) : params_(params) {}

  /// Fits on the process-wide training pool (core::ThreadPool::training).
  void fit(const Dataset& train) override;
  /// Fits trees on `pool`. Deterministic at any worker count: every
  /// per-tree bootstrap sample and tree seed is pre-drawn serially from
  /// the forest RNG in the exact stream order the serial loop used, trees
  /// fit into pre-sized slots, and OOB votes accumulate per row in fixed
  /// tree order — the serialized model and oob_score() are byte-identical
  /// whether `pool` has 1 worker or 64.
  void fit(const Dataset& train, core::ThreadPool& pool);
  [[nodiscard]] Label predict(const FeatureRow& row) const override;
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override;
  /// Allocation-free: accumulates every tree's leaf distribution straight
  /// into `out` (size must equal num_classes()).
  void predict_proba_into(const FeatureRow& row,
                          std::span<double> out) const override;

  [[nodiscard]] const RandomForestParams& params() const { return params_; }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  /// Fitted trees in vote order. Read by ml::CompiledForest.
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }

  /// Out-of-bag accuracy estimate computed during fit (rows never drawn
  /// into a tree's bootstrap vote on that tree). NaN when bootstrap=false
  /// or some row was in every bag.
  [[nodiscard]] double oob_score() const { return oob_score_; }

  /// Round-trippable text form (params + every tree).
  [[nodiscard]] std::string serialize() const;
  static RandomForest deserialize(const std::string& text);

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
  double oob_score_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace cgctx::ml
