#include "ml/scaler.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

void StandardScaler::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("StandardScaler: empty dataset");
  const std::size_t width = data.num_features();
  means_.assign(width, 0.0);
  scales_.assign(width, 0.0);
  const auto n = static_cast<double>(data.size());
  for (const FeatureRow& row : data.rows())
    for (std::size_t j = 0; j < width; ++j) means_[j] += row[j];
  for (double& m : means_) m /= n;
  for (const FeatureRow& row : data.rows())
    for (std::size_t j = 0; j < width; ++j) {
      const double d = row[j] - means_[j];
      scales_[j] += d * d;
    }
  for (double& s : scales_) {
    s = std::sqrt(s / n);
    if (s == 0.0) s = 1.0;
  }
}

FeatureRow StandardScaler::transform(const FeatureRow& row) const {
  if (!fitted()) throw std::logic_error("StandardScaler: transform before fit");
  if (row.size() != means_.size())
    throw std::invalid_argument("StandardScaler: width mismatch");
  FeatureRow out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - means_[j]) / scales_[j];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out(data.feature_names(), data.class_names());
  for (std::size_t i = 0; i < data.size(); ++i)
    out.add(transform(data.row(i)), data.label(i));
  return out;
}

std::string StandardScaler::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "scaler " << means_.size() << '\n';
  for (std::size_t j = 0; j < means_.size(); ++j)
    os << means_[j] << ' ' << scales_[j] << '\n';
  return os.str();
}

StandardScaler StandardScaler::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t width = 0;
  is >> tag >> width;
  if (tag != "scaler") throw std::invalid_argument("StandardScaler: bad header");
  StandardScaler out;
  out.means_.resize(width);
  out.scales_.resize(width);
  for (std::size_t j = 0; j < width; ++j) is >> out.means_[j] >> out.scales_[j];
  if (!is) throw std::invalid_argument("StandardScaler: truncated payload");
  return out;
}

}  // namespace cgctx::ml
