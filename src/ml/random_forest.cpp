#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cgctx::ml {

void RandomForest::fit(const Dataset& train) {
  fit(train, core::ThreadPool::training());
}

void RandomForest::fit(const Dataset& train, core::ThreadPool& pool) {
  if (train.empty())
    throw std::invalid_argument("RandomForest::fit: empty training set");
  if (params_.n_trees == 0)
    throw std::invalid_argument("RandomForest::fit: n_trees must be > 0");
  num_classes_ = train.num_classes();
  const std::size_t n = train.size();
  const std::size_t n_trees = params_.n_trees;
  trees_.clear();
  trees_.resize(n_trees);

  const std::size_t max_features =
      params_.max_features != 0
          ? params_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(train.num_features()))));

  // Serial pre-draw, consuming the forest RNG in exactly the order the
  // serial loop did (per tree: n bootstrap draws, then the tree seed), so
  // the fitted model is byte-identical at any worker count. Workers
  // re-draw their tree's bootstrap sample from a snapshot of the RNG
  // state instead of storing n indices per tree.
  Rng rng(params_.seed);
  std::vector<Rng> sample_rng;
  std::vector<std::uint64_t> tree_seeds(n_trees);
  if (params_.bootstrap) {
    sample_rng.reserve(n_trees);
    for (std::size_t t = 0; t < n_trees; ++t) {
      sample_rng.push_back(rng);
      for (std::size_t i = 0; i < n; ++i) (void)rng.next_below(n);
      tree_seeds[t] = rng.next_u64();
    }
  } else {
    for (std::size_t t = 0; t < n_trees; ++t) tree_seeds[t] = rng.next_u64();
  }

  // Per-(tree, row) in-bag flags for the OOB pass. Whole bytes, one
  // disjoint region per tree, so concurrent writers never share a word.
  std::vector<std::uint8_t> in_bag;
  if (params_.bootstrap) in_bag.assign(n_trees * n, 0);

  const std::size_t tree_grain =
      std::max<std::size_t>(1, n_trees / (pool.size() * 4));
  pool.parallel_chunks(
      0, n_trees, tree_grain, [&](std::size_t begin, std::size_t end) {
        // One sample buffer + tree scratch per chunk, reused across its
        // trees.
        std::vector<std::size_t> sample(n);
        if (!params_.bootstrap)
          std::iota(sample.begin(), sample.end(), std::size_t{0});
        DecisionTree::FitScratch scratch;
        for (std::size_t t = begin; t < end; ++t) {
          if (params_.bootstrap) {
            Rng draw = sample_rng[t];
            std::uint8_t* bag = in_bag.data() + t * n;
            for (std::size_t i = 0; i < n; ++i) {
              sample[i] = static_cast<std::size_t>(draw.next_below(n));
              bag[sample[i]] = 1;
            }
          }
          DecisionTreeParams tree_params;
          tree_params.max_depth = params_.max_depth;
          tree_params.min_samples_split = params_.min_samples_split;
          tree_params.min_samples_leaf = params_.min_samples_leaf;
          tree_params.max_features = max_features;
          tree_params.seed = tree_seeds[t];
          DecisionTree tree(tree_params);
          tree.fit_on(train, sample, scratch);
          trees_[t] = std::move(tree);
        }
      });

  if (params_.bootstrap) {
    // OOB accumulation parallelizes over rows, not trees: each row's
    // votes sum in ascending tree order, which is the exact addition
    // order of the serial loop — bitwise-identical argmax and score.
    std::vector<std::uint8_t> evaluated(n, 0);
    std::vector<std::uint8_t> correct(n, 0);
    pool.parallel_chunks(
        0, n, std::max<std::size_t>(1, n / (pool.size() * 8)),
        [&](std::size_t begin, std::size_t end) {
          std::vector<double> votes(num_classes_);
          for (std::size_t i = begin; i < end; ++i) {
            std::fill(votes.begin(), votes.end(), 0.0);
            bool any = false;
            for (std::size_t t = 0; t < n_trees; ++t) {
              if (in_bag[t * n + i]) continue;
              const ClassProbabilities& p =
                  trees_[t].leaf_distribution(train.row(i));
              for (std::size_t c = 0; c < num_classes_; ++c) votes[c] += p[c];
              any = true;
            }
            if (!any) continue;  // row was in every bag
            evaluated[i] = 1;
            const auto best = std::max_element(votes.begin(), votes.end());
            correct[i] = static_cast<Label>(best - votes.begin()) ==
                         train.label(i);
          }
        });
    std::size_t evaluated_rows = 0;
    std::size_t correct_rows = 0;
    for (std::size_t i = 0; i < n; ++i) {
      evaluated_rows += evaluated[i];
      correct_rows += correct[i];
    }
    oob_score_ = evaluated_rows == 0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : static_cast<double>(correct_rows) /
                           static_cast<double>(evaluated_rows);
  }
}

void RandomForest::predict_proba_into(const FeatureRow& row,
                                      std::span<double> out) const {
  if (trees_.empty())
    throw std::logic_error("RandomForest: predict before fit");
  if (out.size() != num_classes_)
    throw std::invalid_argument(
        "RandomForest::predict_proba_into: output span size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const ClassProbabilities& p = tree.leaf_distribution(row);
    for (std::size_t c = 0; c < num_classes_; ++c) out[c] += p[c];
  }
  const auto k = static_cast<double>(trees_.size());
  for (double& p : out) p /= k;
}

ClassProbabilities RandomForest::predict_proba(const FeatureRow& row) const {
  ClassProbabilities probs(num_classes_, 0.0);
  predict_proba_into(row, probs);
  return probs;
}

Label RandomForest::predict(const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  return static_cast<Label>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
}

std::string RandomForest::serialize() const {
  std::ostringstream os;
  os << "forest " << trees_.size() << ' ' << num_classes_ << '\n';
  os << params_.n_trees << ' ' << params_.max_depth << ' '
     << params_.min_samples_split << ' ' << params_.min_samples_leaf << ' '
     << params_.max_features << ' ' << (params_.bootstrap ? 1 : 0) << ' '
     << params_.seed << '\n';
  for (const DecisionTree& tree : trees_) tree.serialize_to(os);
  return os.str();
}

RandomForest RandomForest::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t tree_count = 0;
  RandomForest out;
  is >> tag >> tree_count >> out.num_classes_;
  if (!is || tag != "forest")
    throw std::invalid_argument("RandomForest: bad header");
  int bootstrap = 0;
  is >> out.params_.n_trees >> out.params_.max_depth >>
      out.params_.min_samples_split >> out.params_.min_samples_leaf >>
      out.params_.max_features >> bootstrap >> out.params_.seed;
  out.params_.bootstrap = bootstrap != 0;
  out.trees_.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t) {
    DecisionTree tree = DecisionTree::deserialize_from(is);
    // The header's class count is what predict_proba sizes its output
    // by; a tree voting over a different class count would read or write
    // out of bounds. Reject the payload instead of trusting the header.
    if (tree.num_classes() != out.num_classes_)
      throw std::invalid_argument(
          "RandomForest: tree " + std::to_string(t) + " has " +
          std::to_string(tree.num_classes()) + " classes, forest header says " +
          std::to_string(out.num_classes_));
    if (!out.trees_.empty() &&
        tree.num_features() != out.trees_.front().num_features())
      throw std::invalid_argument(
          "RandomForest: tree " + std::to_string(t) +
          " feature width disagrees with tree 0");
    out.trees_.push_back(std::move(tree));
  }
  if (!is) throw std::invalid_argument("RandomForest: truncated payload");
  return out;
}

}  // namespace cgctx::ml
