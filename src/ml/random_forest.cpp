#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

void RandomForest::fit(const Dataset& train) {
  if (train.empty())
    throw std::invalid_argument("RandomForest::fit: empty training set");
  if (params_.n_trees == 0)
    throw std::invalid_argument("RandomForest::fit: n_trees must be > 0");
  trees_.clear();
  trees_.reserve(params_.n_trees);
  num_classes_ = train.num_classes();
  const std::size_t n = train.size();

  const std::size_t max_features =
      params_.max_features != 0
          ? params_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(train.num_features()))));

  Rng rng(params_.seed);
  // Per-row OOB vote tallies across trees.
  std::vector<std::vector<double>> oob_votes(
      n, std::vector<double>(num_classes_, 0.0));
  std::vector<bool> in_bag(n);

  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    std::vector<std::size_t> sample(n);
    if (params_.bootstrap) {
      std::fill(in_bag.begin(), in_bag.end(), false);
      for (std::size_t i = 0; i < n; ++i) {
        sample[i] = static_cast<std::size_t>(rng.next_below(n));
        in_bag[sample[i]] = true;
      }
    } else {
      std::iota(sample.begin(), sample.end(), std::size_t{0});
    }

    DecisionTreeParams tree_params;
    tree_params.max_depth = params_.max_depth;
    tree_params.min_samples_split = params_.min_samples_split;
    tree_params.min_samples_leaf = params_.min_samples_leaf;
    tree_params.max_features = max_features;
    tree_params.seed = rng.next_u64();
    DecisionTree tree(tree_params);
    tree.fit_on(train, sample);

    if (params_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        if (in_bag[i]) continue;
        const ClassProbabilities& p = tree.leaf_distribution(train.row(i));
        for (std::size_t c = 0; c < num_classes_; ++c) oob_votes[i][c] += p[c];
      }
    }
    trees_.push_back(std::move(tree));
  }

  if (params_.bootstrap) {
    std::size_t evaluated = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& votes = oob_votes[i];
      const double total = std::accumulate(votes.begin(), votes.end(), 0.0);
      if (total == 0.0) continue;  // row was in every bag
      ++evaluated;
      const auto best = std::max_element(votes.begin(), votes.end());
      if (static_cast<Label>(best - votes.begin()) == train.label(i)) ++correct;
    }
    oob_score_ = evaluated == 0 ? std::numeric_limits<double>::quiet_NaN()
                                : static_cast<double>(correct) /
                                      static_cast<double>(evaluated);
  }
}

void RandomForest::predict_proba_into(const FeatureRow& row,
                                      std::span<double> out) const {
  if (trees_.empty())
    throw std::logic_error("RandomForest: predict before fit");
  if (out.size() != num_classes_)
    throw std::invalid_argument(
        "RandomForest::predict_proba_into: output span size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const ClassProbabilities& p = tree.leaf_distribution(row);
    for (std::size_t c = 0; c < num_classes_; ++c) out[c] += p[c];
  }
  const auto k = static_cast<double>(trees_.size());
  for (double& p : out) p /= k;
}

ClassProbabilities RandomForest::predict_proba(const FeatureRow& row) const {
  ClassProbabilities probs(num_classes_, 0.0);
  predict_proba_into(row, probs);
  return probs;
}

Label RandomForest::predict(const FeatureRow& row) const {
  const ClassProbabilities probs = predict_proba(row);
  return static_cast<Label>(std::max_element(probs.begin(), probs.end()) -
                            probs.begin());
}

std::string RandomForest::serialize() const {
  std::ostringstream os;
  os << "forest " << trees_.size() << ' ' << num_classes_ << '\n';
  os << params_.n_trees << ' ' << params_.max_depth << ' '
     << params_.min_samples_split << ' ' << params_.min_samples_leaf << ' '
     << params_.max_features << ' ' << (params_.bootstrap ? 1 : 0) << ' '
     << params_.seed << '\n';
  for (const DecisionTree& tree : trees_) tree.serialize_to(os);
  return os.str();
}

RandomForest RandomForest::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t tree_count = 0;
  RandomForest out;
  is >> tag >> tree_count >> out.num_classes_;
  if (!is || tag != "forest")
    throw std::invalid_argument("RandomForest: bad header");
  int bootstrap = 0;
  is >> out.params_.n_trees >> out.params_.max_depth >>
      out.params_.min_samples_split >> out.params_.min_samples_leaf >>
      out.params_.max_features >> bootstrap >> out.params_.seed;
  out.params_.bootstrap = bootstrap != 0;
  out.trees_.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t)
    out.trees_.push_back(DecisionTree::deserialize_from(is));
  if (!is) throw std::invalid_argument("RandomForest: truncated payload");
  return out;
}

}  // namespace cgctx::ml
