// CART decision tree (Gini impurity, binary splits on numeric features).
//
// Used standalone and as the base learner of RandomForest. Supports
// per-split random feature subsampling so the forest can decorrelate its
// trees, and exposes leaf class distributions so ensembles can average
// probabilities rather than hard votes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/rng.hpp"

namespace cgctx::ml {

struct DecisionTreeParams {
  /// Maximum tree depth; 0 means unlimited.
  std::size_t max_depth = 0;
  /// A node with fewer samples becomes a leaf.
  std::size_t min_samples_split = 2;
  /// Candidate splits leaving fewer samples on either side are rejected.
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all features.
  std::size_t max_features = 0;
  /// Seed for feature subsampling (only consulted when max_features > 0).
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  struct Node {
    // Internal node when right > 0: descend left if x[feature] <= threshold.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = 0;
    std::int32_t right = 0;
    // Leaf payload: class distribution (normalized counts).
    std::vector<double> distribution;
    [[nodiscard]] bool is_leaf() const { return right == 0; }
  };

  /// Reusable working buffers for one fit. The node recursion hoists all
  /// of its per-node heap state here (class histograms, the candidate
  /// feature order, the sorted split-scan column, the mutable index
  /// copy), so building a tree allocates only the output nodes once the
  /// scratch is warm. RandomForest keeps one per worker and reuses it
  /// across the trees that worker fits.
  struct FitScratch {
    std::vector<std::size_t> work;
    std::vector<double> counts;
    std::vector<double> left_counts;
    std::vector<std::size_t> features;
    std::vector<std::pair<double, Label>> column;
  };

  explicit DecisionTree(DecisionTreeParams params = {}) : params_(params) {}

  void fit(const Dataset& train) override;

  /// Trains on a subset of rows (used for bootstrap samples). Indices may
  /// repeat. The dataset supplies widths and class count.
  void fit_on(const Dataset& train, const std::vector<std::size_t>& indices);

  /// As above, building through caller-owned scratch (reused across
  /// fits). The fitted tree is identical; only allocations differ.
  void fit_on(const Dataset& train, const std::vector<std::size_t>& indices,
              FitScratch& scratch);

  [[nodiscard]] Label predict(const FeatureRow& row) const override;
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override;

  /// The leaf distribution the row descends to, by const reference — the
  /// internal no-copy path RandomForest accumulates from (predict_proba
  /// copies it at the API boundary).
  [[nodiscard]] const ClassProbabilities& leaf_distribution(
      const FeatureRow& row) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const DecisionTreeParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  /// Fitted node storage (node 0 is the root; a split's left child is
  /// always the next node). Read by ml::CompiledForest.
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Round-trippable text form.
  [[nodiscard]] std::string serialize() const;
  static DecisionTree deserialize(const std::string& text);
  /// Streaming variants used by RandomForest serialization.
  void serialize_to(std::ostream& os) const;
  static DecisionTree deserialize_from(std::istream& is);

 private:
  std::int32_t build(const Dataset& train, FitScratch& scratch,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     Rng& rng);
  [[nodiscard]] const Node& descend(const FeatureRow& row) const;
  [[nodiscard]] std::size_t depth_of(std::int32_t node) const;

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace cgctx::ml
