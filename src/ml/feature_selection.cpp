#include "ml/feature_selection.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cgctx::ml {

FeatureSelection::FeatureSelection(std::vector<std::size_t> kept_indices)
    : kept_(std::move(kept_indices)) {
  std::sort(kept_.begin(), kept_.end());
  kept_.erase(std::unique(kept_.begin(), kept_.end()), kept_.end());
  if (kept_.empty())
    throw std::invalid_argument("FeatureSelection: empty index set");
}

FeatureSelection FeatureSelection::from_importance(
    const ImportanceResult& importance, double min_drop) {
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < importance.mean_drop.size(); ++i)
    if (importance.mean_drop[i] > min_drop) kept.push_back(i);
  if (kept.empty())
    throw std::invalid_argument(
        "FeatureSelection: no feature exceeds the importance threshold");
  return FeatureSelection(std::move(kept));
}

FeatureSelection FeatureSelection::top_k(const ImportanceResult& importance,
                                         std::size_t k) {
  const std::size_t width = importance.mean_drop.size();
  if (width == 0)
    throw std::invalid_argument("FeatureSelection::top_k: empty importance");
  k = std::min(std::max<std::size_t>(k, 1), width);
  std::vector<std::size_t> order(width);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return importance.mean_drop[a] > importance.mean_drop[b];
                    });
  order.resize(k);
  return FeatureSelection(std::move(order));
}

FeatureRow FeatureSelection::project(const FeatureRow& row) const {
  if (row.size() <= kept_.back())
    throw std::invalid_argument("FeatureSelection: row narrower than indices");
  FeatureRow out;
  out.reserve(kept_.size());
  for (std::size_t i : kept_) out.push_back(row[i]);
  return out;
}

Dataset FeatureSelection::project(const Dataset& data) const {
  const std::vector<std::string> names =
      data.feature_names().empty() ? std::vector<std::string>{}
                                   : project(data.feature_names());
  Dataset out(names, data.class_names());
  for (std::size_t i = 0; i < data.size(); ++i)
    out.add(project(data.row(i)), data.label(i));
  return out;
}

std::vector<std::string> FeatureSelection::project(
    const std::vector<std::string>& names) const {
  if (names.size() <= kept_.back())
    throw std::invalid_argument(
        "FeatureSelection: name list narrower than indices");
  std::vector<std::string> out;
  out.reserve(kept_.size());
  for (std::size_t i : kept_) out.push_back(names[i]);
  return out;
}

std::string FeatureSelection::serialize() const {
  std::ostringstream os;
  os << "selection " << kept_.size();
  for (std::size_t i : kept_) os << ' ' << i;
  os << '\n';
  return os.str();
}

FeatureSelection FeatureSelection::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t count = 0;
  is >> tag >> count;
  if (!is || tag != "selection")
    throw std::invalid_argument("FeatureSelection: bad header");
  std::vector<std::size_t> kept(count);
  for (std::size_t& i : kept) is >> i;
  if (!is) throw std::invalid_argument("FeatureSelection: truncated payload");
  return FeatureSelection(std::move(kept));
}

}  // namespace cgctx::ml
