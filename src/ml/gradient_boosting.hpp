// Gradient-boosted decision trees (multinomial deviance, Friedman 2001).
//
// Not one of the paper's three candidate models — included as the obvious
// "next classifier an operator would try" extension, and benchmarked
// against the paper's Random Forest choice in bench_ext01_gbt. Boosting
// fits, per round, one shallow regression tree per class to the softmax
// residuals; inference sums the trees' scores and softmaxes them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.hpp"

namespace cgctx::ml {

struct GradientBoostingParams {
  std::size_t n_rounds = 100;    ///< boosting iterations
  std::size_t max_depth = 3;     ///< depth of each regression tree
  double learning_rate = 0.1;    ///< shrinkage per tree
  std::size_t min_samples_leaf = 2;
  /// Row subsampling fraction per round (stochastic gradient boosting);
  /// 1.0 disables.
  double subsample = 0.8;
  std::uint64_t seed = 31;
};

class GradientBoosting final : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingParams params = {});
  ~GradientBoosting() override;
  GradientBoosting(GradientBoosting&&) noexcept;
  GradientBoosting& operator=(GradientBoosting&&) noexcept;

  void fit(const Dataset& train) override;
  [[nodiscard]] Label predict(const FeatureRow& row) const override;
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override;

  [[nodiscard]] const GradientBoostingParams& params() const { return params_; }
  [[nodiscard]] std::size_t rounds_fitted() const;

 private:
  struct Impl;
  GradientBoostingParams params_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cgctx::ml
