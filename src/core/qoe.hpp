// Objective and effective QoE measurement (paper §4.1 gray box + §5.3).
//
// The ISP's observability module maps per-slot QoE/QoS observables
// (streaming frame rate, throughput, latency, loss) to a three-level
// objective QoE label using fixed expected ranges — e.g. frame rate below
// 30 fps or throughput below 8 Mbps is "bad". The paper's contribution is
// the *effective* QoE calibration: once the gameplay context (title
// demand profile and current player activity stage) is known, reasonable
// drops in frame rate and throughput during low-demand titles or
// idle/passive stages are no longer penalized, while the latency and loss
// gates stay exactly as they were.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/stage_classifier.hpp"

namespace cgctx::core {

enum class QoeLevel : std::uint8_t { kBad = 0, kMedium = 1, kGood = 2 };

inline constexpr std::size_t kNumQoeLevels = 3;

const char* to_string(QoeLevel level);

/// Per-slot observables the QoE models consume.
struct SlotQoeMetrics {
  double frame_rate = 0.0;        ///< delivered video frames per second
  double throughput_mbps = 0.0;   ///< downstream payload throughput
  double rtt_ms = 0.0;
  double loss_rate = 0.0;
};

/// Fixed expected ranges of the objective QoE mapping (the values the
/// partner ISP's observability system maintains; §5.3 quotes the
/// bad-level examples).
struct ObjectiveQoeThresholds {
  double bad_fps = 30.0;           ///< below -> bad
  double good_fps = 48.0;          ///< at/above -> good (fps-wise)
  double bad_throughput_mbps = 8.0;
  double good_throughput_mbps = 14.0;
  double medium_rtt_ms = 40.0;     ///< above -> at most medium
  double bad_rtt_ms = 70.0;        ///< above -> bad
  double medium_loss = 0.005;
  double bad_loss = 0.02;
};

/// Context handed to the effective QoE calibration for one slot.
struct QoeContext {
  /// Expected peak demand of the session (Mbps): from the classified
  /// title's demand profile, or from the session's own observed peak for
  /// unknown titles.
  double expected_peak_mbps = 0.0;
  /// Expected peak frame rate (the configured streaming fps, estimated
  /// from the session's observed peak frame delivery).
  double expected_peak_fps = 60.0;
  /// Player activity stage classified for the slot.
  ml::Label stage = kStageActive;
};

/// Maps one slot's observables to the objective QoE level.
QoeLevel objective_qoe(const SlotQoeMetrics& metrics,
                       const ObjectiveQoeThresholds& thresholds = {});

/// Effective QoE: frame-rate and throughput expectations are scaled by
/// the stage's intrinsic demand level and the session's expected peak;
/// latency and loss gates are unchanged from the objective mapping.
QoeLevel effective_qoe(const SlotQoeMetrics& metrics, const QoeContext& context,
                       const ObjectiveQoeThresholds& thresholds = {});

/// Majority vote across slot levels -> session-level label (ties resolve
/// toward the worse level, matching a conservative operator posture).
QoeLevel session_level(const std::vector<QoeLevel>& slot_levels);

/// Counts-based variant (indexed by QoeLevel): incremental callers tally
/// per-level counts as slots close instead of collecting a level vector.
QoeLevel session_level(const std::array<std::size_t, kNumQoeLevels>& counts);

}  // namespace cgctx::core
