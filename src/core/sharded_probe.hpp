// Sharded, multi-core vantage-point probe engine.
//
// One MultiSessionProbe keeps up with a handful of subscribers; an ISP
// vantage point carries tens of thousands concurrently. ShardedProbe
// scales the same pipeline across cores by partitioning the five-tuple
// space: the capture thread hashes each packet's canonical tuple to one
// of N shards and enqueues it there, and each shard's worker thread owns
// a private FlowTable + session map (a full MultiSessionProbe), so
// workers share nothing and need no locks on the packet path.
//
// Properties this buys:
//  - per-flow ordering is preserved by construction (a flow maps to
//    exactly one shard, whose queue is FIFO), so with num_shards == 1
//    the engine's reports are byte-identical to MultiSessionProbe's;
//  - the capture thread never blocks indefinitely: queues are bounded,
//    and overflow follows an explicit policy (drop immediately, or wait
//    a bounded time then drop) with every drop counted;
//  - per-shard ProbeStats aggregate into one snapshot readable from any
//    thread while the engine runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/multi_session_probe.hpp"
#include "core/pipeline_metrics.hpp"
#include "core/probe_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cgctx::core {

/// What push() does when the target shard's queue is full.
enum class OverflowPolicy : std::uint8_t {
  /// Drop the incoming packet immediately (prefer capture-thread latency).
  kDropNewest,
  /// Apply backpressure: wait up to `backpressure_timeout` for space,
  /// then drop. Bounds capture-thread stalls while absorbing bursts.
  kBackpressure,
};

const char* to_string(OverflowPolicy policy);

struct ShardedProbeParams {
  /// Per-shard probe configuration (pipeline, idle timeouts).
  MultiSessionProbeParams probe{};
  std::size_t num_shards = 1;
  /// Bounded per-shard queue capacity, in packets.
  std::size_t queue_capacity = 1 << 14;
  OverflowPolicy overflow = OverflowPolicy::kBackpressure;
  /// Longest one push() may wait for queue space under kBackpressure.
  std::chrono::milliseconds backpressure_timeout{100};
  /// Record processing latency for every Nth packet per shard (1 = all,
  /// 0 = never); sampling keeps the steady_clock reads off most packets.
  std::uint32_t latency_sample_stride = 8;
  /// Per-shard decision-trace ring capacity, in events (rounded up to a
  /// power of two). 0 disables tracing entirely.
  std::size_t trace_capacity = 0;
};

class ShardedProbe {
 public:
  using ReportCallback = MultiSessionProbe::ReportCallback;

  /// Models must outlive the probe and be safe for concurrent const
  /// calls (the trained classifiers are immutable after training).
  /// `on_report` / `on_event` are invoked from worker threads but never
  /// concurrently (an internal mutex serializes them).
  ShardedProbe(PipelineModels models, ShardedProbeParams params,
               ReportCallback on_report, SessionEventCallback on_event = {});
  ~ShardedProbe();

  ShardedProbe(const ShardedProbe&) = delete;
  ShardedProbe& operator=(const ShardedProbe&) = delete;

  /// Feeds one packet from the capture thread (single producer).
  /// Returns false iff the packet was dropped by the overflow policy.
  bool push(const net::PacketRecord& pkt);

  /// Drains all queues, retires every live session (emitting reports),
  /// and joins the workers. Terminal: push() after flush() drops.
  /// Idempotent; also runs from the destructor if never called.
  void flush();

  /// Aggregated snapshot across shards; callable from any thread, before
  /// or after flush().
  [[nodiscard]] ProbeStatsSnapshot stats() const;

  /// The probe's unified metrics registry: per-shard `cgctx_probe_*`
  /// series (labeled {"shard","N"}) plus the shared `cgctx_session_*` /
  /// `cgctx_pipeline_*` pipeline instrumentation. Snapshot-safe from any
  /// thread while the workers run; feed it to obs::to_prometheus /
  /// obs::to_json for export.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return registry_.snapshot();
  }

  /// Flushes (joining the workers), then concatenates every shard's
  /// decision trace in shard order. Empty unless
  /// ShardedProbeParams::trace_capacity > 0. Rings are single-writer
  /// (each shard's worker), so draining waits for the workers to stop.
  [[nodiscard]] std::vector<obs::TraceEvent> drain_trace();

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t reports_emitted() const;

  /// Shard a canonical tuple maps to (exposed for tests/benches).
  [[nodiscard]] std::size_t shard_of(const net::FiveTuple& canonical) const;

 private:
  struct Shard;

  ShardedProbeParams params_;
  /// Declared before shards_: shard ProbeStats and the shared
  /// PipelineMetrics bind instruments that live in this registry.
  obs::MetricsRegistry registry_;
  PipelineMetrics pipeline_metrics_;
  ReportCallback on_report_;
  /// Serializes report/event callbacks across worker threads.
  mutable std::mutex sink_mu_;
  std::size_t reports_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool flushed_ = false;
};

}  // namespace cgctx::core
