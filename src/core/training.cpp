#include "core/training.hpp"

#include <stdexcept>

namespace cgctx::core {

std::vector<std::string> popular_title_class_names() {
  std::vector<std::string> names;
  names.reserve(sim::kNumPopularTitles);
  for (const sim::GameInfo& game : sim::popular_titles())
    names.push_back(game.name);
  return names;
}

void for_each_rendered_session(
    std::span<const sim::SessionSpec> specs,
    const std::function<void(const sim::LabeledSession&)>& fn) {
  const sim::SessionGenerator generator;
  for (const sim::SessionSpec& spec : specs) fn(generator.generate(spec));
}

namespace {

ThreadPool& resolve(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::training();
}

struct TitleExample {
  sim::SessionSpec spec;
  ml::Label label;
};

/// Serial expansion of specs with their augmentation copies, drawing the
/// per-spec augmentation seeds in the order the serial builder did.
std::vector<TitleExample> expand_title_examples(
    std::span<const sim::SessionSpec> specs,
    const TitleDatasetOptions& options) {
  ml::Rng aug_rng(options.augment_seed);
  std::vector<TitleExample> out;
  out.reserve(specs.size() * (1 + options.augment_copies));
  for (const sim::SessionSpec& spec : specs) {
    const auto title_index = static_cast<std::size_t>(spec.title);
    if (title_index >= sim::kNumPopularTitles)
      throw std::invalid_argument(
          "title dataset: spec references a non-popular title");
    const auto label = static_cast<ml::Label>(title_index);
    out.push_back({spec, label});
    for (const sim::SessionSpec& variant :
         sim::augment(spec, options.augment_copies, aug_rng.next_u64()))
      out.push_back({variant, label});
  }
  return out;
}

/// Renders every (possibly augmented) example in parallel, extracting
/// one feature row per session into its slot; rows are appended to the
/// dataset in expansion order, so the result is identical at any worker
/// count. Sessions are rendered inside the tasks and never all held in
/// memory at once.
template <typename Extract>
ml::Dataset build_title_rows(std::span<const sim::SessionSpec> specs,
                             const TitleDatasetOptions& options,
                             ThreadPool* pool,
                             std::vector<std::string> feature_names,
                             Extract&& extract) {
  const std::vector<TitleExample> examples =
      expand_title_examples(specs, options);
  const sim::SessionGenerator generator;
  std::vector<ml::FeatureRow> rows(examples.size());
  resolve(pool).parallel_for(0, examples.size(), [&](std::size_t i) {
    rows[i] = extract(generator.generate(examples[i].spec));
  });
  ml::Dataset data(std::move(feature_names), popular_title_class_names());
  for (std::size_t i = 0; i < examples.size(); ++i)
    data.add(std::move(rows[i]), examples[i].label);
  return data;
}

}  // namespace

ml::Dataset build_title_dataset(std::span<const sim::SessionSpec> specs,
                                const TitleDatasetOptions& options,
                                ThreadPool* pool) {
  return build_title_rows(
      specs, options, pool, launch_attribute_names(),
      [&options](const sim::LabeledSession& session) {
        return launch_attributes(session.packets, session.launch_begin,
                                 options.attributes);
      });
}

ml::Dataset build_flow_volumetric_dataset(
    std::span<const sim::SessionSpec> specs, const TitleDatasetOptions& options,
    ThreadPool* pool) {
  return build_title_rows(
      specs, options, pool,
      flow_volumetric_attribute_names(options.attributes),
      [&options](const sim::LabeledSession& session) {
        return flow_volumetric_attributes(session.packets,
                                          session.launch_begin,
                                          options.attributes);
      });
}

std::vector<RawSlotVolumetrics> aggregate_slots(
    std::span<const net::PacketRecord> packets, net::Timestamp begin,
    net::Duration slot_duration, std::size_t slot_count) {
  std::vector<RawSlotVolumetrics> slots(slot_count);
  for (const net::PacketRecord& pkt : packets) {
    if (pkt.timestamp < begin) continue;
    const auto slot =
        static_cast<std::size_t>((pkt.timestamp - begin) / slot_duration);
    if (slot >= slot_count) continue;
    if (pkt.direction == net::Direction::kDownstream) {
      ++slots[slot].down_packets;
      slots[slot].down_bytes += pkt.payload_size;
    } else {
      ++slots[slot].up_packets;
      slots[slot].up_bytes += pkt.payload_size;
    }
  }
  return slots;
}

namespace {

ml::Label stage_to_label(sim::Stage stage) {
  switch (stage) {
    case sim::Stage::kActive: return kStageActive;
    case sim::Stage::kPassive: return kStagePassive;
    case sim::Stage::kIdle: return kStageIdle;
  }
  return kStageIdle;
}

/// Shared row-extraction core: feeds raw slots through a tracker, labels
/// gameplay slots with the ground-truth stage at the slot midpoint.
std::vector<StageRow> rows_from_raw_slots(
    const sim::LabeledSession& session,
    const std::vector<RawSlotVolumetrics>& raw, net::Duration slot_duration,
    const VolumetricTrackerParams& tracker_params) {
  VolumetricTracker tracker(tracker_params);
  std::vector<StageRow> rows;
  for (std::size_t s = 0; s < raw.size(); ++s) {
    const net::Timestamp mid =
        session.launch_begin + static_cast<net::Timestamp>(s) * slot_duration +
        slot_duration / 2;
    const ml::FeatureRow attrs = tracker.push(raw[s]);
    if (mid < session.gameplay_begin || mid >= session.end) continue;
    rows.push_back(StageRow{attrs, stage_to_label(session.stage_label_at(mid))});
  }
  return rows;
}

}  // namespace

std::vector<StageRow> stage_rows_from_slots(
    const sim::LabeledSession& session,
    const VolumetricTrackerParams& tracker_params) {
  std::vector<RawSlotVolumetrics> raw;
  raw.reserve(session.slots.size());
  for (const sim::SlotSample& sample : session.slots)
    raw.push_back(RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                                     sample.up_bytes, sample.up_packets});
  return rows_from_raw_slots(session, raw, net::kNanosPerSecond,
                             tracker_params);
}

std::vector<StageRow> stage_rows_from_packets(
    const sim::LabeledSession& session, double slot_seconds,
    const VolumetricTrackerParams& tracker_params) {
  const auto slot_duration = net::duration_from_seconds(slot_seconds);
  const auto slot_count = static_cast<std::size_t>(
      (session.end - session.launch_begin) / slot_duration);
  const auto raw = aggregate_slots(session.packets, session.launch_begin,
                                   slot_duration, slot_count);
  return rows_from_raw_slots(session, raw, slot_duration, tracker_params);
}

ml::Dataset build_stage_dataset(std::span<const sim::SessionSpec> specs,
                                const VolumetricTrackerParams& tracker_params,
                                ThreadPool* pool) {
  const sim::SessionGenerator generator;
  std::vector<std::vector<StageRow>> buckets(specs.size());
  resolve(pool).parallel_for(0, specs.size(), [&](std::size_t i) {
    buckets[i] = stage_rows_from_slots(generator.generate_slots_only(specs[i]),
                                       tracker_params);
  });
  ml::Dataset data(volumetric_attribute_names(), stage_class_names());
  for (std::vector<StageRow>& bucket : buckets)
    for (StageRow& row : bucket) data.add(std::move(row.attributes), row.stage);
  return data;
}

ml::Dataset build_pattern_dataset(std::span<const sim::SessionSpec> specs,
                                  const StageClassifier& stages,
                                  const VolumetricTrackerParams& tracker_params,
                                  bool include_prefix_horizons,
                                  ThreadPool* pool) {
  const sim::SessionGenerator generator;
  std::vector<std::vector<ml::FeatureRow>> buckets(specs.size());
  std::vector<ml::Label> labels(specs.size());
  resolve(pool).parallel_for(0, specs.size(), [&](std::size_t i) {
    const sim::SessionSpec& spec = specs[i];
    const sim::LabeledSession session = generator.generate_slots_only(spec);
    // Mirror the deployment pipeline exactly: every slot (launch included)
    // is classified and fed to the transition tracker, so the training
    // distribution matches what inference sees. Additionally, snapshot
    // the matrix at several mid-session horizons: the deployed inferrer
    // evaluates *partial* sessions continuously, and training only on
    // complete-session matrices would leave those prefixes
    // out-of-distribution (producing confidently wrong early verdicts).
    VolumetricTracker tracker(tracker_params);
    TransitionTracker transitions;
    const auto pattern = sim::info(spec.title).pattern;
    labels[i] =
        pattern == sim::ActivityPattern::kContinuousPlay ? kPatternContinuous
                                                         : kPatternSpectate;
    const std::size_t total = session.slots.size();
    std::size_t next_checkpoint_index = 0;
    // Dense early checkpoints (the pipeline may attempt inference from
    // two minutes in) plus proportional mid/late ones.
    const std::array<std::size_t, 6> checkpoints =
        include_prefix_horizons
            ? std::array<std::size_t, 6>{120, 210,
                                         std::max<std::size_t>(330, total / 4),
                                         std::max<std::size_t>(480,
                                                               total * 2 / 5),
                                         std::max<std::size_t>(700,
                                                               total * 7 / 10),
                                         total}
            : std::array<std::size_t, 6>{total, total, total,
                                         total, total, total};
    std::size_t last_emitted_checkpoint = 0;
    for (std::size_t s = 0; s < total; ++s) {
      const sim::SlotSample& sample = session.slots[s];
      const ml::FeatureRow attrs = tracker.push(
          RawSlotVolumetrics{sample.down_bytes, sample.down_packets,
                             sample.up_bytes, sample.up_packets});
      transitions.push(stages.classify(attrs));
      while (next_checkpoint_index < checkpoints.size() &&
             s + 1 == std::min(checkpoints[next_checkpoint_index], total)) {
        // Checkpoints can collapse onto the same slot (short sessions,
        // final-only mode); emit each distinct horizon once.
        if (transitions.transition_count() > 0 &&
            s + 1 != last_emitted_checkpoint) {
          buckets[i].push_back(transitions.probabilities());
          last_emitted_checkpoint = s + 1;
        }
        ++next_checkpoint_index;
      }
    }
  });
  ml::Dataset data(transition_attribute_names(), pattern_class_names());
  for (std::size_t i = 0; i < buckets.size(); ++i)
    for (ml::FeatureRow& row : buckets[i]) data.add(std::move(row), labels[i]);
  return data;
}

}  // namespace cgctx::core
