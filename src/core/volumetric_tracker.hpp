// Bidirectional volumetric attribute tracking (paper §4.3.1).
//
// Per I-second slot, the four standard volumetric attributes (downstream
// throughput & packet rate, upstream throughput & packet rate) are
// converted to fractions of the session peak observed so far (peaks are
// armed during the launch stage and only trusted above a dynamic floor),
// then smoothed with an exponential moving average (Eq. 1, weight alpha)
// so short contradictory bursts — an accidental mouse sweep while
// spectating — do not flip the stage label.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ml/dataset.hpp"

namespace cgctx::core {

/// Raw per-slot volumetrics in both directions.
struct RawSlotVolumetrics {
  std::uint64_t down_bytes = 0;
  std::uint64_t down_packets = 0;
  std::uint64_t up_bytes = 0;
  std::uint64_t up_packets = 0;
};

inline constexpr std::size_t kNumVolumetricAttributes = 4;

/// Names of the four attributes, in feature order.
std::vector<std::string> volumetric_attribute_names();

struct VolumetricTrackerParams {
  /// Classification slot I, seconds (paper: 1). Carried for reference;
  /// the tracker itself is fed pre-aggregated slots.
  double slot_seconds = 1.0;
  /// EMA weight of the current slot (paper Eq. 1; 0.5 performs best).
  double alpha = 0.5;
  /// Peaks are trusted only above this fraction of the largest value ever
  /// seen, so a near-silent launch cannot pin tiny denominators.
  double peak_floor_fraction = 0.02;
  /// Disable EMA smoothing entirely (ablation switch).
  bool enable_ema = true;
  /// Use absolute values instead of peak-relative ones (ablation switch;
  /// the paper's design is relative).
  bool relative_to_peak = true;
};

class VolumetricTracker {
 public:
  explicit VolumetricTracker(VolumetricTrackerParams params = {})
      : params_(params) {}

  /// Feeds one slot and returns the 4 processed attribute values
  /// {down_throughput, down_pkt_rate, up_throughput, up_pkt_rate},
  /// peak-relative and EMA-smoothed.
  ml::FeatureRow push(const RawSlotVolumetrics& slot);

  /// Allocation-free variant: writes the 4 attribute values into `out`,
  /// whose size must be kNumVolumetricAttributes.
  void push_into(const RawSlotVolumetrics& slot, std::span<double> out);

  /// Resets all state (new session).
  void reset();

  [[nodiscard]] const VolumetricTrackerParams& params() const { return params_; }
  [[nodiscard]] std::size_t slots_seen() const { return slots_seen_; }

 private:
  VolumetricTrackerParams params_;
  std::array<double, kNumVolumetricAttributes> peak_{};
  std::array<double, kNumVolumetricAttributes> ema_{};
  std::size_t slots_seen_ = 0;
};

}  // namespace cgctx::core
