// Player activity stage classification (paper §4.3.1).
//
// A Random Forest consumes the four peak-relative, EMA-smoothed
// volumetric attributes of each I-second slot and labels the slot idle,
// passive, or active. Stage labels use the same encoding as the
// simulator's ground truth (0 = active, 1 = passive, 2 = idle) so
// confusion matrices line up.
#pragma once

#include <span>
#include <string>

#include "core/volumetric_tracker.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace cgctx::core {

/// Stage label indices used by the classifier's datasets.
inline constexpr ml::Label kStageActive = 0;
inline constexpr ml::Label kStagePassive = 1;
inline constexpr ml::Label kStageIdle = 2;
inline constexpr std::size_t kNumStageLabels = 3;

/// Class-name list matching the label indices above.
std::vector<std::string> stage_class_names();

struct StageClassifierParams {
  ml::RandomForestParams forest{
      .n_trees = 100, .max_depth = 10, .min_samples_split = 2,
      .min_samples_leaf = 1, .max_features = 0, .bootstrap = true,
      .seed = 0x57A6Eu};
};

class StageClassifier {
 public:
  explicit StageClassifier(StageClassifierParams params = {})
      : params_(params), forest_(params.forest) {}

  /// Trains on a dataset of 4-attribute rows (VolumetricTracker outputs)
  /// labeled with stage indices.
  void train(const ml::Dataset& data);

  /// Classifies one processed slot.
  [[nodiscard]] ml::Label classify(const ml::FeatureRow& attributes) const;
  [[nodiscard]] ml::Classifier::Prediction classify_with_confidence(
      const ml::FeatureRow& attributes) const;

  /// Allocation-free variants: `scratch` (size scratch_size()) is the
  /// probability accumulation buffer, reusable across slots.
  [[nodiscard]] ml::Label classify(const ml::FeatureRow& attributes,
                                   std::span<double> scratch) const;
  /// Span overload: lets callers keep the attribute row in a fixed
  /// std::array instead of a heap-backed FeatureRow.
  [[nodiscard]] ml::Label classify(std::span<const double> attributes,
                                   std::span<double> scratch) const;
  [[nodiscard]] ml::Classifier::Prediction classify_with_confidence(
      const ml::FeatureRow& attributes, std::span<double> scratch) const;

  /// Scratch doubles classify needs (= the class count; 0 until trained).
  [[nodiscard]] std::size_t scratch_size() const {
    return compiled_.num_classes();
  }

  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  /// The compiled engine classification routes through (built by train()
  /// and deserialize()).
  [[nodiscard]] const ml::CompiledForest& compiled() const {
    return compiled_;
  }

  [[nodiscard]] std::string serialize() const;
  static StageClassifier deserialize(const std::string& text);

 private:
  StageClassifierParams params_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;
};

}  // namespace cgctx::core
