#include "core/qoe.hpp"

#include <algorithm>
#include <array>

namespace cgctx::core {

const char* to_string(QoeLevel level) {
  switch (level) {
    case QoeLevel::kBad: return "bad";
    case QoeLevel::kMedium: return "medium";
    case QoeLevel::kGood: return "good";
  }
  return "?";
}

namespace {

/// Network-path gates shared by both mappings (the effective calibration
/// does not touch latency/loss expectations, §5.3).
QoeLevel network_gate(const SlotQoeMetrics& m,
                      const ObjectiveQoeThresholds& t) {
  if (m.rtt_ms > t.bad_rtt_ms || m.loss_rate > t.bad_loss)
    return QoeLevel::kBad;
  if (m.rtt_ms > t.medium_rtt_ms || m.loss_rate > t.medium_loss)
    return QoeLevel::kMedium;
  return QoeLevel::kGood;
}

QoeLevel worse(QoeLevel a, QoeLevel b) { return std::min(a, b); }

/// Intrinsic demand factor of each stage relative to the session peak:
/// {frame-rate factor, throughput factor}, indexed active/passive/idle.
/// These mirror the relative volumetric levels of §3.3 — an idle lobby
/// simply does not need peak bandwidth or frame rate.
constexpr std::array<std::array<double, 2>, kNumStageLabels> kStageDemand{{
    {1.00, 1.00},  // active
    {0.90, 0.75},  // passive
    {0.35, 0.12},  // idle
}};

}  // namespace

QoeLevel objective_qoe(const SlotQoeMetrics& metrics,
                       const ObjectiveQoeThresholds& thresholds) {
  QoeLevel level = network_gate(metrics, thresholds);
  if (metrics.frame_rate < thresholds.bad_fps ||
      metrics.throughput_mbps < thresholds.bad_throughput_mbps)
    return QoeLevel::kBad;
  if (metrics.frame_rate < thresholds.good_fps ||
      metrics.throughput_mbps < thresholds.good_throughput_mbps)
    level = worse(level, QoeLevel::kMedium);
  return level;
}

QoeLevel effective_qoe(const SlotQoeMetrics& metrics, const QoeContext& context,
                       const ObjectiveQoeThresholds& thresholds) {
  QoeLevel level = network_gate(metrics, thresholds);

  const auto stage = static_cast<std::size_t>(
      std::clamp<ml::Label>(context.stage, 0,
                            static_cast<ml::Label>(kNumStageLabels - 1)));
  const double expected_fps = context.expected_peak_fps * kStageDemand[stage][0];
  const double expected_tput =
      context.expected_peak_mbps * kStageDemand[stage][1];

  // A metric passes outright when it meets the context-scaled
  // expectation; the absolute objective thresholds remain as a backstop
  // so a genuinely high-rate stream is never penalized for exceeding a
  // modest expectation.
  const bool fps_good =
      metrics.frame_rate >= 0.75 * expected_fps ||
      metrics.frame_rate >= thresholds.good_fps;
  const bool fps_bad = metrics.frame_rate < 0.50 * expected_fps &&
                       metrics.frame_rate < thresholds.good_fps;
  const bool tput_good =
      metrics.throughput_mbps >= 0.60 * expected_tput ||
      metrics.throughput_mbps >= thresholds.good_throughput_mbps;
  const bool tput_bad =
      metrics.throughput_mbps < 0.35 * expected_tput &&
      metrics.throughput_mbps < thresholds.bad_throughput_mbps;

  if (fps_bad || tput_bad) return QoeLevel::kBad;
  if (!fps_good || !tput_good) level = worse(level, QoeLevel::kMedium);
  return level;
}

QoeLevel session_level(const std::vector<QoeLevel>& slot_levels) {
  std::array<std::size_t, kNumQoeLevels> counts{};
  for (QoeLevel level : slot_levels)
    ++counts[static_cast<std::size_t>(level)];
  return session_level(counts);
}

QoeLevel session_level(const std::array<std::size_t, kNumQoeLevels>& counts) {
  // Majority; ties resolve toward the worse level.
  QoeLevel best = QoeLevel::kBad;
  std::size_t best_count = counts[0];
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > best_count) {
      best = static_cast<QoeLevel>(i);
      best_count = counts[i];
    }
  }
  return best;
}

}  // namespace cgctx::core
