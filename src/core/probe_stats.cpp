#include "core/probe_stats.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace cgctx::core {

LatencySummary ProbeStatsSnapshot::latency() const {
  return summarize_latency(latency_buckets, latency_max_ns);
}

std::string ProbeStatsSnapshot::to_string() const {
  const LatencySummary lat = latency();
  std::ostringstream os;
  os << "packets: in=" << packets_in << " processed=" << packets_processed
     << " dropped=" << packets_dropped << "\n"
     << "flows:   live=" << live_flows << " evicted=" << flow_evictions
     << "\n"
     << "sessions: live=" << live_sessions
     << " started=" << sessions_started << " reports=" << reports_emitted
     << "\n"
     << "queue depth high-water mark: " << queue_depth_hwm << "\n"
     << "per-packet latency (" << lat.samples << " samples): p50="
     << lat.p50_us << "us p90=" << lat.p90_us << "us p99=" << lat.p99_us
     << "us max=" << lat.max_us << "us";
  return os.str();
}

ProbeStats::ProbeStats()
    : owned_(std::make_unique<obs::MetricsRegistry>()) {
  bind(*owned_, {});
}

ProbeStats::ProbeStats(obs::MetricsRegistry& registry,
                       obs::MetricLabels labels) {
  bind(registry, std::move(labels));
}

void ProbeStats::bind(obs::MetricsRegistry& registry,
                      obs::MetricLabels labels) {
  packets_in_ = &registry.counter(
      "cgctx_probe_packets_in_total",
      "Packets accepted into a probe shard queue", labels);
  packets_dropped_ = &registry.counter(
      "cgctx_probe_packets_dropped_total",
      "Packets rejected by the queue overflow policy", labels);
  packets_processed_ = &registry.counter(
      "cgctx_probe_packets_processed_total",
      "Packets fully pushed through a probe", labels);
  flow_evictions_ = &registry.counter(
      "cgctx_probe_flow_evictions_total",
      "Idle flows evicted from the shared flow table", labels);
  sessions_started_ = &registry.counter(
      "cgctx_probe_sessions_started_total",
      "Flows promoted to tracked sessions", labels);
  reports_emitted_ = &registry.counter(
      "cgctx_probe_reports_total",
      "Sessions retired with an emitted report", labels);
  live_flows_ = &registry.gauge(
      "cgctx_probe_live_flows", "Current flow-table size", labels);
  live_sessions_ = &registry.gauge(
      "cgctx_probe_live_sessions", "Current tracked session count", labels);
  queue_depth_hwm_ = &registry.gauge(
      "cgctx_probe_queue_depth_hwm",
      "Shard queue depth high-water mark", labels);
  latency_ = &registry.histogram(
      "cgctx_probe_packet_latency_ns",
      "Per-packet processing latency (sampled)", std::move(labels));
}

ProbeStatsSnapshot ProbeStats::snapshot() const {
  ProbeStatsSnapshot snap;
  snap.packets_in = packets_in_->value();
  snap.packets_dropped = packets_dropped_->value();
  snap.packets_processed = packets_processed_->value();
  snap.flow_evictions = flow_evictions_->value();
  snap.sessions_started = sessions_started_->value();
  snap.reports_emitted = reports_emitted_->value();
  snap.live_flows = static_cast<std::uint64_t>(live_flows_->value());
  snap.live_sessions = static_cast<std::uint64_t>(live_sessions_->value());
  snap.queue_depth_hwm =
      static_cast<std::uint64_t>(queue_depth_hwm_->value());
  snap.latency_max_ns = latency_->max();
  snap.latency_buckets = latency_->bucket_snapshot();
  return snap;
}

ProbeStatsSnapshot ProbeStats::aggregate(
    std::span<const ProbeStatsSnapshot> shards) {
  ProbeStatsSnapshot total;
  total.latency_buckets.assign(LatencyHistogram::kNumBuckets, 0);
  for (const ProbeStatsSnapshot& s : shards) {
    total.packets_in += s.packets_in;
    total.packets_dropped += s.packets_dropped;
    total.packets_processed += s.packets_processed;
    total.flow_evictions += s.flow_evictions;
    total.sessions_started += s.sessions_started;
    total.reports_emitted += s.reports_emitted;
    total.live_flows += s.live_flows;
    total.live_sessions += s.live_sessions;
    total.queue_depth_hwm = std::max(total.queue_depth_hwm,
                                     s.queue_depth_hwm);
    total.latency_max_ns = std::max(total.latency_max_ns, s.latency_max_ns);
    for (std::size_t i = 0;
         i < std::min(total.latency_buckets.size(),
                      s.latency_buckets.size());
         ++i)
      total.latency_buckets[i] += s.latency_buckets[i];
  }
  return total;
}

}  // namespace cgctx::core
