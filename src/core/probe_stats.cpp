#include "core/probe_stats.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace cgctx::core {

std::size_t LatencyHistogram::bucket_index(std::uint64_t nanos) {
  // Values below 2^kSubBits land in the linear bottom range one-to-one;
  // above it, the top kSubBits bits after the leading one select the
  // sub-bucket within the value's octave.
  if (nanos < (1ull << kSubBits)) return static_cast<std::size_t>(nanos);
  const unsigned msb = std::bit_width(nanos) - 1;  // >= kSubBits
  const unsigned octave = std::min(msb, kOctaves + kSubBits - 1);
  const std::uint64_t clamped =
      octave == msb ? nanos : (1ull << (octave + 1)) - 1;
  const std::uint64_t sub =
      (clamped >> (octave - kSubBits)) & ((1ull << kSubBits) - 1);
  return ((octave - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t index) {
  if (index < (1ull << kSubBits)) return index;
  const unsigned octave =
      static_cast<unsigned>(index >> kSubBits) - 1 + kSubBits;
  const std::uint64_t sub = index & ((1ull << kSubBits) - 1);
  return (1ull << octave) + (sub << (octave - kSubBits));
}

void LatencyHistogram::record(std::uint64_t nanos) {
  buckets_[bucket_index(nanos)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> LatencyHistogram::snapshot() const {
  std::vector<std::uint64_t> out(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

LatencySummary summarize_latency(std::span<const std::uint64_t> buckets,
                                 std::uint64_t max_ns) {
  LatencySummary summary;
  for (const std::uint64_t count : buckets) summary.samples += count;
  summary.max_us = static_cast<double>(max_ns) / 1e3;
  if (summary.samples == 0) return summary;

  const auto value_at = [&](double fraction) {
    const auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(summary.samples - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (seen > target)
        return static_cast<double>(LatencyHistogram::bucket_floor(i)) / 1e3;
    }
    return summary.max_us;
  };
  summary.p50_us = value_at(0.50);
  summary.p90_us = value_at(0.90);
  summary.p99_us = value_at(0.99);
  return summary;
}

LatencySummary ProbeStatsSnapshot::latency() const {
  return summarize_latency(latency_buckets, latency_max_ns);
}

std::string ProbeStatsSnapshot::to_string() const {
  const LatencySummary lat = latency();
  std::ostringstream os;
  os << "packets: in=" << packets_in << " processed=" << packets_processed
     << " dropped=" << packets_dropped << "\n"
     << "flows:   live=" << live_flows << " evicted=" << flow_evictions
     << "\n"
     << "sessions: live=" << live_sessions
     << " started=" << sessions_started << " reports=" << reports_emitted
     << "\n"
     << "queue depth high-water mark: " << queue_depth_hwm << "\n"
     << "per-packet latency (" << lat.samples << " samples): p50="
     << lat.p50_us << "us p90=" << lat.p90_us << "us p99=" << lat.p99_us
     << "us max=" << lat.max_us << "us";
  return os.str();
}

void ProbeStats::observe_queue_depth(std::uint64_t depth) {
  std::uint64_t seen = queue_depth_hwm_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !queue_depth_hwm_.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
}

void ProbeStats::record_latency_ns(std::uint64_t nanos) {
  latency_.record(nanos);
  std::uint64_t seen = latency_max_ns_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !latency_max_ns_.compare_exchange_weak(seen, nanos,
                                                std::memory_order_relaxed)) {
  }
}

ProbeStatsSnapshot ProbeStats::snapshot() const {
  ProbeStatsSnapshot snap;
  snap.packets_in = packets_in_.load(std::memory_order_relaxed);
  snap.packets_dropped = packets_dropped_.load(std::memory_order_relaxed);
  snap.packets_processed = packets_processed_.load(std::memory_order_relaxed);
  snap.flow_evictions = flow_evictions_.load(std::memory_order_relaxed);
  snap.sessions_started = sessions_started_.load(std::memory_order_relaxed);
  snap.reports_emitted = reports_emitted_.load(std::memory_order_relaxed);
  snap.live_flows = live_flows_.load(std::memory_order_relaxed);
  snap.live_sessions = live_sessions_.load(std::memory_order_relaxed);
  snap.queue_depth_hwm = queue_depth_hwm_.load(std::memory_order_relaxed);
  snap.latency_max_ns = latency_max_ns_.load(std::memory_order_relaxed);
  snap.latency_buckets = latency_.snapshot();
  return snap;
}

ProbeStatsSnapshot ProbeStats::aggregate(
    std::span<const ProbeStatsSnapshot> shards) {
  ProbeStatsSnapshot total;
  total.latency_buckets.assign(LatencyHistogram::kNumBuckets, 0);
  for (const ProbeStatsSnapshot& s : shards) {
    total.packets_in += s.packets_in;
    total.packets_dropped += s.packets_dropped;
    total.packets_processed += s.packets_processed;
    total.flow_evictions += s.flow_evictions;
    total.sessions_started += s.sessions_started;
    total.reports_emitted += s.reports_emitted;
    total.live_flows += s.live_flows;
    total.live_sessions += s.live_sessions;
    total.queue_depth_hwm = std::max(total.queue_depth_hwm,
                                     s.queue_depth_hwm);
    total.latency_max_ns = std::max(total.latency_max_ns, s.latency_max_ns);
    for (std::size_t i = 0;
         i < std::min(total.latency_buckets.size(),
                      s.latency_buckets.size());
         ++i)
      total.latency_buckets[i] += s.latency_buckets[i];
  }
  return total;
}

}  // namespace cgctx::core
