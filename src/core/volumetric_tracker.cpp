#include "core/volumetric_tracker.hpp"

#include <algorithm>

namespace cgctx::core {

std::vector<std::string> volumetric_attribute_names() {
  return {"down_throughput", "down_pkt_rate", "up_throughput", "up_pkt_rate"};
}

ml::FeatureRow VolumetricTracker::push(const RawSlotVolumetrics& slot) {
  ml::FeatureRow out(kNumVolumetricAttributes);
  push_into(slot, out);
  return out;
}

void VolumetricTracker::push_into(const RawSlotVolumetrics& slot,
                                  std::span<double> out) {
  const std::array<double, kNumVolumetricAttributes> raw{
      static_cast<double>(slot.down_bytes),
      static_cast<double>(slot.down_packets),
      static_cast<double>(slot.up_bytes),
      static_cast<double>(slot.up_packets),
  };

  for (std::size_t i = 0; i < kNumVolumetricAttributes; ++i) {
    double value = raw[i];
    if (params_.relative_to_peak) {
      // Arm/update the peak, then express the slot relative to it. The
      // floor keeps early low-traffic slots from producing denominators
      // near zero (the "threshold dynamically decided during the game
      // launch" of §4.3.1).
      peak_[i] = std::max(peak_[i], raw[i]);
      const double floor = params_.peak_floor_fraction * peak_[i];
      const double denom = std::max(peak_[i], std::max(floor, 1.0));
      value = raw[i] / denom;
    }
    if (params_.enable_ema && slots_seen_ > 0) {
      value = params_.alpha * value + (1.0 - params_.alpha) * ema_[i];
    }
    ema_[i] = value;
    out[i] = value;
  }
  ++slots_seen_;
}

void VolumetricTracker::reset() {
  peak_.fill(0.0);
  ema_.fill(0.0);
  slots_seen_ = 0;
}

}  // namespace cgctx::core
