#include "core/title_classifier.hpp"

#include <sstream>
#include <stdexcept>

namespace cgctx::core {

void TitleClassifier::train(const ml::Dataset& data) {
  if (data.num_features() != kNumLaunchAttributes)
    throw std::invalid_argument(
        "TitleClassifier::train: expected 51 launch attributes");
  class_names_ = data.class_names();
  forest_ = ml::RandomForest(params_.forest);
  forest_.fit(data);
  compiled_ = ml::CompiledForest(forest_);
}

TitleResult TitleClassifier::classify(
    std::span<const net::PacketRecord> packets,
    net::Timestamp flow_begin) const {
  return classify_features(
      launch_attributes(packets, flow_begin, params_.attributes));
}

TitleResult TitleClassifier::classify_features(const ml::FeatureRow& row) const {
  return classify_features_impl(compiled_.predict_with_confidence(row));
}

TitleResult TitleClassifier::classify_features(
    const ml::FeatureRow& row, std::span<double> scratch) const {
  return classify_features_impl(compiled_.predict_with_confidence(row, scratch));
}

TitleResult TitleClassifier::classify_features_impl(
    ml::Classifier::Prediction prediction) const {
  TitleResult result;
  result.confidence = prediction.confidence;
  if (prediction.confidence >= params_.unknown_threshold) {
    result.label = prediction.label;
    if (static_cast<std::size_t>(prediction.label) < class_names_.size())
      result.class_name = class_names_[static_cast<std::size_t>(prediction.label)];
  }
  return result;
}

std::string TitleClassifier::serialize() const {
  std::ostringstream os;
  os << "title_classifier " << class_names_.size() << ' '
     << params_.unknown_threshold << ' ' << params_.attributes.window_seconds
     << ' ' << params_.attributes.slot_seconds << ' '
     << params_.attributes.group_params.v_fraction << '\n';
  for (const std::string& name : class_names_) os << name << '\n';
  os << forest_.serialize();
  return os.str();
}

TitleClassifier TitleClassifier::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  std::size_t n_classes = 0;
  TitleClassifierParams params;
  is >> tag >> n_classes >> params.unknown_threshold >>
      params.attributes.window_seconds >> params.attributes.slot_seconds >>
      params.attributes.group_params.v_fraction;
  if (!is || tag != "title_classifier")
    throw std::invalid_argument("TitleClassifier: bad header");
  is.ignore();  // trailing newline
  TitleClassifier out(params);
  out.class_names_.resize(n_classes);
  for (std::string& name : out.class_names_) std::getline(is, name);
  std::ostringstream rest;
  rest << is.rdbuf();
  out.forest_ = ml::RandomForest::deserialize(rest.str());
  if (out.forest_.tree_count() > 0)
    out.compiled_ = ml::CompiledForest(out.forest_);
  return out;
}

}  // namespace cgctx::core
