// Classification-health counters and stage timers for the session
// pipeline, published through the unified telemetry plane.
//
// A probe that only counts packets can hide a drifting model: packets
// flow fine while every title verdict comes back unknown. PipelineMetrics
// is the registry binding SessionEngine records its *decisions* into —
// unknown-title verdicts, below-threshold confidences, sessions whose
// pattern inference never reached confidence — plus scoped-timer
// histograms around the pipeline's classification stages, so an operator
// sees model drift and stage cost, not just packet drops.
//
// One instance is shared by every engine of a deployment (counters are
// wait-free atomics; ShardedProbe shares one across all shards). Engines
// hold a const pointer; a null pointer disables everything at the cost
// of one branch per slot close — the per-packet path never consults it.
#pragma once

#include "obs/metrics.hpp"

namespace cgctx::core {

struct PipelineMetrics {
  // Classification health.
  obs::Counter* title_verdicts = nullptr;      ///< all title verdicts
  obs::Counter* unknown_titles = nullptr;      ///< verdicts with no label
  obs::Counter* low_confidence_titles = nullptr;  ///< below the unknown bar
  obs::Counter* pattern_decisions = nullptr;   ///< first confident inference
  obs::Counter* pattern_flips = nullptr;       ///< confident verdict changed
  obs::Counter* never_confident_patterns = nullptr;  ///< finished w/o one
  obs::Counter* sessions_finished = nullptr;
  obs::Counter* slots_processed = nullptr;
  obs::Counter* qoe_changes = nullptr;         ///< effective level changed

  // Stage timers (nanoseconds; compiled-forest walks dominate each).
  obs::Histogram* title_classify_ns = nullptr;
  obs::Histogram* stage_classify_ns = nullptr;
  obs::Histogram* pattern_infer_ns = nullptr;
  obs::Histogram* slot_close_ns = nullptr;  ///< whole slot-close pipeline

  /// Time every Nth slot close (1 = all). Sampling keeps the steady_clock
  /// reads — the dominant instrumentation cost — off most slots, the same
  /// trade ShardedProbeParams::latency_sample_stride makes; the counters
  /// above are exact regardless. The title timer ignores the stride (one
  /// classification per session). Must be >= 1.
  std::uint32_t timer_sample_stride = 8;

  /// Registers all instruments in `registry` (idempotent: registering
  /// twice returns the same instruments) under `cgctx_session_*` /
  /// `cgctx_pipeline_*` names.
  static PipelineMetrics create(obs::MetricsRegistry& registry);
};

}  // namespace cgctx::core
