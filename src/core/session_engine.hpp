// The incremental per-session state machine behind every entry point.
//
// The paper's Fig. 6 method is *one* real-time process per flow: title
// classification over the launch window, then per-slot volumetric
// tracking -> player-activity stage classification -> transition
// accumulation -> confidence-gated pattern inference, plus objective and
// context-calibrated effective QoE per slot. SessionEngine is that
// process, extracted so the batch pipeline (RealtimePipeline), the
// event-driven analyzer (StreamingAnalyzer) and the vantage-point probes
// (MultiSessionProbe / ShardedProbe) all replay into the *same* code —
// batch ≡ streaming ≡ probe equivalence holds by construction instead of
// by test.
//
// Hot-path contract:
//  - on_packet() performs zero heap allocations in steady state (once
//    the title window has closed and the engine's internal buffers have
//    reached session size). All scratch — the classifier probability
//    buffer, the volumetric attribute row, the slot records — is
//    engine-owned and reused.
//  - reset() clears session state but retains buffer capacity, so a
//    pooled engine (MultiSessionProbe keeps a free list) analyzes its
//    second and later sessions without allocating at all.
//  - Milestone events are delivered through a compile-time sink type,
//    not std::function: a sink declares kWantsEvents / kWantsSlots and
//    the engine compiles the event construction out entirely for sinks
//    that want nothing (NullSessionSink), so the probe's sharded path
//    pays no dispatch cost per packet.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/flow_detector.hpp"
#include "core/launch_attributes.hpp"
#include "core/pipeline_metrics.hpp"
#include "core/qoe.hpp"
#include "core/qoe_estimator.hpp"
#include "core/stage_classifier.hpp"
#include "core/title_classifier.hpp"
#include "core/transition_model.hpp"
#include "core/volumetric_tracker.hpp"
#include "obs/scoped_timer.hpp"

namespace cgctx::core {

/// Trained models the engine consults (owned by the caller; engines stay
/// cheap to construct and safe to share one suite across many sessions).
struct PipelineModels {
  const TitleClassifier* title = nullptr;
  const StageClassifier* stage = nullptr;
  const PatternInferrer* pattern = nullptr;
};

struct PipelineParams {
  FlowDetectorParams detector{};
  VolumetricTrackerParams tracker{};
  PatternInferrerParams pattern{};  ///< thresholds (model supplies weights)
  ObjectiveQoeThresholds qoe{};
  /// Per-title expected peak demand (Mbps), keyed by classifier class
  /// name; consulted by the effective-QoE context when the title is
  /// known. Unknown titles fall back to the session's observed peak.
  std::map<std::string, double> title_demand_mbps;
  /// RTT assumed in packet mode when no QoS probe feed is present
  /// (slot-fidelity telemetry carries measured RTT instead).
  double assumed_rtt_ms = 15.0;
};

/// Pipeline outputs for one I-second slot.
struct SlotRecord {
  ml::Label stage = kStageIdle;
  QoeLevel objective = QoeLevel::kGood;
  QoeLevel effective = QoeLevel::kGood;
  double throughput_mbps = 0.0;
  double frame_rate = 0.0;
  double rtt_ms = 0.0;
  double loss_rate = 0.0;

  friend bool operator==(const SlotRecord&, const SlotRecord&) = default;
};

/// The per-session record produced by the engine.
struct SessionReport {
  std::optional<DetectionResult> detection;
  TitleResult title;
  /// Most recent confident pattern inference (sharpens as the transition
  /// matrix matures); end-of-session unconditional fallback if confidence
  /// was never reached.
  std::optional<PatternResult> pattern;
  /// Seconds into the session at which the pattern inference first
  /// cleared the confidence threshold; <0 when it never did.
  double pattern_decided_at_s = -1.0;
  std::vector<SlotRecord> slots;
  QoeLevel objective_session = QoeLevel::kGood;
  QoeLevel effective_session = QoeLevel::kGood;
  /// Classified seconds per stage (indexed active/passive/idle).
  std::array<double, kNumStageLabels> stage_seconds{};
  double mean_down_mbps = 0.0;
  double duration_s = 0.0;

  /// Exact field-wise equality (doubles compared bitwise-equal); used to
  /// verify that engine refactors reproduce reports identically.
  friend bool operator==(const SessionReport&, const SessionReport&) = default;
};

/// Classification milestones the engine surfaces as it advances.
/// kQoeChanged is opt-in: it fires once per effective-QoE level change
/// (potentially every slot under churn), so only sinks declaring
/// `kWantsQoe = true` (the decision-trace sink) receive it — legacy
/// event consumers see the original four types unchanged.
enum class StreamEventType : std::uint8_t {
  kFlowDetected,
  kTitleClassified,
  kStageChanged,
  kPatternInferred,
  kQoeChanged,
};

const char* to_string(StreamEventType type);

struct StreamEvent {
  StreamEventType type = StreamEventType::kFlowDetected;
  /// Seconds since the detected flow began.
  double at_seconds = 0.0;
  /// kFlowDetected: the detection result.
  std::optional<DetectionResult> detection;
  /// kTitleClassified: the verdict.
  std::optional<TitleResult> title;
  /// kStageChanged: the new stage label.
  std::optional<ml::Label> stage;
  /// kPatternInferred: the inference.
  std::optional<PatternResult> pattern;
  /// kQoeChanged: the new effective QoE level.
  std::optional<QoeLevel> qoe;
};

/// Type-erased callbacks used by the adapter layers (StreamingAnalyzer,
/// MultiSessionProbe). The engine itself never stores these: adapters
/// wrap them in a concrete sink type at the call site.
using SessionEventCallback = std::function<void(const StreamEvent&)>;
using SlotRecordCallback = std::function<void(const SlotRecord&)>;

/// One slot of externally measured telemetry (ISP slot-fidelity mode):
/// raw volumetrics plus the QoS/QoE observables measured out of band.
struct SlotTelemetry {
  RawSlotVolumetrics volumetrics;
  double frames = 0.0;
  double rtt_ms = 0.0;
  double loss_rate = 0.0;
};

/// Sink that wants nothing; every event/record path compiles away.
struct NullSessionSink {
  static constexpr bool kWantsEvents = false;
  static constexpr bool kWantsSlots = false;
  void on_stream_event(const StreamEvent&) {}
  void on_slot_record(const SlotRecord&) {}
};

/// Opt-in trait for QoE-change events: sinks may declare
/// `static constexpr bool kWantsQoe = true` to receive kQoeChanged;
/// sinks without the member (every pre-existing sink) default to false.
template <class Sink, class = void>
struct SinkWantsQoe : std::false_type {};
template <class Sink>
struct SinkWantsQoe<Sink, std::void_t<decltype(Sink::kWantsQoe)>>
    : std::bool_constant<Sink::kWantsQoe> {};
template <class Sink>
inline constexpr bool kSinkWantsQoe =
    Sink::kWantsEvents && SinkWantsQoe<Sink>::value;

class SessionEngine {
 public:
  /// Models and params are caller-owned and must outlive the engine
  /// (PipelineParams holds the title-demand map; engines reference it
  /// rather than copying it per session). Throws std::invalid_argument
  /// when any model or the params pointer is missing.
  SessionEngine(PipelineModels models, const PipelineParams* params);

  /// Begins a session whose detected flow started at `flow_begin` (slot
  /// and title-window clocks are relative to it). Call after reset().
  void start(net::Timestamp flow_begin);

  /// Records the front-end detection verdict into the report.
  void set_detection(const DetectionResult& detection);

  /// Telemetry mode: installs an externally computed title verdict (and
  /// its demand hint) so push_slot() calibrates from the first slot, the
  /// way the deployment's launch-window service feeds the slot pipeline.
  /// Copy-assigns into engine-owned storage (no allocation on reuse).
  void set_title(const TitleResult& title);

  /// Packet mode: advances the session by one packet of the detected
  /// flow, in timestamp order. Buffers the title window, classifies the
  /// title once the window elapses, closes every slot boundary the
  /// packet's timestamp has passed, then tallies the packet into the
  /// open slot. Allocation-free in steady state.
  template <class Sink>
  void on_packet(const net::PacketRecord& pkt, Sink& sink);

  /// Closes the open packet-mode slot explicitly (classify + QoE + record).
  template <class Sink>
  void close_slot(Sink& sink);

  /// Telemetry mode: ingests one pre-aggregated slot.
  template <class Sink>
  void push_slot(const SlotTelemetry& slot, Sink& sink);

  /// Flushes the partial final slot, classifies a still-pending title
  /// window (sessions shorter than the window), and finalizes session
  /// aggregates. Returns the engine-owned report; callers copy it if
  /// they need it past the next reset()/start().
  template <class Sink>
  const SessionReport& finish(Sink& sink);

  /// Clears all session state while retaining buffer capacity, so pooled
  /// engines reanalyze without reallocating.
  void reset();

  /// Installs (or clears, with nullptr) the shared telemetry binding:
  /// classification-health counters and stage timers. Survives reset(),
  /// so pooled engines keep publishing. The instruments are wait-free
  /// atomics and are only touched at slot closes and title/pattern
  /// milestones — never on the per-packet path.
  void set_metrics(const PipelineMetrics* metrics) { metrics_ = metrics; }
  [[nodiscard]] const PipelineMetrics* metrics() const { return metrics_; }

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool title_classified() const { return title_done_; }
  [[nodiscard]] std::size_t slots_closed() const {
    return report_.slots.size();
  }
  /// The report accumulated so far (finalized only after finish()).
  [[nodiscard]] const SessionReport& report() const { return report_; }

 private:
  /// What one closed slot produced, for the sink dispatch layer.
  struct SlotOutcome {
    double at_seconds = 0.0;
    bool stage_changed = false;
    bool pattern_event = false;  ///< first confident inference or flip
    bool qoe_changed = false;    ///< effective level differs from last slot
  };

  SlotOutcome close_slot_core();
  SlotOutcome ingest_slot(const SlotTelemetry& slot);
  void classify_pending_title();
  void install_title(const TitleResult& title);
  void finalize();
  [[nodiscard]] std::span<double> scratch(std::size_t n);

  template <class Sink>
  void deliver(const SlotOutcome& outcome, Sink& sink);

  PipelineModels models_;
  const PipelineParams* params_;

  bool started_ = false;
  net::Timestamp flow_begin_ = 0;

  // Title window (only the first N seconds are kept).
  double title_window_seconds_ = 5.0;
  std::vector<net::PacketRecord> title_window_;
  bool title_done_ = false;
  /// Demand hint resolved once per title verdict (map lookups stay off
  /// the per-slot path).
  bool has_demand_hint_ = false;
  double demand_hint_mbps_ = 0.0;

  /// One probability scratch buffer reused by every classification the
  /// engine performs (sized once for the widest model; the
  /// compiled-forest path allocates nothing per call given it).
  std::vector<double> scratch_;
  /// Volumetric attribute row reused across slots.
  std::array<double, kNumVolumetricAttributes> attrs_{};

  // Slot machinery.
  std::size_t next_slot_ = 0;
  RawSlotVolumetrics current_slot_;
  QoeEstimator qoe_{60.0};
  VolumetricTracker tracker_;
  TransitionTracker transitions_;
  ml::Label last_stage_ = -1;
  /// Effective QoE level of the previous slot; -1 before the first slot
  /// (establishing the initial level is not a change).
  std::int32_t last_effective_ = -1;
  std::optional<PatternResult> pattern_;
  double pattern_decided_at_s_ = -1.0;
  const PipelineMetrics* metrics_ = nullptr;
  /// Stage-timer sampling tick (see PipelineMetrics::timer_sample_stride);
  /// deliberately not reset() so short pooled sessions still sample.
  std::uint32_t timer_tick_ = 0;

  // Accumulated report state. QoE levels are counted, not collected:
  // session_level() needs only the per-level tallies.
  SessionReport report_;
  std::array<std::size_t, kNumQoeLevels> objective_counts_{};
  std::array<std::size_t, kNumQoeLevels> effective_counts_{};
  /// Causal peak estimates for the effective-QoE expectations, floored
  /// so the first slots do not divide by near-zero.
  double peak_mbps_ = 5.0;
  double peak_fps_ = 30.0;
  double total_mbps_ = 0.0;
};

template <class Sink>
void SessionEngine::on_packet(const net::PacketRecord& pkt, Sink& sink) {
  if (!title_done_) [[unlikely]] {
    const double t = net::duration_to_seconds(pkt.timestamp - flow_begin_);
    if (t < title_window_seconds_) {
      title_window_.push_back(pkt);
    } else {
      classify_pending_title();
      if constexpr (Sink::kWantsEvents) {
        StreamEvent event;
        event.type = StreamEventType::kTitleClassified;
        event.at_seconds = t;
        event.title = report_.title;
        sink.on_stream_event(event);
      }
    }
  }

  // Close any slots the clock has passed.
  while (pkt.timestamp - flow_begin_ >=
         static_cast<net::Timestamp>(next_slot_ + 1) * net::kNanosPerSecond)
    close_slot(sink);

  // Tally into the open slot.
  if (pkt.direction == net::Direction::kDownstream) {
    ++current_slot_.down_packets;
    current_slot_.down_bytes += pkt.payload_size;
  } else {
    ++current_slot_.up_packets;
    current_slot_.up_bytes += pkt.payload_size;
  }
  qoe_.add(pkt);
}

template <class Sink>
void SessionEngine::close_slot(Sink& sink) {
  deliver(close_slot_core(), sink);
}

template <class Sink>
void SessionEngine::push_slot(const SlotTelemetry& slot, Sink& sink) {
  deliver(ingest_slot(slot), sink);
}

template <class Sink>
void SessionEngine::deliver(const SlotOutcome& outcome, Sink& sink) {
  if constexpr (Sink::kWantsEvents) {
    if (outcome.stage_changed) {
      StreamEvent event;
      event.type = StreamEventType::kStageChanged;
      event.at_seconds = outcome.at_seconds;
      event.stage = report_.slots.back().stage;
      sink.on_stream_event(event);
    }
    if (outcome.pattern_event) {
      StreamEvent event;
      event.type = StreamEventType::kPatternInferred;
      event.at_seconds = outcome.at_seconds;
      event.pattern = pattern_;
      sink.on_stream_event(event);
    }
  }
  if constexpr (kSinkWantsQoe<Sink>) {
    if (outcome.qoe_changed) {
      StreamEvent event;
      event.type = StreamEventType::kQoeChanged;
      event.at_seconds = outcome.at_seconds;
      event.qoe = report_.slots.back().effective;
      sink.on_stream_event(event);
    }
  }
  if constexpr (Sink::kWantsSlots) sink.on_slot_record(report_.slots.back());
}

template <class Sink>
const SessionReport& SessionEngine::finish(Sink& sink) {
  if (started_ &&
      (current_slot_.down_packets + current_slot_.up_packets) > 0)
    close_slot(sink);
  if (started_ && !title_done_) {
    // Session ended inside the title window: classify from what arrived
    // (the batch pipeline has always done this; the engine makes the
    // behavior uniform across entry points).
    classify_pending_title();
    if constexpr (Sink::kWantsEvents) {
      StreamEvent event;
      event.type = StreamEventType::kTitleClassified;
      event.at_seconds = static_cast<double>(report_.slots.size());
      event.title = report_.title;
      sink.on_stream_event(event);
    }
  }
  finalize();
  return report_;
}

}  // namespace cgctx::core
