// The real-time analysis pipeline (paper Fig. 6), assembled for batch use.
//
// Packet streams (or, at ISP scale, per-second flow telemetry plus the
// launch packet window) flow through:
//   1. the cloud-gaming flow detector (front-end filter);
//   2. the game title classifier over the first N seconds;
//   3. continuous slot aggregation -> volumetric tracking -> player
//      activity stage classification -> transition tracking -> gameplay
//      activity pattern inference;
//   4. objective QoE measurement and context-calibrated effective QoE.
// Steps 2–4 are core::SessionEngine — the same state machine the
// streaming analyzer and vantage-point probes advance packet by packet.
// RealtimePipeline is the offline driver: it detects the flow over a
// whole capture, then replays it into an engine, so batch results are
// identical to streaming ones by construction. The output is one
// SessionReport per streaming session, the record the partner ISP's
// observability platform ingests.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>

#include "core/session_engine.hpp"
#include "core/trace_sink.hpp"
#include "obs/trace.hpp"
#include "sim/session.hpp"

namespace cgctx::core {

class RealtimePipeline {
 public:
  RealtimePipeline(PipelineModels models, PipelineParams params);

  /// Batch entry point for a raw packet stream that may interleave many
  /// flows: detects the cloud-gaming streaming flow, then analyzes it.
  /// Returns nullopt when no flow passes the detector.
  [[nodiscard]] std::optional<SessionReport> process_packets(
      std::span<const net::PacketRecord> packets) const;

  /// ISP-scale entry point: launch packet window (title classification)
  /// plus per-second flow telemetry (everything else). Detection is
  /// assumed done upstream.
  [[nodiscard]] SessionReport process_session(
      const sim::LabeledSession& session) const;

  [[nodiscard]] const PipelineParams& params() const { return params_; }

  /// Optional pipeline instrumentation, applied to every engine the
  /// batch driver constructs. Must outlive the pipeline.
  void set_metrics(const PipelineMetrics* metrics) { metrics_ = metrics; }

  /// Optional decision trace; sessions are numbered 1, 2, ... in call
  /// order. The ring is single-writer, so with tracing enabled the
  /// process_* entry points must not run concurrently (without a trace
  /// they remain freely concurrent). Must outlive the pipeline.
  void set_trace(obs::DecisionTraceRing* ring) { trace_ = ring; }

 private:
  PipelineModels models_;
  PipelineParams params_;
  const PipelineMetrics* metrics_ = nullptr;
  obs::DecisionTraceRing* trace_ = nullptr;
  /// Trace session numbering across const process_* calls.
  mutable std::atomic<std::uint64_t> next_trace_id_{1};
};

}  // namespace cgctx::core
