// The real-time analysis pipeline (paper Fig. 6), assembled.
//
// Packet streams (or, at ISP scale, per-second flow telemetry plus the
// launch packet window) flow through:
//   1. the cloud-gaming flow detector (front-end filter);
//   2. the game title classifier over the first N seconds;
//   3. continuous slot aggregation -> volumetric tracking -> player
//      activity stage classification -> transition tracking -> gameplay
//      activity pattern inference;
//   4. objective QoE measurement and context-calibrated effective QoE.
// The output is one SessionReport per streaming session, the record the
// partner ISP's observability platform ingests.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>

#include "core/flow_detector.hpp"
#include "core/qoe.hpp"
#include "core/stage_classifier.hpp"
#include "core/title_classifier.hpp"
#include "core/transition_model.hpp"
#include "core/volumetric_tracker.hpp"
#include "sim/session.hpp"

namespace cgctx::core {

/// Trained models the pipeline consults (owned by the caller; the
/// pipeline itself stays cheap to construct per session).
struct PipelineModels {
  const TitleClassifier* title = nullptr;
  const StageClassifier* stage = nullptr;
  const PatternInferrer* pattern = nullptr;
};

struct PipelineParams {
  FlowDetectorParams detector{};
  VolumetricTrackerParams tracker{};
  PatternInferrerParams pattern{};  ///< thresholds (model supplies weights)
  ObjectiveQoeThresholds qoe{};
  /// Per-title expected peak demand (Mbps), keyed by classifier class
  /// name; consulted by the effective-QoE context when the title is
  /// known. Unknown titles fall back to the session's observed peak.
  std::map<std::string, double> title_demand_mbps;
  /// RTT assumed in packet mode when no QoS probe feed is present
  /// (slot-fidelity telemetry carries measured RTT instead).
  double assumed_rtt_ms = 15.0;
};

/// Pipeline outputs for one I-second slot.
struct SlotRecord {
  ml::Label stage = kStageIdle;
  QoeLevel objective = QoeLevel::kGood;
  QoeLevel effective = QoeLevel::kGood;
  double throughput_mbps = 0.0;
  double frame_rate = 0.0;
  double rtt_ms = 0.0;
  double loss_rate = 0.0;

  friend bool operator==(const SlotRecord&, const SlotRecord&) = default;
};

/// The per-session record produced by the pipeline.
struct SessionReport {
  std::optional<DetectionResult> detection;
  TitleResult title;
  /// Most recent confident pattern inference (sharpens as the transition
  /// matrix matures); end-of-session unconditional fallback if confidence
  /// was never reached.
  std::optional<PatternResult> pattern;
  /// Seconds into the session at which the pattern inference first
  /// cleared the confidence threshold; <0 when it never did.
  double pattern_decided_at_s = -1.0;
  std::vector<SlotRecord> slots;
  QoeLevel objective_session = QoeLevel::kGood;
  QoeLevel effective_session = QoeLevel::kGood;
  /// Classified seconds per stage (indexed active/passive/idle).
  std::array<double, kNumStageLabels> stage_seconds{};
  double mean_down_mbps = 0.0;
  double duration_s = 0.0;

  /// Exact field-wise equality (doubles compared bitwise-equal); used to
  /// verify that probe refactors reproduce reports identically.
  friend bool operator==(const SessionReport&, const SessionReport&) = default;
};

class RealtimePipeline {
 public:
  RealtimePipeline(PipelineModels models, PipelineParams params);

  /// Batch entry point for a raw packet stream that may interleave many
  /// flows: detects the cloud-gaming streaming flow, then analyzes it.
  /// Returns nullopt when no flow passes the detector.
  [[nodiscard]] std::optional<SessionReport> process_packets(
      std::span<const net::PacketRecord> packets) const;

  /// ISP-scale entry point: launch packet window (title classification)
  /// plus per-second flow telemetry (everything else). Detection is
  /// assumed done upstream.
  [[nodiscard]] SessionReport process_session(
      const sim::LabeledSession& session) const;

  [[nodiscard]] const PipelineParams& params() const { return params_; }

 private:
  /// Shared back half: title result + slot telemetry -> full report.
  struct SlotInput {
    RawSlotVolumetrics volumetrics;
    double frames = 0.0;
    double rtt_ms = 0.0;
    double loss_rate = 0.0;
  };
  [[nodiscard]] SessionReport analyze(TitleResult title,
                                      std::span<const SlotInput> slots) const;

  PipelineModels models_;
  PipelineParams params_;
};

}  // namespace cgctx::core
