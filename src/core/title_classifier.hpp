// Game title classification from launch traffic (paper §4.2).
//
// A Random Forest (500 trees, depth 10 — the paper's selected model)
// consumes the 51 packet-group attributes of the first N=5 seconds of a
// streaming flow and predicts the game title. Predictions whose
// confidence falls below 40% are reported as "unknown" (§4.4.1), at which
// point the operator falls back to gameplay-activity-pattern inference.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/launch_attributes.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace cgctx::core {

struct TitleClassifierParams {
  LaunchAttributeParams attributes{};
  ml::RandomForestParams forest{
      .n_trees = 500, .max_depth = 10, .min_samples_split = 2,
      .min_samples_leaf = 1, .max_features = 0, .bootstrap = true,
      .seed = 0xC1A55u};
  /// Below this confidence the classifier answers "unknown" (paper: most
  /// misclassified sessions had confidence < 40%).
  double unknown_threshold = 0.40;
};

/// Classification outcome for one streaming session.
struct TitleResult {
  /// Label index into the training dataset's class names; nullopt when
  /// the classifier is not confident ("unknown" title).
  std::optional<ml::Label> label;
  std::string class_name;  ///< "" when unknown
  double confidence = 0.0;

  friend bool operator==(const TitleResult&, const TitleResult&) = default;
};

class TitleClassifier {
 public:
  explicit TitleClassifier(TitleClassifierParams params = {})
      : params_(params), forest_(params.forest) {}

  /// Trains on a dataset of 51-attribute rows labeled by title. The
  /// dataset's class names are retained for TitleResult::class_name.
  void train(const ml::Dataset& data);

  /// Classifies a session from its packets (the first N seconds past
  /// `flow_begin` are used).
  [[nodiscard]] TitleResult classify(
      std::span<const net::PacketRecord> packets,
      net::Timestamp flow_begin) const;

  /// Classifies an already-extracted attribute row.
  [[nodiscard]] TitleResult classify_features(const ml::FeatureRow& row) const;

  /// Allocation-free variant: `scratch` (size scratch_size()) is the
  /// probability accumulation buffer, reusable across calls. Hot-path
  /// callers (pipeline, streaming analyzer) hold one scratch per session.
  [[nodiscard]] TitleResult classify_features(const ml::FeatureRow& row,
                                              std::span<double> scratch) const;

  /// Scratch doubles classify_features needs (= the class count; 0 until
  /// trained).
  [[nodiscard]] std::size_t scratch_size() const {
    return compiled_.num_classes();
  }

  [[nodiscard]] const TitleClassifierParams& params() const { return params_; }
  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  /// The compiled engine classification routes through (built by train()
  /// and deserialize()).
  [[nodiscard]] const ml::CompiledForest& compiled() const {
    return compiled_;
  }

  /// Persistence (forest + class names + thresholds).
  [[nodiscard]] std::string serialize() const;
  static TitleClassifier deserialize(const std::string& text);

 private:
  /// Shared thresholding over an argmax prediction.
  [[nodiscard]] TitleResult classify_features_impl(
      ml::Classifier::Prediction prediction) const;

  TitleClassifierParams params_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;
  std::vector<std::string> class_names_;
};

}  // namespace cgctx::core
