// Stage-transition modeling and gameplay-activity-pattern inference
// (paper §4.3.2).
//
// As slots are classified, a 3x3 matrix accumulates the per-slot stage
// transitions (including self-retention). Normalized to probabilities,
// its nine cells are the attribute vector of a Random Forest that infers
// whether the session follows the continuous-play or spectate-and-play
// gameplay activity pattern. The inference is emitted once the model's
// confidence clears a threshold (75% balances accuracy against
// time-to-result, §4.4.2).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>

#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace cgctx::core {

/// Pattern label indices used by the inference datasets.
inline constexpr ml::Label kPatternContinuous = 0;
inline constexpr ml::Label kPatternSpectate = 1;
inline constexpr std::size_t kNumPatternLabels = 2;

std::vector<std::string> pattern_class_names();

inline constexpr std::size_t kNumTransitionAttributes = 9;

/// Names of the 9 transition attributes ("active->idle" etc.), in
/// feature-vector order (row = from, column = to; stage order
/// active, passive, idle).
std::vector<std::string> transition_attribute_names();

/// Accumulates per-slot stage transitions for one session.
class TransitionTracker {
 public:
  /// Feeds the stage classified for the next slot (labels as in
  /// stage_classifier.hpp). The first call only sets the starting state.
  void push(ml::Label stage);

  void reset();

  /// Transitions recorded so far (pushes minus one, once started).
  [[nodiscard]] std::size_t transition_count() const { return total_; }

  /// The 9 matrix cells normalized to probabilities over all recorded
  /// transitions (sums to 1; all zeros before any transition).
  [[nodiscard]] ml::FeatureRow probabilities() const;

  /// Allocation-free variant: writes the 9 cells into `out`, whose size
  /// must be kNumTransitionAttributes.
  void probabilities_into(std::span<double> out) const;

  /// Raw counts (row-major, from-stage major).
  [[nodiscard]] const std::array<std::uint64_t, kNumTransitionAttributes>&
  counts() const {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kNumTransitionAttributes> counts_{};
  std::size_t total_ = 0;
  ml::Label previous_ = -1;
};

struct PatternInferrerParams {
  ml::RandomForestParams forest{
      .n_trees = 100, .max_depth = 10, .min_samples_split = 2,
      .min_samples_leaf = 1, .max_features = 0, .bootstrap = true,
      .seed = 0xAC71Fu};
  /// Inference is emitted once confidence reaches this level (paper: 0.75).
  double confidence_threshold = 0.75;
  /// Minimum observed transitions (= slots) before inference is
  /// attempted; two minutes keeps the decision out of the launch window,
  /// matching the paper's ~5-minute average time-to-confident-result.
  std::size_t min_transitions = 120;
};

struct PatternResult {
  ml::Label label = -1;  ///< kPatternContinuous or kPatternSpectate
  double confidence = 0.0;

  friend bool operator==(const PatternResult&, const PatternResult&) = default;
};

class PatternInferrer {
 public:
  explicit PatternInferrer(PatternInferrerParams params = {})
      : params_(params), forest_(params.forest) {}

  /// Trains on a dataset of 9-attribute transition-probability rows
  /// labeled with pattern indices.
  void train(const ml::Dataset& data);

  /// Attempts a confident inference from the tracker's current state;
  /// nullopt while below the transition floor or confidence threshold.
  [[nodiscard]] std::optional<PatternResult> infer(
      const TransitionTracker& tracker) const;

  /// Unconditional prediction (used at end of session as a last resort
  /// and by evaluation benches).
  [[nodiscard]] PatternResult infer_unchecked(
      const TransitionTracker& tracker) const;

  /// Allocation-free variants: `scratch` (size scratch_size()) is the
  /// probability accumulation buffer, reusable across calls.
  [[nodiscard]] std::optional<PatternResult> infer(
      const TransitionTracker& tracker, std::span<double> scratch) const;
  [[nodiscard]] PatternResult infer_unchecked(
      const TransitionTracker& tracker, std::span<double> scratch) const;

  /// Scratch doubles infer needs (= the class count; 0 until trained).
  [[nodiscard]] std::size_t scratch_size() const {
    return compiled_.num_classes();
  }

  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  /// The compiled engine inference routes through (built by train() and
  /// deserialize()).
  [[nodiscard]] const ml::CompiledForest& compiled() const {
    return compiled_;
  }
  [[nodiscard]] const PatternInferrerParams& params() const { return params_; }

  [[nodiscard]] std::string serialize() const;
  static PatternInferrer deserialize(const std::string& text);

 private:
  PatternInferrerParams params_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;
};

}  // namespace cgctx::core
