#include "core/multi_session_probe.hpp"

#include <deque>
#include <stdexcept>

namespace cgctx::core {

namespace {

/// Pre-detection lookback: long enough to cover the detector's warmup so
/// a new session's analyzer still sees the very first launch packets.
constexpr net::Duration kLookback = 10 * net::kNanosPerSecond;

}  // namespace

MultiSessionProbe::MultiSessionProbe(PipelineModels models,
                                     MultiSessionProbeParams params,
                                     ReportCallback on_report,
                                     StreamingAnalyzer::EventCallback on_event)
    : models_(models),
      params_(std::move(params)),
      on_report_(std::move(on_report)),
      on_event_(std::move(on_event)),
      table_(params_.flow_idle_timeout),
      detector_(params_.pipeline.detector) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("MultiSessionProbe: all models are required");
}

void MultiSessionProbe::retire(const net::FiveTuple& key) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  const SessionReport report = it->second.analyzer->finish();
  // Drop any residual flow-table entry so a later session on the same
  // five-tuple starts its detection from fresh statistics instead of a
  // lifetime mean diluted by the idle gap. Done before erasing the
  // session: `key` may alias the session map node being destroyed.
  table_.erase(key);
  sessions_.erase(it);
  ++reports_;
  if (stats_ != nullptr) stats_->count_report();
  if (on_report_) on_report_(report);
}

void MultiSessionProbe::push(const net::PacketRecord& pkt) {
  if (!saw_packet_) {
    saw_packet_ = true;
    last_sweep_ = pkt.timestamp;
  }

  // Periodic idle sweep, driven by packet time: retire silent sessions
  // and evict idle undetected flows (cross traffic churns constantly; an
  // unswept table grows without bound at vantage-point scale).
  if (pkt.timestamp - last_sweep_ > 5 * net::kNanosPerSecond) {
    last_sweep_ = pkt.timestamp;
    std::vector<net::FiveTuple> idle;
    for (const auto& [key, session] : sessions_)
      if (pkt.timestamp - session.last_seen > params_.session_idle_timeout)
        idle.push_back(key);
    for (const net::FiveTuple& key : idle) retire(key);
    table_.evict_idle(pkt.timestamp);
  }

  const net::FiveTuple key = pkt.tuple.canonical();
  const auto live = sessions_.find(key);
  if (live != sessions_.end()) {
    live->second.analyzer->push(pkt);
    live->second.last_seen = pkt.timestamp;
    sync_stats();
    return;
  }

  // Undetected traffic: account and keep a lookback window.
  lookback_.push_back(pkt);
  while (!lookback_.empty() &&
         pkt.timestamp - lookback_.front().timestamp > kLookback)
    lookback_.pop_front();

  const net::FlowState& flow = table_.add(pkt);
  const auto detection = detector_.detect(flow);
  if (!detection) {
    sync_stats();
    return;
  }

  // New session: spin up an analyzer and replay its flow's lookback
  // packets (the analyzer runs its own detection over them, which
  // re-fires quickly since the whole flow history is present). The
  // promoted tuple leaves the shared table — its packets bypass it from
  // now on, and stale cumulative stats must not greet a future session
  // that reuses the tuple.
  Session session;
  session.analyzer = std::make_unique<StreamingAnalyzer>(
      models_, params_.pipeline, on_event_);
  session.last_seen = pkt.timestamp;
  for (const net::PacketRecord& earlier : lookback_)
    if (earlier.tuple.canonical() == key) session.analyzer->push(earlier);
  sessions_.emplace(key, std::move(session));
  table_.erase(key);
  if (stats_ != nullptr) stats_->count_session_started();
  sync_stats();
}

void MultiSessionProbe::sync_stats() {
  if (stats_ == nullptr) return;
  const std::uint64_t evictions = table_.evictions();
  if (evictions > evictions_reported_) {
    stats_->add_evictions(evictions - evictions_reported_);
    evictions_reported_ = evictions;
  }
  stats_->set_live_flows(table_.size());
  stats_->set_live_sessions(sessions_.size());
}

void MultiSessionProbe::flush() {
  while (!sessions_.empty()) retire(sessions_.begin()->first);
}

}  // namespace cgctx::core
