#include "core/multi_session_probe.hpp"

#include <stdexcept>
#include <utility>

namespace cgctx::core {

namespace {

/// Pre-detection lookback: long enough to cover the detector's warmup so
/// a new session's engine still sees the very first launch packets.
constexpr net::Duration kLookback = 10 * net::kNanosPerSecond;

}  // namespace

MultiSessionProbe::MultiSessionProbe(PipelineModels models,
                                     MultiSessionProbeParams params,
                                     ReportCallback on_report,
                                     SessionEventCallback on_event)
    : models_(models),
      params_(std::move(params)),
      on_report_(std::move(on_report)),
      on_event_(std::move(on_event)),
      has_event_(static_cast<bool>(on_event_)),
      table_(params_.flow_idle_timeout),
      detector_(params_.pipeline.detector) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("MultiSessionProbe: all models are required");
}

std::unique_ptr<SessionEngine> MultiSessionProbe::acquire_engine() {
  if (pool_.empty()) {
    auto engine = std::make_unique<SessionEngine>(models_, &params_.pipeline);
    engine->set_metrics(metrics_);
    return engine;
  }
  std::unique_ptr<SessionEngine> engine = std::move(pool_.back());
  pool_.pop_back();
  engine->set_metrics(metrics_);
  return engine;
}

void MultiSessionProbe::release_engine(std::unique_ptr<SessionEngine> engine) {
  engine->reset();
  pool_.push_back(std::move(engine));
}

void MultiSessionProbe::retire(const net::FiveTuple& key) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  std::unique_ptr<SessionEngine> engine = std::move(it->second.engine);
  const std::uint64_t session_id = it->second.id;
  // Drop any residual flow-table entry so a later session on the same
  // five-tuple starts its detection from fresh statistics instead of a
  // lifetime mean diluted by the idle gap. Done before erasing the
  // session: `key` may alias the session map node being destroyed.
  table_.erase(key);
  sessions_.erase(it);
  ++reports_;
  if (stats_ != nullptr) stats_->count_report();
  const SessionReport* report = nullptr;
  if (trace_ != nullptr) {
    if (has_event_) {
      DualSink sink{&on_event_, trace_, session_id};
      report = &engine->finish(sink);
    } else {
      TraceSessionSink sink{trace_, session_id};
      report = &engine->finish(sink);
    }
    append_retired(*trace_, session_id, *report);
  } else if (has_event_) {
    EventSink sink{&on_event_};
    report = &engine->finish(sink);
  } else {
    NullSessionSink sink;
    report = &engine->finish(sink);
  }
  if (on_report_) on_report_(*report);
  release_engine(std::move(engine));
}

void MultiSessionProbe::feed(Session& session, const net::PacketRecord& pkt) {
  if (trace_ != nullptr) {
    if (has_event_) {
      DualSink sink{&on_event_, trace_, session.id};
      session.engine->on_packet(pkt, sink);
    } else {
      TraceSessionSink sink{trace_, session.id};
      session.engine->on_packet(pkt, sink);
    }
  } else if (has_event_) {
    EventSink sink{&on_event_};
    session.engine->on_packet(pkt, sink);
  } else {
    NullSessionSink sink;
    session.engine->on_packet(pkt, sink);
  }
}

void MultiSessionProbe::push(const net::PacketRecord& pkt) {
  if (!saw_packet_) {
    saw_packet_ = true;
    last_sweep_ = pkt.timestamp;
  }

  // Periodic idle sweep, driven by packet time: retire silent sessions
  // and evict idle undetected flows (cross traffic churns constantly; an
  // unswept table grows without bound at vantage-point scale).
  if (pkt.timestamp - last_sweep_ > 5 * net::kNanosPerSecond) {
    last_sweep_ = pkt.timestamp;
    std::vector<net::FiveTuple> idle;
    for (const auto& [key, session] : sessions_)
      if (pkt.timestamp - session.last_seen > params_.session_idle_timeout)
        idle.push_back(key);
    for (const net::FiveTuple& key : idle) retire(key);
    table_.evict_idle(pkt.timestamp);
  }

  const net::FiveTuple key = pkt.tuple.canonical();
  const auto live = sessions_.find(key);
  if (live != sessions_.end()) {
    feed(live->second, pkt);
    live->second.last_seen = pkt.timestamp;
    sync_stats();
    return;
  }

  // Undetected traffic: account and keep a lookback window.
  lookback_.push_back(pkt);
  while (!lookback_.empty() &&
         pkt.timestamp - lookback_.front().timestamp > kLookback)
    lookback_.pop_front();

  const net::FlowState& flow = table_.add(pkt);
  const auto detection = detector_.detect(flow);
  if (!detection) {
    sync_stats();
    return;
  }

  // New session: acquire a pooled engine and replay the flow's lookback
  // packets into it. The session clock starts at the flow's earliest
  // buffered packet — for flows detected within the lookback span (the
  // detector fires in 1–2 s) that is the flow's true first packet, so
  // the title window and slot boundaries match a from-the-start
  // analyzer's exactly. The promoted tuple leaves the shared table — its
  // packets bypass it from now on, and stale cumulative stats must not
  // greet a future session that reuses the tuple.
  net::Timestamp flow_begin = pkt.timestamp;
  for (const net::PacketRecord& earlier : lookback_)
    if (earlier.tuple.canonical() == key) {
      flow_begin = earlier.timestamp;
      break;
    }

  Session session;
  session.engine = acquire_engine();
  session.last_seen = pkt.timestamp;
  session.id = next_session_id_;
  next_session_id_ += id_stride_;
  session.engine->start(flow_begin);
  session.engine->set_detection(*detection);
  if (has_event_ || trace_ != nullptr) {
    StreamEvent event;
    event.type = StreamEventType::kFlowDetected;
    event.at_seconds = net::duration_to_seconds(pkt.timestamp - flow_begin);
    event.detection = detection;
    if (has_event_) on_event_(event);
    if (trace_ != nullptr) append_trace(*trace_, session.id, event);
  }
  for (const net::PacketRecord& earlier : lookback_)
    if (earlier.tuple.canonical() == key) feed(session, earlier);
  sessions_.emplace(key, std::move(session));
  table_.erase(key);
  if (stats_ != nullptr) stats_->count_session_started();
  sync_stats();
}

void MultiSessionProbe::sync_stats() {
  if (stats_ == nullptr) return;
  const std::uint64_t evictions = table_.evictions();
  if (evictions > evictions_reported_) {
    stats_->add_evictions(evictions - evictions_reported_);
    evictions_reported_ = evictions;
  }
  stats_->set_live_flows(table_.size());
  stats_->set_live_sessions(sessions_.size());
}

void MultiSessionProbe::flush() {
  while (!sessions_.empty()) retire(sessions_.begin()->first);
  sync_stats();  // the live-session gauge must read 0 after a flush
}

}  // namespace cgctx::core
