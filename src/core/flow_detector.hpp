// Cloud-gaming streaming-flow detection (paper §4.1 front-end).
//
// Adapted from the state-of-the-art signatures the paper cites
// [Graff'23, Lyu'24, Shirmarz'24]: a cloud-game streaming flow is a
// long-lived bidirectional UDP conversation whose downstream is a
// consistent-SSRC RTP stream at multi-Mbps rates containing MTU-limited
// ("full") packets, paired with a low-rate upstream input stream, on a
// known platform port range. VoIP shares the RTP shape but not the rate;
// video streaming shares the rate but is TCP and one-directional.
#pragma once

#include <optional>
#include <string>

#include "net/flow_table.hpp"

namespace cgctx::core {

enum class Platform : std::uint8_t {
  kGeforceNow,
  kXboxCloud,
  kAmazonLuna,
  kPsCloudStreaming,
};

const char* to_string(Platform platform);

struct FlowDetectorParams {
  /// Minimum downstream payload throughput for a gaming stream (VoIP sits
  /// around 0.1 Mbps; cloud-game launch animations exceed 1 Mbps).
  double min_downstream_mbps = 1.0;
  /// Minimum fraction of downstream packets parsing as same-SSRC RTP.
  double min_rtp_consistency = 0.85;
  /// Full-size payload marking an MTU-limited video stream.
  std::uint32_t full_payload = 1432;
  /// Observation floor before a verdict is attempted.
  std::uint64_t min_packets = 200;
  net::Duration min_age = net::kNanosPerSecond;
};

struct DetectionResult {
  Platform platform = Platform::kGeforceNow;
  net::FiveTuple flow;  ///< canonical tuple of the detected flow

  friend bool operator==(const DetectionResult&,
                         const DetectionResult&) = default;
};

class CloudGamingFlowDetector {
 public:
  explicit CloudGamingFlowDetector(FlowDetectorParams params = {})
      : params_(params) {}

  /// Verdict for one flow: nullopt = not (yet) classifiable as a cloud
  /// gaming stream. Idempotent; callers typically re-test as the flow
  /// grows and cache the first positive.
  [[nodiscard]] std::optional<DetectionResult> detect(
      const net::FlowState& flow) const;

  [[nodiscard]] const FlowDetectorParams& params() const { return params_; }

 private:
  FlowDetectorParams params_;
};

}  // namespace cgctx::core
