// Passive objective-QoE metric estimation from RTP packet streams.
//
// The paper's pipeline (Fig. 6, gray box) consumes objective QoE metrics
// produced by the established method of prior work [Lyu et al., PAM'24]:
// streaming frame rate, streaming lag, and a graphics-resolution proxy,
// all derived passively from the flow's QoS attributes. This module
// implements that estimator over our RTP model:
//   - frame rate: RTP marker bits delimit video frames; frames per slot
//     is the delivered rate;
//   - frame lag: the inter-frame delivery interval in excess of the
//     nominal frame period (encoder/network stall time);
//   - loss: gaps in the RTP sequence number space;
//   - resolution proxy: video bytes per frame, which tracks encoding
//     resolution at a given frame rate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace cgctx::core {

/// Estimated objective QoE metrics for one I-second slot.
struct EstimatedSlotQoe {
  double frame_rate = 0.0;       ///< delivered frames per second
  double frame_lag_ms = 0.0;     ///< mean inter-frame gap beyond nominal
  double loss_rate = 0.0;        ///< fraction of downstream RTP packets lost
  double bytes_per_frame = 0.0;  ///< resolution proxy
  std::uint64_t video_packets = 0;
};

/// Streaming estimator: feed downstream packets in arrival order; slot
/// boundaries are closed explicitly (matching the pipeline's slotting).
class QoeEstimator {
 public:
  /// `nominal_fps` anchors the lag computation (frames later than
  /// 1/nominal_fps after their predecessor accrue lag). It is typically
  /// seeded with the session's configured rate or the observed peak.
  explicit QoeEstimator(double nominal_fps = 60.0);

  /// Accounts one downstream packet (upstream packets are ignored).
  void add(const net::PacketRecord& pkt);

  /// Closes the current slot and returns its metrics; resets per-slot
  /// state but keeps cross-slot continuity (sequence numbers, last frame
  /// boundary time).
  EstimatedSlotQoe end_slot();

  /// Re-anchors the nominal frame rate (e.g. after the observed peak
  /// rises). Values <= 0 are ignored.
  void set_nominal_fps(double fps);

  /// Clears all per-slot and cross-slot state for a new session, keeping
  /// the configured nominal frame rate.
  void reset();

  [[nodiscard]] double nominal_fps() const { return nominal_fps_; }

 private:
  double nominal_fps_;
  // Per-slot accumulators.
  std::uint64_t frames_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t received_ = 0;
  double lag_ms_sum_ = 0.0;
  std::uint64_t lag_samples_ = 0;
  // Cross-slot continuity: RFC 3550 extended sequence tracking.
  std::optional<std::uint16_t> last_seq_;
  std::int64_t extended_seq_ = 0;
  std::int64_t highest_extended_ = 0;
  std::int64_t slot_base_extended_ = 0;
  std::optional<net::Timestamp> last_frame_end_;
};

/// Batch convenience: estimates per-slot QoE metrics for a whole session
/// window. `begin` is the first slot's start; packets outside
/// [begin, begin + slot_count * slot) are ignored.
std::vector<EstimatedSlotQoe> estimate_slot_qoe(
    std::span<const net::PacketRecord> packets, net::Timestamp begin,
    net::Duration slot_duration, std::size_t slot_count,
    double nominal_fps = 60.0);

}  // namespace cgctx::core
