#include "core/packet_groups.hpp"

#include <algorithm>
#include <cmath>

namespace cgctx::core {

const char* to_string(PacketGroup group) {
  switch (group) {
    case PacketGroup::kFull: return "full";
    case PacketGroup::kSteady: return "steady";
    case PacketGroup::kSparse: return "sparse";
  }
  return "?";
}

std::vector<PacketGroup> label_packet_groups(
    std::span<const std::uint32_t> payload_sizes,
    const GroupLabelerParams& params) {
  std::vector<PacketGroup> labels(payload_sizes.size(), PacketGroup::kSparse);

  // Pass 1: full packets by payload size.
  std::vector<std::size_t> rest;  // indices of non-full packets, arrival order
  for (std::size_t i = 0; i < payload_sizes.size(); ++i) {
    if (payload_sizes[i] >= params.full_payload) {
      labels[i] = PacketGroup::kFull;
    } else {
      rest.push_back(i);
    }
  }

  // Pass 2: majority voting among adjacent non-full packets. A packet is
  // steady when at least half of its examined neighbors lie within +-V of
  // its own payload size.
  for (std::size_t r = 0; r < rest.size(); ++r) {
    const double own = payload_sizes[rest[r]];
    const double tolerance = params.v_fraction * own;
    std::size_t neighbors = 0;
    std::size_t close = 0;
    const std::size_t lo = r >= params.neighbor_window ? r - params.neighbor_window : 0;
    const std::size_t hi = std::min(rest.size(), r + params.neighbor_window + 1);
    for (std::size_t q = lo; q < hi; ++q) {
      if (q == r) continue;
      ++neighbors;
      if (std::abs(static_cast<double>(payload_sizes[rest[q]]) - own) <=
          tolerance)
        ++close;
    }
    if (neighbors > 0 && 2 * close >= neighbors)
      labels[rest[r]] = PacketGroup::kSteady;
  }
  return labels;
}

std::vector<std::vector<LabeledPacket>> label_window(
    std::span<const net::PacketRecord> packets, net::Timestamp window_begin,
    net::Duration slot_duration, std::size_t slot_count,
    const GroupLabelerParams& params) {
  std::vector<std::vector<LabeledPacket>> slots(slot_count);
  // Collect downstream packets per slot (arrival order preserved).
  std::vector<std::vector<std::uint32_t>> payloads(slot_count);
  for (const net::PacketRecord& pkt : packets) {
    if (pkt.direction != net::Direction::kDownstream) continue;
    if (pkt.timestamp < window_begin) continue;
    const auto slot = static_cast<std::size_t>(
        (pkt.timestamp - window_begin) / slot_duration);
    if (slot >= slot_count) continue;
    slots[slot].push_back(LabeledPacket{pkt.timestamp, pkt.payload_size,
                                        PacketGroup::kSparse});
    payloads[slot].push_back(pkt.payload_size);
  }
  for (std::size_t s = 0; s < slot_count; ++s) {
    const std::vector<PacketGroup> labels =
        label_packet_groups(payloads[s], params);
    for (std::size_t i = 0; i < labels.size(); ++i)
      slots[s][i].group = labels[i];
  }
  return slots;
}

}  // namespace cgctx::core
