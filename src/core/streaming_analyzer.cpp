#include "core/streaming_analyzer.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgctx::core {

const char* to_string(StreamEventType type) {
  switch (type) {
    case StreamEventType::kFlowDetected: return "flow-detected";
    case StreamEventType::kTitleClassified: return "title-classified";
    case StreamEventType::kStageChanged: return "stage-changed";
    case StreamEventType::kPatternInferred: return "pattern-inferred";
  }
  return "?";
}

StreamingAnalyzer::StreamingAnalyzer(PipelineModels models,
                                     PipelineParams params,
                                     EventCallback on_event,
                                     SlotCallback on_slot)
    : models_(models),
      params_(std::move(params)),
      on_event_(std::move(on_event)),
      on_slot_(std::move(on_slot)),
      detector_(params_.detector),
      tracker_(params_.tracker) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("StreamingAnalyzer: all models are required");
  scratch_.resize(std::max({models_.title->scratch_size(),
                            models_.stage->scratch_size(),
                            models_.pattern->scratch_size()}));
}

std::span<double> StreamingAnalyzer::scratch(std::size_t n) {
  if (scratch_.size() < n) scratch_.resize(n);  // models retrained mid-life
  return std::span<double>(scratch_.data(), n);
}

void StreamingAnalyzer::emit(StreamEvent event) {
  if (on_event_) on_event_(event);
}

void StreamingAnalyzer::push(const net::PacketRecord& pkt) {
  if (!detection_) {
    // Detection needs a few hundred packets; the launch-stage packets
    // seen before the verdict still belong to the title-classification
    // window, so buffer recent traffic and replay the flow's share once
    // the verdict lands.
    pre_buffer_.push_back(pkt);
    while (!pre_buffer_.empty() &&
           pkt.timestamp - pre_buffer_.front().timestamp >
               10 * net::kNanosPerSecond)
      pre_buffer_.pop_front();

    const net::FlowState& flow = table_.add(pkt);
    detection_ = detector_.detect(flow);
    if (!detection_) return;
    flow_begin_ = flow.first_seen;
    report_.detection = detection_;
    StreamEvent event;
    event.type = StreamEventType::kFlowDetected;
    event.at_seconds = net::duration_to_seconds(pkt.timestamp - flow_begin_);
    event.detection = detection_;
    emit(event);
    // Replay the buffered packets of the detected flow (the triggering
    // packet is among them).
    std::deque<net::PacketRecord> buffered;
    buffered.swap(pre_buffer_);
    for (const net::PacketRecord& earlier : buffered)
      if (earlier.tuple.canonical() == detection_->flow)
        analyze_packet(earlier);
    return;
  }
  if (pkt.tuple.canonical() != detection_->flow) return;
  analyze_packet(pkt);
}

void StreamingAnalyzer::analyze_packet(const net::PacketRecord& pkt) {
  const double t = net::duration_to_seconds(pkt.timestamp - flow_begin_);

  // Title window: buffer the first N seconds, classify once elapsed.
  const double window = models_.title->params().attributes.window_seconds;
  if (!title_done_) {
    if (t < window) {
      title_window_.push_back(pkt);
    } else {
      title_ = models_.title->classify_features(
          launch_attributes(title_window_, flow_begin_,
                            models_.title->params().attributes),
          scratch(models_.title->scratch_size()));
      title_done_ = true;
      title_window_.clear();
      title_window_.shrink_to_fit();
      report_.title = title_;
      StreamEvent event;
      event.type = StreamEventType::kTitleClassified;
      event.at_seconds = t;
      event.title = title_;
      emit(event);
    }
  }

  // Close any slots the clock has passed.
  while (pkt.timestamp - flow_begin_ >=
         static_cast<net::Timestamp>(next_slot_ + 1) * net::kNanosPerSecond)
    close_slot();

  // Tally into the open slot.
  if (pkt.direction == net::Direction::kDownstream) {
    ++current_slot_.down_packets;
    current_slot_.down_bytes += pkt.payload_size;
  } else {
    ++current_slot_.up_packets;
    current_slot_.up_bytes += pkt.payload_size;
  }
  qoe_.add(pkt);
}

void StreamingAnalyzer::close_slot() {
  const EstimatedSlotQoe estimated = qoe_.end_slot();
  const ml::FeatureRow attrs = tracker_.push(current_slot_);
  const ml::Label stage =
      models_.stage->classify(attrs, scratch(models_.stage->scratch_size()));
  transitions_.push(stage);
  const double at_s = static_cast<double>(next_slot_ + 1);

  if (stage != last_stage_) {
    StreamEvent event;
    event.type = StreamEventType::kStageChanged;
    event.at_seconds = at_s;
    event.stage = stage;
    emit(event);
    last_stage_ = stage;
  }

  if (auto inference = models_.pattern->infer(
          transitions_, scratch(models_.pattern->scratch_size()))) {
    const bool first = !pattern_.has_value();
    const bool changed = !pattern_ || pattern_->label != inference->label;
    pattern_ = inference;
    if (first) pattern_decided_at_s_ = at_s;
    if (first || changed) {
      StreamEvent event;
      event.type = StreamEventType::kPatternInferred;
      event.at_seconds = at_s;
      event.pattern = pattern_;
      emit(event);
    }
  }

  SlotRecord record;
  record.stage = stage;
  record.throughput_mbps =
      static_cast<double>(current_slot_.down_bytes) * 8.0 / 1e6;
  record.frame_rate = estimated.frame_rate;
  record.rtt_ms = params_.assumed_rtt_ms;
  record.loss_rate = estimated.loss_rate;

  peak_mbps_ = std::max(peak_mbps_, record.throughput_mbps);
  peak_fps_ = std::max(peak_fps_, record.frame_rate);
  total_mbps_ += record.throughput_mbps;

  SlotQoeMetrics metrics{record.frame_rate, record.throughput_mbps,
                         record.rtt_ms, record.loss_rate};
  QoeContext context;
  context.stage = stage;
  context.expected_peak_fps = peak_fps_;
  context.expected_peak_mbps = peak_mbps_;
  if (title_done_ && title_.label) {
    const auto it = params_.title_demand_mbps.find(title_.class_name);
    if (it != params_.title_demand_mbps.end())
      context.expected_peak_mbps = std::min(peak_mbps_, it->second);
  }
  record.objective = objective_qoe(metrics, params_.qoe);
  record.effective = effective_qoe(metrics, context, params_.qoe);
  objective_levels_.push_back(record.objective);
  effective_levels_.push_back(record.effective);
  report_.stage_seconds[static_cast<std::size_t>(stage)] +=
      params_.tracker.slot_seconds;
  report_.slots.push_back(record);
  if (on_slot_) on_slot_(record);

  current_slot_ = RawSlotVolumetrics{};
  ++next_slot_;
}

SessionReport StreamingAnalyzer::finish() {
  if (detection_ &&
      (current_slot_.down_packets + current_slot_.up_packets) > 0)
    close_slot();

  report_.pattern = pattern_;
  report_.pattern_decided_at_s = pattern_decided_at_s_;
  if (!report_.pattern && transitions_.transition_count() > 0)
    report_.pattern = models_.pattern->infer_unchecked(
        transitions_, scratch(models_.pattern->scratch_size()));
  report_.duration_s = static_cast<double>(report_.slots.size());
  report_.objective_session = session_level(objective_levels_);
  report_.effective_session = session_level(effective_levels_);
  report_.mean_down_mbps = report_.slots.empty()
                               ? 0.0
                               : total_mbps_ /
                                     static_cast<double>(report_.slots.size());
  SessionReport out = std::move(report_);

  // Reset for the next session.
  table_ = net::FlowTable();
  detection_.reset();
  flow_begin_ = 0;
  pre_buffer_.clear();
  title_window_.clear();
  title_done_ = false;
  title_ = TitleResult{};
  next_slot_ = 0;
  current_slot_ = RawSlotVolumetrics{};
  qoe_ = QoeEstimator(60.0);
  tracker_.reset();
  transitions_.reset();
  last_stage_ = -1;
  pattern_.reset();
  pattern_decided_at_s_ = -1.0;
  report_ = SessionReport{};
  objective_levels_.clear();
  effective_levels_.clear();
  peak_mbps_ = 5.0;
  peak_fps_ = 30.0;
  total_mbps_ = 0.0;
  return out;
}

}  // namespace cgctx::core
