#include "core/streaming_analyzer.hpp"

namespace cgctx::core {

StreamingAnalyzer::StreamingAnalyzer(PipelineModels models,
                                     PipelineParams params,
                                     EventCallback on_event,
                                     SlotCallback on_slot)
    : params_(std::move(params)),
      on_event_(std::move(on_event)),
      on_slot_(std::move(on_slot)),
      detector_(params_.detector),
      engine_(models, &params_) {}

void StreamingAnalyzer::push(const net::PacketRecord& pkt) {
  CallbackSink sink{this};
  if (!detection_) {
    // Detection needs a few hundred packets; the launch-stage packets
    // seen before the verdict still belong to the title-classification
    // window, so buffer recent traffic and replay the flow's share once
    // the verdict lands.
    pre_buffer_.push_back(pkt);
    while (!pre_buffer_.empty() &&
           pkt.timestamp - pre_buffer_.front().timestamp >
               10 * net::kNanosPerSecond)
      pre_buffer_.pop_front();

    const net::FlowState& flow = table_.add(pkt);
    detection_ = detector_.detect(flow);
    if (!detection_) return;
    flow_begin_ = flow.first_seen;
    engine_.start(flow_begin_);
    engine_.set_detection(*detection_);
    if (on_event_ || trace_ != nullptr) {
      StreamEvent event;
      event.type = StreamEventType::kFlowDetected;
      event.at_seconds = net::duration_to_seconds(pkt.timestamp - flow_begin_);
      event.detection = detection_;
      if (trace_ != nullptr) append_trace(*trace_, trace_session_id_, event);
      if (on_event_) on_event_(event);
    }
    // Replay the buffered packets of the detected flow (the triggering
    // packet is among them).
    std::deque<net::PacketRecord> buffered;
    buffered.swap(pre_buffer_);
    for (const net::PacketRecord& earlier : buffered)
      if (earlier.tuple.canonical() == detection_->flow)
        engine_.on_packet(earlier, sink);
    return;
  }
  if (pkt.tuple.canonical() != detection_->flow) return;
  engine_.on_packet(pkt, sink);
}

SessionReport StreamingAnalyzer::finish() {
  CallbackSink sink{this};
  SessionReport out = engine_.finish(sink);  // copy: the engine is reused
  if (trace_ != nullptr) append_retired(*trace_, trace_session_id_, out);
  ++trace_session_id_;

  // Reset for the next session.
  engine_.reset();
  table_ = net::FlowTable();
  detection_.reset();
  flow_begin_ = 0;
  pre_buffer_.clear();
  return out;
}

}  // namespace cgctx::core
