#include "core/pipeline.hpp"

#include "core/qoe_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/flow_table.hpp"

namespace cgctx::core {

RealtimePipeline::RealtimePipeline(PipelineModels models, PipelineParams params)
    : models_(models), params_(std::move(params)) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("RealtimePipeline: all models are required");
}

std::optional<SessionReport> RealtimePipeline::process_packets(
    std::span<const net::PacketRecord> packets) const {
  // Front-end: demux and find the cloud-gaming streaming flow.
  net::FlowTable table;
  const CloudGamingFlowDetector detector(params_.detector);
  std::optional<DetectionResult> detection;
  for (const net::PacketRecord& pkt : packets) {
    const net::FlowState& flow = table.add(pkt);
    if (!detection) detection = detector.detect(flow);
  }
  if (!detection) return std::nullopt;

  // Keep only the detected flow's packets, in time order.
  std::vector<net::PacketRecord> flow_packets;
  for (const net::PacketRecord& pkt : packets)
    if (pkt.tuple.canonical() == detection->flow) flow_packets.push_back(pkt);
  std::sort(flow_packets.begin(), flow_packets.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });

  const net::Timestamp begin = flow_packets.front().timestamp;
  const net::Timestamp end = flow_packets.back().timestamp;
  const auto slot_count = static_cast<std::size_t>(
      (end - begin) / net::kNanosPerSecond + 1);

  // Title classification from the first N seconds.
  TitleResult title = models_.title->classify(flow_packets, begin);

  // Per-slot telemetry from the packet stream itself: raw volumetrics
  // plus the passive QoE estimates (frame delivery from RTP markers,
  // loss from sequence gaps) of the established prior-work method.
  std::vector<SlotInput> slots(slot_count);
  for (const net::PacketRecord& pkt : flow_packets) {
    const auto slot = static_cast<std::size_t>(
        (pkt.timestamp - begin) / net::kNanosPerSecond);
    if (slot >= slot_count) continue;
    SlotInput& input = slots[slot];
    if (pkt.direction == net::Direction::kDownstream) {
      ++input.volumetrics.down_packets;
      input.volumetrics.down_bytes += pkt.payload_size;
    } else {
      ++input.volumetrics.up_packets;
      input.volumetrics.up_bytes += pkt.payload_size;
    }
  }
  const std::vector<EstimatedSlotQoe> qoe = estimate_slot_qoe(
      flow_packets, begin, net::kNanosPerSecond, slot_count);
  for (std::size_t s = 0; s < slot_count; ++s) {
    slots[s].frames = qoe[s].frame_rate;
    slots[s].loss_rate = qoe[s].loss_rate;
    // No passive RTT estimate exists for one-way UDP observation; the
    // deployment feeds RTT from its QoS probes (slot-fidelity telemetry
    // carries it). Packet mode falls back to a configured value.
    slots[s].rtt_ms = params_.assumed_rtt_ms;
  }

  SessionReport report = analyze(std::move(title), slots);
  report.detection = detection;
  return report;
}

SessionReport RealtimePipeline::process_session(
    const sim::LabeledSession& session) const {
  TitleResult title =
      models_.title->classify(session.packets, session.launch_begin);
  std::vector<SlotInput> slots;
  slots.reserve(session.slots.size());
  for (const sim::SlotSample& sample : session.slots) {
    SlotInput input;
    input.volumetrics = RawSlotVolumetrics{sample.down_bytes,
                                           sample.down_packets,
                                           sample.up_bytes, sample.up_packets};
    input.frames = sample.frames;
    input.rtt_ms = sample.rtt_ms;
    input.loss_rate = sample.loss_rate;
    slots.push_back(input);
  }
  return analyze(std::move(title), slots);
}

SessionReport RealtimePipeline::analyze(TitleResult title,
                                        std::span<const SlotInput> slots) const {
  SessionReport report;
  report.title = std::move(title);
  report.duration_s = static_cast<double>(slots.size());

  // Known-title demand hint for the effective-QoE context.
  std::optional<double> demand_hint;
  if (report.title.label) {
    const auto it = params_.title_demand_mbps.find(report.title.class_name);
    if (it != params_.title_demand_mbps.end()) demand_hint = it->second;
  }

  VolumetricTracker tracker(params_.tracker);
  TransitionTracker transitions;
  // One probability scratch buffer reused by every stage classification
  // and pattern inference of the session (the compiled-forest path is
  // allocation-free given this buffer).
  std::vector<double> scratch(
      std::max(models_.stage->scratch_size(), models_.pattern->scratch_size()));
  const std::span<double> stage_scratch(scratch.data(),
                                        models_.stage->scratch_size());
  const std::span<double> pattern_scratch(scratch.data(),
                                          models_.pattern->scratch_size());
  // Causal peak estimates for the effective-QoE expectations, floored so
  // the first slots do not divide by near-zero.
  double peak_mbps = 5.0;
  double peak_fps = 30.0;
  double total_mbps = 0.0;

  report.slots.reserve(slots.size());
  std::vector<QoeLevel> objective_levels;
  std::vector<QoeLevel> effective_levels;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const SlotInput& input = slots[s];
    const ml::FeatureRow attrs = tracker.push(input.volumetrics);
    const ml::Label stage = models_.stage->classify(attrs, stage_scratch);
    transitions.push(stage);

    // Pattern inference runs continuously: the report carries the most
    // recent confident verdict (it sharpens as the transition matrix
    // matures), while pattern_decided_at_s records when the operator
    // first had a usable answer.
    if (auto inference = models_.pattern->infer(transitions, pattern_scratch)) {
      if (!report.pattern)
        report.pattern_decided_at_s = static_cast<double>(s + 1);
      report.pattern = inference;
    }

    SlotRecord record;
    record.stage = stage;
    record.throughput_mbps =
        static_cast<double>(input.volumetrics.down_bytes) * 8.0 / 1e6;
    record.frame_rate = input.frames;
    record.rtt_ms = input.rtt_ms;
    record.loss_rate = input.loss_rate;

    peak_mbps = std::max(peak_mbps, record.throughput_mbps);
    peak_fps = std::max(peak_fps, record.frame_rate);
    total_mbps += record.throughput_mbps;

    SlotQoeMetrics metrics;
    metrics.frame_rate = record.frame_rate;
    metrics.throughput_mbps = record.throughput_mbps;
    metrics.rtt_ms = record.rtt_ms;
    metrics.loss_rate = record.loss_rate;

    QoeContext context;
    context.stage = stage;
    context.expected_peak_fps = peak_fps;
    // The classified title's demand caps the expectation: a low-demand
    // title is not expected to ever reach generic "good" throughput.
    context.expected_peak_mbps =
        demand_hint ? std::min(peak_mbps, *demand_hint) : peak_mbps;

    record.objective = objective_qoe(metrics, params_.qoe);
    record.effective = effective_qoe(metrics, context, params_.qoe);
    objective_levels.push_back(record.objective);
    effective_levels.push_back(record.effective);
    report.stage_seconds[static_cast<std::size_t>(stage)] +=
        params_.tracker.slot_seconds;
    report.slots.push_back(record);
  }

  // End of session: if the confidence threshold was never reached, fall
  // back to the unconditional inference (better than nothing for
  // offline aggregation, flagged by pattern_decided_at_s < 0).
  if (!report.pattern && transitions.transition_count() > 0)
    report.pattern =
        models_.pattern->infer_unchecked(transitions, pattern_scratch);

  report.objective_session = session_level(objective_levels);
  report.effective_session = session_level(effective_levels);
  report.mean_down_mbps =
      report.slots.empty() ? 0.0
                           : total_mbps / static_cast<double>(report.slots.size());
  return report;
}

}  // namespace cgctx::core
