#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/flow_table.hpp"

namespace cgctx::core {

RealtimePipeline::RealtimePipeline(PipelineModels models, PipelineParams params)
    : models_(models), params_(std::move(params)) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("RealtimePipeline: all models are required");
}

std::optional<SessionReport> RealtimePipeline::process_packets(
    std::span<const net::PacketRecord> packets) const {
  // Front-end: demux and find the cloud-gaming streaming flow.
  net::FlowTable table;
  const CloudGamingFlowDetector detector(params_.detector);
  std::optional<DetectionResult> detection;
  for (const net::PacketRecord& pkt : packets) {
    const net::FlowState& flow = table.add(pkt);
    if (!detection) detection = detector.detect(flow);
  }
  if (!detection) return std::nullopt;

  // Keep only the detected flow's packets, in time order. The sort is
  // stable so equal-timestamp packets replay in wire order, exactly as a
  // streaming consumer would see them.
  std::vector<net::PacketRecord> flow_packets;
  for (const net::PacketRecord& pkt : packets)
    if (pkt.tuple.canonical() == detection->flow) flow_packets.push_back(pkt);
  std::stable_sort(flow_packets.begin(), flow_packets.end(),
                   [](const net::PacketRecord& a, const net::PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });

  // Replay the flow through the shared session engine.
  SessionEngine engine(models_, &params_);
  engine.set_metrics(metrics_);
  engine.start(flow_packets.front().timestamp);
  engine.set_detection(*detection);
  if (trace_ != nullptr) {
    const std::uint64_t id =
        next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    StreamEvent event;
    event.type = StreamEventType::kFlowDetected;
    event.at_seconds = 0.0;
    event.detection = detection;
    append_trace(*trace_, id, event);
    TraceSessionSink sink{trace_, id};
    for (const net::PacketRecord& pkt : flow_packets)
      engine.on_packet(pkt, sink);
    SessionReport report = engine.finish(sink);
    append_retired(*trace_, id, report);
    return report;
  }
  NullSessionSink sink;
  for (const net::PacketRecord& pkt : flow_packets) engine.on_packet(pkt, sink);
  return engine.finish(sink);
}

namespace {

template <class Sink>
SessionReport drive_session(SessionEngine& engine,
                            const sim::LabeledSession& session, Sink& sink) {
  SlotTelemetry slot;
  for (const sim::SlotSample& sample : session.slots) {
    slot.volumetrics = RawSlotVolumetrics{sample.down_bytes,
                                          sample.down_packets, sample.up_bytes,
                                          sample.up_packets};
    slot.frames = sample.frames;
    slot.rtt_ms = sample.rtt_ms;
    slot.loss_rate = sample.loss_rate;
    engine.push_slot(slot, sink);
  }
  return engine.finish(sink);
}

}  // namespace

SessionReport RealtimePipeline::process_session(
    const sim::LabeledSession& session) const {
  SessionEngine engine(models_, &params_);
  engine.set_metrics(metrics_);
  engine.start(session.launch_begin);
  // Title verdict from the launch packet window, installed up front the
  // way the deployment's launch-window service feeds the slot pipeline.
  engine.set_title(
      models_.title->classify(session.packets, session.launch_begin));

  if (trace_ != nullptr) {
    const std::uint64_t id =
        next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    TraceSessionSink sink{trace_, id};
    SessionReport report = drive_session(engine, session, sink);
    append_retired(*trace_, id, report);
    return report;
  }
  NullSessionSink sink;
  return drive_session(engine, session, sink);
}

}  // namespace cgctx::core
