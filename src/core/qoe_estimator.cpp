#include "core/qoe_estimator.hpp"

#include <algorithm>

namespace cgctx::core {

QoeEstimator::QoeEstimator(double nominal_fps)
    : nominal_fps_(nominal_fps > 0.0 ? nominal_fps : 60.0) {}

void QoeEstimator::set_nominal_fps(double fps) {
  if (fps > 0.0) nominal_fps_ = fps;
}

void QoeEstimator::reset() {
  frames_ = 0;
  packets_ = 0;
  bytes_ = 0;
  received_ = 0;
  lag_ms_sum_ = 0.0;
  lag_samples_ = 0;
  last_seq_.reset();
  extended_seq_ = 0;
  highest_extended_ = 0;
  slot_base_extended_ = 0;
  last_frame_end_.reset();
}

void QoeEstimator::add(const net::PacketRecord& pkt) {
  if (pkt.direction != net::Direction::kDownstream) return;
  if (!pkt.rtp) return;

  ++packets_;
  bytes_ += pkt.payload_size;
  ++received_;
  // RFC 3550-style extended highest sequence number: robust to both
  // wraparound and reordering (a late packet has a negative signed delta
  // and does not advance the expected count, but still counts as
  // received).
  if (last_seq_) {
    const auto delta = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(pkt.rtp->sequence - *last_seq_));
    extended_seq_ += delta;
    highest_extended_ = std::max(highest_extended_, extended_seq_);
  } else {
    extended_seq_ = pkt.rtp->sequence;
    highest_extended_ = extended_seq_;
    slot_base_extended_ = extended_seq_ - 1;  // first packet expects one
  }
  last_seq_ = pkt.rtp->sequence;

  if (pkt.rtp->marker) {
    ++frames_;
    if (last_frame_end_) {
      const double gap_ms =
          net::duration_to_millis(pkt.timestamp - *last_frame_end_);
      const double nominal_ms = 1000.0 / nominal_fps_;
      lag_ms_sum_ += std::max(0.0, gap_ms - nominal_ms);
      ++lag_samples_;
    }
    last_frame_end_ = pkt.timestamp;
  }
}

EstimatedSlotQoe QoeEstimator::end_slot() {
  EstimatedSlotQoe out;
  out.frame_rate = static_cast<double>(frames_);
  out.video_packets = packets_;
  out.bytes_per_frame =
      frames_ > 0 ? static_cast<double>(bytes_) / static_cast<double>(frames_)
                  : 0.0;
  const std::int64_t expected = highest_extended_ - slot_base_extended_;
  out.loss_rate =
      expected > static_cast<std::int64_t>(received_) && expected > 0
          ? static_cast<double>(expected -
                                static_cast<std::int64_t>(received_)) /
                static_cast<double>(expected)
          : 0.0;
  out.frame_lag_ms =
      lag_samples_ > 0 ? lag_ms_sum_ / static_cast<double>(lag_samples_) : 0.0;

  frames_ = 0;
  packets_ = 0;
  bytes_ = 0;
  received_ = 0;
  slot_base_extended_ = highest_extended_;
  lag_ms_sum_ = 0.0;
  lag_samples_ = 0;
  return out;
}

std::vector<EstimatedSlotQoe> estimate_slot_qoe(
    std::span<const net::PacketRecord> packets, net::Timestamp begin,
    net::Duration slot_duration, std::size_t slot_count, double nominal_fps) {
  QoeEstimator estimator(nominal_fps);
  std::vector<EstimatedSlotQoe> out;
  out.reserve(slot_count);
  std::size_t current = 0;
  for (const net::PacketRecord& pkt : packets) {
    if (pkt.timestamp < begin) continue;
    const auto slot =
        static_cast<std::size_t>((pkt.timestamp - begin) / slot_duration);
    if (slot >= slot_count) break;  // packets are time-ordered
    while (current < slot) {
      out.push_back(estimator.end_slot());
      ++current;
    }
    estimator.add(pkt);
  }
  while (out.size() < slot_count) out.push_back(estimator.end_slot());
  return out;
}

}  // namespace cgctx::core
