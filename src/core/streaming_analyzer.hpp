// Incremental, event-driven session analysis.
//
// RealtimePipeline's batch entry points suit offline evaluation; an
// inline probe sees one packet at a time and wants to be told the moment
// something becomes known. StreamingAnalyzer owns the pre-detection
// front-end (flow table + detector + lookback buffer) and adapts one
// core::SessionEngine — the same state machine every entry point drives —
// to std::function callbacks, surfacing classification milestones as
// typed events:
//   kFlowDetected    — the cloud-gaming streaming flow was identified;
//   kTitleClassified — the five-second title verdict (or "unknown");
//   kStageChanged    — the player activity stage flipped;
//   kPatternInferred — the gameplay pattern cleared its confidence bar.
// Slot-level records stream out alongside, so a caller can feed the same
// observability backends the batch pipeline does.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "core/session_engine.hpp"
#include "core/trace_sink.hpp"
#include "net/flow_table.hpp"
#include "obs/trace.hpp"

namespace cgctx::core {

class StreamingAnalyzer {
 public:
  using EventCallback = SessionEventCallback;
  using SlotCallback = SlotRecordCallback;

  /// Models must outlive the analyzer. Callbacks may be empty.
  StreamingAnalyzer(PipelineModels models, PipelineParams params,
                    EventCallback on_event, SlotCallback on_slot = {});

  /// Non-copyable/movable: the engine references the analyzer-owned
  /// params.
  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// Feeds one packet in arrival order. Packets of undetected flows feed
  /// the detector; once the gaming flow is identified, only its packets
  /// are analyzed.
  void push(const net::PacketRecord& pkt);

  /// Flushes the partially filled final slot and returns the session
  /// report accumulated so far. The analyzer is reusable afterward
  /// (state resets for the next session).
  SessionReport finish();

  [[nodiscard]] bool flow_detected() const { return detection_.has_value(); }
  [[nodiscard]] bool title_classified() const {
    return engine_.title_classified();
  }

  /// Optional pipeline instrumentation (classification-health counters,
  /// stage timers). Must outlive the analyzer.
  void set_metrics(const PipelineMetrics* metrics) {
    engine_.set_metrics(metrics);
  }

  /// Optional decision trace. Successive sessions the analyzer processes
  /// are numbered 1, 2, ... (advanced by finish()). The ring must outlive
  /// the analyzer.
  void set_trace(obs::DecisionTraceRing* ring) { trace_ = ring; }

 private:
  /// Forwards engine milestones and slot records to the analyzer's
  /// std::function callbacks and, when installed, the decision trace
  /// (emptiness checked at dispatch; this adapter path is not the probe
  /// hot path). QoE-change events are trace-only: the std::function
  /// callbacks predate the event type and never see it.
  struct CallbackSink {
    static constexpr bool kWantsEvents = true;
    static constexpr bool kWantsSlots = true;
    static constexpr bool kWantsQoe = true;
    StreamingAnalyzer* self;
    void on_stream_event(const StreamEvent& event) {
      if (self->trace_ != nullptr)
        append_trace(*self->trace_, self->trace_session_id_, event);
      if (event.type == StreamEventType::kQoeChanged) return;
      if (self->on_event_) self->on_event_(event);
    }
    void on_slot_record(const SlotRecord& record) {
      if (self->on_slot_) self->on_slot_(record);
    }
  };

  PipelineParams params_;
  EventCallback on_event_;
  SlotCallback on_slot_;

  net::FlowTable table_;
  CloudGamingFlowDetector detector_;
  std::optional<DetectionResult> detection_;
  net::Timestamp flow_begin_ = 0;
  /// Rolling pre-detection buffer (last ~10 s of all traffic) so the
  /// detected flow's earliest packets still reach the title window.
  std::deque<net::PacketRecord> pre_buffer_;

  obs::DecisionTraceRing* trace_ = nullptr;
  std::uint64_t trace_session_id_ = 1;

  /// The shared per-session state machine (declared after params_, which
  /// it references).
  SessionEngine engine_;
};

}  // namespace cgctx::core
