// Incremental, event-driven session analysis.
//
// RealtimePipeline's batch entry points suit offline evaluation; an
// inline probe sees one packet at a time and wants to be told the moment
// something becomes known. StreamingAnalyzer wraps the same models and
// front-end behind a push(packet) interface and surfaces classification
// milestones as typed events:
//   kFlowDetected    — the cloud-gaming streaming flow was identified;
//   kTitleClassified — the five-second title verdict (or "unknown");
//   kStageChanged    — the player activity stage flipped;
//   kPatternInferred — the gameplay pattern cleared its confidence bar.
// Slot-level records stream out alongside, so a caller can feed the same
// observability backends the batch pipeline does.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "core/pipeline.hpp"
#include "core/qoe_estimator.hpp"
#include "net/flow_table.hpp"

namespace cgctx::core {

enum class StreamEventType : std::uint8_t {
  kFlowDetected,
  kTitleClassified,
  kStageChanged,
  kPatternInferred,
};

const char* to_string(StreamEventType type);

struct StreamEvent {
  StreamEventType type = StreamEventType::kFlowDetected;
  /// Seconds since the detected flow began.
  double at_seconds = 0.0;
  /// kFlowDetected: the detection result.
  std::optional<DetectionResult> detection;
  /// kTitleClassified: the verdict.
  std::optional<TitleResult> title;
  /// kStageChanged: the new stage label.
  std::optional<ml::Label> stage;
  /// kPatternInferred: the inference.
  std::optional<PatternResult> pattern;
};

class StreamingAnalyzer {
 public:
  using EventCallback = std::function<void(const StreamEvent&)>;
  using SlotCallback = std::function<void(const SlotRecord&)>;

  /// Models must outlive the analyzer. Callbacks may be empty.
  StreamingAnalyzer(PipelineModels models, PipelineParams params,
                    EventCallback on_event, SlotCallback on_slot = {});

  /// Feeds one packet in arrival order. Packets of undetected flows feed
  /// the detector; once the gaming flow is identified, only its packets
  /// are analyzed.
  void push(const net::PacketRecord& pkt);

  /// Flushes the partially filled final slot and returns the session
  /// report accumulated so far. The analyzer is reusable afterward
  /// (state resets for the next session).
  SessionReport finish();

  [[nodiscard]] bool flow_detected() const { return detection_.has_value(); }
  [[nodiscard]] bool title_classified() const { return title_done_; }

 private:
  void analyze_packet(const net::PacketRecord& pkt);
  void close_slot();
  void emit(StreamEvent event);

  PipelineModels models_;
  PipelineParams params_;
  EventCallback on_event_;
  SlotCallback on_slot_;

  net::FlowTable table_;
  CloudGamingFlowDetector detector_;
  std::optional<DetectionResult> detection_;
  net::Timestamp flow_begin_ = 0;
  /// Rolling pre-detection buffer (last ~10 s of all traffic) so the
  /// detected flow's earliest packets still reach the title window.
  std::deque<net::PacketRecord> pre_buffer_;

  // Title classification buffer (only the first N seconds are kept).
  std::vector<net::PacketRecord> title_window_;
  bool title_done_ = false;
  TitleResult title_;

  /// One probability scratch buffer reused by every stage classification
  /// and pattern inference this analyzer performs (sized once for the
  /// widest model; the compiled-forest path allocates nothing per slot).
  std::vector<double> scratch_;
  [[nodiscard]] std::span<double> scratch(std::size_t n);

  // Slot machinery.
  std::size_t next_slot_ = 0;
  RawSlotVolumetrics current_slot_;
  QoeEstimator qoe_{60.0};
  VolumetricTracker tracker_;
  TransitionTracker transitions_;
  ml::Label last_stage_ = -1;
  std::optional<PatternResult> pattern_;
  double pattern_decided_at_s_ = -1.0;

  // Accumulated report state.
  SessionReport report_;
  std::vector<QoeLevel> objective_levels_;
  std::vector<QoeLevel> effective_levels_;
  double peak_mbps_ = 5.0;
  double peak_fps_ = 30.0;
  double total_mbps_ = 0.0;
};

}  // namespace cgctx::core
