// TraceSessionSink: a compile-time SessionEngine sink that records every
// classification milestone — including QoE level changes, which only
// trace-aware sinks opt into — as fixed-size obs::TraceEvent records in
// a decision-trace ring. Appending neither locks nor allocates, so a
// traced hot path keeps the engine's 0-allocs/op steady-state contract.
#pragma once

#include <cstdint>

#include "core/session_engine.hpp"
#include "obs/trace.hpp"

namespace cgctx::core {

/// Translates one engine StreamEvent into a TraceEvent for `session_id`
/// and appends it to `ring`. Allocation-free.
void append_trace(obs::DecisionTraceRing& ring, std::uint64_t session_id,
                  const StreamEvent& event);

/// Appends the terminal session-retired event (the engine never emits
/// it; the driver that retires the session does).
void append_retired(obs::DecisionTraceRing& ring, std::uint64_t session_id,
                    const SessionReport& report);

struct TraceSessionSink {
  static constexpr bool kWantsEvents = true;
  static constexpr bool kWantsSlots = false;
  static constexpr bool kWantsQoe = true;

  obs::DecisionTraceRing* ring = nullptr;
  std::uint64_t session_id = 0;

  void on_stream_event(const StreamEvent& event) {
    append_trace(*ring, session_id, event);
  }
  void on_slot_record(const SlotRecord&) {}
};

}  // namespace cgctx::core
