// Statistical attributes of the launch-stage packet groups (paper §4.2.2).
//
// For the first N seconds of a streaming flow, sliced into T-second time
// slots and group-labeled (packet_groups.hpp), we compute 51 attributes:
// 17 statistics per packet group x 3 groups, covering the three metric
// families the paper names (packet count, payload size, inter-arrival
// time). The paper does not enumerate its 51 attributes; our concrete
// instantiation per group is
//   count over slots:   ct_sum, ct_mean, ct_std, ct_max, ct_min      (5)
//   payload size:       sz_mean, sz_std, sz_min, sz_max, sz_median,
//                       sz_sum                                        (6)
//   inter-arrival time: iat_mean, iat_std, iat_min, iat_max,
//                       iat_median, iat_burstiness (= std/mean)       (6)
// which matches the paper's count (3 x 17 = 51) and its Fig. 7 examples
// (e.g. full_ct_sum). Groups absent from the window contribute zeros.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/packet_groups.hpp"
#include "ml/dataset.hpp"

namespace cgctx::core {

inline constexpr std::size_t kStatsPerGroup = 17;
inline constexpr std::size_t kNumLaunchAttributes =
    kStatsPerGroup * kNumPacketGroups;  // 51

struct LaunchAttributeParams {
  /// Observation window N, seconds (paper: 5).
  double window_seconds = 5.0;
  /// Time slot T, seconds (paper: 1).
  double slot_seconds = 1.0;
  GroupLabelerParams group_params{};
};

/// Names of the 51 attributes, e.g. "full_ct_sum", "steady_iat_median",
/// in feature-vector order.
std::vector<std::string> launch_attribute_names();

/// Computes the 51-attribute vector from a session's packets. The window
/// starts at `flow_begin` (the first packet of the detected streaming
/// flow). Inter-arrival statistics are in milliseconds.
ml::FeatureRow launch_attributes(std::span<const net::PacketRecord> packets,
                                 net::Timestamp flow_begin,
                                 const LaunchAttributeParams& params = {});

/// The Table 3 baseline: standard flow volumetric attributes — downstream
/// packet count and byte count per time slot over the same window
/// (2 x slot_count features).
ml::FeatureRow flow_volumetric_attributes(
    std::span<const net::PacketRecord> packets, net::Timestamp flow_begin,
    const LaunchAttributeParams& params = {});

std::vector<std::string> flow_volumetric_attribute_names(
    const LaunchAttributeParams& params = {});

}  // namespace cgctx::core
