#include "core/sharded_probe.hpp"

#include <chrono>
#include <condition_variable>
#include <stdexcept>
#include <thread>
#include <utility>

namespace cgctx::core {

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kDropNewest: return "drop-newest";
    case OverflowPolicy::kBackpressure: return "backpressure";
  }
  return "?";
}

/// One worker: a bounded SPSC queue (capture thread -> worker) plus a
/// private MultiSessionProbe. The worker drains the queue in batches
/// (one lock round-trip per batch, not per packet) so the queue mutex
/// stays cold even at line rate.
struct ShardedProbe::Shard {
  std::mutex mu;
  std::condition_variable data_ready;
  std::condition_variable space_ready;
  std::vector<net::PacketRecord> queue;  // bounded by params.queue_capacity
  bool closed = false;

  ProbeStats stats;
  /// Decision trace, single-writer (this shard's worker thread).
  std::unique_ptr<obs::DecisionTraceRing> trace;
  MultiSessionProbe probe;
  std::uint32_t latency_tick = 0;
  std::thread worker;

  Shard(obs::MetricsRegistry& registry, const PipelineMetrics* metrics,
        std::size_t index, std::size_t num_shards, std::size_t trace_capacity,
        PipelineModels models, const MultiSessionProbeParams& params,
        MultiSessionProbe::ReportCallback on_report,
        SessionEventCallback on_event)
      : stats(registry, {{"shard", std::to_string(index)}}),
        probe(models, params, std::move(on_report), std::move(on_event)) {
    probe.set_stats(&stats);
    probe.set_metrics(metrics);
    if (trace_capacity > 0) {
      trace = std::make_unique<obs::DecisionTraceRing>(trace_capacity);
      // Session ids interleave across shards (shard i takes i+1, i+1+N,
      // ...) so a merged trace stays globally unique without a lock.
      probe.set_trace(trace.get(), index + 1, num_shards);
    }
  }
};

ShardedProbe::ShardedProbe(PipelineModels models, ShardedProbeParams params,
                           ReportCallback on_report,
                           SessionEventCallback on_event)
    : params_(std::move(params)), on_report_(std::move(on_report)) {
  if (params_.num_shards == 0)
    throw std::invalid_argument("ShardedProbe: num_shards must be >= 1");
  if (params_.queue_capacity == 0)
    throw std::invalid_argument("ShardedProbe: queue_capacity must be >= 1");
  pipeline_metrics_ = PipelineMetrics::create(registry_);

  // Per-shard report sink: serialize across workers, then forward.
  const auto sink = [this](const SessionReport& report) {
    const std::lock_guard<std::mutex> lock(sink_mu_);
    ++reports_;
    if (on_report_) on_report_(report);
  };
  // Events are serialized through the same mutex so downstream consumers
  // never see interleaved callbacks from two shards.
  SessionEventCallback event_sink;
  if (on_event) {
    event_sink = [this, on_event = std::move(on_event)](
                     const StreamEvent& event) {
      const std::lock_guard<std::mutex> lock(sink_mu_);
      on_event(event);
    };
  }

  shards_.reserve(params_.num_shards);
  for (std::size_t i = 0; i < params_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        registry_, &pipeline_metrics_, i, params_.num_shards,
        params_.trace_capacity, models, params_.probe, sink, event_sink));
    shards_.back()->queue.reserve(params_.queue_capacity);
  }
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    s.worker = std::thread([this, &s] {
      std::vector<net::PacketRecord> batch;
      batch.reserve(params_.queue_capacity);
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(s.mu);
          s.data_ready.wait(lock,
                            [&s] { return s.closed || !s.queue.empty(); });
          if (s.queue.empty()) break;  // closed and drained
          batch.clear();
          batch.swap(s.queue);
        }
        s.space_ready.notify_one();
        const bool sample_latency = params_.latency_sample_stride > 0;
        for (const net::PacketRecord& pkt : batch) {
          if (sample_latency &&
              ++s.latency_tick >= params_.latency_sample_stride) {
            s.latency_tick = 0;
            const auto begin = std::chrono::steady_clock::now();
            s.probe.push(pkt);
            const auto end = std::chrono::steady_clock::now();
            s.stats.record_latency_ns(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - begin)
                    .count()));
          } else {
            s.probe.push(pkt);
          }
          s.stats.count_processed();
        }
      }
      s.probe.flush();
    });
  }
}

ShardedProbe::~ShardedProbe() { flush(); }

std::size_t ShardedProbe::shard_of(const net::FiveTuple& canonical) const {
  return net::flow_hash(canonical) % shards_.size();
}

bool ShardedProbe::push(const net::PacketRecord& pkt) {
  Shard& s = *shards_[shard_of(pkt.tuple.canonical())];
  {
    std::unique_lock<std::mutex> lock(s.mu);
    if (s.closed) {
      s.stats.count_drop();
      return false;
    }
    if (s.queue.size() >= params_.queue_capacity) {
      bool has_space = false;
      if (params_.overflow == OverflowPolicy::kBackpressure) {
        has_space = s.space_ready.wait_for(
            lock, params_.backpressure_timeout, [this, &s] {
              return s.closed || s.queue.size() < params_.queue_capacity;
            });
        has_space = has_space && !s.closed;
      }
      if (!has_space) {
        s.stats.count_drop();
        return false;
      }
    }
    s.queue.push_back(pkt);
    s.stats.count_packet_in();
    s.stats.observe_queue_depth(s.queue.size());
  }
  s.data_ready.notify_one();
  return true;
}

void ShardedProbe::flush() {
  if (flushed_) return;
  flushed_ = true;
  for (const auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> lock(shard->mu);
      shard->closed = true;
    }
    shard->data_ready.notify_one();
    shard->space_ready.notify_one();
  }
  for (const auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

ProbeStatsSnapshot ShardedProbe::stats() const {
  std::vector<ProbeStatsSnapshot> snaps;
  snaps.reserve(shards_.size());
  for (const auto& shard : shards_) snaps.push_back(shard->stats.snapshot());
  return ProbeStats::aggregate(snaps);
}

std::vector<obs::TraceEvent> ShardedProbe::drain_trace() {
  flush();
  std::vector<obs::TraceEvent> events;
  for (const auto& shard : shards_)
    if (shard->trace != nullptr) shard->trace->append_to(events);
  return events;
}

std::size_t ShardedProbe::reports_emitted() const {
  const std::lock_guard<std::mutex> lock(sink_mu_);
  return reports_;
}

}  // namespace cgctx::core
