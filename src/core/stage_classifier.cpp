#include "core/stage_classifier.hpp"

#include <stdexcept>

namespace cgctx::core {

std::vector<std::string> stage_class_names() {
  return {"active", "passive", "idle"};
}

void StageClassifier::train(const ml::Dataset& data) {
  if (data.num_features() != kNumVolumetricAttributes)
    throw std::invalid_argument(
        "StageClassifier::train: expected 4 volumetric attributes");
  forest_ = ml::RandomForest(params_.forest);
  forest_.fit(data);
  compiled_ = ml::CompiledForest(forest_);
}

ml::Label StageClassifier::classify(const ml::FeatureRow& attributes) const {
  return compiled_.predict(attributes);
}

ml::Classifier::Prediction StageClassifier::classify_with_confidence(
    const ml::FeatureRow& attributes) const {
  return compiled_.predict_with_confidence(attributes);
}

ml::Label StageClassifier::classify(const ml::FeatureRow& attributes,
                                    std::span<double> scratch) const {
  return compiled_.predict(attributes, scratch);
}

ml::Label StageClassifier::classify(std::span<const double> attributes,
                                    std::span<double> scratch) const {
  return compiled_.predict(attributes, scratch);
}

ml::Classifier::Prediction StageClassifier::classify_with_confidence(
    const ml::FeatureRow& attributes, std::span<double> scratch) const {
  return compiled_.predict_with_confidence(attributes, scratch);
}

std::string StageClassifier::serialize() const {
  return "stage_classifier\n" + forest_.serialize();
}

StageClassifier StageClassifier::deserialize(const std::string& text) {
  const auto newline = text.find('\n');
  if (newline == std::string::npos ||
      text.substr(0, newline) != "stage_classifier")
    throw std::invalid_argument("StageClassifier: bad header");
  StageClassifier out;
  out.forest_ = ml::RandomForest::deserialize(text.substr(newline + 1));
  if (out.forest_.tree_count() > 0)
    out.compiled_ = ml::CompiledForest(out.forest_);
  return out;
}

}  // namespace cgctx::core
