// Fixed-size worker pool with a deterministic-by-construction parallel
// loop, used by the training stack (forest fitting, grid search, dataset
// rendering).
//
// Design rules that make "parallel == serial, bitwise" provable:
//   * parallel_for / parallel_chunks only ever hand a worker a disjoint
//     index range; every call site writes results into pre-sized
//     per-index slots and performs any floating-point *reduction*
//     serially afterwards, in fixed index order. The pool itself never
//     reorders arithmetic.
//   * All randomness is pre-drawn serially by the caller before the
//     parallel region (see RandomForest::fit).
//
// Header-only on purpose: cgctx_ml sits *below* cgctx_core in the link
// order (core links ml), yet the forest trainer needs the pool. An
// inline header keeps the dependency include-only with no link cycle.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgctx::core {

/// A fixed set of worker threads plus the calling thread, cooperating on
/// one chunked index range at a time.
///
/// * `size()` is the total parallelism: helper threads + the caller,
///   which always participates in the loop. `ThreadPool(1)` owns no
///   threads at all and runs every loop inline — the serial baseline is
///   the same code path, not a separate implementation.
/// * The worker count is fixed at construction; the process-wide
///   training pool (`ThreadPool::training()`) is sized from
///   `CGCTX_TRAIN_THREADS` when set (>= 1), else
///   `std::thread::hardware_concurrency()`.
/// * Exceptions thrown by the loop body are caught, the range is
///   cancelled best-effort, and the *first* exception is rethrown on the
///   calling thread once every worker has left the loop.
/// * Nested use is legal and documented: a parallel_for issued from
///   inside one of this pool's own workers (e.g. a forest fit inside a
///   grid-search task) runs the whole range inline on that worker.
///   Nothing deadlocks, and determinism is unaffected because call sites
///   never depend on which thread runs which index.
/// * One loop at a time per pool: concurrent parallel_for calls from
///   *different external* threads serialize on an internal mutex.
class ThreadPool {
 public:
  /// `threads` is the total parallelism (helpers + caller); 0 means
  /// default_threads().
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) threads = default_threads();
    helpers_.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t)
      helpers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& helper : helpers_) helper.join();
  }

  /// Total parallelism of this pool (helper threads + calling thread).
  [[nodiscard]] std::size_t size() const { return helpers_.size() + 1; }

  /// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into
  /// chunks of at most `grain` indices. Chunks are claimed dynamically
  /// (load-balanced); a chunk's indices are always contiguous and
  /// processed by exactly one thread. Blocks until the whole range is
  /// done; rethrows the first body exception. A range of at most one
  /// chunk — and any nested call — runs inline on the caller.
  template <typename Fn>
  void parallel_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                       Fn&& fn) {
    if (begin >= end) return;
    grain = std::max<std::size_t>(1, grain);
    if (helpers_.empty() || end - begin <= grain || active_pool_ == this) {
      fn(begin, end);
      return;
    }
    const std::lock_guard<std::mutex> run_lock(run_mutex_);

    Task task;
    task.end = end;
    task.grain = grain;
    task.next.store(begin, std::memory_order_relaxed);
    auto run = [&fn](std::size_t chunk_begin, std::size_t chunk_end) {
      fn(chunk_begin, chunk_end);
    };
    task.run = run;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task.pending = helpers_.size();
      task_ = &task;
      ++generation_;
    }
    work_cv_.notify_all();

    active_pool_ = this;
    drain(task);
    active_pool_ = nullptr;

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&task] { return task.pending == 0; });
      task_ = nullptr;
    }
    if (task.error) std::rethrow_exception(task.error);
  }

  /// Runs `fn(i)` for every i in [begin, end), chunked automatically
  /// (~8 chunks per thread so dynamic claiming load-balances uneven
  /// work). Same blocking / exception / nesting semantics as
  /// parallel_chunks.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    const std::size_t grain =
        std::max<std::size_t>(1, (end - begin) / (size() * 8));
    parallel_chunks(begin, end, grain,
                    [&fn](std::size_t chunk_begin, std::size_t chunk_end) {
                      for (std::size_t i = chunk_begin; i < chunk_end; ++i)
                        fn(i);
                    });
  }

  /// True when the current thread is executing inside a parallel region
  /// of this pool (used by the inline-nesting rule; exposed for tests).
  [[nodiscard]] bool in_parallel_region() const {
    return active_pool_ == this;
  }

  /// Worker count the training pool uses: CGCTX_TRAIN_THREADS when set
  /// to a positive integer, else hardware_concurrency (at least 1).
  static std::size_t default_threads() {
    if (const char* env = std::getenv("CGCTX_TRAIN_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1)
        return std::min<std::size_t>(static_cast<std::size_t>(parsed), 1024);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// The process-wide pool every training path uses by default. Created
  /// on first use with default_threads() workers; lives for the process.
  static ThreadPool& training() {
    static ThreadPool pool;
    return pool;
  }

 private:
  /// One parallel_chunks invocation. Stack-allocated by the caller; the
  /// caller does not return until every helper is done with it.
  struct Task {
    std::size_t end = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> next{0};
    std::function<void(std::size_t, std::size_t)> run;
    std::size_t pending = 0;  // helpers still inside; guarded by mutex_
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [this, seen] {
        return stop_ || (task_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      Task& task = *task_;
      lock.unlock();
      active_pool_ = this;
      drain(task);
      active_pool_ = nullptr;
      lock.lock();
      if (--task.pending == 0) done_cv_.notify_all();
    }
  }

  /// Claims and runs chunks until the range is exhausted. On a body
  /// exception, records the first one and cancels remaining chunks.
  static void drain(Task& task) {
    for (;;) {
      const std::size_t chunk_begin =
          task.next.fetch_add(task.grain, std::memory_order_relaxed);
      if (chunk_begin >= task.end) return;
      const std::size_t chunk_end =
          std::min(chunk_begin + task.grain, task.end);
      try {
        task.run(chunk_begin, chunk_end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(task.error_mutex);
        if (!task.error) task.error = std::current_exception();
        task.next.store(task.end, std::memory_order_relaxed);
      }
    }
  }

  inline static thread_local const ThreadPool* active_pool_ = nullptr;

  std::mutex run_mutex_;  // serializes external parallel_chunks callers
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task* task_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> helpers_;
};

}  // namespace cgctx::core
