#include "core/launch_attributes.hpp"

#include <algorithm>
#include <cmath>

namespace cgctx::core {

namespace {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double sum = 0.0;
};

/// Five-number-ish summary of a value list; zeros when empty.
Summary summarize(std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = n % 2 == 1 ? values[n / 2]
                        : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  for (double v : values) s.sum += v;
  s.mean = s.sum / static_cast<double>(n);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(n));
  return s;
}

std::size_t slot_count_for(const LaunchAttributeParams& params) {
  return static_cast<std::size_t>(
      std::ceil(params.window_seconds / params.slot_seconds - 1e-9));
}

}  // namespace

std::vector<std::string> launch_attribute_names() {
  static const char* kGroups[] = {"full", "steady", "sparse"};
  static const char* kStats[] = {
      "ct_sum",     "ct_mean",   "ct_std",  "ct_max",    "ct_min",
      "sz_mean",    "sz_std",    "sz_min",  "sz_max",    "sz_median",
      "sz_sum",     "iat_mean",  "iat_std", "iat_min",   "iat_max",
      "iat_median", "iat_burst"};
  std::vector<std::string> names;
  names.reserve(kNumLaunchAttributes);
  for (const char* group : kGroups)
    for (const char* stat : kStats)
      names.push_back(std::string(group) + "_" + stat);
  return names;
}

ml::FeatureRow launch_attributes(std::span<const net::PacketRecord> packets,
                                 net::Timestamp flow_begin,
                                 const LaunchAttributeParams& params) {
  const std::size_t slots = slot_count_for(params);
  const auto labeled = label_window(
      packets, flow_begin, net::duration_from_seconds(params.slot_seconds),
      slots, params.group_params);

  ml::FeatureRow features;
  features.reserve(kNumLaunchAttributes);

  for (std::size_t g = 0; g < kNumPacketGroups; ++g) {
    const auto group = static_cast<PacketGroup>(g);

    // Per-slot counts, plus flattened sizes and inter-arrival times for
    // this group across the window.
    std::vector<double> counts(slots, 0.0);
    std::vector<double> sizes;
    std::vector<double> iats;
    net::Timestamp previous = 0;
    bool has_previous = false;
    for (std::size_t s = 0; s < slots; ++s) {
      for (const LabeledPacket& pkt : labeled[s]) {
        if (pkt.group != group) continue;
        counts[s] += 1.0;
        sizes.push_back(static_cast<double>(pkt.payload_size));
        if (has_previous)
          iats.push_back(net::duration_to_millis(pkt.timestamp - previous));
        previous = pkt.timestamp;
        has_previous = true;
      }
    }

    const Summary ct = summarize(counts);
    features.push_back(ct.sum);
    features.push_back(ct.mean);
    features.push_back(ct.stddev);
    features.push_back(ct.max);
    features.push_back(ct.min);

    Summary sz = summarize(sizes);
    features.push_back(sz.mean);
    features.push_back(sz.stddev);
    features.push_back(sz.min);
    features.push_back(sz.max);
    features.push_back(sz.median);
    features.push_back(sz.sum);

    Summary iat = summarize(iats);
    features.push_back(iat.mean);
    features.push_back(iat.stddev);
    features.push_back(iat.min);
    features.push_back(iat.max);
    features.push_back(iat.median);
    features.push_back(iat.mean > 0.0 ? iat.stddev / iat.mean : 0.0);
  }
  return features;
}

ml::FeatureRow flow_volumetric_attributes(
    std::span<const net::PacketRecord> packets, net::Timestamp flow_begin,
    const LaunchAttributeParams& params) {
  const std::size_t slots = slot_count_for(params);
  const auto slot_duration = net::duration_from_seconds(params.slot_seconds);
  ml::FeatureRow features(2 * slots, 0.0);
  for (const net::PacketRecord& pkt : packets) {
    if (pkt.direction != net::Direction::kDownstream) continue;
    if (pkt.timestamp < flow_begin) continue;
    const auto slot =
        static_cast<std::size_t>((pkt.timestamp - flow_begin) / slot_duration);
    if (slot >= slots) continue;
    features[2 * slot] += 1.0;  // packet rate
    features[2 * slot + 1] += static_cast<double>(pkt.payload_size);
  }
  return features;
}

std::vector<std::string> flow_volumetric_attribute_names(
    const LaunchAttributeParams& params) {
  std::vector<std::string> names;
  for (std::size_t s = 0; s < slot_count_for(params); ++s) {
    names.push_back("pkt_rate[" + std::to_string(s) + "]");
    names.push_back("throughput[" + std::to_string(s) + "]");
  }
  return names;
}

}  // namespace cgctx::core
