// Probe observability: counters, gauges, and latency percentiles.
//
// A vantage-point probe is only operable if its health is visible while
// it runs: is the capture thread keeping up (drops, queue high-water
// marks), is state bounded (live flows, evictions), and what does the
// per-packet processing latency distribution look like. ProbeStats is
// the per-shard sink for those signals.
//
// Since the unified telemetry plane (obs::MetricsRegistry), ProbeStats
// is a thin facade: every counter it exposes is a registry instrument,
// so the same numbers that feed its snapshot()/aggregate() API also
// appear in the registry's Prometheus/JSON exports, labeled per shard.
// The mutators remain single relaxed atomics — the packet path never
// takes a lock. Construction binds the facade to a caller-supplied
// registry (ShardedProbe labels each shard); the default constructor
// keeps the old standalone behavior by owning a private registry.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace cgctx::core {

// The histogram/summary types predate the obs library and moved there so
// every registry histogram shares them; these aliases keep the original
// core spellings working.
using LatencyHistogram = obs::LatencyHistogram;
using LatencySummary = obs::LatencySummary;
using obs::summarize_latency;

/// Point-in-time view of one probe's (or one shard's) counters. Also the
/// aggregation unit: ProbeStats::aggregate sums counters, maxes the
/// high-water marks, and merges latency histograms across shards.
struct ProbeStatsSnapshot {
  std::uint64_t packets_in = 0;        ///< accepted into a shard queue
  std::uint64_t packets_dropped = 0;   ///< rejected by the overflow policy
  std::uint64_t packets_processed = 0; ///< fully pushed through a probe
  std::uint64_t flow_evictions = 0;    ///< idle flows dropped from tables
  std::uint64_t sessions_started = 0;  ///< flows promoted to sessions
  std::uint64_t reports_emitted = 0;   ///< sessions retired with a report
  std::uint64_t live_flows = 0;        ///< gauge: current flow-table size
  std::uint64_t live_sessions = 0;     ///< gauge: current session count
  std::uint64_t queue_depth_hwm = 0;   ///< high-water mark (max on merge)
  std::uint64_t latency_max_ns = 0;
  std::vector<std::uint64_t> latency_buckets;  ///< LatencyHistogram counts

  [[nodiscard]] LatencySummary latency() const;
  /// Multi-line human-readable block (benches, operator logging).
  [[nodiscard]] std::string to_string() const;
};

class ProbeStats {
 public:
  /// Standalone facade backed by a private registry (exported nowhere;
  /// snapshot()/aggregate() are the only consumers).
  ProbeStats();
  /// Facade over `registry`: instruments are registered under
  /// `cgctx_probe_*` with the given labels (e.g. {{"shard","3"}}), so a
  /// registry export carries per-shard probe health. The registry must
  /// outlive the facade.
  ProbeStats(obs::MetricsRegistry& registry, obs::MetricLabels labels);

  ProbeStats(const ProbeStats&) = delete;
  ProbeStats& operator=(const ProbeStats&) = delete;

  void count_packet_in() { packets_in_->add(); }
  void count_drop() { packets_dropped_->add(); }
  void count_processed() { packets_processed_->add(); }
  void add_evictions(std::uint64_t n) { flow_evictions_->add(n); }
  void count_session_started() { sessions_started_->add(); }
  void count_report() { reports_emitted_->add(); }

  void set_live_flows(std::uint64_t n) {
    live_flows_->set(static_cast<std::int64_t>(n));
  }
  void set_live_sessions(std::uint64_t n) {
    live_sessions_->set(static_cast<std::int64_t>(n));
  }
  /// Raises the queue high-water mark to `depth` if it exceeds it.
  void observe_queue_depth(std::uint64_t depth) {
    queue_depth_hwm_->record_max(static_cast<std::int64_t>(depth));
  }

  void record_latency_ns(std::uint64_t nanos) { latency_->record(nanos); }

  [[nodiscard]] ProbeStatsSnapshot snapshot() const;

  /// Element-wise merge: sums counters, maxes high-water marks, adds
  /// latency histograms. Snapshots with empty bucket vectors are fine.
  static ProbeStatsSnapshot aggregate(
      std::span<const ProbeStatsSnapshot> shards);

 private:
  void bind(obs::MetricsRegistry& registry, obs::MetricLabels labels);

  /// Set only by the default constructor (standalone mode).
  std::unique_ptr<obs::MetricsRegistry> owned_;
  obs::Counter* packets_in_ = nullptr;
  obs::Counter* packets_dropped_ = nullptr;
  obs::Counter* packets_processed_ = nullptr;
  obs::Counter* flow_evictions_ = nullptr;
  obs::Counter* sessions_started_ = nullptr;
  obs::Counter* reports_emitted_ = nullptr;
  obs::Gauge* live_flows_ = nullptr;
  obs::Gauge* live_sessions_ = nullptr;
  obs::Gauge* queue_depth_hwm_ = nullptr;
  obs::Histogram* latency_ = nullptr;
};

}  // namespace cgctx::core
