// Probe observability: counters, gauges, and latency percentiles.
//
// A vantage-point probe is only operable if its health is visible while
// it runs: is the capture thread keeping up (drops, queue high-water
// marks), is state bounded (live flows, evictions), and what does the
// per-packet processing latency distribution look like. ProbeStats is
// the per-shard sink for those signals — every mutator is a relaxed
// atomic so the packet path never takes a lock, and snapshot() is safe
// to call from any thread (monitoring, benches, tests) while workers
// keep counting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cgctx::core {

/// Log-linear histogram of nanosecond durations (HdrHistogram-style):
/// each power-of-two range is split into 16 linear sub-buckets, giving
/// ~6% relative resolution over [0, ~4.4 s] with a fixed 576-counter
/// footprint and lock-free recording.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 4;  ///< sub-buckets per octave: 16
  static constexpr unsigned kOctaves = 32;  ///< covers up to 2^32 ns
  static constexpr std::size_t kNumBuckets = (kOctaves + 1) << kSubBits;

  void record(std::uint64_t nanos);

  /// Bucket index for a value (exposed for the bucket math tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t nanos);
  /// Lower bound of a bucket's value range, the inverse of bucket_index.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t index);

  /// Relaxed-read copy of all counters.
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Percentile summary computed from histogram buckets.
struct LatencySummary {
  std::uint64_t samples = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Summarizes histogram bucket counts (as returned by
/// LatencyHistogram::snapshot, or several of them summed element-wise).
/// `max_ns` is the exact observed maximum, carried separately because
/// buckets only bound it from below.
LatencySummary summarize_latency(std::span<const std::uint64_t> buckets,
                                 std::uint64_t max_ns);

/// Point-in-time view of one probe's (or one shard's) counters. Also the
/// aggregation unit: ProbeStats::aggregate sums counters, maxes the
/// high-water marks, and merges latency histograms across shards.
struct ProbeStatsSnapshot {
  std::uint64_t packets_in = 0;        ///< accepted into a shard queue
  std::uint64_t packets_dropped = 0;   ///< rejected by the overflow policy
  std::uint64_t packets_processed = 0; ///< fully pushed through a probe
  std::uint64_t flow_evictions = 0;    ///< idle flows dropped from tables
  std::uint64_t sessions_started = 0;  ///< flows promoted to sessions
  std::uint64_t reports_emitted = 0;   ///< sessions retired with a report
  std::uint64_t live_flows = 0;        ///< gauge: current flow-table size
  std::uint64_t live_sessions = 0;     ///< gauge: current session count
  std::uint64_t queue_depth_hwm = 0;   ///< high-water mark (max on merge)
  std::uint64_t latency_max_ns = 0;
  std::vector<std::uint64_t> latency_buckets;  ///< LatencyHistogram counts

  [[nodiscard]] LatencySummary latency() const;
  /// Multi-line human-readable block (benches, operator logging).
  [[nodiscard]] std::string to_string() const;
};

class ProbeStats {
 public:
  void count_packet_in() { add(packets_in_); }
  void count_drop() { add(packets_dropped_); }
  void count_processed() { add(packets_processed_); }
  void add_evictions(std::uint64_t n) { add(flow_evictions_, n); }
  void count_session_started() { add(sessions_started_); }
  void count_report() { add(reports_emitted_); }

  void set_live_flows(std::uint64_t n) {
    live_flows_.store(n, std::memory_order_relaxed);
  }
  void set_live_sessions(std::uint64_t n) {
    live_sessions_.store(n, std::memory_order_relaxed);
  }
  /// Raises the queue high-water mark to `depth` if it exceeds it.
  void observe_queue_depth(std::uint64_t depth);

  void record_latency_ns(std::uint64_t nanos);

  [[nodiscard]] ProbeStatsSnapshot snapshot() const;

  /// Element-wise merge: sums counters, maxes high-water marks, adds
  /// latency histograms. Snapshots with empty bucket vectors are fine.
  static ProbeStatsSnapshot aggregate(
      std::span<const ProbeStatsSnapshot> shards);

 private:
  using Counter = std::atomic<std::uint64_t>;
  static void add(Counter& c, std::uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  Counter packets_in_{0};
  Counter packets_dropped_{0};
  Counter packets_processed_{0};
  Counter flow_evictions_{0};
  Counter sessions_started_{0};
  Counter reports_emitted_{0};
  Counter live_flows_{0};
  Counter live_sessions_{0};
  Counter queue_depth_hwm_{0};
  Counter latency_max_ns_{0};
  LatencyHistogram latency_;
};

}  // namespace cgctx::core
