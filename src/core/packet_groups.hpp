// Downstream packet-group labeling (paper §4.2.1).
//
// Within each T-second time slot of the launch stage, downstream packets
// are labeled:
//   full   - payload equals the maximum (MTU-limited) payload size;
//   steady - payload within +-V (fractional) of most of its neighbors in
//            arrival order, i.e. it sits in a narrow payload band;
//   sparse - everything else (near-random payload sizes).
// The steady/sparse decision uses the paper's majority-voting rule over
// adjacent non-full packets, with V tunable (10% is the paper's best).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace cgctx::core {

enum class PacketGroup : std::uint8_t { kFull = 0, kSteady = 1, kSparse = 2 };
inline constexpr std::size_t kNumPacketGroups = 3;

const char* to_string(PacketGroup group);

struct GroupLabelerParams {
  /// Allowed fractional payload variation between steady neighbors
  /// (paper's V; 0.10 = 10% performs best, §4.4.1).
  double v_fraction = 0.10;
  /// The full-packet payload size; packets at or above this are "full".
  std::uint32_t full_payload = 1432;
  /// Neighbors examined on each side during majority voting.
  std::size_t neighbor_window = 3;
};

/// Labels the packets of ONE time slot, given their payload sizes in
/// arrival order. Returns one group per input packet.
std::vector<PacketGroup> label_packet_groups(
    std::span<const std::uint32_t> payload_sizes,
    const GroupLabelerParams& params = {});

/// A labeled downstream packet (timestamp retained for inter-arrival
/// statistics downstream of the labeler).
struct LabeledPacket {
  net::Timestamp timestamp = 0;
  std::uint32_t payload_size = 0;
  PacketGroup group = PacketGroup::kSparse;
};

/// Slices downstream packets into consecutive T-second slots starting at
/// `window_begin` and labels each slot independently. Packets outside
/// [window_begin, window_begin + slot_count*T) are ignored, as are
/// upstream packets.
std::vector<std::vector<LabeledPacket>> label_window(
    std::span<const net::PacketRecord> packets, net::Timestamp window_begin,
    net::Duration slot_duration, std::size_t slot_count,
    const GroupLabelerParams& params = {});

}  // namespace cgctx::core
