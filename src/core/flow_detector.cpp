#include "core/flow_detector.hpp"

namespace cgctx::core {

const char* to_string(Platform platform) {
  switch (platform) {
    case Platform::kGeforceNow: return "GeForce NOW";
    case Platform::kXboxCloud: return "Xbox Cloud Gaming";
    case Platform::kAmazonLuna: return "Amazon Luna";
    case Platform::kPsCloudStreaming: return "PS5 Cloud Streaming";
  }
  return "?";
}

namespace {

/// Server UDP port ranges of the four platforms' streaming flows
/// (GeForce NOW's 49003-49006 is documented by NVIDIA [46]; the others
/// follow the signatures of the works the paper adapts).
std::optional<Platform> platform_for_port(std::uint16_t port) {
  if (port >= 49003 && port <= 49006) return Platform::kGeforceNow;
  if (port >= 9002 && port <= 9002 + 28) return Platform::kXboxCloud;
  if (port >= 44300 && port <= 44380) return Platform::kAmazonLuna;
  if (port >= 9295 && port <= 9304) return Platform::kPsCloudStreaming;
  return std::nullopt;
}

}  // namespace

std::optional<DetectionResult> CloudGamingFlowDetector::detect(
    const net::FlowState& flow) const {
  // Observation floor: don't judge a flow from its first handful of
  // packets.
  if (flow.total_packets() < params_.min_packets) return std::nullopt;
  if (flow.age() < params_.min_age) return std::nullopt;

  // UDP only.
  if (flow.key.protocol != 17) return std::nullopt;

  // One endpoint must sit on a known platform streaming port. The
  // canonical tuple may have either orientation.
  std::optional<Platform> platform = platform_for_port(flow.key.dst_port);
  if (!platform) platform = platform_for_port(flow.key.src_port);
  if (!platform) return std::nullopt;

  // Downstream must be a consistent RTP video stream at gaming rates
  // containing MTU-limited packets; upstream must exist (player inputs).
  if (flow.downstream_bps() < params_.min_downstream_mbps * 1e6)
    return std::nullopt;
  if (flow.downstream_rtp_consistency() < params_.min_rtp_consistency)
    return std::nullopt;
  if (flow.down.max_payload < params_.full_payload) return std::nullopt;
  if (flow.up.packets == 0) return std::nullopt;

  return DetectionResult{*platform, flow.key};
}

}  // namespace cgctx::core
