#include "core/transition_model.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "core/stage_classifier.hpp"

namespace cgctx::core {

std::vector<std::string> pattern_class_names() {
  return {"continuous-play", "spectate-and-play"};
}

std::vector<std::string> transition_attribute_names() {
  const std::vector<std::string> stages = stage_class_names();
  std::vector<std::string> names;
  names.reserve(kNumTransitionAttributes);
  for (const std::string& from : stages)
    for (const std::string& to : stages) names.push_back(from + "->" + to);
  return names;
}

void TransitionTracker::push(ml::Label stage) {
  if (stage < 0 || static_cast<std::size_t>(stage) >= kNumStageLabels)
    throw std::invalid_argument("TransitionTracker::push: bad stage label");
  if (previous_ >= 0) {
    ++counts_[static_cast<std::size_t>(previous_) * kNumStageLabels +
              static_cast<std::size_t>(stage)];
    ++total_;
  }
  previous_ = stage;
}

void TransitionTracker::reset() {
  counts_.fill(0);
  total_ = 0;
  previous_ = -1;
}

ml::FeatureRow TransitionTracker::probabilities() const {
  ml::FeatureRow out(kNumTransitionAttributes, 0.0);
  probabilities_into(out);
  return out;
}

void TransitionTracker::probabilities_into(std::span<double> out) const {
  if (out.size() != kNumTransitionAttributes)
    throw std::invalid_argument(
        "TransitionTracker::probabilities_into: expected 9 cells");
  if (total_ == 0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  for (std::size_t i = 0; i < kNumTransitionAttributes; ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

void PatternInferrer::train(const ml::Dataset& data) {
  if (data.num_features() != kNumTransitionAttributes)
    throw std::invalid_argument(
        "PatternInferrer::train: expected 9 transition attributes");
  forest_ = ml::RandomForest(params_.forest);
  forest_.fit(data);
  compiled_ = ml::CompiledForest(forest_);
}

PatternResult PatternInferrer::infer_unchecked(
    const TransitionTracker& tracker) const {
  const auto prediction =
      compiled_.predict_with_confidence(tracker.probabilities());
  return PatternResult{prediction.label, prediction.confidence};
}

PatternResult PatternInferrer::infer_unchecked(
    const TransitionTracker& tracker, std::span<double> scratch) const {
  std::array<double, kNumTransitionAttributes> features;
  tracker.probabilities_into(features);
  const auto prediction = compiled_.predict_with_confidence(features, scratch);
  return PatternResult{prediction.label, prediction.confidence};
}

std::optional<PatternResult> PatternInferrer::infer(
    const TransitionTracker& tracker) const {
  if (tracker.transition_count() < params_.min_transitions) return std::nullopt;
  const PatternResult result = infer_unchecked(tracker);
  if (result.confidence < params_.confidence_threshold) return std::nullopt;
  return result;
}

std::optional<PatternResult> PatternInferrer::infer(
    const TransitionTracker& tracker, std::span<double> scratch) const {
  if (tracker.transition_count() < params_.min_transitions) return std::nullopt;
  const PatternResult result = infer_unchecked(tracker, scratch);
  if (result.confidence < params_.confidence_threshold) return std::nullopt;
  return result;
}

std::string PatternInferrer::serialize() const {
  return "pattern_inferrer " + std::to_string(params_.confidence_threshold) +
         ' ' + std::to_string(params_.min_transitions) + '\n' +
         forest_.serialize();
}

PatternInferrer PatternInferrer::deserialize(const std::string& text) {
  const auto newline = text.find('\n');
  if (newline == std::string::npos)
    throw std::invalid_argument("PatternInferrer: bad payload");
  std::istringstream header(text.substr(0, newline));
  std::string tag;
  PatternInferrerParams params;
  header >> tag >> params.confidence_threshold >> params.min_transitions;
  if (!header || tag != "pattern_inferrer")
    throw std::invalid_argument("PatternInferrer: bad header");
  PatternInferrer out(params);
  out.forest_ = ml::RandomForest::deserialize(text.substr(newline + 1));
  if (out.forest_.tree_count() > 0)
    out.compiled_ = ml::CompiledForest(out.forest_);
  return out;
}

}  // namespace cgctx::core
