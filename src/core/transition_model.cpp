#include "core/transition_model.hpp"

#include <sstream>
#include <stdexcept>

#include "core/stage_classifier.hpp"

namespace cgctx::core {

std::vector<std::string> pattern_class_names() {
  return {"continuous-play", "spectate-and-play"};
}

std::vector<std::string> transition_attribute_names() {
  const std::vector<std::string> stages = stage_class_names();
  std::vector<std::string> names;
  names.reserve(kNumTransitionAttributes);
  for (const std::string& from : stages)
    for (const std::string& to : stages) names.push_back(from + "->" + to);
  return names;
}

void TransitionTracker::push(ml::Label stage) {
  if (stage < 0 || static_cast<std::size_t>(stage) >= kNumStageLabels)
    throw std::invalid_argument("TransitionTracker::push: bad stage label");
  if (previous_ >= 0) {
    ++counts_[static_cast<std::size_t>(previous_) * kNumStageLabels +
              static_cast<std::size_t>(stage)];
    ++total_;
  }
  previous_ = stage;
}

void TransitionTracker::reset() {
  counts_.fill(0);
  total_ = 0;
  previous_ = -1;
}

ml::FeatureRow TransitionTracker::probabilities() const {
  ml::FeatureRow out(kNumTransitionAttributes, 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < kNumTransitionAttributes; ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return out;
}

void PatternInferrer::train(const ml::Dataset& data) {
  if (data.num_features() != kNumTransitionAttributes)
    throw std::invalid_argument(
        "PatternInferrer::train: expected 9 transition attributes");
  forest_ = ml::RandomForest(params_.forest);
  forest_.fit(data);
}

PatternResult PatternInferrer::infer_unchecked(
    const TransitionTracker& tracker) const {
  const auto prediction = forest_.predict_with_confidence(tracker.probabilities());
  return PatternResult{prediction.label, prediction.confidence};
}

std::optional<PatternResult> PatternInferrer::infer(
    const TransitionTracker& tracker) const {
  if (tracker.transition_count() < params_.min_transitions) return std::nullopt;
  const PatternResult result = infer_unchecked(tracker);
  if (result.confidence < params_.confidence_threshold) return std::nullopt;
  return result;
}

std::string PatternInferrer::serialize() const {
  return "pattern_inferrer " + std::to_string(params_.confidence_threshold) +
         ' ' + std::to_string(params_.min_transitions) + '\n' +
         forest_.serialize();
}

PatternInferrer PatternInferrer::deserialize(const std::string& text) {
  const auto newline = text.find('\n');
  if (newline == std::string::npos)
    throw std::invalid_argument("PatternInferrer: bad payload");
  std::istringstream header(text.substr(0, newline));
  std::string tag;
  PatternInferrerParams params;
  header >> tag >> params.confidence_threshold >> params.min_transitions;
  if (!header || tag != "pattern_inferrer")
    throw std::invalid_argument("PatternInferrer: bad header");
  PatternInferrer out(params);
  out.forest_ = ml::RandomForest::deserialize(text.substr(newline + 1));
  return out;
}

}  // namespace cgctx::core
