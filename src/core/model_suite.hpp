// Convenience bundle: train the three pipeline models from a synthetic
// lab collection, the way §4.4 trains them from the lab PCAP dataset.
//
// Used by the examples, tests and reproduction benches so they share one
// well-lit path from "lab plan" to "deployable models". Budgets scale the
// lab plan so smoke tests stay fast while benches train at full size.
#pragma once

#include <cstdint>

#include "core/pipeline.hpp"
#include "core/stage_classifier.hpp"
#include "core/title_classifier.hpp"
#include "core/training.hpp"
#include "core/transition_model.hpp"

namespace cgctx::core {

struct TrainingBudget {
  /// Fraction of the 531-session Table 2 plan to render (1.0 = full).
  double lab_scale = 0.25;
  /// Gameplay seconds per rendered lab session.
  double gameplay_seconds = 120.0;
  /// Augmentation copies per title-classification session (§4.4).
  std::size_t augment_copies = 1;
  std::uint64_t seed = 20241201;
};

struct ModelSuite {
  TitleClassifier title;
  StageClassifier stage;
  PatternInferrer pattern;

  /// Pipeline model view over this suite.
  [[nodiscard]] PipelineModels models() const {
    return PipelineModels{&title, &stage, &pattern};
  }
};

/// Trains title, stage, and pattern models on freshly generated lab data.
/// Also returns the datasets' held-out test accuracy via out-params when
/// non-null (quick sanity for callers that log it).
ModelSuite train_model_suite(const TrainingBudget& budget = {},
                             double* title_accuracy = nullptr,
                             double* stage_accuracy = nullptr,
                             double* pattern_accuracy = nullptr);

/// Pipeline parameters preloaded with the catalog's per-title demand
/// hints (what the deployment configures from its game database).
PipelineParams default_pipeline_params();

}  // namespace cgctx::core
