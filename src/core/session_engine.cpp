#include "core/session_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgctx::core {

const char* to_string(StreamEventType type) {
  switch (type) {
    case StreamEventType::kFlowDetected: return "flow-detected";
    case StreamEventType::kTitleClassified: return "title-classified";
    case StreamEventType::kStageChanged: return "stage-changed";
    case StreamEventType::kPatternInferred: return "pattern-inferred";
    case StreamEventType::kQoeChanged: return "qoe-changed";
  }
  return "?";
}

SessionEngine::SessionEngine(PipelineModels models,
                             const PipelineParams* params)
    : models_(models), params_(params) {
  if (models_.title == nullptr || models_.stage == nullptr ||
      models_.pattern == nullptr)
    throw std::invalid_argument("SessionEngine: all models are required");
  if (params_ == nullptr)
    throw std::invalid_argument("SessionEngine: params are required");
  scratch_.resize(std::max({models_.title->scratch_size(),
                            models_.stage->scratch_size(),
                            models_.pattern->scratch_size()}));
  title_window_seconds_ = models_.title->params().attributes.window_seconds;
  tracker_ = VolumetricTracker(params_->tracker);
}

std::span<double> SessionEngine::scratch(std::size_t n) {
  if (scratch_.size() < n) scratch_.resize(n);  // models retrained mid-life
  return std::span<double>(scratch_.data(), n);
}

void SessionEngine::start(net::Timestamp flow_begin) {
  started_ = true;
  flow_begin_ = flow_begin;
}

void SessionEngine::set_detection(const DetectionResult& detection) {
  report_.detection = detection;
}

void SessionEngine::install_title(const TitleResult& title) {
  // Field-wise copy: class_name assignment reuses the report string's
  // capacity, keeping pooled reuse allocation-free past the first session.
  report_.title.label = title.label;
  report_.title.class_name = title.class_name;
  report_.title.confidence = title.confidence;
  title_done_ = true;
  if (metrics_ != nullptr) {
    metrics_->title_verdicts->add();
    if (!title.label) metrics_->unknown_titles->add();
    if (title.confidence < models_.title->params().unknown_threshold)
      metrics_->low_confidence_titles->add();
  }
  has_demand_hint_ = false;
  if (report_.title.label) {
    const auto it = params_->title_demand_mbps.find(report_.title.class_name);
    if (it != params_->title_demand_mbps.end()) {
      has_demand_hint_ = true;
      demand_hint_mbps_ = it->second;
    }
  }
}

void SessionEngine::set_title(const TitleResult& title) {
  install_title(title);
}

void SessionEngine::classify_pending_title() {
  const obs::ScopedTimer timer(
      metrics_ != nullptr ? metrics_->title_classify_ns : nullptr);
  install_title(models_.title->classify_features(
      launch_attributes(title_window_, flow_begin_,
                        models_.title->params().attributes),
      scratch(models_.title->scratch_size())));
  title_window_.clear();  // keeps capacity for the next session
}

SessionEngine::SlotOutcome SessionEngine::close_slot_core() {
  const EstimatedSlotQoe estimated = qoe_.end_slot();
  SlotTelemetry slot;
  slot.volumetrics = current_slot_;
  slot.frames = estimated.frame_rate;
  // No passive RTT estimate exists for one-way UDP observation; the
  // deployment feeds RTT from its QoS probes (slot-fidelity telemetry
  // carries it). Packet mode falls back to a configured value.
  slot.rtt_ms = params_->assumed_rtt_ms;
  slot.loss_rate = estimated.loss_rate;
  current_slot_ = RawSlotVolumetrics{};
  return ingest_slot(slot);
}

SessionEngine::SlotOutcome SessionEngine::ingest_slot(
    const SlotTelemetry& slot) {
  // Stage timers are sampled: the tick deliberately survives reset() so
  // pooled engines running short sessions still hit sampled slots.
  bool timed = false;
  if (metrics_ != nullptr && ++timer_tick_ >= metrics_->timer_sample_stride) {
    timer_tick_ = 0;
    timed = true;
  }
  const obs::ScopedTimer slot_timer(timed ? metrics_->slot_close_ns : nullptr);
  SlotOutcome outcome;
  outcome.at_seconds = static_cast<double>(next_slot_ + 1);

  tracker_.push_into(slot.volumetrics, attrs_);
  ml::Label stage;
  {
    const obs::ScopedTimer timer(timed ? metrics_->stage_classify_ns
                                       : nullptr);
    stage = models_.stage->classify(std::span<const double>(attrs_),
                                    scratch(models_.stage->scratch_size()));
  }
  transitions_.push(stage);

  if (stage != last_stage_) {
    outcome.stage_changed = true;
    last_stage_ = stage;
  }

  // Pattern inference runs continuously: the report carries the most
  // recent confident verdict (it sharpens as the transition matrix
  // matures), while pattern_decided_at_s records when the operator first
  // had a usable answer.
  std::optional<PatternResult> inference;
  {
    const obs::ScopedTimer timer(timed ? metrics_->pattern_infer_ns
                                       : nullptr);
    inference = models_.pattern->infer(
        transitions_, scratch(models_.pattern->scratch_size()));
  }
  if (inference) {
    const bool first = !pattern_.has_value();
    const bool changed = !pattern_ || pattern_->label != inference->label;
    pattern_ = inference;
    if (first) pattern_decided_at_s_ = outcome.at_seconds;
    outcome.pattern_event = first || changed;
    if (metrics_ != nullptr && outcome.pattern_event) {
      if (first) metrics_->pattern_decisions->add();
      else metrics_->pattern_flips->add();
    }
  }

  SlotRecord record;
  record.stage = stage;
  record.throughput_mbps =
      static_cast<double>(slot.volumetrics.down_bytes) * 8.0 / 1e6;
  record.frame_rate = slot.frames;
  record.rtt_ms = slot.rtt_ms;
  record.loss_rate = slot.loss_rate;

  peak_mbps_ = std::max(peak_mbps_, record.throughput_mbps);
  peak_fps_ = std::max(peak_fps_, record.frame_rate);
  total_mbps_ += record.throughput_mbps;

  const SlotQoeMetrics metrics{record.frame_rate, record.throughput_mbps,
                               record.rtt_ms, record.loss_rate};
  QoeContext context;
  context.stage = stage;
  context.expected_peak_fps = peak_fps_;
  // The classified title's demand caps the expectation: a low-demand
  // title is not expected to ever reach generic "good" throughput.
  context.expected_peak_mbps = has_demand_hint_
                                   ? std::min(peak_mbps_, demand_hint_mbps_)
                                   : peak_mbps_;
  record.objective = objective_qoe(metrics, params_->qoe);
  record.effective = effective_qoe(metrics, context, params_->qoe);

  ++objective_counts_[static_cast<std::size_t>(record.objective)];
  ++effective_counts_[static_cast<std::size_t>(record.effective)];
  report_.stage_seconds[static_cast<std::size_t>(stage)] +=
      params_->tracker.slot_seconds;

  const auto effective_now = static_cast<std::int32_t>(record.effective);
  outcome.qoe_changed =
      last_effective_ >= 0 && effective_now != last_effective_;
  last_effective_ = effective_now;
  if (metrics_ != nullptr) {
    metrics_->slots_processed->add();
    if (outcome.qoe_changed) metrics_->qoe_changes->add();
  }

  report_.slots.push_back(record);
  ++next_slot_;
  return outcome;
}

void SessionEngine::finalize() {
  report_.pattern = pattern_;
  report_.pattern_decided_at_s = pattern_decided_at_s_;
  // If the confidence threshold was never reached, fall back to the
  // unconditional inference (better than nothing for offline aggregation,
  // flagged by pattern_decided_at_s < 0).
  if (!report_.pattern && transitions_.transition_count() > 0)
    report_.pattern = models_.pattern->infer_unchecked(
        transitions_, scratch(models_.pattern->scratch_size()));
  report_.duration_s = static_cast<double>(report_.slots.size());
  report_.objective_session = session_level(objective_counts_);
  report_.effective_session = session_level(effective_counts_);
  report_.mean_down_mbps =
      report_.slots.empty()
          ? 0.0
          : total_mbps_ / static_cast<double>(report_.slots.size());
  if (metrics_ != nullptr) {
    metrics_->sessions_finished->add();
    if (!report_.slots.empty() && pattern_decided_at_s_ < 0)
      metrics_->never_confident_patterns->add();
  }
}

void SessionEngine::reset() {
  started_ = false;
  flow_begin_ = 0;
  title_window_.clear();
  title_done_ = false;
  has_demand_hint_ = false;
  demand_hint_mbps_ = 0.0;
  next_slot_ = 0;
  current_slot_ = RawSlotVolumetrics{};
  qoe_.reset();
  tracker_.reset();
  transitions_.reset();
  last_stage_ = -1;
  last_effective_ = -1;
  pattern_.reset();
  pattern_decided_at_s_ = -1.0;
  // Clear the report in place (not report_ = {}): the slot vector and
  // class-name string keep their capacity for the next pooled session.
  report_.detection.reset();
  report_.title.label.reset();
  report_.title.class_name.clear();
  report_.title.confidence = 0.0;
  report_.pattern.reset();
  report_.pattern_decided_at_s = -1.0;
  report_.slots.clear();
  report_.objective_session = QoeLevel::kGood;
  report_.effective_session = QoeLevel::kGood;
  report_.stage_seconds.fill(0.0);
  report_.mean_down_mbps = 0.0;
  report_.duration_s = 0.0;
  objective_counts_.fill(0);
  effective_counts_.fill(0);
  peak_mbps_ = 5.0;
  peak_fps_ = 30.0;
  total_mbps_ = 0.0;
}

}  // namespace cgctx::core
