#include "core/trace_sink.hpp"

#include "core/flow_detector.hpp"
#include "core/qoe.hpp"
#include "core/stage_classifier.hpp"
#include "core/transition_model.hpp"

namespace cgctx::core {

namespace {

// Fixed-name lookups: the engine's steady state may append a trace event
// per slot close, so the names must come from string literals, never
// from the (allocating) *_class_names() vectors.
const char* stage_name(ml::Label stage) {
  if (stage == kStageActive) return "active";
  if (stage == kStagePassive) return "passive";
  if (stage == kStageIdle) return "idle";
  return "?";
}

const char* pattern_name(ml::Label pattern) {
  if (pattern == kPatternContinuous) return "continuous-play";
  if (pattern == kPatternSpectate) return "spectate-and-play";
  return "?";
}

}  // namespace

void append_trace(obs::DecisionTraceRing& ring, std::uint64_t session_id,
                  const StreamEvent& event) {
  obs::TraceEvent trace;
  trace.session_id = session_id;
  trace.at_seconds = event.at_seconds;
  switch (event.type) {
    case StreamEventType::kFlowDetected:
      trace.type = obs::TraceEventType::kFlowPromoted;
      if (event.detection)
        trace.set_name(to_string(event.detection->platform));
      break;
    case StreamEventType::kTitleClassified:
      trace.type = obs::TraceEventType::kTitleVerdict;
      if (event.title) {
        trace.label = event.title->label
                          ? static_cast<std::int32_t>(*event.title->label)
                          : -1;
        trace.confidence = event.title->confidence;
        trace.set_name(event.title->label ? event.title->class_name
                                          : "(unknown)");
      }
      break;
    case StreamEventType::kStageChanged:
      trace.type = obs::TraceEventType::kStageTransition;
      if (event.stage) {
        trace.label = static_cast<std::int32_t>(*event.stage);
        trace.set_name(stage_name(*event.stage));
      }
      break;
    case StreamEventType::kPatternInferred:
      trace.type = obs::TraceEventType::kPatternDecision;
      if (event.pattern) {
        trace.label = static_cast<std::int32_t>(event.pattern->label);
        trace.confidence = event.pattern->confidence;
        trace.set_name(pattern_name(event.pattern->label));
      }
      break;
    case StreamEventType::kQoeChanged:
      trace.type = obs::TraceEventType::kQoeChange;
      if (event.qoe) {
        trace.label = static_cast<std::int32_t>(*event.qoe);
        trace.set_name(to_string(*event.qoe));
      }
      break;
  }
  ring.push(trace);
}

void append_retired(obs::DecisionTraceRing& ring, std::uint64_t session_id,
                    const SessionReport& report) {
  obs::TraceEvent trace;
  trace.session_id = session_id;
  trace.at_seconds = report.duration_s;
  trace.type = obs::TraceEventType::kSessionRetired;
  trace.label = static_cast<std::int32_t>(report.effective_session);
  trace.confidence = report.title.confidence;
  trace.set_name(report.title.label ? report.title.class_name : "(unknown)");
  ring.push(trace);
}

}  // namespace cgctx::core
