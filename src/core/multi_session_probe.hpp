// Multi-subscriber vantage-point probe.
//
// The partner ISP's deployment watches all subscribers at once: the wire
// carries many concurrent cloud-gaming sessions interleaved with
// everything else. MultiSessionProbe demultiplexes that firehose —
// detecting each gaming flow independently, running a per-session
// StreamingAnalyzer, and retiring sessions when their flow goes idle —
// so the single-session machinery scales to the deployment shape.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "core/streaming_analyzer.hpp"

namespace cgctx::core {

struct MultiSessionProbeParams {
  PipelineParams pipeline{};
  /// A detected session whose flow has been silent this long is retired
  /// (its report emitted).
  net::Duration session_idle_timeout = 30 * net::kNanosPerSecond;
};

class MultiSessionProbe {
 public:
  using ReportCallback = std::function<void(const SessionReport&)>;

  /// Models must outlive the probe. `on_report` receives each retired
  /// session's report (and the remaining ones at flush()).
  MultiSessionProbe(PipelineModels models, MultiSessionProbeParams params,
                    ReportCallback on_report,
                    StreamingAnalyzer::EventCallback on_event = {});

  /// Feeds one packet from the aggregate stream (timestamp order).
  void push(const net::PacketRecord& pkt);

  /// Retires all live sessions, emitting their reports.
  void flush();

  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t reports_emitted() const { return reports_; }

 private:
  struct Session {
    std::unique_ptr<StreamingAnalyzer> analyzer;
    net::Timestamp last_seen = 0;
  };

  void retire(const net::FiveTuple& key);

  PipelineModels models_;
  MultiSessionProbeParams params_;
  ReportCallback on_report_;
  StreamingAnalyzer::EventCallback on_event_;

  /// Shared front-end: one flow table + detector across all traffic.
  net::FlowTable table_;
  CloudGamingFlowDetector detector_;
  /// Live sessions keyed by canonical flow tuple.
  std::map<net::FiveTuple, Session> sessions_;
  /// Rolling lookback of not-yet-attributed traffic (last ~10 s).
  std::deque<net::PacketRecord> lookback_;
  std::size_t reports_ = 0;
  net::Timestamp last_sweep_ = 0;
};

}  // namespace cgctx::core
