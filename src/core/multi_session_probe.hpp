// Multi-subscriber vantage-point probe.
//
// The partner ISP's deployment watches all subscribers at once: the wire
// carries many concurrent cloud-gaming sessions interleaved with
// everything else. MultiSessionProbe demultiplexes that firehose —
// detecting each gaming flow independently, running a per-session
// StreamingAnalyzer, and retiring sessions when their flow goes idle —
// so the single-session machinery scales to the deployment shape.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "core/probe_stats.hpp"
#include "core/streaming_analyzer.hpp"

namespace cgctx::core {

struct MultiSessionProbeParams {
  PipelineParams pipeline{};
  /// A detected session whose flow has been silent this long is retired
  /// (its report emitted).
  net::Duration session_idle_timeout = 30 * net::kNanosPerSecond;
  /// An undetected flow silent this long is evicted from the shared flow
  /// table (cross traffic must not accumulate state forever).
  net::Duration flow_idle_timeout = 60 * net::kNanosPerSecond;
};

class MultiSessionProbe {
 public:
  using ReportCallback = std::function<void(const SessionReport&)>;

  /// Models must outlive the probe. `on_report` receives each retired
  /// session's report (and the remaining ones at flush()).
  MultiSessionProbe(PipelineModels models, MultiSessionProbeParams params,
                    ReportCallback on_report,
                    StreamingAnalyzer::EventCallback on_event = {});

  /// Feeds one packet from the aggregate stream (timestamp order).
  void push(const net::PacketRecord& pkt);

  /// Retires all live sessions, emitting their reports.
  void flush();

  /// Optional counter sink (e.g. a ShardedProbe shard's ProbeStats). The
  /// probe records evictions, session starts, reports, and the live
  /// flow/session gauges into it; it must outlive the probe.
  void set_stats(ProbeStats* stats) { stats_ = stats; }

  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t reports_emitted() const { return reports_; }
  /// Current size of the shared (undetected-traffic) flow table.
  [[nodiscard]] std::size_t flow_table_size() const { return table_.size(); }
  /// Idle flows evicted from the shared table over the probe's lifetime.
  [[nodiscard]] std::uint64_t flow_evictions() const {
    return table_.evictions();
  }

 private:
  struct Session {
    std::unique_ptr<StreamingAnalyzer> analyzer;
    net::Timestamp last_seen = 0;
  };

  void retire(const net::FiveTuple& key);
  /// Forwards eviction deltas and live gauges to stats_ (no-op unset).
  void sync_stats();

  PipelineModels models_;
  MultiSessionProbeParams params_;
  ReportCallback on_report_;
  StreamingAnalyzer::EventCallback on_event_;

  /// Shared front-end: one flow table + detector across all traffic.
  net::FlowTable table_;
  CloudGamingFlowDetector detector_;
  /// Live sessions keyed by canonical flow tuple.
  std::map<net::FiveTuple, Session> sessions_;
  /// Rolling lookback of not-yet-attributed traffic (last ~10 s).
  std::deque<net::PacketRecord> lookback_;
  std::size_t reports_ = 0;
  /// Packet time of the last idle sweep; initialized from the first
  /// packet (timestamps are wall-clock nanoseconds, so starting from 0
  /// would fire an immediate empty sweep on every capture).
  net::Timestamp last_sweep_ = 0;
  bool saw_packet_ = false;
  ProbeStats* stats_ = nullptr;
  /// Evictions already forwarded to stats_ (table_ counts lifetime).
  std::uint64_t evictions_reported_ = 0;
};

}  // namespace cgctx::core
