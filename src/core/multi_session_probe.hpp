// Multi-subscriber vantage-point probe.
//
// The partner ISP's deployment watches all subscribers at once: the wire
// carries many concurrent cloud-gaming sessions interleaved with
// everything else. MultiSessionProbe demultiplexes that firehose —
// detecting each gaming flow independently, driving a per-session
// core::SessionEngine, and retiring sessions when their flow goes idle —
// so the single-session machinery scales to the deployment shape.
//
// Engines are pooled: a retired session's engine is reset (buffer
// capacity retained, including the compiled-forest scratch) and reused
// for the next detected session, so the steady-state per-packet path
// performs no heap allocations and no per-session construction. When no
// event callback is installed, packets advance the engine through a
// compile-time null sink and the event plumbing vanishes entirely.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/pipeline_metrics.hpp"
#include "core/probe_stats.hpp"
#include "core/session_engine.hpp"
#include "core/trace_sink.hpp"
#include "net/flow_table.hpp"
#include "obs/trace.hpp"

namespace cgctx::core {

struct MultiSessionProbeParams {
  PipelineParams pipeline{};
  /// A detected session whose flow has been silent this long is retired
  /// (its report emitted).
  net::Duration session_idle_timeout = 30 * net::kNanosPerSecond;
  /// An undetected flow silent this long is evicted from the shared flow
  /// table (cross traffic must not accumulate state forever).
  net::Duration flow_idle_timeout = 60 * net::kNanosPerSecond;
};

class MultiSessionProbe {
 public:
  using ReportCallback = std::function<void(const SessionReport&)>;

  /// Models must outlive the probe. `on_report` receives each retired
  /// session's report (and the remaining ones at flush()); the reference
  /// is valid only for the duration of the callback (the report lives in
  /// a pooled engine that is reset afterward).
  MultiSessionProbe(PipelineModels models, MultiSessionProbeParams params,
                    ReportCallback on_report,
                    SessionEventCallback on_event = {});

  /// Non-copyable/movable: pooled engines reference the probe-owned
  /// pipeline params.
  MultiSessionProbe(const MultiSessionProbe&) = delete;
  MultiSessionProbe& operator=(const MultiSessionProbe&) = delete;

  /// Feeds one packet from the aggregate stream (timestamp order).
  void push(const net::PacketRecord& pkt);

  /// Retires all live sessions, emitting their reports.
  void flush();

  /// Optional counter sink (e.g. a ShardedProbe shard's ProbeStats). The
  /// probe records evictions, session starts, reports, and the live
  /// flow/session gauges into it; it must outlive the probe.
  void set_stats(ProbeStats* stats) { stats_ = stats; }

  /// Optional pipeline instrumentation, shared across all pooled engines.
  /// Must be installed before the first packet and outlive the probe.
  void set_metrics(const PipelineMetrics* metrics) { metrics_ = metrics; }

  /// Optional decision-trace ring. Sessions are numbered `first_id`,
  /// `first_id + id_stride`, ... so shard-local probes can interleave
  /// globally unique ids. Must be installed before the first packet; the
  /// ring must outlive the probe.
  void set_trace(obs::DecisionTraceRing* ring, std::uint64_t first_id = 1,
                 std::uint64_t id_stride = 1) {
    trace_ = ring;
    next_session_id_ = first_id;
    id_stride_ = id_stride;
  }

  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t reports_emitted() const { return reports_; }
  /// Engines parked in the reuse pool (grows to the high-water mark of
  /// concurrent sessions, never beyond).
  [[nodiscard]] std::size_t pooled_engines() const { return pool_.size(); }
  /// Current size of the shared (undetected-traffic) flow table.
  [[nodiscard]] std::size_t flow_table_size() const { return table_.size(); }
  /// Idle flows evicted from the shared table over the probe's lifetime.
  [[nodiscard]] std::uint64_t flow_evictions() const {
    return table_.evictions();
  }

 private:
  struct Session {
    std::unique_ptr<SessionEngine> engine;
    net::Timestamp last_seen = 0;
    /// Trace-plane session id (assigned at promotion; 0 when untraced).
    std::uint64_t id = 0;
  };

  /// Event-forwarding sink for when an event callback is installed
  /// (slot records are folded into the report, never re-emitted).
  struct EventSink {
    static constexpr bool kWantsEvents = true;
    static constexpr bool kWantsSlots = false;
    const SessionEventCallback* on_event;
    void on_stream_event(const StreamEvent& event) { (*on_event)(event); }
    void on_slot_record(const SlotRecord&) {}
  };

  /// Fans events out to both the legacy callback and the decision-trace
  /// ring. QoE-change events are trace-only: callbacks predate the event
  /// type and must not start receiving it.
  struct DualSink {
    static constexpr bool kWantsEvents = true;
    static constexpr bool kWantsSlots = false;
    static constexpr bool kWantsQoe = true;
    const SessionEventCallback* on_event;
    obs::DecisionTraceRing* ring;
    std::uint64_t session_id;
    void on_stream_event(const StreamEvent& event) {
      append_trace(*ring, session_id, event);
      if (event.type != StreamEventType::kQoeChanged) (*on_event)(event);
    }
    void on_slot_record(const SlotRecord&) {}
  };

  [[nodiscard]] std::unique_ptr<SessionEngine> acquire_engine();
  void release_engine(std::unique_ptr<SessionEngine> engine);
  /// Advances `session`'s engine by one packet through the sink matching
  /// the installed callback/trace combination.
  void feed(Session& session, const net::PacketRecord& pkt);
  void retire(const net::FiveTuple& key);
  /// Forwards eviction deltas and live gauges to stats_ (no-op unset).
  void sync_stats();

  PipelineModels models_;
  MultiSessionProbeParams params_;
  ReportCallback on_report_;
  SessionEventCallback on_event_;
  bool has_event_ = false;

  /// Shared front-end: one flow table + detector across all traffic.
  net::FlowTable table_;
  CloudGamingFlowDetector detector_;
  /// Live sessions keyed by canonical flow tuple.
  std::map<net::FiveTuple, Session> sessions_;
  /// Reset engines awaiting reuse.
  std::vector<std::unique_ptr<SessionEngine>> pool_;
  /// Rolling lookback of not-yet-attributed traffic (last ~10 s).
  std::deque<net::PacketRecord> lookback_;
  std::size_t reports_ = 0;
  /// Packet time of the last idle sweep; initialized from the first
  /// packet (timestamps are wall-clock nanoseconds, so starting from 0
  /// would fire an immediate empty sweep on every capture).
  net::Timestamp last_sweep_ = 0;
  bool saw_packet_ = false;
  ProbeStats* stats_ = nullptr;
  /// Evictions already forwarded to stats_ (table_ counts lifetime).
  std::uint64_t evictions_reported_ = 0;
  const PipelineMetrics* metrics_ = nullptr;
  obs::DecisionTraceRing* trace_ = nullptr;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t id_stride_ = 1;
};

}  // namespace cgctx::core
