// Dataset builders bridging the simulator's labeled sessions to the
// classifiers' training formats (paper §4.4 evaluation methodology,
// including the variation-based augmentation step).
#pragma once

#include <functional>
#include <span>

#include "core/launch_attributes.hpp"
#include "core/stage_classifier.hpp"
#include "core/thread_pool.hpp"
#include "core/transition_model.hpp"
#include "core/volumetric_tracker.hpp"
#include "sim/lab_dataset.hpp"
#include "sim/session.hpp"

namespace cgctx::core {

/// Class names for the popular-title classification task, index-aligned
/// with sim::GameTitle's first thirteen values.
std::vector<std::string> popular_title_class_names();

/// Renders each spec (packet fidelity) and hands it to `fn`. The central
/// iteration helper for dataset builders and benches that extract several
/// feature sets per rendered session.
void for_each_rendered_session(
    std::span<const sim::SessionSpec> specs,
    const std::function<void(const sim::LabeledSession&)>& fn);

struct TitleDatasetOptions {
  LaunchAttributeParams attributes{};
  /// Additional augmented variations rendered per spec (class-preserving
  /// seed redraws, §4.4).
  std::size_t augment_copies = 0;
  std::uint64_t augment_seed = 555;
};

/// Builds the 51-attribute title-classification dataset from session
/// specs (labels = popular-title indices; specs must reference popular
/// titles only). Sessions render and featurize in parallel on `pool`
/// (nullptr: the shared training pool); augmentation seeds are drawn
/// serially up front and rows land in spec order, so the dataset is
/// identical at any worker count.
ml::Dataset build_title_dataset(std::span<const sim::SessionSpec> specs,
                                const TitleDatasetOptions& options = {},
                                ThreadPool* pool = nullptr);

/// Builds the Table 3 baseline dataset (per-slot downstream packet rate
/// and throughput) from the same specs. Parallel like
/// build_title_dataset.
ml::Dataset build_flow_volumetric_dataset(
    std::span<const sim::SessionSpec> specs,
    const TitleDatasetOptions& options = {}, ThreadPool* pool = nullptr);

/// Aggregates a packet stream into consecutive I-second raw volumetric
/// slots starting at `begin`.
std::vector<RawSlotVolumetrics> aggregate_slots(
    std::span<const net::PacketRecord> packets, net::Timestamp begin,
    net::Duration slot_duration, std::size_t slot_count);

/// One labeled stage-classification row: processed attributes + ground
/// truth stage label.
struct StageRow {
  ml::FeatureRow attributes;
  ml::Label stage;
};

/// Extracts per-slot stage rows from a slot-fidelity session (I = 1 s).
/// Launch slots prime the tracker's peaks but produce no rows.
std::vector<StageRow> stage_rows_from_slots(
    const sim::LabeledSession& session,
    const VolumetricTrackerParams& tracker_params = {});

/// Extracts per-slot stage rows from a packet-fidelity session at an
/// arbitrary slot width I (used by the Fig. 10 I-sweep).
std::vector<StageRow> stage_rows_from_packets(
    const sim::LabeledSession& session, double slot_seconds,
    const VolumetricTrackerParams& tracker_params = {});

/// Builds the 4-attribute stage dataset from slot-fidelity sessions.
/// Sessions render in parallel on `pool` (nullptr: the shared training
/// pool); rows land in spec order, identical at any worker count.
ml::Dataset build_stage_dataset(
    std::span<const sim::SessionSpec> specs,
    const VolumetricTrackerParams& tracker_params = {},
    ThreadPool* pool = nullptr);

/// Builds the 9-attribute pattern-inference dataset: each session is run
/// through the (trained) stage classifier, its transition probabilities
/// accumulated slot by slot, labeled with the title's ground truth
/// activity pattern. With `include_prefix_horizons` (the deployment
/// training default), each session also contributes matrix snapshots at
/// several mid-session horizons so the inferrer learns what immature
/// matrices look like; without it, one complete-session row per session
/// (the shape the paper's offline evaluation uses).
/// Sessions render and classify in parallel on `pool` (nullptr: the
/// shared training pool); rows land in spec order, identical at any
/// worker count.
ml::Dataset build_pattern_dataset(
    std::span<const sim::SessionSpec> specs, const StageClassifier& stages,
    const VolumetricTrackerParams& tracker_params = {},
    bool include_prefix_horizons = true, ThreadPool* pool = nullptr);

}  // namespace cgctx::core
