#include "core/model_suite.hpp"

#include <algorithm>

#include "ml/metrics.hpp"

namespace cgctx::core {

ModelSuite train_model_suite(const TrainingBudget& budget,
                             double* title_accuracy, double* stage_accuracy,
                             double* pattern_accuracy) {
  ModelSuite suite;
  ml::Rng rng(budget.seed);

  // --- Title classifier: launch windows need packet fidelity but only a
  // short gameplay tail.
  {
    sim::LabPlanOptions plan_options;
    plan_options.seed = rng.next_u64();
    plan_options.scale = budget.lab_scale;
    plan_options.gameplay_seconds = 10.0;
    const auto specs = sim::lab_session_plan(plan_options);
    TitleDatasetOptions dataset_options;
    dataset_options.augment_copies = budget.augment_copies;
    dataset_options.augment_seed = rng.next_u64();
    const ml::Dataset data = build_title_dataset(specs, dataset_options);
    auto split = ml::stratified_split(data, 0.25, rng);
    suite.title.train(split.train);
    if (title_accuracy != nullptr)
      *title_accuracy = ml::evaluate(suite.title.forest(), split.test).accuracy();
  }

  // --- Stage classifier + pattern inferrer: slot fidelity, longer
  // gameplay so every stage and transition is represented.
  {
    sim::LabPlanOptions plan_options;
    plan_options.seed = rng.next_u64();
    plan_options.scale = budget.lab_scale;
    plan_options.gameplay_seconds = budget.gameplay_seconds;
    const auto specs = sim::lab_session_plan(plan_options);

    const ml::Dataset stage_data = build_stage_dataset(specs);
    auto stage_split = ml::stratified_split(stage_data, 0.25, rng);
    suite.stage.train(stage_split.train);
    if (stage_accuracy != nullptr)
      *stage_accuracy =
          ml::evaluate(suite.stage.forest(), stage_split.test).accuracy();

    // Pattern dataset runs the *trained* stage classifier over separate
    // sessions with much longer gameplay: transition statistics need to
    // be collected at the horizon the deployment observes (the paper's
    // field sessions run tens of minutes).
    sim::LabPlanOptions pattern_plan = plan_options;
    pattern_plan.seed = rng.next_u64();
    pattern_plan.gameplay_seconds = std::max(1500.0, budget.gameplay_seconds * 4.0);
    // Each session yields a single pattern row, so this dataset needs more
    // sessions than the per-slot stage dataset does examples.
    pattern_plan.scale = std::max(budget.lab_scale, 0.3);
    const auto pattern_specs = sim::lab_session_plan(pattern_plan);
    const ml::Dataset pattern_data =
        build_pattern_dataset(pattern_specs, suite.stage);
    auto pattern_split = ml::stratified_split(pattern_data, 0.25, rng);
    suite.pattern.train(pattern_split.train);
    if (pattern_accuracy != nullptr)
      *pattern_accuracy =
          ml::evaluate(suite.pattern.forest(), pattern_split.test).accuracy();
  }

  return suite;
}

PipelineParams default_pipeline_params() {
  PipelineParams params;
  for (const sim::GameInfo& game : sim::popular_titles())
    params.title_demand_mbps[game.name] = game.peak_demand_mbps;
  return params;
}

}  // namespace cgctx::core
