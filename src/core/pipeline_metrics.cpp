#include "core/pipeline_metrics.hpp"

namespace cgctx::core {

PipelineMetrics PipelineMetrics::create(obs::MetricsRegistry& registry) {
  PipelineMetrics m;
  m.title_verdicts = &registry.counter(
      "cgctx_session_title_verdicts_total",
      "Title classification verdicts installed (classified or unknown)");
  m.unknown_titles = &registry.counter(
      "cgctx_session_unknown_titles_total",
      "Title verdicts reported as unknown (no confident label)");
  m.low_confidence_titles = &registry.counter(
      "cgctx_session_low_confidence_titles_total",
      "Title verdicts whose confidence fell below the unknown threshold");
  m.pattern_decisions = &registry.counter(
      "cgctx_session_pattern_decisions_total",
      "Sessions whose pattern inference first cleared the confidence bar");
  m.pattern_flips = &registry.counter(
      "cgctx_session_pattern_flips_total",
      "Confident pattern verdicts that changed as the matrix matured");
  m.never_confident_patterns = &registry.counter(
      "cgctx_session_never_confident_patterns_total",
      "Finished sessions whose pattern inference never reached confidence");
  m.sessions_finished = &registry.counter(
      "cgctx_session_finished_total", "Sessions finalized with a report");
  m.slots_processed = &registry.counter(
      "cgctx_session_slots_total", "One-second slots closed and classified");
  m.qoe_changes = &registry.counter(
      "cgctx_session_qoe_changes_total",
      "Slot-to-slot effective QoE level changes");
  m.title_classify_ns = &registry.histogram(
      "cgctx_pipeline_title_classify_ns",
      "Launch-window title classification (attributes + forest walk)");
  m.stage_classify_ns = &registry.histogram(
      "cgctx_pipeline_stage_classify_ns",
      "Per-slot activity stage classification (forest walk)");
  m.pattern_infer_ns = &registry.histogram(
      "cgctx_pipeline_pattern_infer_ns",
      "Per-slot pattern gate + inference (forest walk when attempted)");
  m.slot_close_ns = &registry.histogram(
      "cgctx_pipeline_slot_close_ns",
      "Whole slot-close pipeline (volumetrics, stage, pattern, QoE)");
  return m;
}

}  // namespace cgctx::core
