// Small summary-statistics helpers used by the fleet aggregation layer.
#pragma once

#include <cstddef>
#include <vector>

namespace cgctx::telemetry {

/// Accumulates samples and answers mean/percentile queries. Stores the
/// samples (fleet scales here are ~1e5 sessions, trivially held).
class SampleSeries {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;

  /// Raw samples in insertion-or-sorted order (order unspecified); used
  /// for merging series.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  /// Sorts the stored values on demand, caching sortedness.
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace cgctx::telemetry
