#include "telemetry/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cgctx::telemetry {

void SampleSeries::add(double value) {
  if (!values_.empty() && value < values_.back()) sorted_ = false;
  values_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
}

double SampleSeries::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double SampleSeries::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  const double var =
      sum_sq_ / static_cast<double>(values_.size()) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void SampleSeries::ensure_sorted() const {
  if (!sorted_) {
    auto& mutable_values = const_cast<std::vector<double>&>(values_);
    std::sort(mutable_values.begin(), mutable_values.end());
    sorted_ = true;
  }
}

double SampleSeries::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double SampleSeries::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

double SampleSeries::percentile(double p) const {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("SampleSeries::percentile: p outside [0,1]");
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const double position = p * static_cast<double>(values_.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= values_.size()) return values_.back();
  return values_[lower] * (1.0 - frac) + values_[lower + 1] * frac;
}

}  // namespace cgctx::telemetry
