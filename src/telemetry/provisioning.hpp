// Context-driven network resource provisioning (paper §5.1-§5.2).
//
// The point of classifying gameplay contexts in real time is to act on
// them: "allocate 5G eMBB slices with prioritized QoS profiles ... with
// an expected session duration and slice capacity, upon detecting a
// newly commenced game streaming session". This module turns fleet
// measurements into exactly that lookup: per context key (title or
// pattern), an expected session duration and a recommended slice
// capacity derived from the observed demand distribution, plus a
// priority tier for admission control under contention.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "telemetry/aggregator.hpp"

namespace cgctx::telemetry {

/// Priority tier of a slice request (admission under contention).
enum class SlicePriority : std::uint8_t { kBestEffort, kPrioritized, kPremium };

const char* to_string(SlicePriority priority);

/// One provisioning recommendation.
struct SliceRecommendation {
  std::string context;            ///< title or pattern key it applies to
  double capacity_mbps = 0.0;     ///< slice capacity to reserve
  double expected_minutes = 0.0;  ///< expected session duration
  SlicePriority priority = SlicePriority::kBestEffort;
  std::size_t evidence_sessions = 0;  ///< measurement support
};

struct ProvisioningPolicy {
  /// Demand percentile reserved as slice capacity (0.95 keeps p95 of
  /// sessions unconstrained without provisioning for the absolute max).
  double capacity_percentile = 0.95;
  /// Headroom multiplier on the percentile (bitrate variability within a
  /// session exceeds the session-mean the aggregates store).
  double headroom = 1.25;
  /// Contexts above this capacity get premium priority; above half of
  /// it, prioritized.
  double premium_mbps = 30.0;
  /// Minimum sessions before a context-specific recommendation is
  /// trusted; thinner contexts fall back to the fleet-wide default.
  std::size_t min_sessions = 5;
};

/// Builds per-context recommendations from measured fleet aggregates.
class ProvisioningAdvisor {
 public:
  explicit ProvisioningAdvisor(ProvisioningPolicy policy = {})
      : policy_(policy) {}

  /// Ingests one aggregator's groups (callable repeatedly, e.g. once for
  /// the per-title view and once for the per-pattern view).
  void learn(const FleetAggregator& fleet);

  /// Recommendation for a context key. Contexts with too little evidence
  /// (or unknown keys) return the fleet-wide default recommendation;
  /// nullopt only before any learning at all.
  [[nodiscard]] std::optional<SliceRecommendation> recommend(
      const std::string& context) const;

  /// The fleet-wide fallback (all learned sessions pooled).
  [[nodiscard]] std::optional<SliceRecommendation> fleet_default() const;

  /// All per-context recommendations with sufficient evidence.
  [[nodiscard]] std::vector<SliceRecommendation> all() const;

  [[nodiscard]] const ProvisioningPolicy& policy() const { return policy_; }

 private:
  [[nodiscard]] SliceRecommendation build(const std::string& key,
                                          const GroupStats& stats) const;

  ProvisioningPolicy policy_;
  std::map<std::string, GroupStats> contexts_;
  GroupStats pooled_;
};

}  // namespace cgctx::telemetry
