// Fleet-level aggregation of pipeline session reports (paper §5).
//
// The deployment's value is aggregate visibility: per-title (or, for
// unknown titles, per-activity-pattern) session durations, stage-time
// composition (Fig. 11), bandwidth-demand distributions (Fig. 12), and
// the objective-vs-effective QoE fractions (Fig. 13). Aggregation is by a
// free-form string key so benches can group by title, genre, pattern, or
// anything else.
#pragma once

#include <array>
#include <map>
#include <string>

#include "core/pipeline.hpp"
#include "telemetry/stats.hpp"

namespace cgctx::telemetry {

/// What one session contributes to the aggregates.
struct SessionSummary {
  std::string key;  ///< grouping key (title name, pattern, genre, ...)
  double duration_minutes = 0.0;
  /// Minutes classified per stage (active, passive, idle).
  std::array<double, core::kNumStageLabels> stage_minutes{};
  double mean_down_mbps = 0.0;
  core::QoeLevel objective = core::QoeLevel::kGood;
  core::QoeLevel effective = core::QoeLevel::kGood;
};

/// Builds a summary from a pipeline report under a caller-chosen key.
SessionSummary summarize(const core::SessionReport& report, std::string key);

/// Per-key aggregate statistics.
struct GroupStats {
  std::size_t sessions = 0;
  SampleSeries duration_minutes;
  std::array<SampleSeries, core::kNumStageLabels> stage_minutes;
  SampleSeries mean_down_mbps;
  std::array<std::size_t, 3> objective_counts{};  ///< bad/medium/good
  std::array<std::size_t, 3> effective_counts{};

  [[nodiscard]] double objective_fraction(core::QoeLevel level) const;
  [[nodiscard]] double effective_fraction(core::QoeLevel level) const;
};

class FleetAggregator {
 public:
  void add(const SessionSummary& summary);

  [[nodiscard]] const std::map<std::string, GroupStats>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::size_t total_sessions() const { return total_; }

  /// CSV export: one row per group with duration/stage/throughput/QoE
  /// aggregates (the interchange format of the paper's open-analytics
  /// companion work).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::map<std::string, GroupStats> groups_;
  std::size_t total_ = 0;
};

}  // namespace cgctx::telemetry
