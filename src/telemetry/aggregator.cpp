#include "telemetry/aggregator.hpp"

#include <sstream>

namespace cgctx::telemetry {

namespace {

/// RFC 4180 field quoting: group keys are operator-supplied (game title,
/// ISP region, ...) and may contain commas, quotes, or newlines; emitted
/// raw they would shift every column after them.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

SessionSummary summarize(const core::SessionReport& report, std::string key) {
  SessionSummary summary;
  summary.key = std::move(key);
  summary.duration_minutes = report.duration_s / 60.0;
  for (std::size_t s = 0; s < core::kNumStageLabels; ++s)
    summary.stage_minutes[s] = report.stage_seconds[s] / 60.0;
  summary.mean_down_mbps = report.mean_down_mbps;
  summary.objective = report.objective_session;
  summary.effective = report.effective_session;
  return summary;
}

double GroupStats::objective_fraction(core::QoeLevel level) const {
  if (sessions == 0) return 0.0;
  return static_cast<double>(objective_counts[static_cast<std::size_t>(level)]) /
         static_cast<double>(sessions);
}

double GroupStats::effective_fraction(core::QoeLevel level) const {
  if (sessions == 0) return 0.0;
  return static_cast<double>(effective_counts[static_cast<std::size_t>(level)]) /
         static_cast<double>(sessions);
}

void FleetAggregator::add(const SessionSummary& summary) {
  GroupStats& group = groups_[summary.key];
  ++group.sessions;
  ++total_;
  group.duration_minutes.add(summary.duration_minutes);
  for (std::size_t s = 0; s < core::kNumStageLabels; ++s)
    group.stage_minutes[s].add(summary.stage_minutes[s]);
  group.mean_down_mbps.add(summary.mean_down_mbps);
  ++group.objective_counts[static_cast<std::size_t>(summary.objective)];
  ++group.effective_counts[static_cast<std::size_t>(summary.effective)];
}

std::string FleetAggregator::to_csv() const {
  std::ostringstream os;
  os << "key,sessions,mean_duration_min,active_min,passive_min,idle_min,"
        "mean_mbps,p5_mbps,p95_mbps,"
        "obj_bad,obj_medium,obj_good,eff_bad,eff_medium,eff_good\n";
  for (const auto& [key, group] : groups_) {
    os << csv_escape(key) << ',' << group.sessions << ','
       << group.duration_minutes.mean() << ','
       << group.stage_minutes[0].mean() << ',' << group.stage_minutes[1].mean()
       << ',' << group.stage_minutes[2].mean() << ','
       << group.mean_down_mbps.mean() << ','
       << group.mean_down_mbps.percentile(0.05) << ','
       << group.mean_down_mbps.percentile(0.95);
    for (const auto level :
         {core::QoeLevel::kBad, core::QoeLevel::kMedium, core::QoeLevel::kGood})
      os << ',' << group.objective_fraction(level);
    for (const auto level :
         {core::QoeLevel::kBad, core::QoeLevel::kMedium, core::QoeLevel::kGood})
      os << ',' << group.effective_fraction(level);
    os << '\n';
  }
  return os.str();
}

}  // namespace cgctx::telemetry
