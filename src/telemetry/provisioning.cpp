#include "telemetry/provisioning.hpp"

#include <algorithm>

namespace cgctx::telemetry {

const char* to_string(SlicePriority priority) {
  switch (priority) {
    case SlicePriority::kBestEffort: return "best-effort";
    case SlicePriority::kPrioritized: return "prioritized";
    case SlicePriority::kPremium: return "premium";
  }
  return "?";
}

namespace {

/// Merges src's observation series into dst.
void merge(GroupStats& dst, const GroupStats& src) {
  dst.sessions += src.sessions;
  for (double v : src.duration_minutes.values()) dst.duration_minutes.add(v);
  for (double v : src.mean_down_mbps.values()) dst.mean_down_mbps.add(v);
  for (std::size_t s = 0; s < core::kNumStageLabels; ++s)
    for (double v : src.stage_minutes[s].values()) dst.stage_minutes[s].add(v);
  for (std::size_t i = 0; i < 3; ++i) {
    dst.objective_counts[i] += src.objective_counts[i];
    dst.effective_counts[i] += src.effective_counts[i];
  }
}

}  // namespace

void ProvisioningAdvisor::learn(const FleetAggregator& fleet) {
  for (const auto& [key, stats] : fleet.groups()) {
    merge(contexts_[key], stats);
    merge(pooled_, stats);
  }
}

SliceRecommendation ProvisioningAdvisor::build(const std::string& key,
                                               const GroupStats& stats) const {
  SliceRecommendation out;
  out.context = key;
  out.evidence_sessions = stats.sessions;
  out.expected_minutes = stats.duration_minutes.mean();
  out.capacity_mbps = stats.mean_down_mbps.percentile(
                          policy_.capacity_percentile) *
                      policy_.headroom;
  out.priority = out.capacity_mbps >= policy_.premium_mbps
                     ? SlicePriority::kPremium
                 : out.capacity_mbps >= policy_.premium_mbps / 2.0
                     ? SlicePriority::kPrioritized
                     : SlicePriority::kBestEffort;
  return out;
}

std::optional<SliceRecommendation> ProvisioningAdvisor::fleet_default() const {
  if (pooled_.sessions == 0) return std::nullopt;
  return build("(fleet default)", pooled_);
}

std::optional<SliceRecommendation> ProvisioningAdvisor::recommend(
    const std::string& context) const {
  const auto it = contexts_.find(context);
  if (it != contexts_.end() && it->second.sessions >= policy_.min_sessions)
    return build(context, it->second);
  return fleet_default();
}

std::vector<SliceRecommendation> ProvisioningAdvisor::all() const {
  std::vector<SliceRecommendation> out;
  for (const auto& [key, stats] : contexts_)
    if (stats.sessions >= policy_.min_sessions) out.push_back(build(key, stats));
  return out;
}

}  // namespace cgctx::telemetry
