// Player activity stage dynamics (paper §2.1, §3.3, Fig. 5).
//
// Within gameplay, the player cycles through three activity stages —
// idle (lobby / menus / dialogue), passive (spectating), and active
// (playing) — whose dwell times and visit frequencies differ by title and
// by the title's gameplay activity pattern. We model this as a
// semi-Markov process: exponential-ish dwell in each stage, then a jump
// chosen from an embedded transition distribution derived from the
// catalog's long-run stage fractions and mean dwells.
#pragma once

#include <array>
#include <vector>

#include "ml/rng.hpp"
#include "net/time.hpp"
#include "sim/catalog.hpp"

namespace cgctx::sim {

/// Player activity stage: the classification target of paper §4.3.1.
enum class Stage : std::uint8_t { kActive = 0, kPassive = 1, kIdle = 2 };
inline constexpr std::size_t kNumStages = 3;

const char* to_string(Stage stage);

/// One ground-truth labeled interval of a session timeline.
struct StageInterval {
  net::Timestamp begin = 0;
  net::Timestamp end = 0;  ///< exclusive
  Stage stage = Stage::kIdle;

  [[nodiscard]] net::Duration duration() const { return end - begin; }
};

/// Semi-Markov stage process for one title.
class StageMarkovModel {
 public:
  /// Derives the model from a title's catalog entry: mean dwell per stage
  /// and an embedded jump distribution chosen so long-run time fractions
  /// approximate GameInfo::stage_fraction.
  static StageMarkovModel for_title(const GameInfo& game);

  /// Generates a ground-truth stage timeline covering exactly
  /// [start, start + duration). Gameplay begins in the idle stage (lobby /
  /// login), matching the sessions in paper Fig. 1.
  [[nodiscard]] std::vector<StageInterval> generate(net::Timestamp start,
                                                    net::Duration duration,
                                                    ml::Rng& rng) const;

  /// Theoretical per-slot (1 s) transition probability matrix implied by
  /// the model: row = from stage, column = to stage. This is the Fig. 5
  /// reference the empirical transition benches compare against.
  [[nodiscard]] std::array<std::array<double, kNumStages>, kNumStages>
  slot_transition_matrix() const;

  [[nodiscard]] const std::array<double, kNumStages>& mean_dwell_seconds()
      const {
    return mean_dwell_;
  }

 private:
  /// Mean dwell per stage, seconds (indexed by Stage).
  std::array<double, kNumStages> mean_dwell_{};
  /// Embedded jump distribution: jump_[s][t] = P(next = t | leaving s);
  /// diagonal is zero.
  std::array<std::array<double, kNumStages>, kNumStages> jump_{};
};

/// Looks up the stage covering `t` in a timeline (intervals are sorted and
/// contiguous). Returns kIdle for times outside the timeline.
Stage stage_at(const std::vector<StageInterval>& timeline, net::Timestamp t);

/// Total time per stage over a timeline, seconds (indexed by Stage).
std::array<double, kNumStages> stage_seconds(
    const std::vector<StageInterval>& timeline);

}  // namespace cgctx::sim
