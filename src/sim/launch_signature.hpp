// Per-title launch-stage packet-group schedules (paper §3.2, Fig. 3).
//
// Each cloud game streams a title-specific opening animation while the
// game initializes. On the wire this produces three downstream packet
// groups: "full" packets at the maximum payload (1432 bytes) arriving
// continuously, "steady" packets clustered in narrow payload bands over
// specific time slots, and "sparse" packets with near-random payloads.
// The paper's key empirical finding is that the *schedule* of these
// groups (band positions, arrival slots, relative rates) is a stable
// fingerprint of the title, nearly invariant to device and streaming
// settings. We model that as a deterministic per-title signature, derived
// once from a title-specific seed, that the session generator then renders
// with per-session noise.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/catalog.hpp"

namespace cgctx::sim {

/// Maximum RTP payload observed on GeForce NOW streams (paper §4.2.1).
inline constexpr std::uint32_t kFullPayloadBytes = 1432;

/// A narrow payload band active over one time interval of the launch.
struct SteadyBand {
  double start_s = 0.0;
  double end_s = 0.0;
  double payload_center = 0.0;  ///< bytes
  double payload_width = 0.0;   ///< +- uniform spread, bytes (narrow)
  double pps = 0.0;             ///< packets per second while active
};

/// An interval emitting packets with near-random payload sizes.
struct SparseBurst {
  double start_s = 0.0;
  double end_s = 0.0;
  double payload_min = 0.0;
  double payload_max = 0.0;
  double pps = 0.0;
};

/// The full launch-stage fingerprint of one title.
struct LaunchSignature {
  GameTitle title = GameTitle::kFortnite;
  double duration_s = 45.0;
  /// Full-packet rate per 1-second slot of the launch (the "arrival
  /// density of full packets" that differs across titles).
  std::vector<double> full_pps;
  std::vector<SteadyBand> steady_bands;
  std::vector<SparseBurst> sparse_bursts;
};

/// The deterministic signature of a title (cached; same result every call).
const LaunchSignature& launch_signature(GameTitle title);

/// A per-session signature variant for the long-tail pseudo-titles
/// (kOtherContinuous / kOtherSpectate). The tail stands for the hundreds
/// of catalog games outside the popular 13, so each session draws a fresh
/// launch fingerprint (seeded by `variant`) instead of reusing one cached
/// signature — this is what keeps tail sessions from being confidently
/// misattributed to a popular title.
LaunchSignature tail_signature(GameTitle title, std::uint64_t variant);

}  // namespace cgctx::sim
