#include "sim/catalog.hpp"

#include <stdexcept>

namespace cgctx::sim {

namespace {

// Popularity follows paper Table 1. Session minutes / demand / stage mixes
// are calibrated to reproduce the §5 shapes: BG3 and Cyberpunk longest
// sessions; Rocket League and CS:GO shortest; Fortnite and BG3 peak ~68
// Mbps; Hearthstone ~20 Mbps; role-playing titles carry large idle
// fractions (dialogue) and <5% passive; shooters show substantial passive
// (spectating) time; Fortnite and Dota 2 are the most active-heavy.
constexpr std::array<GameInfo, kNumTitles> kCatalog{{
    {GameTitle::kFortnite, "Fortnite", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.3780, 58, 68, 48,
     {110, 35, 40}, {0.65, 0.21, 0.14}},
    {GameTitle::kGenshinImpact, "Genshin Impact", Genre::kRolePlaying,
     ActivityPattern::kContinuousPlay, 0.2010, 68, 46, 52,
     {260, 14, 70}, {0.79, 0.035, 0.175}},
    {GameTitle::kBaldursGate3, "Baldur's Gate 3", Genre::kRolePlaying,
     ActivityPattern::kContinuousPlay, 0.0330, 95, 68, 55,
     {210, 16, 120}, {0.57, 0.04, 0.39}},
    {GameTitle::kR6Siege, "R6: Siege", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.0124, 74, 41, 40,
     {130, 55, 55}, {0.46, 0.32, 0.22}},
    {GameTitle::kHonkaiStarRail, "Honkai: Star Rail", Genre::kRolePlaying,
     ActivityPattern::kContinuousPlay, 0.0116, 64, 34, 50,
     {220, 15, 130}, {0.52, 0.04, 0.44}},
    {GameTitle::kDestiny2, "Destiny 2", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.0115, 71, 47, 45,
     {140, 50, 38}, {0.56, 0.29, 0.15}},
    {GameTitle::kCallOfDuty, "Call of Duty", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.0097, 61, 52, 42,
     {120, 48, 42}, {0.50, 0.32, 0.18}},
    {GameTitle::kCyberpunk2077, "Cyberpunk 2077", Genre::kRolePlaying,
     ActivityPattern::kContinuousPlay, 0.0084, 82, 56, 58,
     {240, 15, 105}, {0.61, 0.04, 0.35}},
    {GameTitle::kOverwatch2, "Overwatch 2", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.0074, 54, 45, 38,
     {115, 50, 35}, {0.52, 0.33, 0.15}},
    {GameTitle::kRocketLeague, "Rocket League", Genre::kSports,
     ActivityPattern::kSpectateAndPlay, 0.0064, 33, 40, 32,
     {95, 35, 32}, {0.56, 0.27, 0.17}},
    {GameTitle::kCsgo, "CS:GO/CS2", Genre::kShooter,
     ActivityPattern::kSpectateAndPlay, 0.0061, 37, 43, 35,
     {100, 62, 34}, {0.47, 0.37, 0.16}},
    {GameTitle::kDota2, "Dota 2", Genre::kMoba,
     ActivityPattern::kSpectateAndPlay, 0.0055, 79, 38, 44,
     {200, 40, 38}, {0.68, 0.19, 0.13}},
    {GameTitle::kHearthstone, "Hearthstone", Genre::kCard,
     ActivityPattern::kSpectateAndPlay, 0.0004, 44, 20, 30,
     {70, 45, 55}, {0.41, 0.29, 0.30}},
    // Long tail, outside the classifier's training catalog; parameters
    // follow the per-pattern aggregates of Fig. 11(b)/12(b).
    {GameTitle::kOtherContinuous, "Other (continuous-play)",
     Genre::kOther, ActivityPattern::kContinuousPlay, 0.13, 76, 46, 46,
     {230, 15, 95}, {0.62, 0.04, 0.34}},
    {GameTitle::kOtherSpectate, "Other (spectate-and-play)",
     Genre::kOther, ActivityPattern::kSpectateAndPlay, 0.18, 56, 48, 41,
     {120, 48, 40}, {0.53, 0.30, 0.17}},
}};

}  // namespace

const char* to_string(GameTitle title) { return info(title).name; }

const char* to_string(Genre genre) {
  switch (genre) {
    case Genre::kShooter: return "Shooter";
    case Genre::kRolePlaying: return "Role-playing";
    case Genre::kSports: return "Sports";
    case Genre::kMoba: return "MOBA";
    case Genre::kCard: return "Card";
    case Genre::kOther: return "Other";
  }
  return "?";
}

const char* to_string(ActivityPattern pattern) {
  return pattern == ActivityPattern::kSpectateAndPlay ? "Spectate-and-play"
                                                      : "Continuous-play";
}

std::span<const GameInfo, kNumTitles> catalog() { return kCatalog; }

const GameInfo& info(GameTitle title) {
  const auto index = static_cast<std::size_t>(title);
  if (index >= kNumTitles) throw std::out_of_range("info: bad GameTitle");
  return kCatalog[index];
}

std::span<const GameInfo> popular_titles() {
  return std::span<const GameInfo>(kCatalog.data(), kNumPopularTitles);
}

std::optional<GameTitle> title_from_name(const std::string& name) {
  for (const GameInfo& g : kCatalog)
    if (name == g.name) return g.title;
  return std::nullopt;
}

}  // namespace cgctx::sim
