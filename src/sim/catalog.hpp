// The cloud game catalog (paper Table 1).
//
// Thirteen popular GeForce NOW titles spanning five genres, each with the
// gameplay activity pattern the paper observed (spectate-and-play vs
// continuous-play), its share of total playtime, and the traffic-demand
// parameters our synthetic generator needs (session duration statistics,
// peak-bitrate clusters, stage mix). The numeric demand values are chosen
// to reproduce the *shapes* the paper reports in §5 (Figs. 11-13), since
// absolute field numbers are confidential.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace cgctx::sim {

enum class GameTitle : std::uint8_t {
  kFortnite,
  kGenshinImpact,
  kBaldursGate3,
  kR6Siege,
  kHonkaiStarRail,
  kDestiny2,
  kCallOfDuty,
  kCyberpunk2077,
  kOverwatch2,
  kRocketLeague,
  kCsgo,
  kDota2,
  kHearthstone,
  // A long-tail title outside the popular-13 catalog; the classifier is
  // expected to answer "unknown" and fall back to pattern inference.
  kOtherContinuous,
  kOtherSpectate,
};

inline constexpr std::size_t kNumPopularTitles = 13;
inline constexpr std::size_t kNumTitles = 15;

enum class Genre : std::uint8_t {
  kShooter,
  kRolePlaying,
  kSports,
  kMoba,
  kCard,
  kOther,
};

enum class ActivityPattern : std::uint8_t {
  kSpectateAndPlay,  ///< repeating idle/active/passive slots (shooter, MOBA, card, sports)
  kContinuousPlay,   ///< long uninterrupted active periods (role-playing)
};

const char* to_string(GameTitle title);
const char* to_string(Genre genre);
const char* to_string(ActivityPattern pattern);

/// Static per-title description.
struct GameInfo {
  GameTitle title;
  const char* name;
  Genre genre;
  ActivityPattern pattern;
  /// Fraction of total fleet playtime (Table 1 popularity column).
  double popularity;
  /// Mean session duration in minutes (drives Fig. 11 shape).
  double mean_session_minutes;
  /// Peak downstream demand in Mbps at the highest streaming setting
  /// (drives Fig. 12 shape; e.g. Hearthstone 20, Fortnite/BG3 ~68).
  double peak_demand_mbps;
  /// Launch-stage (opening animation) duration in seconds.
  double launch_seconds;
  /// Stage dwell means in seconds while in gameplay: {active, passive, idle}.
  std::array<double, 3> stage_dwell_seconds;
  /// Long-run fraction of gameplay time per stage: {active, passive, idle}.
  std::array<double, 3> stage_fraction;
};

/// All fifteen simulated titles (13 popular + 2 long-tail), indexed by
/// GameTitle value.
std::span<const GameInfo, kNumTitles> catalog();

/// Info for one title.
const GameInfo& info(GameTitle title);

/// The 13 popular titles only (what the classifier is trained on).
std::span<const GameInfo> popular_titles();

/// Parses a title by exact display name; nullopt when unknown.
std::optional<GameTitle> title_from_name(const std::string& name);

}  // namespace cgctx::sim
