// Non-gaming cross traffic for exercising the cloud-gaming flow detector.
//
// An operational vantage point sees gaming flows interleaved with
// everything else a household produces. The detector must keep cloud-game
// streaming flows and reject these look-alikes — in particular VoIP,
// which is also consistent RTP-over-UDP but at a fraction of the
// bandwidth, and video streaming, which matches the bandwidth but is TCP
// and has no upstream input stream.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/rng.hpp"
#include "net/packet.hpp"

namespace cgctx::sim {

/// Bursty HTTPS web browsing: TCP, short downstream bursts of full-size
/// segments separated by think time.
std::vector<net::PacketRecord> web_browsing_flow(net::Ipv4Addr client_ip,
                                                 double duration_s,
                                                 ml::Rng& rng);

/// Adaptive video streaming: TCP, periodic multi-second chunk downloads
/// at several Mbps, negligible upstream.
std::vector<net::PacketRecord> video_streaming_flow(net::Ipv4Addr client_ip,
                                                    double duration_s,
                                                    ml::Rng& rng);

/// Bidirectional VoIP call: RTP over UDP, 50 packets/s of ~160-byte
/// payloads each way, consistent SSRC — the closest negative case.
std::vector<net::PacketRecord> voip_flow(net::Ipv4Addr client_ip,
                                         double duration_s, ml::Rng& rng);

}  // namespace cgctx::sim
