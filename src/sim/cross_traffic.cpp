#include "sim/cross_traffic.hpp"

#include <algorithm>

namespace cgctx::sim {

namespace {

net::Ipv4Addr random_server(ml::Rng& rng, std::uint8_t first_octet) {
  return net::Ipv4Addr::from_octets(
      first_octet, static_cast<std::uint8_t>(rng.next_below(250) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1));
}

net::PacketRecord make_packet(net::Timestamp t, net::Direction dir,
                              const net::FiveTuple& up_tuple,
                              std::uint32_t payload) {
  net::PacketRecord pkt;
  pkt.timestamp = t;
  pkt.direction = dir;
  pkt.tuple = dir == net::Direction::kUpstream ? up_tuple : up_tuple.reversed();
  pkt.payload_size = payload;
  return pkt;
}

void sort_by_time(std::vector<net::PacketRecord>& packets) {
  std::sort(packets.begin(), packets.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
}

}  // namespace

std::vector<net::PacketRecord> web_browsing_flow(net::Ipv4Addr client_ip,
                                                 double duration_s,
                                                 ml::Rng& rng) {
  const net::FiveTuple up_tuple{
      client_ip, random_server(rng, 104),
      static_cast<std::uint16_t>(49152 + rng.next_below(16000)), 443, 6};
  std::vector<net::PacketRecord> packets;
  double t = 0.0;
  while (t < duration_s) {
    // Request upstream, then a burst of downstream segments.
    packets.push_back(make_packet(net::duration_from_seconds(t),
                                  net::Direction::kUpstream, up_tuple,
                                  static_cast<std::uint32_t>(rng.uniform(200, 900))));
    const auto burst = static_cast<std::size_t>(rng.uniform(5, 120));
    for (std::size_t i = 0; i < burst; ++i) {
      t += rng.uniform(0.0002, 0.002);
      packets.push_back(make_packet(net::duration_from_seconds(t),
                                    net::Direction::kDownstream, up_tuple, 1460));
    }
    t += rng.uniform(0.5, 6.0);  // think time
  }
  sort_by_time(packets);
  return packets;
}

std::vector<net::PacketRecord> video_streaming_flow(net::Ipv4Addr client_ip,
                                                    double duration_s,
                                                    ml::Rng& rng) {
  const net::FiveTuple up_tuple{
      client_ip, random_server(rng, 23),
      static_cast<std::uint16_t>(49152 + rng.next_below(16000)), 443, 6};
  std::vector<net::PacketRecord> packets;
  double t = 0.0;
  while (t < duration_s) {
    // One ~4 s media chunk downloaded at line rate every ~4 s.
    const double chunk_mbits = rng.uniform(8.0, 30.0);
    const auto segments =
        static_cast<std::size_t>(chunk_mbits * 1e6 / 8.0 / 1460.0);
    double chunk_t = t;
    for (std::size_t i = 0; i < segments; ++i) {
      chunk_t += rng.uniform(0.00002, 0.0002);
      packets.push_back(make_packet(net::duration_from_seconds(chunk_t),
                                    net::Direction::kDownstream, up_tuple, 1460));
      // Sparse TCP acks upstream.
      if (i % 10 == 0)
        packets.push_back(make_packet(net::duration_from_seconds(chunk_t),
                                      net::Direction::kUpstream, up_tuple, 52));
    }
    t += 4.0;
  }
  sort_by_time(packets);
  return packets;
}

std::vector<net::PacketRecord> voip_flow(net::Ipv4Addr client_ip,
                                         double duration_s, ml::Rng& rng) {
  const net::FiveTuple up_tuple{
      client_ip, random_server(rng, 52),
      static_cast<std::uint16_t>(49152 + rng.next_below(16000)),
      static_cast<std::uint16_t>(10000 + rng.next_below(10000)), 17};
  const auto down_ssrc = static_cast<std::uint32_t>(rng.next_u64());
  const auto up_ssrc = static_cast<std::uint32_t>(rng.next_u64());
  std::vector<net::PacketRecord> packets;
  std::uint16_t up_seq = 0;
  std::uint16_t down_seq = 0;
  // 20 ms voice frames both ways.
  for (double t = 0.0; t < duration_s; t += 0.02) {
    for (const bool upstream : {true, false}) {
      net::PacketRecord pkt = make_packet(
          net::duration_from_seconds(t + rng.uniform(0.0, 0.004)),
          upstream ? net::Direction::kUpstream : net::Direction::kDownstream,
          up_tuple, static_cast<std::uint32_t>(rng.uniform(120, 190)));
      net::RtpHeader rtp;
      rtp.payload_type = 111;  // opus
      rtp.sequence = upstream ? up_seq++ : down_seq++;
      rtp.rtp_timestamp = static_cast<std::uint32_t>(t * 48000.0);
      rtp.ssrc = upstream ? up_ssrc : down_ssrc;
      pkt.rtp = rtp;
      packets.push_back(pkt);
    }
  }
  sort_by_time(packets);
  return packets;
}

}  // namespace cgctx::sim
