// Pre-gameplay platform session anatomy.
//
// Before a cloud game streams, the client converses with the platform's
// administrative services: authentication and catalog browsing over
// HTTPS, then a server-allocation exchange, then connectivity probes to
// the assigned streaming server (the anatomy measured by Lyu et al.
// PAM'24, which the paper builds on). These flows precede the RTP
// streaming flow at the vantage point; the detector must not mistake
// them for the stream, and a realistic replay includes them.
#pragma once

#include <vector>

#include "ml/rng.hpp"
#include "net/packet.hpp"

namespace cgctx::sim {

/// One platform phase's flow, labeled for tests/visualization.
enum class PlatformPhase : std::uint8_t {
  kAdminApi,        ///< HTTPS to platform API (auth, catalog, entitlement)
  kServerAllocate,  ///< allocation exchange with the regional broker
  kConnectivityProbe,  ///< short UDP probes to the assigned game server
};

const char* to_string(PlatformPhase phase);

struct PlatformFlow {
  PlatformPhase phase = PlatformPhase::kAdminApi;
  std::vector<net::PacketRecord> packets;
};

/// Generates the platform-administration traffic preceding one streaming
/// session: flows start before `stream_start` and finish by it (the
/// probe flow targets `server_ip`, the streaming server, on a nearby
/// port). Deterministic given the RNG.
std::vector<PlatformFlow> platform_session_anatomy(net::Ipv4Addr client_ip,
                                                   net::Ipv4Addr server_ip,
                                                   net::Timestamp stream_start,
                                                   ml::Rng& rng);

/// Flattens the anatomy into a single time-sorted packet list.
std::vector<net::PacketRecord> flatten(const std::vector<PlatformFlow>& flows);

}  // namespace cgctx::sim
