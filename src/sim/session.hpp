// Synthetic cloud-game streaming session generator.
//
// This is the repo's substitute for the paper's labeled PCAP dataset and
// field deployment: it renders complete, ground-truth-labeled sessions
// whose traffic reproduces every phenomenon §3 reports. A session is
//
//   [ launch stage ][ gameplay: idle | active | passive | ... ]
//
// where the launch stage renders the title's packet-group signature
// (launch_signature.hpp) and gameplay renders the semi-Markov stage
// timeline (stage_model.hpp) through the per-stage volumetric levels
// (volumetric.hpp), under configurable client settings and network
// conditions.
//
// Two fidelities share one engine:
//  - packet fidelity: every RTP packet materialized (lab-scale sessions);
//  - slot fidelity: per-second volumetric/QoS summaries for arbitrarily
//    long sessions, with packets materialized only for the launch window
//    (all the title classifier needs). This mirrors how an ISP-scale
//    deployment consumes flow telemetry rather than raw packets.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/rng.hpp"
#include "net/packet.hpp"
#include "sim/catalog.hpp"
#include "sim/config.hpp"
#include "sim/stage_model.hpp"

namespace cgctx::sim {

/// Cloud gaming platform the session streams from. The partner ISP hosts
/// GeForce NOW, but the lab also captured Xbox Cloud Gaming, Amazon Luna
/// and PS5 Cloud Streaming sessions (paper §3.1); platforms differ at
/// the flow-metadata level (server port ranges) while the gameplay
/// phenomena are shared.
enum class CloudPlatform : std::uint8_t {
  kGeforceNow,
  kXboxCloud,
  kAmazonLuna,
  kPsCloudStreaming,
};

const char* to_string(CloudPlatform platform);

/// The server-side UDP streaming port the simulator uses for a platform
/// (a representative value inside each platform's documented range).
std::uint16_t streaming_port(CloudPlatform platform);

/// Everything needed to (re)generate one session deterministically.
struct SessionSpec {
  GameTitle title = GameTitle::kFortnite;
  ClientConfig config;
  NetworkConditions network = NetworkConditions::lab();
  double gameplay_seconds = 180.0;
  std::uint64_t seed = 1;
  net::Timestamp start_time = 0;
  CloudPlatform platform = CloudPlatform::kGeforceNow;
};

/// Per-second bidirectional telemetry for one session slot — the four
/// volumetric attributes of §4.3.1 plus the QoS/QoE observables the
/// network observability module measures (frame delivery, latency, loss).
struct SlotSample {
  std::uint64_t down_bytes = 0;
  std::uint64_t down_packets = 0;
  std::uint64_t up_bytes = 0;
  std::uint64_t up_packets = 0;
  double frames = 0.0;     ///< video frames delivered this second
  double rtt_ms = 0.0;     ///< measured round-trip latency
  double loss_rate = 0.0;  ///< measured packet loss fraction
};

/// The downstream demand (Mbps) of a title at given client settings,
/// before any network cap: peak catalog demand scaled by resolution and
/// frame rate. This produces the per-title bandwidth clusters of Fig. 12.
double demand_mbps(const GameInfo& game, const ClientConfig& config);

/// A fully generated, ground-truth-labeled session.
struct LabeledSession {
  SessionSpec spec;
  net::FiveTuple tuple;      ///< client -> server orientation
  net::Ipv4Addr client_ip;   ///< subscriber endpoint (Direction reference)

  net::Timestamp launch_begin = 0;
  net::Timestamp gameplay_begin = 0;  ///< == launch_begin + launch duration
  net::Timestamp end = 0;

  /// Time-sorted packets (both directions). Packet fidelity: the whole
  /// session. Slot fidelity: the launch window only.
  std::vector<net::PacketRecord> packets;

  /// Per-second telemetry covering the whole session (index 0 = first
  /// second after launch_begin). Present in both fidelities.
  std::vector<SlotSample> slots;

  /// Ground-truth gameplay stage timeline (excludes the launch stage).
  std::vector<StageInterval> stages;

  /// Session peak downstream rate (Mbps) after the network cap; the
  /// reference the per-stage relative levels are rendered against.
  double peak_down_mbps = 0.0;
  /// Peak upstream input packet rate (packets/s).
  double peak_up_pps = 0.0;

  [[nodiscard]] double duration_seconds() const {
    return net::duration_to_seconds(end - launch_begin);
  }
  /// Ground-truth stage at time t (launch window reported as kIdle; use
  /// in_launch() to distinguish).
  [[nodiscard]] Stage stage_label_at(net::Timestamp t) const {
    return stage_at(stages, t);
  }
  [[nodiscard]] bool in_launch(net::Timestamp t) const {
    return t >= launch_begin && t < gameplay_begin;
  }
};

class SessionGenerator {
 public:
  /// Renders every packet of the session. Intended for lab-scale
  /// gameplay durations (seconds to minutes).
  [[nodiscard]] LabeledSession generate(const SessionSpec& spec) const;

  /// Renders launch packets + slot telemetry only; gameplay packets are
  /// not materialized. Safe for hour-long sessions.
  [[nodiscard]] LabeledSession generate_slots_only(const SessionSpec& spec) const;

 private:
  [[nodiscard]] LabeledSession generate_impl(const SessionSpec& spec,
                                             bool render_gameplay_packets) const;
};

}  // namespace cgctx::sim
