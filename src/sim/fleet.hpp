// ISP-scale fleet simulation (paper §5).
//
// Samples streaming sessions the way the partner ISP's deployment sees
// them: titles weighted by Table 1 popularity (including a ~31% long tail
// outside the popular 13), the lab device mix, per-title session duration
// distributions, and a mix of healthy and degraded subscriber network
// paths. Rendered at slot fidelity so three months of sessions are
// tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/session.hpp"

namespace cgctx::sim {

struct FleetOptions {
  std::uint64_t seed = 99;
  /// Scale on per-title mean session durations (1.0 = paper-scale hours;
  /// benches use ~0.1 to keep runtimes sane while preserving ratios).
  double duration_scale = 1.0;
  /// Fractions of subscribers on each network profile.
  double fraction_good = 0.82;
  double fraction_mid = 0.13;   ///< mildly degraded
  double fraction_congested = 0.05;
};

/// Draws one fleet session spec (title, config, duration, network path).
class FleetSampler {
 public:
  explicit FleetSampler(const FleetOptions& options);

  [[nodiscard]] SessionSpec sample();

  [[nodiscard]] const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
  ml::Rng rng_;
  std::vector<double> cumulative_popularity_;
};

/// Options for a packet-fidelity replay of a small concurrent fleet, the
/// input shape a vantage-point probe consumes (interleaved subscribers
/// plus household cross traffic on one wire).
struct FleetReplayOptions {
  std::size_t sessions = 6;
  std::uint64_t seed = 2025;
  /// Packet fidelity renders every RTP packet, so gameplay stays short.
  double gameplay_seconds = 40.0;
  /// Session/cross-flow start times spread uniformly over [0, this).
  double start_spread_s = 20.0;
  /// Non-gaming flows (VoIP / web / video round-robin) mixed in.
  std::size_t cross_traffic_flows = 0;
  double cross_traffic_duration_s = 30.0;
};

/// One synthesized vantage-point wire.
struct FleetReplay {
  /// Timestamp-sorted interleaving of all sessions and cross traffic.
  std::vector<net::PacketRecord> wire;
  /// Canonical streaming-flow tuple of each gaming session (distinct).
  std::vector<net::FiveTuple> session_flows;
};

/// Samples `options.sessions` fleet sessions (reusing FleetSampler's
/// title/config/network mix), renders them at packet fidelity with
/// staggered starts and guaranteed-distinct flow tuples, mixes in cross
/// traffic, and merges everything into one time-sorted wire.
[[nodiscard]] FleetReplay build_fleet_replay(const FleetReplayOptions& options);

}  // namespace cgctx::sim
