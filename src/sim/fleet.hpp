// ISP-scale fleet simulation (paper §5).
//
// Samples streaming sessions the way the partner ISP's deployment sees
// them: titles weighted by Table 1 popularity (including a ~31% long tail
// outside the popular 13), the lab device mix, per-title session duration
// distributions, and a mix of healthy and degraded subscriber network
// paths. Rendered at slot fidelity so three months of sessions are
// tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/session.hpp"

namespace cgctx::sim {

struct FleetOptions {
  std::uint64_t seed = 99;
  /// Scale on per-title mean session durations (1.0 = paper-scale hours;
  /// benches use ~0.1 to keep runtimes sane while preserving ratios).
  double duration_scale = 1.0;
  /// Fractions of subscribers on each network profile.
  double fraction_good = 0.82;
  double fraction_mid = 0.13;   ///< mildly degraded
  double fraction_congested = 0.05;
};

/// Draws one fleet session spec (title, config, duration, network path).
class FleetSampler {
 public:
  explicit FleetSampler(const FleetOptions& options);

  [[nodiscard]] SessionSpec sample();

  [[nodiscard]] const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
  ml::Rng rng_;
  std::vector<double> cumulative_popularity_;
};

}  // namespace cgctx::sim
