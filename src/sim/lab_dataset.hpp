// Lab collection plan mirroring paper Table 2.
//
// The paper's lab dataset is 531 labeled sessions across eight
// device/OS/software rows and the thirteen popular titles. This module
// produces the equivalent synthetic collection plan: a list of
// SessionSpecs a caller renders at the fidelity it needs, plus the data
// augmentation step §4.4 applies (variation-based synthesis for classes
// with fewer samples).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/session.hpp"

namespace cgctx::sim {

struct LabPlanOptions {
  std::uint64_t seed = 1234;
  /// Gameplay seconds per session (the paper's lab sessions average ~7.5
  /// minutes; tests use shorter ones).
  double gameplay_seconds = 120.0;
  /// Scale factor on per-row session counts (1.0 = the full 531-session
  /// Table 2 plan; tests shrink it).
  double scale = 1.0;
};

/// Builds the Table 2 plan: per config row, `row.sessions * scale`
/// sessions, cycling titles so every title appears under every row, with
/// per-session RNG seeds derived from the plan seed. Network conditions
/// are the lab's near-ideal profile.
std::vector<SessionSpec> lab_session_plan(const LabPlanOptions& options);

/// Data augmentation as in §4.4: returns `copies` variations of a spec
/// that keep the title (class) but redraw the session seed, so the
/// launch rendering noise, stage timeline, and network jitter all vary.
std::vector<SessionSpec> augment(const SessionSpec& base, std::size_t copies,
                                 std::uint64_t seed);

}  // namespace cgctx::sim
