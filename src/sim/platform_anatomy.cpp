#include "sim/platform_anatomy.hpp"

#include <algorithm>

namespace cgctx::sim {

namespace {

net::PacketRecord make(net::Timestamp t, net::Direction dir,
                       const net::FiveTuple& up_tuple, std::uint32_t payload) {
  net::PacketRecord pkt;
  pkt.timestamp = t;
  pkt.direction = dir;
  pkt.tuple = dir == net::Direction::kUpstream ? up_tuple : up_tuple.reversed();
  pkt.payload_size = payload;
  return pkt;
}

/// A short TLS-like request/response exchange over TCP 443.
PlatformFlow https_exchange(net::Ipv4Addr client_ip, net::Ipv4Addr server_ip,
                            double start_s, double duration_s,
                            PlatformPhase phase, ml::Rng& rng) {
  PlatformFlow flow;
  flow.phase = phase;
  const net::FiveTuple up{
      client_ip, server_ip,
      static_cast<std::uint16_t>(49152 + rng.next_below(16000)), 443, 6};
  double t = start_s;
  // Handshake-ish small packets, then a few request/response rounds.
  for (int i = 0; i < 3; ++i) {
    flow.packets.push_back(make(net::duration_from_seconds(t),
                                net::Direction::kUpstream, up,
                                static_cast<std::uint32_t>(rng.uniform(80, 400))));
    t += rng.uniform(0.005, 0.03);
    flow.packets.push_back(
        make(net::duration_from_seconds(t), net::Direction::kDownstream, up,
             static_cast<std::uint32_t>(rng.uniform(120, 1460))));
    t += rng.uniform(0.005, 0.03);
  }
  const double end_s = start_s + duration_s;
  while (t < end_s) {
    flow.packets.push_back(make(net::duration_from_seconds(t),
                                net::Direction::kUpstream, up,
                                static_cast<std::uint32_t>(rng.uniform(100, 900))));
    t += rng.uniform(0.002, 0.02);
    const auto burst = static_cast<int>(rng.uniform(1, 12));
    for (int i = 0; i < burst && t < end_s; ++i) {
      flow.packets.push_back(make(net::duration_from_seconds(t),
                                  net::Direction::kDownstream, up, 1460));
      t += rng.uniform(0.0005, 0.004);
    }
    t += rng.uniform(0.1, 0.9);  // think time between API calls
  }
  return flow;
}

}  // namespace

const char* to_string(PlatformPhase phase) {
  switch (phase) {
    case PlatformPhase::kAdminApi: return "admin-api";
    case PlatformPhase::kServerAllocate: return "server-allocate";
    case PlatformPhase::kConnectivityProbe: return "connectivity-probe";
  }
  return "?";
}

std::vector<PlatformFlow> platform_session_anatomy(net::Ipv4Addr client_ip,
                                                   net::Ipv4Addr server_ip,
                                                   net::Timestamp stream_start,
                                                   ml::Rng& rng) {
  std::vector<PlatformFlow> flows;
  const double start = net::duration_to_seconds(stream_start);

  // Platform API endpoints (auth, catalog) live in a different prefix
  // from the streaming servers.
  const auto api_ip = net::Ipv4Addr::from_octets(
      151, 101, static_cast<std::uint8_t>(rng.next_below(120) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1));

  // 1) Admin/API browsing: one or two HTTPS flows in the ~25 s before the
  // stream (login, catalog, game selection).
  const int api_flows = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < api_flows; ++i) {
    const double flow_start = start - rng.uniform(12.0, 26.0);
    flows.push_back(https_exchange(client_ip, api_ip, flow_start,
                                   rng.uniform(4.0, 10.0),
                                   PlatformPhase::kAdminApi, rng));
  }

  // 2) Server allocation: a short exchange with the regional broker just
  // before the stream starts.
  flows.push_back(https_exchange(client_ip, api_ip, start - rng.uniform(3.0, 6.0),
                                 rng.uniform(1.0, 2.0),
                                 PlatformPhase::kServerAllocate, rng));

  // 3) Connectivity probes to the assigned streaming server: a handful of
  // small UDP round trips on the control port right before streaming.
  PlatformFlow probe;
  probe.phase = PlatformPhase::kConnectivityProbe;
  const net::FiveTuple up{
      client_ip, server_ip,
      static_cast<std::uint16_t>(49152 + rng.next_below(16000)), 49005, 17};
  double t = start - rng.uniform(0.8, 2.0);
  for (int i = 0; i < 8; ++i) {
    probe.packets.push_back(make(net::duration_from_seconds(t),
                                 net::Direction::kUpstream, up,
                                 static_cast<std::uint32_t>(rng.uniform(40, 120))));
    t += rng.uniform(0.004, 0.015);
    probe.packets.push_back(make(net::duration_from_seconds(t),
                                 net::Direction::kDownstream, up,
                                 static_cast<std::uint32_t>(rng.uniform(40, 120))));
    t += rng.uniform(0.02, 0.08);
    if (net::duration_from_seconds(t) >= stream_start) break;
  }
  flows.push_back(std::move(probe));
  return flows;
}

std::vector<net::PacketRecord> flatten(const std::vector<PlatformFlow>& flows) {
  std::vector<net::PacketRecord> out;
  for (const PlatformFlow& flow : flows)
    out.insert(out.end(), flow.packets.begin(), flow.packets.end());
  std::sort(out.begin(), out.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return out;
}

}  // namespace cgctx::sim
