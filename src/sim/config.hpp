// Client device / streaming-setting configurations (paper Table 2) and
// network condition models.
//
// The lab dataset spans PCs (Windows/macOS, native app and browser),
// Android and iOS mobiles, an Android TV and an Xbox console, each with a
// range of graphic resolutions and 30-120 fps streaming. Resolution and
// frame rate set the session's peak bitrate; device class caps the
// resolutions available, reproducing the two-to-four per-title bandwidth
// clusters of Fig. 12(a).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/rng.hpp"
#include "net/time.hpp"

namespace cgctx::sim {

enum class DeviceClass : std::uint8_t { kPc, kMobile, kTv, kConsole };
enum class Os : std::uint8_t { kWindows, kMacOs, kAndroid, kIos, kAndroidTv, kXboxOs };
enum class Software : std::uint8_t { kNativeApp, kBrowser };
enum class Resolution : std::uint8_t { kSd, kHd, kFhd, kQhd, kUhd };

const char* to_string(DeviceClass device);
const char* to_string(Os os);
const char* to_string(Software software);
const char* to_string(Resolution resolution);

/// Relative bitrate multiplier of a resolution (FHD = 1.0).
double resolution_bitrate_factor(Resolution resolution);

/// One streaming client configuration.
struct ClientConfig {
  DeviceClass device = DeviceClass::kPc;
  Os os = Os::kWindows;
  Software software = Software::kNativeApp;
  Resolution resolution = Resolution::kFhd;
  int fps = 60;  ///< streaming frame rate setting (30-120)

  [[nodiscard]] std::string describe() const;
};

/// One row of the Table 2 lab collection plan.
struct LabConfigRow {
  DeviceClass device;
  Os os;
  Software software;
  Resolution min_resolution;  ///< lowest resolution used on this setup
  Resolution max_resolution;  ///< highest resolution used on this setup
  int sessions;               ///< number of lab sessions collected
};

/// The eight lab configuration rows of Table 2 (531 sessions total).
std::span<const LabConfigRow> lab_config_rows();

/// Draws a concrete ClientConfig uniformly from a Table 2 row: resolution
/// within the row's range, fps in {30, 60, 120}.
ClientConfig sample_config(const LabConfigRow& row, ml::Rng& rng);

/// Draws a ClientConfig from the whole lab matrix, weighted by per-row
/// session counts (the fleet's device mix).
ClientConfig sample_config(ml::Rng& rng);

/// Network path conditions applied to a generated session.
struct NetworkConditions {
  double rtt_ms = 8.0;          ///< base round-trip latency
  double jitter_ms = 1.0;       ///< stddev of per-packet one-way delay noise
  double loss_rate = 0.0005;    ///< independent packet drop probability
  double bandwidth_mbps = 1000; ///< access link cap (downstream)

  /// The near-ideal lab access network (~1 Gbps, <10 ms, <0.1% loss).
  static NetworkConditions lab();
  /// A healthy fleet subscriber path.
  static NetworkConditions good();
  /// A congested path: the Fig. 13 "genuinely bad QoE" tail (high lag,
  /// loss, and a throughput cap that forces bitrate down).
  static NetworkConditions congested();
};

}  // namespace cgctx::sim
