#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/cross_traffic.hpp"

namespace cgctx::sim {

FleetSampler::FleetSampler(const FleetOptions& options)
    : options_(options), rng_(options.seed) {
  double acc = 0.0;
  cumulative_popularity_.reserve(kNumTitles);
  for (const GameInfo& game : catalog()) {
    acc += game.popularity;
    cumulative_popularity_.push_back(acc);
  }
  // Normalize in case the catalog popularity does not sum to exactly 1.
  for (double& c : cumulative_popularity_) c /= acc;
}

SessionSpec FleetSampler::sample() {
  SessionSpec spec;

  // Popularity-weighted title, long tail included.
  const double u = rng_.next_double();
  std::size_t index = 0;
  while (index + 1 < cumulative_popularity_.size() &&
         u > cumulative_popularity_[index])
    ++index;
  spec.title = static_cast<GameTitle>(index);
  const GameInfo& game = info(spec.title);

  spec.config = sample_config(rng_);

  // Session duration: exponential around the title's mean, floored at two
  // minutes of gameplay so even the shortest sessions cover a launch plus
  // some play.
  const double mean_s = game.mean_session_minutes * 60.0 * options_.duration_scale;
  const double dur = -mean_s * std::log(1.0 - rng_.next_double());
  spec.gameplay_seconds = std::max(120.0 * options_.duration_scale, dur);

  // Network path mix.
  const double n = rng_.next_double();
  if (n < options_.fraction_congested) {
    spec.network = NetworkConditions::congested();
  } else if (n < options_.fraction_congested + options_.fraction_mid) {
    // Mildly degraded: medium latency, some loss, constrained bandwidth.
    spec.network = NetworkConditions{45.0, 6.0, 0.01, 18.0};
  } else {
    spec.network = NetworkConditions::good();
  }

  spec.seed = rng_.next_u64();
  return spec;
}

FleetReplay build_fleet_replay(const FleetReplayOptions& options) {
  FleetReplay replay;
  ml::Rng rng(options.seed);
  FleetOptions fleet_options;
  fleet_options.seed = options.seed;
  FleetSampler sampler(fleet_options);
  const SessionGenerator generator;

  std::set<net::FiveTuple> used_flows;
  for (std::size_t i = 0; i < options.sessions; ++i) {
    SessionSpec spec = sampler.sample();
    spec.gameplay_seconds = options.gameplay_seconds;
    spec.start_time = net::duration_from_seconds(
        rng.uniform(0.0, options.start_spread_s));
    // The flow tuple derives from the spec seed; reroll until distinct so
    // the wire carries `sessions` separate streaming flows.
    LabeledSession session = generator.generate(spec);
    while (!used_flows.insert(session.tuple.canonical()).second) {
      spec.seed = rng.next_u64();
      session = generator.generate(spec);
    }
    replay.session_flows.push_back(session.tuple.canonical());
    replay.wire.insert(replay.wire.end(), session.packets.begin(),
                       session.packets.end());
  }

  for (std::size_t i = 0; i < options.cross_traffic_flows; ++i) {
    const auto client = net::Ipv4Addr::from_octets(
        10, 200, static_cast<std::uint8_t>(rng.next_below(250) + 1),
        static_cast<std::uint8_t>(rng.next_below(250) + 1));
    std::vector<net::PacketRecord> flow;
    switch (i % 3) {
      case 0: flow = voip_flow(client, options.cross_traffic_duration_s, rng);
              break;
      case 1: flow = web_browsing_flow(client, options.cross_traffic_duration_s,
                                       rng);
              break;
      default: flow = video_streaming_flow(
                   client, options.cross_traffic_duration_s, rng);
    }
    const net::Duration offset =
        net::duration_from_seconds(rng.uniform(0.0, options.start_spread_s));
    for (net::PacketRecord& pkt : flow) pkt.timestamp += offset;
    replay.wire.insert(replay.wire.end(), flow.begin(), flow.end());
  }

  std::stable_sort(replay.wire.begin(), replay.wire.end(),
                   [](const net::PacketRecord& a, const net::PacketRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return replay;
}

}  // namespace cgctx::sim
