#include "sim/fleet.hpp"

#include <cmath>

namespace cgctx::sim {

FleetSampler::FleetSampler(const FleetOptions& options)
    : options_(options), rng_(options.seed) {
  double acc = 0.0;
  cumulative_popularity_.reserve(kNumTitles);
  for (const GameInfo& game : catalog()) {
    acc += game.popularity;
    cumulative_popularity_.push_back(acc);
  }
  // Normalize in case the catalog popularity does not sum to exactly 1.
  for (double& c : cumulative_popularity_) c /= acc;
}

SessionSpec FleetSampler::sample() {
  SessionSpec spec;

  // Popularity-weighted title, long tail included.
  const double u = rng_.next_double();
  std::size_t index = 0;
  while (index + 1 < cumulative_popularity_.size() &&
         u > cumulative_popularity_[index])
    ++index;
  spec.title = static_cast<GameTitle>(index);
  const GameInfo& game = info(spec.title);

  spec.config = sample_config(rng_);

  // Session duration: exponential around the title's mean, floored at two
  // minutes of gameplay so even the shortest sessions cover a launch plus
  // some play.
  const double mean_s = game.mean_session_minutes * 60.0 * options_.duration_scale;
  const double dur = -mean_s * std::log(1.0 - rng_.next_double());
  spec.gameplay_seconds = std::max(120.0 * options_.duration_scale, dur);

  // Network path mix.
  const double n = rng_.next_double();
  if (n < options_.fraction_congested) {
    spec.network = NetworkConditions::congested();
  } else if (n < options_.fraction_congested + options_.fraction_mid) {
    // Mildly degraded: medium latency, some loss, constrained bandwidth.
    spec.network = NetworkConditions{45.0, 6.0, 0.01, 18.0};
  } else {
    spec.network = NetworkConditions::good();
  }

  spec.seed = rng_.next_u64();
  return spec;
}

}  // namespace cgctx::sim
