#include "sim/stage_model.hpp"

#include <algorithm>
#include <cmath>

namespace cgctx::sim {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kActive: return "active";
    case Stage::kPassive: return "passive";
    case Stage::kIdle: return "idle";
  }
  return "?";
}

StageMarkovModel StageMarkovModel::for_title(const GameInfo& game) {
  StageMarkovModel model;
  model.mean_dwell_ = game.stage_dwell_seconds;

  // Long-run fraction f_s = visit_rate_s * dwell_s, so the embedded jump
  // chain must visit stage s at rate proportional to f_s / dwell_s.
  // Choosing P(next = t | leaving s) proportional to that visit rate
  // (excluding s itself) reproduces the target fractions closely.
  std::array<double, kNumStages> visit_rate{};
  for (std::size_t s = 0; s < kNumStages; ++s)
    visit_rate[s] = game.stage_fraction[s] / game.stage_dwell_seconds[s];
  for (std::size_t s = 0; s < kNumStages; ++s) {
    double total = 0.0;
    for (std::size_t t = 0; t < kNumStages; ++t)
      if (t != s) total += visit_rate[t];
    for (std::size_t t = 0; t < kNumStages; ++t)
      model.jump_[s][t] = (t == s || total == 0.0) ? 0.0 : visit_rate[t] / total;
  }
  return model;
}

std::vector<StageInterval> StageMarkovModel::generate(net::Timestamp start,
                                                      net::Duration duration,
                                                      ml::Rng& rng) const {
  std::vector<StageInterval> timeline;
  const net::Timestamp end = start + duration;
  net::Timestamp cursor = start;
  Stage current = Stage::kIdle;  // lobby / login comes first
  bool has_played = false;       // passive (spectating) requires prior play

  // Per-session player variability: how often this player ends up
  // spectating varies widely (skill, game mode, party play). Scaling the
  // jump probability into the passive stage makes per-session stage
  // mixes overlap across the two activity patterns, so pattern inference
  // must read the transition *structure*, not a single fraction.
  const double passivity = rng.uniform(0.55, 1.65);
  auto jump_to = [&](std::size_t from, double u) {
    std::array<double, kNumStages> row = jump_[from];
    row[static_cast<std::size_t>(Stage::kPassive)] *= passivity;
    double total = 0.0;
    for (double p : row) total += p;
    double acc = 0.0;
    for (std::size_t t = 0; t < kNumStages; ++t) {
      acc += row[t] / total;
      if (u < acc) return static_cast<Stage>(t);
    }
    return static_cast<Stage>(kNumStages - 1);
  };

  while (cursor < end) {
    const auto s = static_cast<std::size_t>(current);
    // Dwell: a 5-second floor (a stage shorter than that is not
    // observable at 1 s slot granularity) plus an exponential tail.
    const double mean = mean_dwell_[s];
    const double floor_s = std::min(5.0, mean * 0.5);
    const double tail = -(mean - floor_s) * std::log(1.0 - rng.next_double());
    const auto dwell = net::duration_from_seconds(floor_s + tail);
    const net::Timestamp interval_end = std::min(end, cursor + dwell);
    // Merge with the previous interval if the jump chain revisited the
    // same stage (possible only via numeric corner cases).
    if (!timeline.empty() && timeline.back().stage == current) {
      timeline.back().end = interval_end;
    } else {
      timeline.push_back(StageInterval{cursor, interval_end, current});
    }
    cursor = interval_end;

    if (current == Stage::kActive) has_played = true;

    // Jump to the next stage.
    current = jump_to(s, rng.next_double());
    // A player cannot spectate (passive) before having played: the match
    // must start before the player can be eliminated and watch teammates.
    if (current == Stage::kPassive && !has_played) current = Stage::kActive;
  }
  return timeline;
}

std::array<std::array<double, kNumStages>, kNumStages>
StageMarkovModel::slot_transition_matrix() const {
  std::array<std::array<double, kNumStages>, kNumStages> matrix{};
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const double leave = std::min(1.0, 1.0 / mean_dwell_[s]);
    for (std::size_t t = 0; t < kNumStages; ++t)
      matrix[s][t] = t == s ? 1.0 - leave : leave * jump_[s][t];
  }
  return matrix;
}

Stage stage_at(const std::vector<StageInterval>& timeline, net::Timestamp t) {
  for (const StageInterval& interval : timeline)
    if (t >= interval.begin && t < interval.end) return interval.stage;
  return Stage::kIdle;
}

std::array<double, kNumStages> stage_seconds(
    const std::vector<StageInterval>& timeline) {
  std::array<double, kNumStages> seconds{};
  for (const StageInterval& interval : timeline)
    seconds[static_cast<std::size_t>(interval.stage)] +=
        net::duration_to_seconds(interval.duration());
  return seconds;
}

}  // namespace cgctx::sim
