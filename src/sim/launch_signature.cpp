#include "sim/launch_signature.hpp"

#include <array>
#include <cmath>
#include <mutex>

#include "ml/rng.hpp"

namespace cgctx::sim {

namespace {

/// Builds the signature for one title. Structural quantities are drawn in
/// two layers: a *genre* layer (titles built on the same engine/encoder
/// families share launch-animation structure — this is what makes
/// same-genre titles genuinely confusable, as in the paper's Table 3
/// results) and a *title* layer of modest fixed offsets on top. Sessions
/// later add only small rendering noise, which is what makes the
/// signature a classifiable fingerprint.
LaunchSignature build_signature(GameTitle title, std::uint64_t variant) {
  const GameInfo& game = info(title);
  // Genre layer: shared template. Tail variants fold the variant into the
  // genre seed as well, so each pseudo-title session looks like a game
  // from a different (unmodeled) family.
  ml::Rng genre_rng(0xA5F152C6DULL *
                        (static_cast<std::uint64_t>(game.genre) + 11) +
                    variant * 0x2545F4914F6CDD1DULL);
  // Title layer: fixed per-title offsets. A large odd multiplier spreads
  // the small title indices across seed space.
  ml::Rng rng(0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(title) + 3) ^
              variant);

  LaunchSignature sig;
  sig.title = title;
  sig.duration_s = variant == 0
                       ? game.launch_seconds
                       : game.launch_seconds * rng.uniform(0.7, 1.3);
  const auto slots = static_cast<std::size_t>(sig.duration_s);

  // Full-packet density profile: genre base rate and animation
  // modulation, with a per-title rate offset and phase.
  const double base_pps = genre_rng.uniform(60.0, 200.0) * rng.uniform(0.88, 1.12);
  const double mod_period = genre_rng.uniform(4.0, 14.0) * rng.uniform(0.9, 1.1);
  const double mod_depth = genre_rng.uniform(0.1, 0.5);
  const double phase = rng.uniform(0.0, 6.28318);
  sig.full_pps.resize(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    const double wave =
        1.0 + mod_depth * std::sin(phase + 6.28318 * static_cast<double>(s) /
                                               mod_period);
    // Per-slot structural wobble, fixed for the title.
    sig.full_pps[s] = base_pps * wave * rng.uniform(0.9, 1.1);
  }

  // Steady bands from the genre template, each re-centered slightly per
  // title; at least two overlap the first five seconds so the
  // classifier's N=5 s window always sees bands.
  const std::size_t n_bands = 3 + genre_rng.next_below(4);
  for (std::size_t b = 0; b < n_bands; ++b) {
    SteadyBand band;
    double genre_start = 0.0;
    double genre_len = 0.0;
    if (b < 2) {
      genre_start = genre_rng.uniform(0.0, 2.0);
      genre_len = genre_rng.uniform(3.0, 9.0);
    } else {
      genre_start = genre_rng.uniform(2.0, 30.0);
      genre_len = genre_rng.uniform(3.0, 14.0);
    }
    band.start_s = std::max(0.0, genre_start + rng.uniform(-0.6, 0.6));
    band.end_s = band.start_s + genre_len * rng.uniform(0.85, 1.15);
    if (band.end_s > sig.duration_s) band.end_s = sig.duration_s;
    band.payload_center =
        genre_rng.uniform(180.0, 1250.0) * rng.uniform(0.93, 1.07);
    band.payload_width = genre_rng.uniform(8.0, 40.0);
    band.pps = genre_rng.uniform(25.0, 140.0) * rng.uniform(0.85, 1.15);
    sig.steady_bands.push_back(band);
  }

  // Sparse bursts, likewise genre-templated; the first one overlaps the
  // classification window.
  const std::size_t n_bursts = 2 + genre_rng.next_below(3);
  for (std::size_t b = 0; b < n_bursts; ++b) {
    SparseBurst burst;
    double genre_start = 0.0;
    double genre_len = 0.0;
    if (b == 0) {
      genre_start = genre_rng.uniform(0.0, 1.5);
      genre_len = genre_rng.uniform(2.0, 6.0);
    } else {
      genre_start = genre_rng.uniform(1.5, 25.0);
      genre_len = genre_rng.uniform(2.0, 10.0);
    }
    burst.start_s = std::max(0.0, genre_start + rng.uniform(-0.6, 0.6));
    burst.end_s = burst.start_s + genre_len * rng.uniform(0.85, 1.15);
    if (burst.end_s > sig.duration_s) burst.end_s = sig.duration_s;
    burst.payload_min =
        genre_rng.uniform(60.0, 320.0) * rng.uniform(0.9, 1.1);
    burst.payload_max =
        burst.payload_min + genre_rng.uniform(400.0, 1000.0);
    if (burst.payload_max > kFullPayloadBytes - 1)
      burst.payload_max = kFullPayloadBytes - 1;
    burst.pps = genre_rng.uniform(18.0, 95.0) * rng.uniform(0.85, 1.15);
    sig.sparse_bursts.push_back(burst);
  }
  return sig;
}

}  // namespace

const LaunchSignature& launch_signature(GameTitle title) {
  static std::array<LaunchSignature, kNumTitles> cache;
  static std::once_flag once;
  std::call_once(once, [] {
    for (std::size_t i = 0; i < kNumTitles; ++i)
      cache[i] = build_signature(static_cast<GameTitle>(i), 0);
  });
  return cache[static_cast<std::size_t>(title)];
}

LaunchSignature tail_signature(GameTitle title, std::uint64_t variant) {
  return build_signature(title, variant);
}

}  // namespace cgctx::sim
