#include "sim/config.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace cgctx::sim {

const char* to_string(DeviceClass device) {
  switch (device) {
    case DeviceClass::kPc: return "PC";
    case DeviceClass::kMobile: return "Mobile";
    case DeviceClass::kTv: return "TV";
    case DeviceClass::kConsole: return "Console";
  }
  return "?";
}

const char* to_string(Os os) {
  switch (os) {
    case Os::kWindows: return "Windows";
    case Os::kMacOs: return "macOS";
    case Os::kAndroid: return "Android";
    case Os::kIos: return "iOS";
    case Os::kAndroidTv: return "AndroidTV";
    case Os::kXboxOs: return "Xbox";
  }
  return "?";
}

const char* to_string(Software software) {
  return software == Software::kNativeApp ? "Native app" : "Browser";
}

const char* to_string(Resolution resolution) {
  switch (resolution) {
    case Resolution::kSd: return "SD";
    case Resolution::kHd: return "HD";
    case Resolution::kFhd: return "FHD";
    case Resolution::kQhd: return "QHD";
    case Resolution::kUhd: return "UHD";
  }
  return "?";
}

double resolution_bitrate_factor(Resolution resolution) {
  switch (resolution) {
    case Resolution::kSd: return 0.25;
    case Resolution::kHd: return 0.55;
    case Resolution::kFhd: return 1.0;
    case Resolution::kQhd: return 1.6;
    case Resolution::kUhd: return 2.4;
  }
  return 1.0;
}

std::string ClientConfig::describe() const {
  std::ostringstream os_;
  os_ << to_string(device) << '/' << to_string(os) << '/' << to_string(software)
      << ' ' << to_string(resolution) << '@' << fps << "fps";
  return os_.str();
}

namespace {

// Paper Table 2, row for row (531 sessions total).
constexpr std::array<LabConfigRow, 8> kLabRows{{
    {DeviceClass::kPc, Os::kWindows, Software::kNativeApp, Resolution::kSd,
     Resolution::kUhd, 89},
    {DeviceClass::kPc, Os::kWindows, Software::kBrowser, Resolution::kSd,
     Resolution::kQhd, 60},
    {DeviceClass::kPc, Os::kMacOs, Software::kNativeApp, Resolution::kSd,
     Resolution::kUhd, 76},
    {DeviceClass::kPc, Os::kMacOs, Software::kBrowser, Resolution::kSd,
     Resolution::kQhd, 61},
    {DeviceClass::kMobile, Os::kAndroid, Software::kNativeApp, Resolution::kFhd,
     Resolution::kQhd, 73},
    {DeviceClass::kMobile, Os::kIos, Software::kBrowser, Resolution::kSd,
     Resolution::kFhd, 70},
    {DeviceClass::kTv, Os::kAndroidTv, Software::kNativeApp, Resolution::kSd,
     Resolution::kFhd, 48},
    {DeviceClass::kConsole, Os::kXboxOs, Software::kBrowser, Resolution::kSd,
     Resolution::kFhd, 54},
}};

constexpr std::array<int, 3> kFpsOptions{30, 60, 120};

}  // namespace

std::span<const LabConfigRow> lab_config_rows() { return kLabRows; }

ClientConfig sample_config(const LabConfigRow& row, ml::Rng& rng) {
  ClientConfig cfg;
  cfg.device = row.device;
  cfg.os = row.os;
  cfg.software = row.software;
  const auto lo = static_cast<int>(row.min_resolution);
  const auto hi = static_cast<int>(row.max_resolution);
  cfg.resolution = static_cast<Resolution>(
      lo + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(hi - lo + 1))));
  cfg.fps = kFpsOptions[rng.next_below(kFpsOptions.size())];
  return cfg;
}

ClientConfig sample_config(ml::Rng& rng) {
  int total = 0;
  for (const LabConfigRow& row : kLabRows) total += row.sessions;
  auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(total)));
  for (const LabConfigRow& row : kLabRows) {
    pick -= row.sessions;
    if (pick < 0) return sample_config(row, rng);
  }
  return sample_config(kLabRows.back(), rng);
}

NetworkConditions NetworkConditions::lab() {
  return NetworkConditions{8.0, 0.6, 0.0005, 1000.0};
}

NetworkConditions NetworkConditions::good() {
  return NetworkConditions{18.0, 2.0, 0.002, 200.0};
}

NetworkConditions NetworkConditions::congested() {
  return NetworkConditions{85.0, 14.0, 0.03, 6.0};
}

}  // namespace cgctx::sim
