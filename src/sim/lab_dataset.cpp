#include "sim/lab_dataset.hpp"

#include <cmath>

namespace cgctx::sim {

std::vector<SessionSpec> lab_session_plan(const LabPlanOptions& options) {
  ml::Rng rng(options.seed);
  std::vector<SessionSpec> plan;
  std::size_t title_cursor = 0;
  for (const LabConfigRow& row : lab_config_rows()) {
    const auto count = static_cast<std::size_t>(
        std::ceil(static_cast<double>(row.sessions) * options.scale));
    for (std::size_t i = 0; i < count; ++i) {
      SessionSpec spec;
      // Cycle through the popular titles so each class is covered under
      // each configuration row (the lab team played every game on every
      // setup).
      spec.title = static_cast<GameTitle>(title_cursor % kNumPopularTitles);
      ++title_cursor;
      spec.config = sample_config(row, rng);
      spec.network = NetworkConditions::lab();
      spec.gameplay_seconds = options.gameplay_seconds * rng.uniform(0.7, 1.3);
      spec.seed = rng.next_u64();
      plan.push_back(spec);
    }
  }
  return plan;
}

std::vector<SessionSpec> augment(const SessionSpec& base, std::size_t copies,
                                 std::uint64_t seed) {
  ml::Rng rng(seed);
  std::vector<SessionSpec> out;
  out.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    SessionSpec spec = base;
    spec.seed = rng.next_u64();
    // Variation-based synthesis (paper §4.4): beyond redrawing the
    // rendering noise, vary the packet arrival timing and loss the way
    // real subscriber paths do, so the trained models survive field
    // conditions the pristine lab network never shows them.
    spec.network.rtt_ms = rng.uniform(8.0, 55.0);
    spec.network.jitter_ms = rng.uniform(0.5, 9.0);
    spec.network.loss_rate = rng.uniform(0.0, 0.012);
    out.push_back(spec);
  }
  return out;
}

}  // namespace cgctx::sim
