// Per-stage volumetric levels (paper §3.3, Fig. 4).
//
// The paper's key observation: the *relative* levels of the four
// volumetric attributes (upstream/downstream throughput and packet rate)
// against the session's peak are consistent per player activity stage
// across all titles and configurations — active streams at peak in both
// directions, passive keeps downstream high but upstream low (watching,
// not playing), idle drops both to a trickle. These constants encode that
// structure for the generator; the classifier has to rediscover it from
// the rendered traffic.
#pragma once

#include <array>

#include "sim/stage_model.hpp"

namespace cgctx::sim {

/// Relative volumetric level of one stage (fraction of the session peak).
struct StageLevels {
  double down_throughput = 1.0;
  double up_packet_rate = 1.0;
  /// Streaming frame rate as a fraction of the configured fps (graphics
  /// refresh slows in static scenes, §3.3).
  double frame_rate = 1.0;
};

/// Mean levels per stage (indexed by Stage: active, passive, idle).
inline constexpr std::array<StageLevels, kNumStages> kStageLevels{{
    {1.00, 1.00, 1.00},  // active: full-rate graphics + full-rate inputs
    {0.84, 0.26, 0.95},  // passive: spectating - video stays, inputs drop
    {0.14, 0.10, 0.40},  // idle: lobby/menu - low refresh, rare inputs
}};

/// Launch-stage levels relative to the same session peak: a moderate
/// one-way animation stream with minimal user input.
inline constexpr StageLevels kLaunchLevels{0.38, 0.05, 0.75};

/// Multiplicative noise bounds applied to each 1-second slot.
inline constexpr double kSlotNoiseLow = 0.88;
inline constexpr double kSlotNoiseHigh = 1.12;

/// Probability per slot of a short volumetric burst that contradicts the
/// stage (e.g. an accidental mouse sweep while spectating, a momentary
/// scene cut dropping the encoder output); this is the noise the paper's
/// EMA smoothing (Eq. 1) exists to absorb. The bursts last well under a
/// slot, so their slot-aggregated magnitude is moderate — raw values land
/// near the classifier's decision boundary while the smoothed values stay
/// on the correct side.
inline constexpr double kSpikeProbability = 0.10;
inline constexpr double kSpikeUpFactor = 2.2;
inline constexpr double kSpikeDownFactor = 0.55;

}  // namespace cgctx::sim
