#include "sim/session.hpp"

#include <algorithm>
#include <cmath>

#include "sim/launch_signature.hpp"
#include "sim/volumetric.hpp"

namespace cgctx::sim {

namespace {


constexpr std::uint8_t kVideoPayloadType = 98;
constexpr std::uint8_t kInputPayloadType = 101;
constexpr double kRtpClockHz = 90000.0;

/// Bytes/s of one Mbps.
constexpr double kBytesPerMbps = 1e6 / 8.0;

/// Per-session rendering state shared by the launch and gameplay phases.
struct RenderState {
  net::FiveTuple down_tuple;  ///< server -> client
  net::FiveTuple up_tuple;    ///< client -> server
  std::uint32_t down_ssrc = 0;
  std::uint32_t up_ssrc = 0;
  std::uint16_t down_seq = 0;
  std::uint16_t up_seq = 0;
};

/// Emits one downstream packet (subject to loss) and tallies the slot.
void emit_down(std::vector<net::PacketRecord>& out, RenderState& state,
               net::Timestamp t, std::uint32_t payload, bool marker,
               double media_time_s, const NetworkConditions& network,
               ml::Rng& rng, std::uint64_t& dropped, std::uint64_t& total) {
  ++total;
  const std::uint16_t seq = state.down_seq++;
  if (rng.chance(network.loss_rate)) {
    ++dropped;
    return;
  }
  net::PacketRecord pkt;
  pkt.timestamp = t + net::duration_from_millis(rng.normal(0.0, network.jitter_ms));
  pkt.direction = net::Direction::kDownstream;
  pkt.tuple = state.down_tuple;
  pkt.payload_size = payload;
  net::RtpHeader rtp;
  rtp.payload_type = kVideoPayloadType;
  rtp.marker = marker;
  rtp.sequence = seq;
  rtp.rtp_timestamp = static_cast<std::uint32_t>(media_time_s * kRtpClockHz);
  rtp.ssrc = state.down_ssrc;
  pkt.rtp = rtp;
  out.push_back(pkt);
}

void emit_up(std::vector<net::PacketRecord>& out, RenderState& state,
             net::Timestamp t, std::uint32_t payload, double media_time_s,
             const NetworkConditions& network, ml::Rng& rng) {
  const std::uint16_t seq = state.up_seq++;
  if (rng.chance(network.loss_rate)) return;
  net::PacketRecord pkt;
  pkt.timestamp = t + net::duration_from_millis(rng.normal(0.0, network.jitter_ms));
  pkt.direction = net::Direction::kUpstream;
  pkt.tuple = state.up_tuple;
  pkt.payload_size = payload;
  net::RtpHeader rtp;
  rtp.payload_type = kInputPayloadType;
  rtp.marker = false;
  rtp.sequence = seq;
  rtp.rtp_timestamp = static_cast<std::uint32_t>(media_time_s * kRtpClockHz);
  rtp.ssrc = state.up_ssrc;
  pkt.rtp = rtp;
  out.push_back(pkt);
}

}  // namespace

const char* to_string(CloudPlatform platform) {
  switch (platform) {
    case CloudPlatform::kGeforceNow: return "GeForce NOW";
    case CloudPlatform::kXboxCloud: return "Xbox Cloud Gaming";
    case CloudPlatform::kAmazonLuna: return "Amazon Luna";
    case CloudPlatform::kPsCloudStreaming: return "PS5 Cloud Streaming";
  }
  return "?";
}

std::uint16_t streaming_port(CloudPlatform platform) {
  // Representative ports inside each platform's documented range
  // (GeForce NOW 49003-49006 per NVIDIA; others per the detection
  // signatures of the works the paper adapts).
  switch (platform) {
    case CloudPlatform::kGeforceNow: return 49004;
    case CloudPlatform::kXboxCloud: return 9002;
    case CloudPlatform::kAmazonLuna: return 44353;
    case CloudPlatform::kPsCloudStreaming: return 9296;
  }
  return 49004;
}

double demand_mbps(const GameInfo& game, const ClientConfig& config) {
  // Catalog peak demand is quoted at the best setting (UHD@120); scale
  // down by resolution and (sub-linearly) frame rate. The discrete
  // resolution steps are what create the per-title bandwidth clusters the
  // paper observes in Fig. 12(a).
  const double res_factor =
      resolution_bitrate_factor(config.resolution) /
      resolution_bitrate_factor(Resolution::kUhd);
  const double fps_factor = 0.55 + 0.45 * (static_cast<double>(config.fps) / 120.0);
  return game.peak_demand_mbps * res_factor * fps_factor;
}

LabeledSession SessionGenerator::generate(const SessionSpec& spec) const {
  return generate_impl(spec, /*render_gameplay_packets=*/true);
}

LabeledSession SessionGenerator::generate_slots_only(
    const SessionSpec& spec) const {
  return generate_impl(spec, /*render_gameplay_packets=*/false);
}

LabeledSession SessionGenerator::generate_impl(
    const SessionSpec& spec, bool render_gameplay_packets) const {
  ml::Rng rng(spec.seed);
  const GameInfo& game = info(spec.title);
  // Long-tail pseudo-titles stand for many distinct games: each session
  // draws its own launch fingerprint.
  const bool is_tail = static_cast<std::size_t>(spec.title) >= kNumPopularTitles;
  const LaunchSignature sig = is_tail
                                  ? tail_signature(spec.title, spec.seed)
                                  : launch_signature(spec.title);

  LabeledSession session;
  session.spec = spec;

  // Addressing: one subscriber host behind the ISP, one regional cloud
  // gaming server.
  session.client_ip = net::Ipv4Addr::from_octets(
      10, static_cast<std::uint8_t>(rng.next_below(250) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1));
  const auto server_ip = net::Ipv4Addr::from_octets(
      119, 81, static_cast<std::uint8_t>(rng.next_below(16) + 1),
      static_cast<std::uint8_t>(rng.next_below(250) + 1));
  const auto client_port =
      static_cast<std::uint16_t>(49152 + rng.next_below(16000));
  session.tuple = net::FiveTuple{session.client_ip, server_ip, client_port,
                                 streaming_port(spec.platform), 17};

  RenderState state;
  state.up_tuple = session.tuple;
  state.down_tuple = session.tuple.reversed();
  state.down_ssrc = static_cast<std::uint32_t>(rng.next_u64());
  state.up_ssrc = static_cast<std::uint32_t>(rng.next_u64());

  // Session peak rates. A congested access link caps the stream below the
  // title's demand; `quality` < 1 then degrades delivered frame rate.
  const double demand = demand_mbps(game, spec.config);
  session.peak_down_mbps = std::min(demand, spec.network.bandwidth_mbps * 0.85);
  const double quality = std::min(1.0, session.peak_down_mbps / demand);
  session.peak_up_pps = 60.0 + 0.5 * static_cast<double>(spec.config.fps);

  session.launch_begin = spec.start_time;
  session.gameplay_begin =
      spec.start_time + net::duration_from_seconds(sig.duration_s);
  session.end =
      session.gameplay_begin + net::duration_from_seconds(spec.gameplay_seconds);

  // Ground-truth stage timeline for the gameplay phase.
  const StageMarkovModel stage_model = StageMarkovModel::for_title(game);
  session.stages = stage_model.generate(
      session.gameplay_begin, session.end - session.gameplay_begin, rng);

  // --- Session-level launch rendering noise (what keeps classification
  // below 100%): a small arrival delay, a payload re-scale, a rate
  // re-scale, and occasional missing bands.
  const double time_offset_s = rng.uniform(0.0, 1.5);
  const double payload_scale = rng.uniform(0.95, 1.05);
  const double rate_scale = rng.uniform(0.78, 1.22);
  std::vector<bool> keep_band(sig.steady_bands.size());
  std::vector<double> band_scale(sig.steady_bands.size());
  for (std::size_t b = 0; b < keep_band.size(); ++b) {
    keep_band[b] = rng.chance(0.94);
    band_scale[b] = rng.uniform(0.96, 1.04);
  }

  const auto total_slots = static_cast<std::size_t>(
      std::ceil(sig.duration_s + spec.gameplay_seconds));
  session.slots.resize(total_slots);
  const auto launch_slots = static_cast<std::size_t>(std::ceil(sig.duration_s));

  // --- Launch phase: render the packet-group signature.
  for (std::size_t slot = 0; slot < launch_slots; ++slot) {
    const double slot_begin = static_cast<double>(slot);
    const double slot_end = std::min(slot_begin + 1.0, sig.duration_s);
    const double slot_span = slot_end - slot_begin;
    std::uint64_t dropped = 0;
    std::uint64_t offered = 0;
    auto& sample = session.slots[slot];

    auto to_time = [&](double offset_in_slot) {
      return spec.start_time +
             net::duration_from_seconds(slot_begin + offset_in_slot +
                                        time_offset_s);
    };

    // Full packets: evenly spaced at the per-slot signature density.
    const auto full_count = static_cast<std::size_t>(std::llround(
        sig.full_pps[std::min(slot, sig.full_pps.size() - 1)] * rate_scale *
        rng.uniform(0.93, 1.07) * slot_span));
    for (std::size_t i = 0; i < full_count; ++i) {
      const double offset =
          (static_cast<double>(i) + 0.5) / static_cast<double>(full_count);
      emit_down(session.packets, state, to_time(offset * slot_span),
                kFullPayloadBytes, false, slot_begin + offset, spec.network,
                rng, dropped, offered);
    }

    // Steady bands overlapping this slot.
    for (std::size_t b = 0; b < sig.steady_bands.size(); ++b) {
      if (!keep_band[b]) continue;
      const SteadyBand& band = sig.steady_bands[b];
      const double lo = std::max(band.start_s, slot_begin);
      const double hi = std::min(band.end_s, slot_end);
      if (hi <= lo) continue;
      const auto count = static_cast<std::size_t>(
          std::llround(band.pps * rate_scale * (hi - lo)));
      for (std::size_t i = 0; i < count; ++i) {
        const double t = rng.uniform(lo, hi);
        const double payload =
            band.payload_center * payload_scale * band_scale[b] +
            rng.uniform(-band.payload_width, band.payload_width);
        emit_down(session.packets, state, to_time(t - slot_begin),
                  static_cast<std::uint32_t>(
                      std::clamp(payload, 40.0,
                                 static_cast<double>(kFullPayloadBytes - 1))),
                  false, t, spec.network, rng, dropped, offered);
      }
    }

    // Sparse bursts overlapping this slot.
    for (const SparseBurst& burst : sig.sparse_bursts) {
      const double lo = std::max(burst.start_s, slot_begin);
      const double hi = std::min(burst.end_s, slot_end);
      if (hi <= lo) continue;
      const auto count = static_cast<std::size_t>(
          std::llround(burst.pps * rate_scale * (hi - lo)));
      for (std::size_t i = 0; i < count; ++i) {
        const double t = rng.uniform(lo, hi);
        emit_down(session.packets, state, to_time(t - slot_begin),
                  static_cast<std::uint32_t>(
                      rng.uniform(burst.payload_min, burst.payload_max)),
                  false, t, spec.network, rng, dropped, offered);
      }
    }

    // Sparse upstream control chatter during the launch animation.
    const auto up_count = static_cast<std::size_t>(
        std::llround(12.0 * slot_span * rng.uniform(0.7, 1.3)));
    for (std::size_t i = 0; i < up_count; ++i) {
      const double t = rng.uniform(slot_begin, slot_end);
      emit_up(session.packets, state, to_time(t - slot_begin),
              static_cast<std::uint32_t>(rng.uniform(60.0, 130.0)), t,
              spec.network, rng);
    }

    // Launch slot telemetry (from what was just rendered).
    sample.frames = static_cast<double>(spec.config.fps) *
                    kLaunchLevels.frame_rate * rng.uniform(0.95, 1.05);
    sample.rtt_ms = spec.network.rtt_ms * rng.uniform(0.95, 1.15);
    sample.loss_rate = offered == 0 ? 0.0
                                    : static_cast<double>(dropped) /
                                          static_cast<double>(offered);
  }
  // Tally launch packet/byte counts into the slot samples.
  for (const net::PacketRecord& pkt : session.packets) {
    const auto slot = static_cast<std::size_t>(
        net::duration_to_seconds(pkt.timestamp - spec.start_time));
    if (slot >= session.slots.size()) continue;
    auto& sample = session.slots[slot];
    if (pkt.direction == net::Direction::kDownstream) {
      ++sample.down_packets;
      sample.down_bytes += pkt.payload_size;
    } else {
      ++sample.up_packets;
      sample.up_bytes += pkt.payload_size;
    }
  }

  // --- Gameplay phase.
  const double peak_bytes_per_s = session.peak_down_mbps * kBytesPerMbps;
  const double mean_up_payload = 95.0;
  for (std::size_t slot = launch_slots; slot < total_slots; ++slot) {
    const double slot_begin = static_cast<double>(slot);
    const net::Timestamp slot_time =
        spec.start_time + net::duration_from_seconds(slot_begin + 0.5);
    const Stage stage = stage_at(session.stages, slot_time);
    const StageLevels& levels = kStageLevels[static_cast<std::size_t>(stage)];
    auto& sample = session.slots[slot];

    // Per-slot noise plus the occasional contradictory spike.
    double down_level = levels.down_throughput *
                        rng.uniform(kSlotNoiseLow, kSlotNoiseHigh);
    double up_level =
        levels.up_packet_rate * rng.uniform(kSlotNoiseLow, kSlotNoiseHigh);
    if (rng.chance(kSpikeProbability)) {
      if (rng.chance(0.5)) {
        up_level = std::min(1.2, up_level * kSpikeUpFactor);
      } else {
        down_level *= kSpikeDownFactor;
      }
    }

    const double down_bytes_target = peak_bytes_per_s * down_level;
    const double fps_eff = std::max(
        8.0, static_cast<double>(spec.config.fps) * levels.frame_rate *
                 std::pow(quality, 0.7) * rng.uniform(0.95, 1.05));
    const double up_pkts_target = session.peak_up_pps * up_level;

    sample.frames = fps_eff;
    sample.rtt_ms = spec.network.rtt_ms * rng.uniform(0.95, 1.15);

    if (render_gameplay_packets) {
      std::uint64_t dropped = 0;
      std::uint64_t offered = 0;
      // Downstream: fps_eff frames, each split into full packets plus a
      // remainder packet carrying the RTP marker.
      const auto frames = static_cast<std::size_t>(std::llround(fps_eff));
      const double frame_bytes =
          down_bytes_target / std::max<double>(1.0, fps_eff);
      for (std::size_t f = 0; f < frames; ++f) {
        const double frame_time =
            slot_begin + (static_cast<double>(f) + 0.2) /
                             std::max<double>(1.0, fps_eff);
        auto remaining = static_cast<std::int64_t>(
            frame_bytes * rng.uniform(0.9, 1.1));
        std::size_t idx = 0;
        while (remaining > 0) {
          const auto payload = static_cast<std::uint32_t>(std::min<std::int64_t>(
              remaining, kFullPayloadBytes));
          remaining -= payload;
          const bool marker = remaining <= 0;
          // Packets of a frame leave the encoder back-to-back (~60 us).
          emit_down(session.packets, state,
                    spec.start_time + net::duration_from_seconds(
                                          frame_time + 60e-6 *
                                                           static_cast<double>(idx)),
                    std::max<std::uint32_t>(payload, 40), marker, frame_time,
                    spec.network, rng, dropped, offered);
          ++idx;
        }
      }
      // Upstream: independent input packets spread over the slot.
      const auto up_count =
          static_cast<std::size_t>(std::llround(up_pkts_target));
      for (std::size_t i = 0; i < up_count; ++i) {
        const double t = rng.uniform(slot_begin, slot_begin + 1.0);
        emit_up(session.packets, state,
                spec.start_time + net::duration_from_seconds(t),
                static_cast<std::uint32_t>(std::clamp(
                    rng.normal(mean_up_payload, 22.0), 40.0, 260.0)),
                t, spec.network, rng);
      }
      sample.loss_rate = offered == 0 ? 0.0
                                      : static_cast<double>(dropped) /
                                            static_cast<double>(offered);
    } else {
      // Slot fidelity: analytic telemetry, loss applied in expectation.
      const double survive = 1.0 - spec.network.loss_rate;
      const double mean_down_payload = kFullPayloadBytes * 0.86;
      sample.down_bytes =
          static_cast<std::uint64_t>(down_bytes_target * survive);
      sample.down_packets = static_cast<std::uint64_t>(
          down_bytes_target / mean_down_payload * survive);
      sample.up_packets =
          static_cast<std::uint64_t>(up_pkts_target * survive);
      sample.up_bytes = static_cast<std::uint64_t>(
          up_pkts_target * mean_up_payload * survive);
      sample.loss_rate = spec.network.loss_rate * rng.uniform(0.5, 1.5);
    }
  }

  if (render_gameplay_packets) {
    // Gameplay packets were appended after the launch tally; zero the
    // gameplay slots and fold the rendered packets in.
    for (std::size_t i = launch_slots; i < session.slots.size(); ++i) {
      session.slots[i].down_bytes = 0;
      session.slots[i].down_packets = 0;
      session.slots[i].up_bytes = 0;
      session.slots[i].up_packets = 0;
    }
    for (const net::PacketRecord& pkt : session.packets) {
      const auto slot = static_cast<std::size_t>(
          net::duration_to_seconds(pkt.timestamp - spec.start_time));
      if (slot < launch_slots || slot >= session.slots.size()) continue;
      auto& sample = session.slots[slot];
      if (pkt.direction == net::Direction::kDownstream) {
        ++sample.down_packets;
        sample.down_bytes += pkt.payload_size;
      } else {
        ++sample.up_packets;
        sample.up_bytes += pkt.payload_size;
      }
    }
  }

  // Deliver in arrival order (jitter may have reordered emissions).
  std::sort(session.packets.begin(), session.packets.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return session;
}

}  // namespace cgctx::sim
