// Umbrella header: the whole public API of the cgctx library.
//
// Fine-grained headers remain the preferred include style inside the
// repo; this header exists for downstream consumers who want everything
// in one line.
#pragma once

// Packet & flow primitives.
#include "net/byte_io.hpp"
#include "net/flow_table.hpp"
#include "net/framing.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "net/pcapng.hpp"
#include "net/rtp.hpp"
#include "net/time.hpp"

// Learning toolkit.
#include "ml/classifier.hpp"
#include "ml/csv.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/feature_selection.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/grid_search.hpp"
#include "ml/importance.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/rng.hpp"
#include "ml/scaler.hpp"
#include "ml/svm.hpp"

// Traffic simulation substrate.
#include "sim/catalog.hpp"
#include "sim/config.hpp"
#include "sim/cross_traffic.hpp"
#include "sim/fleet.hpp"
#include "sim/lab_dataset.hpp"
#include "sim/launch_signature.hpp"
#include "sim/platform_anatomy.hpp"
#include "sim/session.hpp"
#include "sim/stage_model.hpp"
#include "sim/volumetric.hpp"

// The classification pipeline (the paper's contribution).
#include "core/flow_detector.hpp"
#include "core/launch_attributes.hpp"
#include "core/model_suite.hpp"
#include "core/multi_session_probe.hpp"
#include "core/packet_groups.hpp"
#include "core/pipeline.hpp"
#include "core/qoe.hpp"
#include "core/qoe_estimator.hpp"
#include "core/stage_classifier.hpp"
#include "core/streaming_analyzer.hpp"
#include "core/title_classifier.hpp"
#include "core/training.hpp"
#include "core/transition_model.hpp"
#include "core/volumetric_tracker.hpp"

// Fleet telemetry & provisioning.
#include "telemetry/aggregator.hpp"
#include "telemetry/provisioning.hpp"
#include "telemetry/stats.hpp"
