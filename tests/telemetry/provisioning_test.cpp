#include "telemetry/provisioning.hpp"

#include <gtest/gtest.h>

namespace cgctx::telemetry {
namespace {

SessionSummary summary(const std::string& key, double minutes, double mbps) {
  SessionSummary s;
  s.key = key;
  s.duration_minutes = minutes;
  s.stage_minutes = {minutes * 0.6, minutes * 0.2, minutes * 0.2};
  s.mean_down_mbps = mbps;
  s.objective = core::QoeLevel::kGood;
  s.effective = core::QoeLevel::kGood;
  return s;
}

FleetAggregator demo_fleet() {
  FleetAggregator fleet;
  // A high-demand title: 20 sessions, ~60 min, 25-45 Mbps.
  for (int i = 0; i < 20; ++i)
    fleet.add(summary("Fortnite", 55 + i, 25.0 + i));
  // A low-demand title: 10 sessions, ~45 min, 4-6 Mbps.
  for (int i = 0; i < 10; ++i)
    fleet.add(summary("Hearthstone", 44 + i % 3, 4.0 + 0.2 * i));
  // A thin context: 2 sessions only.
  fleet.add(summary("Rare Game", 30, 50));
  fleet.add(summary("Rare Game", 32, 52));
  return fleet;
}

TEST(Provisioning, CapacityTracksDemandPercentileWithHeadroom) {
  ProvisioningAdvisor advisor;
  advisor.learn(demo_fleet());
  const auto fortnite = advisor.recommend("Fortnite");
  ASSERT_TRUE(fortnite.has_value());
  EXPECT_EQ(fortnite->context, "Fortnite");
  // p95 of 25..44 is ~43; with 1.25 headroom ~54.
  EXPECT_GT(fortnite->capacity_mbps, 45.0);
  EXPECT_LT(fortnite->capacity_mbps, 60.0);
  EXPECT_NEAR(fortnite->expected_minutes, 64.5, 1.0);
  EXPECT_EQ(fortnite->evidence_sessions, 20u);
}

TEST(Provisioning, PriorityTiersFollowCapacity) {
  ProvisioningAdvisor advisor;
  advisor.learn(demo_fleet());
  EXPECT_EQ(advisor.recommend("Fortnite")->priority, SlicePriority::kPremium);
  EXPECT_EQ(advisor.recommend("Hearthstone")->priority,
            SlicePriority::kBestEffort);
}

TEST(Provisioning, ThinContextsFallBackToFleetDefault) {
  ProvisioningAdvisor advisor;
  advisor.learn(demo_fleet());
  const auto rare = advisor.recommend("Rare Game");
  ASSERT_TRUE(rare.has_value());
  EXPECT_EQ(rare->context, "(fleet default)");
  const auto unknown = advisor.recommend("Never Seen");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->context, "(fleet default)");
}

TEST(Provisioning, NoLearningMeansNoRecommendation) {
  const ProvisioningAdvisor advisor;
  EXPECT_FALSE(advisor.recommend("Fortnite").has_value());
  EXPECT_FALSE(advisor.fleet_default().has_value());
}

TEST(Provisioning, AllListsOnlyWellSupportedContexts) {
  ProvisioningAdvisor advisor;
  advisor.learn(demo_fleet());
  const auto all = advisor.all();
  ASSERT_EQ(all.size(), 2u);  // Rare Game excluded (2 < min_sessions)
  for (const auto& rec : all) EXPECT_NE(rec.context, "Rare Game");
}

TEST(Provisioning, LearningIsCumulative) {
  ProvisioningAdvisor advisor;
  FleetAggregator first;
  for (int i = 0; i < 3; ++i) first.add(summary("Dota 2", 70, 20));
  FleetAggregator second;
  for (int i = 0; i < 3; ++i) second.add(summary("Dota 2", 90, 30));
  advisor.learn(first);
  advisor.learn(second);
  const auto rec = advisor.recommend("Dota 2");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->evidence_sessions, 6u);
  EXPECT_NEAR(rec->expected_minutes, 80.0, 1e-9);
}

TEST(Provisioning, PolicyKnobsRespected) {
  ProvisioningPolicy policy;
  policy.capacity_percentile = 0.5;
  policy.headroom = 1.0;
  policy.min_sessions = 1;
  ProvisioningAdvisor advisor(policy);
  FleetAggregator fleet;
  for (double mbps : {10.0, 20.0, 30.0}) fleet.add(summary("X", 10, mbps));
  advisor.learn(fleet);
  EXPECT_NEAR(advisor.recommend("X")->capacity_mbps, 20.0, 1e-9);
}

TEST(Provisioning, PriorityNames) {
  EXPECT_STREQ(to_string(SlicePriority::kBestEffort), "best-effort");
  EXPECT_STREQ(to_string(SlicePriority::kPrioritized), "prioritized");
  EXPECT_STREQ(to_string(SlicePriority::kPremium), "premium");
}

}  // namespace
}  // namespace cgctx::telemetry
