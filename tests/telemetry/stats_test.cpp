#include "telemetry/stats.hpp"

#include <gtest/gtest.h>

namespace cgctx::telemetry {
namespace {

TEST(SampleSeries, MeanAndCount) {
  SampleSeries s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleSeries, EmptySeriesIsZero) {
  const SampleSeries s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(SampleSeries, MinMax) {
  SampleSeries s;
  for (double v : {5.0, -2.0, 9.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSeries, Stddev) {
  SampleSeries s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);  // classic textbook example
}

TEST(SampleSeries, PercentilesInterpolate) {
  SampleSeries s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_NEAR(s.percentile(0.25), 25.0, 1e-9);
}

TEST(SampleSeries, PercentileAfterUnsortedAdds) {
  SampleSeries s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  // Adding after a percentile query still works.
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(SampleSeries, PercentileRejectsOutOfRange) {
  SampleSeries s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(1.1), std::invalid_argument);
}

TEST(SampleSeries, SingleValueSeries) {
  SampleSeries s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace cgctx::telemetry
