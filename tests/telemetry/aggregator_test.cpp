#include "telemetry/aggregator.hpp"

#include <gtest/gtest.h>

namespace cgctx::telemetry {
namespace {

SessionSummary make_summary(const std::string& key, double minutes,
                            double mbps, core::QoeLevel objective,
                            core::QoeLevel effective) {
  SessionSummary summary;
  summary.key = key;
  summary.duration_minutes = minutes;
  summary.stage_minutes = {minutes * 0.5, minutes * 0.3, minutes * 0.2};
  summary.mean_down_mbps = mbps;
  summary.objective = objective;
  summary.effective = effective;
  return summary;
}

TEST(FleetAggregator, GroupsByKey) {
  FleetAggregator agg;
  agg.add(make_summary("Fortnite", 60, 30, core::QoeLevel::kGood,
                       core::QoeLevel::kGood));
  agg.add(make_summary("Fortnite", 30, 20, core::QoeLevel::kMedium,
                       core::QoeLevel::kGood));
  agg.add(make_summary("Hearthstone", 45, 5, core::QoeLevel::kBad,
                       core::QoeLevel::kGood));
  EXPECT_EQ(agg.total_sessions(), 3u);
  ASSERT_EQ(agg.groups().size(), 2u);
  const GroupStats& fortnite = agg.groups().at("Fortnite");
  EXPECT_EQ(fortnite.sessions, 2u);
  EXPECT_DOUBLE_EQ(fortnite.duration_minutes.mean(), 45.0);
  EXPECT_DOUBLE_EQ(fortnite.mean_down_mbps.mean(), 25.0);
}

TEST(FleetAggregator, QoeFractions) {
  FleetAggregator agg;
  for (int i = 0; i < 8; ++i)
    agg.add(make_summary("X", 10, 10, core::QoeLevel::kBad,
                         core::QoeLevel::kGood));
  for (int i = 0; i < 2; ++i)
    agg.add(make_summary("X", 10, 10, core::QoeLevel::kGood,
                         core::QoeLevel::kGood));
  const GroupStats& group = agg.groups().at("X");
  EXPECT_DOUBLE_EQ(group.objective_fraction(core::QoeLevel::kBad), 0.8);
  EXPECT_DOUBLE_EQ(group.objective_fraction(core::QoeLevel::kGood), 0.2);
  EXPECT_DOUBLE_EQ(group.effective_fraction(core::QoeLevel::kGood), 1.0);
  EXPECT_DOUBLE_EQ(group.effective_fraction(core::QoeLevel::kBad), 0.0);
}

TEST(FleetAggregator, StageMinutesTracked) {
  FleetAggregator agg;
  agg.add(make_summary("Y", 100, 10, core::QoeLevel::kGood,
                       core::QoeLevel::kGood));
  const GroupStats& group = agg.groups().at("Y");
  EXPECT_DOUBLE_EQ(group.stage_minutes[0].mean(), 50.0);
  EXPECT_DOUBLE_EQ(group.stage_minutes[1].mean(), 30.0);
  EXPECT_DOUBLE_EQ(group.stage_minutes[2].mean(), 20.0);
}

TEST(FleetAggregator, EmptyGroupFractionsAreZero) {
  const GroupStats group;
  EXPECT_DOUBLE_EQ(group.objective_fraction(core::QoeLevel::kGood), 0.0);
}

TEST(FleetAggregator, CsvHasHeaderAndOneRowPerGroup) {
  FleetAggregator agg;
  agg.add(make_summary("A", 10, 5, core::QoeLevel::kGood, core::QoeLevel::kGood));
  agg.add(make_summary("B", 20, 8, core::QoeLevel::kBad, core::QoeLevel::kGood));
  const std::string csv = agg.to_csv();
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("key,sessions"), std::string::npos);
  EXPECT_NE(csv.find("A,1,"), std::string::npos);
  EXPECT_NE(csv.find("B,1,"), std::string::npos);
}

TEST(FleetAggregator, CsvQuotesKeysWithSpecialCharacters) {
  FleetAggregator agg;
  agg.add(make_summary("Tom Clancy's, The \"Div\"", 10, 5,
                       core::QoeLevel::kGood, core::QoeLevel::kGood));
  agg.add(make_summary("line\nbreak", 10, 5, core::QoeLevel::kGood,
                       core::QoeLevel::kGood));
  agg.add(make_summary("plain", 10, 5, core::QoeLevel::kGood,
                       core::QoeLevel::kGood));
  const std::string csv = agg.to_csv();
  // RFC 4180: fields with commas/quotes/newlines are quoted, inner
  // quotes doubled; plain keys stay bare.
  EXPECT_NE(csv.find("\"Tom Clancy's, The \"\"Div\"\"\",1,"),
            std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\",1,"), std::string::npos);
  EXPECT_NE(csv.find("\nplain,1,"), std::string::npos);
  // The comma inside the quoted key no longer shifts the column count:
  // every record row has exactly 14 unquoted separators.
  std::size_t row_start = csv.find('\n') + 1;
  while (row_start < csv.size()) {
    std::size_t row_end = row_start;
    bool quoted = false;
    int separators = 0;
    while (row_end < csv.size() && (quoted || csv[row_end] != '\n')) {
      if (csv[row_end] == '"') quoted = !quoted;
      if (csv[row_end] == ',' && !quoted) ++separators;
      ++row_end;
    }
    EXPECT_EQ(separators, 14) << csv.substr(row_start, row_end - row_start);
    row_start = row_end + 1;
  }
}

TEST(Summarize, ConvertsReportToSummary) {
  core::SessionReport report;
  report.duration_s = 120.0;
  report.stage_seconds = {60.0, 30.0, 30.0};
  report.mean_down_mbps = 22.0;
  report.objective_session = core::QoeLevel::kMedium;
  report.effective_session = core::QoeLevel::kGood;
  const SessionSummary summary = summarize(report, "Dota 2");
  EXPECT_EQ(summary.key, "Dota 2");
  EXPECT_DOUBLE_EQ(summary.duration_minutes, 2.0);
  EXPECT_DOUBLE_EQ(summary.stage_minutes[0], 1.0);
  EXPECT_DOUBLE_EQ(summary.mean_down_mbps, 22.0);
  EXPECT_EQ(summary.objective, core::QoeLevel::kMedium);
  EXPECT_EQ(summary.effective, core::QoeLevel::kGood);
}

}  // namespace
}  // namespace cgctx::telemetry
