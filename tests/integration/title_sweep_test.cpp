// End-to-end property sweep: for every popular title, the full pipeline
// (detector -> launch attributes -> RF) classifies a batch of unseen
// slot-fidelity sessions with high per-title accuracy — the per-title
// behavior Table 3 reports, verified through the deployed interface
// rather than the bare model.
//
// Deliberately one TEST (not TEST_P): ctest runs each test in its own
// process, and the full-scale model suite this sweep needs takes ~30 s
// to train — it must be trained once, not once per title.
#include <gtest/gtest.h>

#include "core/model_suite.hpp"

namespace cgctx {
namespace {

TEST(TitleSweep, PipelineClassifiesUnseenSessionsForEveryTitle) {
  // Full-scale training: per-title accuracy bands are only meaningful at
  // the paper's dataset size (Table 3 trains on the whole plan).
  core::TrainingBudget budget;
  budget.lab_scale = 1.0;
  budget.gameplay_seconds = 120.0;
  budget.augment_copies = 2;
  const core::ModelSuite suite = core::train_model_suite(budget);
  const core::RealtimePipeline pipeline(suite.models(),
                                        core::default_pipeline_params());
  const sim::SessionGenerator generator;

  std::size_t total_confident = 0;
  std::size_t total_correct = 0;
  for (int title_index = 0;
       title_index < static_cast<int>(sim::kNumPopularTitles); ++title_index) {
    const auto title = static_cast<sim::GameTitle>(title_index);
    int correct = 0;
    int confident = 0;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      sim::SessionSpec spec;
      spec.title = title;
      spec.gameplay_seconds = 30;
      spec.seed = 7000 + static_cast<std::uint64_t>(title_index) * 100 +
                  static_cast<std::uint64_t>(i);
      const auto session = generator.generate_slots_only(spec);
      const auto report = pipeline.process_session(session);
      if (report.title.label) {
        ++confident;
        if (report.title.class_name == sim::info(title).name) ++correct;
      }
    }
    total_confident += static_cast<std::size_t>(confident);
    total_correct += static_cast<std::size_t>(correct);
    // Paper band: >90% per-title accuracy among confident verdicts, with
    // most sessions confidently classified. Small-n slack: allow two
    // misses (same-genre confusion concentrates in single titles).
    EXPECT_GE(confident, n / 2) << sim::info(title).name;
    EXPECT_GE(correct, confident - 2) << sim::info(title).name;
  }
  // Aggregate accuracy among confident verdicts lands in the paper band.
  ASSERT_GT(total_confident, 0u);
  EXPECT_GT(static_cast<double>(total_correct) /
                static_cast<double>(total_confident),
            0.90);
}

}  // namespace
}  // namespace cgctx
