// Whole-system integration tests: simulator -> capture file -> detector ->
// pipeline -> aggregation, the full loop a deployment would run.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_suite.hpp"
#include "net/pcap.hpp"
#include "sim/fleet.hpp"
#include "telemetry/aggregator.hpp"

namespace cgctx {
namespace {

const core::ModelSuite& suite() {
  static const core::ModelSuite models = [] {
    core::TrainingBudget budget;
    budget.lab_scale = 0.12;
    budget.gameplay_seconds = 150.0;
    budget.augment_copies = 1;
    return core::train_model_suite(budget);
  }();
  return models;
}

TEST(EndToEnd, PcapRoundTripPreservesClassification) {
  // Render a session, write it to a genuine .pcap file, read it back, and
  // classify from the file's packets: the verdicts must agree.
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kGenshinImpact;
  spec.gameplay_seconds = 45;
  spec.seed = 101;
  const auto session = gen.generate(spec);

  const auto path = std::filesystem::temp_directory_path() /
                    "cgctx_end_to_end_session.pcap";
  net::write_pcap(path, session.packets);
  const auto loaded = net::read_pcap(path, session.client_ip);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), session.packets.size());

  const core::RealtimePipeline pipeline(suite().models(),
                                        core::default_pipeline_params());
  const auto from_memory = pipeline.process_packets(session.packets);
  const auto from_file = pipeline.process_packets(loaded);
  ASSERT_TRUE(from_memory.has_value());
  ASSERT_TRUE(from_file.has_value());
  EXPECT_EQ(from_memory->title.label, from_file->title.label);
  EXPECT_EQ(from_memory->title.class_name, from_file->title.class_name);
  EXPECT_EQ(from_memory->objective_session, from_file->objective_session);
}

TEST(EndToEnd, MiniFleetAggregationShapesHold) {
  // A ~60-session mini-fleet: aggregate by ground-truth pattern and check
  // the §5 shapes (continuous-play sessions longer; QoE correction
  // shrinks the bad fraction).
  const core::RealtimePipeline pipeline(suite().models(),
                                        core::default_pipeline_params());
  sim::FleetOptions options;
  options.seed = 7;
  options.duration_scale = 0.05;  // minutes-scale sessions
  sim::FleetSampler sampler(options);
  const sim::SessionGenerator gen;
  telemetry::FleetAggregator by_pattern;
  std::size_t objective_bad = 0;
  std::size_t effective_bad = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const auto spec = sampler.sample();
    const auto session = gen.generate_slots_only(spec);
    const auto report = pipeline.process_session(session);
    by_pattern.add(telemetry::summarize(
        report, sim::to_string(sim::info(spec.title).pattern)));
    if (report.objective_session == core::QoeLevel::kBad) ++objective_bad;
    if (report.effective_session == core::QoeLevel::kBad) ++effective_bad;
  }
  EXPECT_EQ(by_pattern.total_sessions(), static_cast<std::size_t>(n));
  // Context calibration can only reduce falsely-bad sessions.
  EXPECT_LE(effective_bad, objective_bad);
  // Both patterns appear in a 60-session popularity-weighted draw.
  EXPECT_EQ(by_pattern.groups().size(), 2u);
}

TEST(EndToEnd, UnknownTitleFallsBackToPatternInference) {
  // A long-tail title outside the trained catalog: the title classifier
  // should often say "unknown", and the pattern inferrer must still give
  // the operator the coarse context.
  const core::RealtimePipeline pipeline(suite().models(),
                                        core::default_pipeline_params());
  const sim::SessionGenerator gen;
  int unknown = 0;
  int pattern_right = 0;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    sim::SessionSpec spec;
    spec.title = sim::GameTitle::kOtherSpectate;
    spec.gameplay_seconds = 1500;
    spec.seed = 300 + static_cast<std::uint64_t>(i);
    const auto report = pipeline.process_session(gen.generate_slots_only(spec));
    if (!report.title.label) ++unknown;
    if (report.pattern && report.pattern->label == core::kPatternSpectate)
      ++pattern_right;
  }
  // The classifier was never trained on this launch signature; most runs
  // should fall below the confidence threshold.
  EXPECT_GE(unknown, n / 2);
  EXPECT_GE(pattern_right, n / 2 + 1);
}

TEST(EndToEnd, SerializedModelsReproduceThePipeline) {
  // Persist all three models, reload them, and verify a session report is
  // byte-for-byte equivalent — the deployment story (train offline, ship
  // model files to the observability platform).
  const core::TitleClassifier title =
      core::TitleClassifier::deserialize(suite().title.serialize());
  const core::StageClassifier stage =
      core::StageClassifier::deserialize(suite().stage.serialize());
  const core::PatternInferrer pattern =
      core::PatternInferrer::deserialize(suite().pattern.serialize());
  const core::RealtimePipeline original(suite().models(),
                                        core::default_pipeline_params());
  const core::RealtimePipeline reloaded(
      core::PipelineModels{&title, &stage, &pattern},
      core::default_pipeline_params());

  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kDota2;
  spec.gameplay_seconds = 240;
  spec.seed = 401;
  const auto session = gen.generate_slots_only(spec);
  const auto a = original.process_session(session);
  const auto b = reloaded.process_session(session);
  EXPECT_EQ(a.title.label, b.title.label);
  EXPECT_EQ(a.objective_session, b.objective_session);
  EXPECT_EQ(a.effective_session, b.effective_session);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t s = 0; s < a.slots.size(); ++s)
    EXPECT_EQ(a.slots[s].stage, b.slots[s].stage);
}

}  // namespace
}  // namespace cgctx
