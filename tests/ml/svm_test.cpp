#include "ml/svm.hpp"

#include <gtest/gtest.h>

namespace cgctx::ml {
namespace {

Dataset linear_blobs(std::size_t per_class, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"neg", "pos"});
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(-2.5, 0.8), rng.normal(-2.5, 0.8)}, 0);
    data.add({rng.normal(2.5, 0.8), rng.normal(2.5, 0.8)}, 1);
  }
  return data;
}

/// Concentric rings: inner = class 0, outer = class 1. Not linearly
/// separable; RBF should solve it.
Dataset rings(std::size_t per_class, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"inner", "outer"});
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    const double theta = rng.uniform(0.0, 6.28318);
    const double r0 = rng.uniform(0.0, 1.0);
    const double r1 = rng.uniform(3.0, 4.0);
    data.add({r0 * std::cos(theta), r0 * std::sin(theta)}, 0);
    data.add({r1 * std::cos(theta), r1 * std::sin(theta)}, 1);
  }
  return data;
}

TEST(Svm, LinearKernelSolvesLinearProblem) {
  const Dataset data = linear_blobs(40, 1);
  Svm svm(SvmParams{.c = 1.0, .kernel = KernelType::kLinear});
  svm.fit(data);
  EXPECT_GT(svm.score(data), 0.97);
}

TEST(Svm, RbfKernelSolvesRings) {
  const Dataset data = rings(60, 2);
  Svm svm(SvmParams{.c = 5.0, .kernel = KernelType::kRbf, .gamma = 1.0});
  svm.fit(data);
  EXPECT_GT(svm.score(data), 0.97);
}

TEST(Svm, LinearKernelFailsOnRings) {
  const Dataset data = rings(60, 3);
  Svm svm(SvmParams{.c = 1.0, .kernel = KernelType::kLinear});
  svm.fit(data);
  // A linear separator cannot beat ~chance+margin on concentric rings.
  EXPECT_LT(svm.score(data), 0.8);
}

TEST(Svm, PolyKernelWorksOnBlobs) {
  const Dataset data = linear_blobs(30, 4);
  Svm svm(SvmParams{.c = 1.0, .kernel = KernelType::kPoly, .poly_degree = 2});
  svm.fit(data);
  EXPECT_GT(svm.score(data), 0.9);
}

TEST(Svm, MulticlassOneVsRest) {
  Dataset data({"x", "y"}, {"a", "b", "c"});
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    data.add({rng.normal(-4.0, 0.7), rng.normal(0.0, 0.7)}, 0);
    data.add({rng.normal(4.0, 0.7), rng.normal(0.0, 0.7)}, 1);
    data.add({rng.normal(0.0, 0.7), rng.normal(5.0, 0.7)}, 2);
  }
  Svm svm(SvmParams{.c = 2.0, .kernel = KernelType::kRbf});
  svm.fit(data);
  EXPECT_GT(svm.score(data), 0.95);
  EXPECT_EQ(svm.predict({-4.0, 0.0}), 0);
  EXPECT_EQ(svm.predict({4.0, 0.0}), 1);
  EXPECT_EQ(svm.predict({0.0, 5.0}), 2);
}

TEST(Svm, ProbabilitiesSumToOne) {
  const Dataset data = linear_blobs(30, 6);
  Svm svm;
  svm.fit(data);
  const auto probs = svm.predict_proba({0.0, 0.0});
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Svm, SupportVectorsAreSubsetOfData) {
  const Dataset data = linear_blobs(50, 7);
  Svm svm(SvmParams{.c = 1.0, .kernel = KernelType::kLinear});
  svm.fit(data);
  EXPECT_GT(svm.support_vector_count(), 0u);
  // One-vs-rest trains 2 machines over 100 rows each.
  EXPECT_LE(svm.support_vector_count(), 2u * data.size());
}

TEST(Svm, WellSeparatedDataHasFewSupportVectors) {
  const Dataset data = linear_blobs(50, 8);
  Svm svm(SvmParams{.c = 1.0, .kernel = KernelType::kLinear});
  svm.fit(data);
  // Most points are far from the margin.
  EXPECT_LT(svm.support_vector_count(), data.size());
}

TEST(Svm, ThrowsOnEmptyFit) {
  Svm svm;
  EXPECT_THROW(svm.fit(Dataset{}), std::invalid_argument);
}

TEST(Svm, ThrowsOnPredictBeforeFit) {
  Svm svm;
  EXPECT_THROW((void)svm.predict({0.0, 0.0}), std::logic_error);
}

TEST(Svm, ThrowsOnWidthMismatch) {
  const Dataset data = linear_blobs(10, 9);
  Svm svm;
  svm.fit(data);
  EXPECT_THROW((void)svm.predict({0.0}), std::invalid_argument);
}

TEST(Svm, KernelNamesForReports) {
  EXPECT_STREQ(to_string(KernelType::kLinear), "linear");
  EXPECT_STREQ(to_string(KernelType::kRbf), "rbf");
  EXPECT_STREQ(to_string(KernelType::kPoly), "poly");
}

TEST(Svm, SerializeRoundTripPredictsIdentically) {
  const Dataset data = linear_blobs(30, 11);
  Svm svm(SvmParams{.c = 2.0, .kernel = KernelType::kRbf});
  svm.fit(data);
  const Svm copy = Svm::deserialize(svm.serialize());
  EXPECT_EQ(copy.support_vector_count(), svm.support_vector_count());
  Rng rng(12);
  for (int i = 0; i < 60; ++i) {
    const FeatureRow row{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const auto pa = svm.predict_proba(row);
    const auto pb = copy.predict_proba(row);
    for (std::size_t c = 0; c < pa.size(); ++c) EXPECT_DOUBLE_EQ(pa[c], pb[c]);
  }
}

TEST(Svm, DeserializeRejectsGarbage) {
  EXPECT_THROW(Svm::deserialize("not_svm 1 2 3"), std::invalid_argument);
  EXPECT_THROW(Svm::deserialize("svm 1 2 0.5\n1 9 0 3\n"),
               std::invalid_argument);
}

/// Property sweep: regularization C values all learn the separable case.
class SvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweep, SeparableBlobsLearnAcrossC) {
  const Dataset data = linear_blobs(30, 10);
  Svm svm(SvmParams{.c = GetParam(), .kernel = KernelType::kRbf});
  svm.fit(data);
  EXPECT_GT(svm.score(data), 0.9) << "C=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CValues, SvmCSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0));

}  // namespace
}  // namespace cgctx::ml
