#include "ml/grid_search.hpp"

#include <gtest/gtest.h>

#include "ml/knn.hpp"
#include "ml/random_forest.hpp"

namespace cgctx::ml {
namespace {

Dataset noisy_blobs(std::size_t per_class, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"a", "b"});
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(-1.2, 1.0), rng.normal(0.0, 1.0)}, 0);
    data.add({rng.normal(1.2, 1.0), rng.normal(0.0, 1.0)}, 1);
  }
  return data;
}

GridCandidate knn_candidate(std::size_t k) {
  return GridCandidate{"knn_k" + std::to_string(k), [k] {
                         return std::make_unique<Knn>(KnnParams{.k = k});
                       }};
}

TEST(CrossValScore, ReasonableOnLearnableData) {
  const Dataset data = noisy_blobs(60, 1);
  Rng rng(2);
  const double score = cross_val_score(knn_candidate(5), data, 4, rng);
  EXPECT_GT(score, 0.7);
  EXPECT_LE(score, 1.0);
}

TEST(GridSearch, ScoresEveryCandidate) {
  const Dataset data = noisy_blobs(50, 3);
  Rng rng(4);
  const std::vector<GridCandidate> grid = {
      knn_candidate(1), knn_candidate(5), knn_candidate(15)};
  const auto result = grid_search(grid, data, 4, rng);
  ASSERT_EQ(result.scores.size(), 3u);
  for (double s : result.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_LT(result.best_index, 3u);
  EXPECT_DOUBLE_EQ(result.best_score(),
                   *std::max_element(result.scores.begin(), result.scores.end()));
}

TEST(GridSearch, PrefersLargerKOnNoisyOverlap) {
  // With heavily overlapping classes, k=1 overfits; a larger k should win
  // or at least never be dominated decisively.
  const Dataset data = noisy_blobs(150, 5);
  Rng rng(6);
  const auto result =
      grid_search({knn_candidate(1), knn_candidate(25)}, data, 5, rng);
  EXPECT_GE(result.scores[1], result.scores[0] - 0.02);
}

TEST(GridSearch, MixedModelFamiliesAreComparable) {
  const Dataset data = noisy_blobs(60, 7);
  Rng rng(8);
  std::vector<GridCandidate> grid = {
      knn_candidate(5),
      {"rf_20", [] {
         return std::make_unique<RandomForest>(
             RandomForestParams{.n_trees = 20, .seed = 9});
       }}};
  const auto result = grid_search(grid, data, 4, rng);
  EXPECT_EQ(result.scores.size(), 2u);
}

TEST(GridSearch, RejectsEmptyGrid) {
  const Dataset data = noisy_blobs(10, 10);
  Rng rng(11);
  EXPECT_THROW(grid_search({}, data, 3, rng), std::invalid_argument);
}

TEST(GridSearch, DeterministicGivenSeed) {
  const Dataset data = noisy_blobs(40, 12);
  const std::vector<GridCandidate> grid = {knn_candidate(3), knn_candidate(9)};
  Rng rng_a(13);
  Rng rng_b(13);
  const auto a = grid_search(grid, data, 4, rng_a);
  const auto b = grid_search(grid, data, 4, rng_b);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.best_index, b.best_index);
}

TEST(GridSearch, ScoresIdenticalAcrossThreadCounts) {
  const Dataset data = noisy_blobs(60, 14);
  std::vector<GridCandidate> grid = {knn_candidate(3), knn_candidate(9)};
  grid.push_back({"rf20", [] {
                    return std::make_unique<RandomForest>(
                        RandomForestParams{.n_trees = 20, .seed = 15});
                  }});
  std::vector<double> reference;
  std::size_t reference_best = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    core::ThreadPool pool(threads);
    Rng rng(16);
    const auto result = grid_search(grid, data, 4, rng, &pool);
    if (threads == 1) {
      reference = result.scores;
      reference_best = result.best_index;
    } else {
      EXPECT_EQ(result.scores, reference)
          << "diverged at " << threads << " threads";
      EXPECT_EQ(result.best_index, reference_best);
    }
  }
}

TEST(CrossValScore, IdenticalAcrossThreadCounts) {
  const Dataset data = noisy_blobs(50, 17);
  double reference = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    core::ThreadPool pool(threads);
    Rng rng(18);
    const double score =
        cross_val_score(knn_candidate(5), data, 4, rng, &pool);
    if (threads == 1)
      reference = score;
    else
      EXPECT_EQ(score, reference);
  }
}

}  // namespace
}  // namespace cgctx::ml
