#include "ml/knn.hpp"

#include <gtest/gtest.h>

namespace cgctx::ml {
namespace {

Dataset grid_data() {
  // Class 0 clustered near origin, class 1 near (10, 10).
  Dataset data({"x", "y"}, {"near", "far"});
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    data.add({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0);
    data.add({rng.normal(10.0, 1.0), rng.normal(10.0, 1.0)}, 1);
  }
  return data;
}

TEST(Knn, ClassifiesByProximity) {
  Knn knn(KnnParams{.k = 5});
  knn.fit(grid_data());
  EXPECT_EQ(knn.predict({0.5, -0.5}), 0);
  EXPECT_EQ(knn.predict({9.0, 11.0}), 1);
}

TEST(Knn, KOneMatchesNearestNeighbor) {
  Dataset data({"x"}, {"a", "b"});
  data.add({0.0}, 0);
  data.add({10.0}, 1);
  Knn knn(KnnParams{.k = 1});
  knn.fit(data);
  EXPECT_EQ(knn.predict({4.9}), 0);
  EXPECT_EQ(knn.predict({5.1}), 1);
}

TEST(Knn, KLargerThanDatasetIsClamped) {
  Dataset data({"x"}, {"a", "b"});
  data.add({0.0}, 0);
  data.add({1.0}, 0);
  data.add({10.0}, 1);
  Knn knn(KnnParams{.k = 100});
  knn.fit(data);
  // Majority of the whole (clamped) set is class 0.
  EXPECT_EQ(knn.predict({0.0}), 0);
}

TEST(Knn, ProbabilitiesAreVoteFractions) {
  Dataset data({"x"}, {"a", "b"});
  data.add({0.0}, 0);
  data.add({1.0}, 0);
  data.add({2.0}, 1);
  Knn knn(KnnParams{.k = 3});
  knn.fit(data);
  const auto probs = knn.predict_proba({0.5});
  EXPECT_NEAR(probs[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(probs[1], 1.0 / 3.0, 1e-12);
}

TEST(Knn, DistanceWeightingBreaksTiesTowardCloser) {
  Dataset data({"x"}, {"a", "b"});
  data.add({0.0}, 0);
  data.add({10.0}, 1);
  Knn knn(KnnParams{.k = 2, .distance_weighted = true});
  knn.fit(data);
  // Uniform voting would tie (argmax picks first class); weighting makes
  // the closer class win decisively on both sides.
  EXPECT_EQ(knn.predict({1.0}), 0);
  EXPECT_EQ(knn.predict({9.0}), 1);
  const auto probs = knn.predict_proba({9.0});
  EXPECT_GT(probs[1], 0.8);
}

TEST(Knn, MetricsDiffer) {
  const FeatureRow a{0.0, 0.0};
  const FeatureRow b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b, DistanceMetric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, b, DistanceMetric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(distance(a, b, DistanceMetric::kChebyshev), 4.0);
}

TEST(Knn, DistanceThrowsOnWidthMismatch) {
  EXPECT_THROW(distance({1.0}, {1.0, 2.0}, DistanceMetric::kEuclidean),
               std::invalid_argument);
}

TEST(Knn, ThrowsOnEmptyFitAndZeroK) {
  Knn knn;
  EXPECT_THROW(knn.fit(Dataset{}), std::invalid_argument);
  Knn zero(KnnParams{.k = 0});
  EXPECT_THROW(zero.fit(grid_data()), std::invalid_argument);
}

TEST(Knn, ThrowsOnPredictBeforeFit) {
  Knn knn;
  EXPECT_THROW((void)knn.predict({0.0, 0.0}), std::logic_error);
}

TEST(Knn, MetricNamesForReports) {
  EXPECT_STREQ(to_string(DistanceMetric::kEuclidean), "euclidean");
  EXPECT_STREQ(to_string(DistanceMetric::kManhattan), "manhattan");
  EXPECT_STREQ(to_string(DistanceMetric::kChebyshev), "chebyshev");
}

/// Property sweep: accuracy on clean blobs is high for every k and metric.
class KnnSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, DistanceMetric>> {
};

TEST_P(KnnSweep, SeparableBlobsClassifyCleanly) {
  const auto [k, metric] = GetParam();
  Knn knn(KnnParams{.k = k, .metric = metric});
  const Dataset data = grid_data();
  knn.fit(data);
  EXPECT_GT(knn.score(data), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 7, 15),
                       ::testing::Values(DistanceMetric::kEuclidean,
                                         DistanceMetric::kManhattan,
                                         DistanceMetric::kChebyshev)));

}  // namespace
}  // namespace cgctx::ml
