#include "ml/importance.hpp"

#include <gtest/gtest.h>

#include "ml/random_forest.hpp"

namespace cgctx::ml {
namespace {

/// Class depends only on feature 0; features 1 and 2 are pure noise.
Dataset one_informative_feature(std::size_t n, std::uint64_t seed) {
  Dataset data({"signal", "noise1", "noise2"}, {"a", "b"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const Label label = static_cast<Label>(i % 2);
    data.add({label == 0 ? rng.normal(-3.0, 0.5) : rng.normal(3.0, 0.5),
              rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)},
             label);
  }
  return data;
}

TEST(PermutationImportance, SignalFeatureDominates) {
  const Dataset data = one_informative_feature(300, 1);
  RandomForest forest(RandomForestParams{.n_trees = 30, .seed = 2});
  forest.fit(data);
  Rng rng(3);
  const auto result = permutation_importance(forest, data, 5, rng);
  ASSERT_EQ(result.mean_drop.size(), 3u);
  EXPECT_GT(result.baseline_accuracy, 0.98);
  EXPECT_GT(result.mean_drop[0], 0.3);
  EXPECT_LT(std::abs(result.mean_drop[1]), 0.05);
  EXPECT_LT(std::abs(result.mean_drop[2]), 0.05);
}

TEST(PermutationImportance, RestoresDataAfterwards) {
  Dataset data = one_informative_feature(100, 4);
  const Dataset snapshot = data;
  RandomForest forest(RandomForestParams{.n_trees = 10, .seed = 5});
  forest.fit(data);
  Rng rng(6);
  permutation_importance(forest, data, 3, rng);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data.row(i), snapshot.row(i));
}

TEST(PermutationImportance, StddevReportedPerFeature) {
  const Dataset data = one_informative_feature(150, 7);
  RandomForest forest(RandomForestParams{.n_trees = 15, .seed = 8});
  forest.fit(data);
  Rng rng(9);
  const auto result = permutation_importance(forest, data, 4, rng);
  ASSERT_EQ(result.stddev.size(), 3u);
  for (double s : result.stddev) EXPECT_GE(s, 0.0);
}

TEST(PermutationImportance, RejectsBadArguments) {
  const Dataset data = one_informative_feature(50, 10);
  RandomForest forest(RandomForestParams{.n_trees = 5, .seed = 11});
  forest.fit(data);
  Rng rng(12);
  EXPECT_THROW(permutation_importance(forest, Dataset{}, 3, rng),
               std::invalid_argument);
  EXPECT_THROW(permutation_importance(forest, data, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::ml
