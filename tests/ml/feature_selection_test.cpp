#include "ml/feature_selection.hpp"

#include <gtest/gtest.h>

#include "ml/random_forest.hpp"

namespace cgctx::ml {
namespace {

ImportanceResult fake_importance(std::initializer_list<double> drops) {
  ImportanceResult r;
  r.mean_drop = drops;
  r.stddev.assign(r.mean_drop.size(), 0.0);
  r.baseline_accuracy = 0.9;
  return r;
}

TEST(FeatureSelection, FromImportanceKeepsPositiveDrops) {
  const auto selection =
      FeatureSelection::from_importance(fake_importance({0.2, 0.0, -0.1, 0.05}));
  EXPECT_EQ(selection.kept(), (std::vector<std::size_t>{0, 3}));
}

TEST(FeatureSelection, FromImportanceWithThreshold) {
  const auto selection = FeatureSelection::from_importance(
      fake_importance({0.2, 0.04, 0.3, 0.05}), 0.045);
  EXPECT_EQ(selection.kept(), (std::vector<std::size_t>{0, 2, 3}));
}

TEST(FeatureSelection, FromImportanceThrowsWhenNothingSurvives) {
  EXPECT_THROW(
      FeatureSelection::from_importance(fake_importance({0.0, -0.1})),
      std::invalid_argument);
}

TEST(FeatureSelection, TopKPicksLargest) {
  const auto selection =
      FeatureSelection::top_k(fake_importance({0.1, 0.5, 0.0, 0.3}), 2);
  EXPECT_EQ(selection.kept(), (std::vector<std::size_t>{1, 3}));
}

TEST(FeatureSelection, TopKClampsToWidth) {
  const auto selection =
      FeatureSelection::top_k(fake_importance({0.1, 0.2}), 99);
  EXPECT_EQ(selection.output_width(), 2u);
}

TEST(FeatureSelection, ProjectRowAndNames) {
  const FeatureSelection selection({1, 3});
  EXPECT_EQ(selection.project(FeatureRow{9.0, 8.0, 7.0, 6.0}),
            (FeatureRow{8.0, 6.0}));
  EXPECT_EQ(selection.project(std::vector<std::string>{"a", "b", "c", "d"}),
            (std::vector<std::string>{"b", "d"}));
  EXPECT_THROW(selection.project(FeatureRow{1.0, 2.0}), std::invalid_argument);
}

TEST(FeatureSelection, ProjectDatasetPreservesLabels) {
  Dataset data({"a", "b", "c"}, {"x", "y"});
  data.add({1.0, 2.0, 3.0}, 0);
  data.add({4.0, 5.0, 6.0}, 1);
  const FeatureSelection selection({0, 2});
  const Dataset projected = selection.project(data);
  EXPECT_EQ(projected.num_features(), 2u);
  EXPECT_EQ(projected.feature_names(),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(projected.label(1), 1);
  EXPECT_EQ(projected.row(1), (FeatureRow{4.0, 6.0}));
}

TEST(FeatureSelection, DuplicateIndicesDeduplicated) {
  const FeatureSelection selection({2, 0, 2, 0});
  EXPECT_EQ(selection.kept(), (std::vector<std::size_t>{0, 2}));
}

TEST(FeatureSelection, EmptyThrows) {
  EXPECT_THROW(FeatureSelection(std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(FeatureSelection, SerializeRoundTrip) {
  const FeatureSelection selection({0, 5, 17});
  const auto copy = FeatureSelection::deserialize(selection.serialize());
  EXPECT_EQ(copy.kept(), selection.kept());
  EXPECT_THROW(FeatureSelection::deserialize("junk 2 1 2"),
               std::invalid_argument);
}

TEST(FeatureSelection, PrunedModelKeepsAccuracyOnRedundantData) {
  // Class depends on feature 0; features 1-3 are noise. A model on the
  // selected single feature must match the full model.
  Dataset data({"signal", "n1", "n2", "n3"}, {"a", "b"});
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Label label = i % 2;
    data.add({label == 0 ? rng.normal(-2, 0.5) : rng.normal(2, 0.5),
              rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)},
             label);
  }
  RandomForest full(RandomForestParams{.n_trees = 20, .seed = 5});
  full.fit(data);
  Rng imp_rng(6);
  const auto importance = permutation_importance(full, data, 3, imp_rng);
  const auto selection = FeatureSelection::top_k(importance, 1);
  ASSERT_EQ(selection.kept(), (std::vector<std::size_t>{0}));
  const Dataset pruned = selection.project(data);
  RandomForest small(RandomForestParams{.n_trees = 20, .seed = 7});
  small.fit(pruned);
  EXPECT_GT(small.score(pruned), 0.98);
}

}  // namespace
}  // namespace cgctx::ml
