#include "ml/gradient_boosting.hpp"

#include <gtest/gtest.h>

#include "ml/rng.hpp"

namespace cgctx::ml {
namespace {

Dataset blobs(std::size_t per_class, double separation, std::uint64_t seed,
              std::size_t classes = 2) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < classes; ++c)
    names.push_back("c" + std::to_string(c));
  Dataset data({"x", "y"}, names);
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i)
    for (std::size_t c = 0; c < classes; ++c)
      data.add({rng.normal(separation * static_cast<double>(c), 1.0),
                rng.normal(0.0, 1.0)},
               static_cast<Label>(c));
  return data;
}

Dataset xor_data(std::uint64_t seed) {
  Dataset data({"x", "y"}, {"zero", "one"});
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    const double y = rng.uniform(0.0, 1.0);
    data.add({x, y}, (x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  return data;
}

TEST(GradientBoosting, FitsSeparableBlobs) {
  const Dataset data = blobs(80, 4.0, 1);
  GradientBoosting model(GradientBoostingParams{.n_rounds = 30});
  model.fit(data);
  EXPECT_GT(model.score(data), 0.98);
  EXPECT_EQ(model.rounds_fitted(), 30u);
}

TEST(GradientBoosting, SolvesXorWithDepthTwo) {
  const Dataset data = xor_data(2);
  GradientBoosting model(
      GradientBoostingParams{.n_rounds = 60, .max_depth = 2});
  model.fit(data);
  EXPECT_GT(model.score(data), 0.95);
}

TEST(GradientBoosting, MulticlassWorks) {
  const Dataset data = blobs(60, 4.0, 3, 4);
  GradientBoosting model(GradientBoostingParams{.n_rounds = 40});
  model.fit(data);
  EXPECT_GT(model.score(data), 0.95);
  const auto probs = model.predict_proba({0.0, 0.0});
  EXPECT_EQ(probs.size(), 4u);
}

TEST(GradientBoosting, ProbabilitiesSumToOne) {
  const Dataset data = blobs(40, 2.0, 5);
  GradientBoosting model(GradientBoostingParams{.n_rounds = 20});
  model.fit(data);
  const auto probs = model.predict_proba({1.0, -1.0});
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GradientBoosting, MoreRoundsFitTighter) {
  const Dataset data = blobs(100, 1.2, 7);  // overlapping
  GradientBoosting few(
      GradientBoostingParams{.n_rounds = 5, .learning_rate = 0.1, .seed = 9});
  GradientBoosting many(
      GradientBoostingParams{.n_rounds = 80, .learning_rate = 0.1, .seed = 9});
  few.fit(data);
  many.fit(data);
  EXPECT_GE(many.score(data) + 1e-9, few.score(data));
}

TEST(GradientBoosting, DeterministicForSameSeed) {
  const Dataset data = blobs(50, 1.5, 11);
  GradientBoosting a(GradientBoostingParams{.n_rounds = 15, .seed = 42});
  GradientBoosting b(GradientBoostingParams{.n_rounds = 15, .seed = 42});
  a.fit(data);
  b.fit(data);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const FeatureRow row{rng.uniform(-3, 5), rng.uniform(-3, 3)};
    EXPECT_EQ(a.predict(row), b.predict(row));
  }
}

TEST(GradientBoosting, SubsampleOneDisablesStochasticity) {
  const Dataset data = blobs(50, 3.0, 15);
  GradientBoosting model(
      GradientBoostingParams{.n_rounds = 10, .subsample = 1.0});
  model.fit(data);
  EXPECT_GT(model.score(data), 0.95);
}

TEST(GradientBoosting, ThrowsOnBadInputs) {
  GradientBoosting model;
  EXPECT_THROW(model.fit(Dataset{}), std::invalid_argument);
  EXPECT_THROW((void)model.predict({1.0, 2.0}), std::logic_error);
  GradientBoosting zero(GradientBoostingParams{.n_rounds = 0});
  EXPECT_THROW(zero.fit(blobs(5, 1.0, 17)), std::invalid_argument);
  GradientBoosting fitted(GradientBoostingParams{.n_rounds = 3});
  fitted.fit(blobs(10, 3.0, 19));
  EXPECT_THROW((void)fitted.predict({1.0}), std::invalid_argument);
}

/// Property sweep: learning rates all converge on separable data.
class GbtRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(GbtRateSweep, ConvergesAcrossLearningRates) {
  const Dataset data = blobs(60, 3.0, 21);
  GradientBoosting model(GradientBoostingParams{
      .n_rounds = 60, .learning_rate = GetParam(), .seed = 22});
  model.fit(data);
  EXPECT_GT(model.score(data), 0.95) << "rate " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rates, GbtRateSweep,
                         ::testing::Values(0.03, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace cgctx::ml
