#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cgctx::ml {
namespace {

Dataset make_dataset(std::size_t per_class, std::size_t classes) {
  Dataset data({"x", "y"}, [&] {
    std::vector<std::string> names;
    for (std::size_t c = 0; c < classes; ++c)
      names.push_back("c" + std::to_string(c));
    return names;
  }());
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t i = 0; i < per_class; ++i)
      data.add({static_cast<double>(c), static_cast<double>(i)},
               static_cast<Label>(c));
  return data;
}

TEST(Dataset, AddAndAccess) {
  Dataset data({"a", "b", "c"}, {"x", "y"});
  data.add({1.0, 2.0, 3.0}, 1);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.num_features(), 3u);
  EXPECT_EQ(data.num_classes(), 2u);
  EXPECT_EQ(data.label(0), 1);
  EXPECT_DOUBLE_EQ(data.row(0)[2], 3.0);
}

TEST(Dataset, RejectsInconsistentWidth) {
  Dataset data({"a", "b"}, {"x"});
  data.add({1.0, 2.0}, 0);
  EXPECT_THROW(data.add({1.0}, 0), std::invalid_argument);
}

TEST(Dataset, RejectsBadLabel) {
  Dataset data({"a"}, {"only"});
  EXPECT_THROW(data.add({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(data.add({1.0}, -1), std::invalid_argument);
}

TEST(Dataset, NumClassesInferredWithoutNames) {
  Dataset data;
  data.add({1.0}, 0);
  data.add({2.0}, 4);
  EXPECT_EQ(data.num_classes(), 5u);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset data = make_dataset(3, 2);
  const Dataset sub = data.subset({0, 5});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 0);
  EXPECT_EQ(sub.label(1), 1);
  EXPECT_EQ(sub.feature_names(), data.feature_names());
}

TEST(Dataset, ClassCounts) {
  Dataset data = make_dataset(4, 3);
  const auto counts = data.class_counts();
  ASSERT_EQ(counts.size(), 3u);
  for (std::size_t c : counts) EXPECT_EQ(c, 4u);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  Dataset data = make_dataset(40, 3);
  Rng rng(5);
  const auto split = stratified_split(data, 0.25, rng);
  EXPECT_EQ(split.train.size(), 90u);
  EXPECT_EQ(split.test.size(), 30u);
  const auto train_counts = split.train.class_counts();
  const auto test_counts = split.test.class_counts();
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(train_counts[c], 30u);
    EXPECT_EQ(test_counts[c], 10u);
  }
}

TEST(StratifiedSplit, RejectsDegenerateFractions) {
  Dataset data = make_dataset(4, 2);
  Rng rng(5);
  EXPECT_THROW(stratified_split(data, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(data, 1.0, rng), std::invalid_argument);
}

TEST(StratifiedSplit, SmallClassesStillGetTestRows) {
  Dataset data = make_dataset(3, 2);
  Rng rng(5);
  const auto split = stratified_split(data, 0.3, rng);
  const auto test_counts = split.test.class_counts();
  EXPECT_EQ(test_counts[0], 1u);
  EXPECT_EQ(test_counts[1], 1u);
}

TEST(StratifiedKfold, FoldsPartitionAllIndices) {
  Dataset data = make_dataset(10, 4);
  Rng rng(9);
  const auto folds = stratified_kfold(data, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 8u);  // 40 rows / 5 folds
    for (std::size_t index : fold) EXPECT_TRUE(seen.insert(index).second);
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST(StratifiedKfold, EachFoldIsClassBalanced) {
  Dataset data = make_dataset(10, 2);
  Rng rng(11);
  const auto folds = stratified_kfold(data, 5, rng);
  for (const auto& fold : folds) {
    std::size_t c0 = 0;
    for (std::size_t index : fold)
      if (data.label(index) == 0) ++c0;
    EXPECT_EQ(c0, 2u);
  }
}

TEST(StratifiedKfold, RejectsKBelowTwo) {
  Dataset data = make_dataset(4, 2);
  Rng rng(1);
  EXPECT_THROW(stratified_kfold(data, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::ml
