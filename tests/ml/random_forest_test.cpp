#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>

#include "core/thread_pool.hpp"

namespace cgctx::ml {
namespace {

Dataset blobs(std::size_t per_class, double separation, std::uint64_t seed,
              std::size_t classes = 2) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < classes; ++c)
    names.push_back("c" + std::to_string(c));
  Dataset data({"x", "y"}, names);
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i)
    for (std::size_t c = 0; c < classes; ++c)
      data.add({rng.normal(separation * static_cast<double>(c), 1.0),
                rng.normal(0.0, 1.0)},
               static_cast<Label>(c));
  return data;
}

TEST(RandomForest, FitsSeparableData) {
  const Dataset data = blobs(100, 5.0, 1);
  RandomForest forest(RandomForestParams{.n_trees = 30, .seed = 2});
  forest.fit(data);
  EXPECT_GT(forest.score(data), 0.99);
  EXPECT_EQ(forest.tree_count(), 30u);
}

TEST(RandomForest, MulticlassWorks) {
  const Dataset data = blobs(60, 5.0, 3, 4);
  RandomForest forest(RandomForestParams{.n_trees = 40, .seed = 4});
  forest.fit(data);
  EXPECT_GT(forest.score(data), 0.95);
  const auto probs = forest.predict_proba({0.0, 0.0});
  EXPECT_EQ(probs.size(), 4u);
}

TEST(RandomForest, ProbabilitiesSumToOne) {
  const Dataset data = blobs(50, 2.0, 5);
  RandomForest forest(RandomForestParams{.n_trees = 20, .seed = 6});
  forest.fit(data);
  const auto probs = forest.predict_proba({1.0, 0.5});
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForest, ConfidenceHighAwayFromBoundary) {
  const Dataset data = blobs(200, 6.0, 7);
  RandomForest forest(RandomForestParams{.n_trees = 50, .seed = 8});
  forest.fit(data);
  const auto sure = forest.predict_with_confidence({6.0, 0.0});
  EXPECT_EQ(sure.label, 1);
  EXPECT_GT(sure.confidence, 0.9);
  const auto unsure = forest.predict_with_confidence({3.0, 0.0});
  EXPECT_LT(unsure.confidence, sure.confidence + 1e-9);
}

TEST(RandomForest, OobScoreTracksGeneralization) {
  const Dataset data = blobs(150, 3.0, 9);
  RandomForest forest(RandomForestParams{.n_trees = 60, .seed = 10});
  forest.fit(data);
  const double oob = forest.oob_score();
  EXPECT_FALSE(std::isnan(oob));
  EXPECT_GT(oob, 0.85);
  EXPECT_LE(oob, 1.0);
}

TEST(RandomForest, NoBootstrapHasNoOobScore) {
  const Dataset data = blobs(50, 3.0, 11);
  RandomForest forest(
      RandomForestParams{.n_trees = 10, .bootstrap = false, .seed = 12});
  forest.fit(data);
  EXPECT_TRUE(std::isnan(forest.oob_score()));
}

TEST(RandomForest, DeterministicForSameSeed) {
  const Dataset data = blobs(60, 1.5, 13);
  RandomForest a(RandomForestParams{.n_trees = 15, .seed = 99});
  RandomForest b(RandomForestParams{.n_trees = 15, .seed = 99});
  a.fit(data);
  b.fit(data);
  Rng rng(100);
  for (int i = 0; i < 50; ++i) {
    const FeatureRow row{rng.uniform(-4, 7), rng.uniform(-3, 3)};
    EXPECT_EQ(a.predict(row), b.predict(row));
  }
}

TEST(RandomForest, DifferentSeedsDifferentForests) {
  const Dataset data = blobs(60, 1.0, 15);  // heavy overlap
  RandomForest a(RandomForestParams{.n_trees = 5, .seed = 1});
  RandomForest b(RandomForestParams{.n_trees = 5, .seed = 2});
  a.fit(data);
  b.fit(data);
  Rng rng(101);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    const FeatureRow row{rng.uniform(-3, 4), rng.uniform(-3, 3)};
    if (a.predict(row) != b.predict(row)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(RandomForest, ThrowsOnEmptyFitAndZeroTrees) {
  RandomForest forest;
  EXPECT_THROW(forest.fit(Dataset{}), std::invalid_argument);
  RandomForest none(RandomForestParams{.n_trees = 0});
  EXPECT_THROW(none.fit(blobs(5, 1.0, 17)), std::invalid_argument);
}

TEST(RandomForest, PredictTieBreaksToLowestLabel) {
  // Identical rows with alternating labels leave every tree a single
  // [0.5, 0.5] leaf: predict faces an exact probability tie and must
  // resolve it to the lowest label (std::max_element returns the first
  // maximum). The compiled engine pins the same rule. Bootstrap is off
  // so every tree sees the exact 50/50 label mix.
  Dataset data({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 10; ++i) data.add({3.0, -1.0}, i % 2);
  RandomForest forest(
      RandomForestParams{.n_trees = 7, .bootstrap = false, .seed = 30});
  forest.fit(data);
  const auto probs = forest.predict_proba({3.0, -1.0});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_EQ(probs[0], probs[1]);
  EXPECT_EQ(forest.predict({3.0, -1.0}), 0);
}

TEST(RandomForest, ThrowsOnPredictBeforeFit) {
  RandomForest forest;
  EXPECT_THROW((void)forest.predict({1.0, 2.0}), std::logic_error);
}

TEST(RandomForest, SerializeRoundTripPredictsIdentically) {
  const Dataset data = blobs(60, 2.0, 19);
  RandomForest forest(RandomForestParams{.n_trees = 12, .seed = 20});
  forest.fit(data);
  const RandomForest copy = RandomForest::deserialize(forest.serialize());
  EXPECT_EQ(copy.tree_count(), forest.tree_count());
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const FeatureRow row{rng.uniform(-4, 6), rng.uniform(-3, 3)};
    const auto pa = forest.predict_proba(row);
    const auto pb = copy.predict_proba(row);
    for (std::size_t c = 0; c < pa.size(); ++c) EXPECT_DOUBLE_EQ(pa[c], pb[c]);
  }
}

TEST(RandomForest, DeserializeRejectsGarbage) {
  EXPECT_THROW(RandomForest::deserialize("woods 3 2"), std::invalid_argument);
}

TEST(RandomForest, DeserializeRejectsTreeClassCountMismatch) {
  const Dataset data = blobs(40, 3.0, 25);
  RandomForest forest(RandomForestParams{.n_trees = 3, .seed = 26});
  forest.fit(data);
  std::string text = forest.serialize();
  // Bump the header's class count from 2 to 3: every tree now disagrees
  // with the header and the payload must be rejected, not trusted.
  const std::size_t header_end = text.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  ASSERT_EQ(text.substr(0, header_end), "forest 3 2");
  text.replace(0, header_end, "forest 3 3");
  try {
    RandomForest::deserialize(text);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("classes"), std::string::npos);
  }
}

TEST(RandomForest, DeserializeRejectsTreeFeatureWidthMismatch) {
  // Splice a 3-feature tree into a 2-feature forest payload: header and
  // classes agree, but the trees disagree on feature width.
  const Dataset narrow = blobs(40, 3.0, 27);
  Dataset wide({"x", "y", "z"}, {"a", "b"});
  Rng rng(28);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto c = static_cast<Label>(i % 2);
    wide.add({rng.normal(3.0 * c, 1.0), rng.normal(0.0, 1.0),
              rng.normal(0.0, 1.0)},
             c);
  }
  RandomForest forest_a(RandomForestParams{.n_trees = 1, .seed = 29});
  forest_a.fit(narrow);
  RandomForest forest_b(RandomForestParams{.n_trees = 1, .seed = 30});
  forest_b.fit(wide);
  // Serialized form is two header lines followed by the tree payloads.
  const auto split_headers = [](const std::string& text) {
    const std::size_t second_line_end = text.find('\n', text.find('\n') + 1);
    return std::pair{text.substr(0, second_line_end + 1),
                     text.substr(second_line_end + 1)};
  };
  const auto [headers_a, tree_a] = split_headers(forest_a.serialize());
  const auto [headers_b, tree_b] = split_headers(forest_b.serialize());
  const std::string params_line = headers_a.substr(headers_a.find('\n') + 1);
  const std::string spliced =
      "forest 2 2\n" + params_line + tree_a + tree_b;
  try {
    RandomForest::deserialize(spliced);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("feature width"), std::string::npos);
  }
}

TEST(RandomForest, FitIdenticalAcrossExplicitPools) {
  const Dataset data = blobs(80, 2.0, 31, 3);
  const RandomForestParams params{.n_trees = 30, .seed = 32};
  std::string reference;
  double reference_oob = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    core::ThreadPool pool(threads);
    RandomForest forest(params);
    forest.fit(data, pool);
    if (threads == 1) {
      reference = forest.serialize();
      reference_oob = forest.oob_score();
    } else {
      EXPECT_EQ(forest.serialize(), reference)
          << "diverged at " << threads << " threads";
      EXPECT_EQ(forest.oob_score(), reference_oob);
    }
  }
}

/// Property sweep: more trees should not hurt OOB accuracy much; ensemble
/// is at least as good as a small one on noisy data.
class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, OobReasonableAcrossSizes) {
  const Dataset data = blobs(120, 2.5, 23);
  RandomForest forest(RandomForestParams{.n_trees = GetParam(), .seed = 24});
  forest.fit(data);
  EXPECT_GT(forest.oob_score(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeSweep,
                         ::testing::Values(5, 10, 25, 50, 100));

}  // namespace
}  // namespace cgctx::ml
