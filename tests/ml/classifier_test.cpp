#include "ml/classifier.hpp"

#include <gtest/gtest.h>

namespace cgctx::ml {
namespace {

/// Deterministic stub: predicts class floor(x) clamped to [0, k).
class StubClassifier final : public Classifier {
 public:
  explicit StubClassifier(std::size_t num_classes)
      : num_classes_(num_classes) {}
  void fit(const Dataset&) override {}
  [[nodiscard]] Label predict(const FeatureRow& row) const override {
    const auto c = static_cast<Label>(row.at(0));
    return std::clamp<Label>(c, 0, static_cast<Label>(num_classes_ - 1));
  }
  [[nodiscard]] ClassProbabilities predict_proba(
      const FeatureRow& row) const override {
    ClassProbabilities probs(num_classes_, 0.05);
    probs[static_cast<std::size_t>(predict(row))] = 0.9;
    return probs;
  }

 private:
  std::size_t num_classes_;
};

TEST(Classifier, PredictWithConfidenceUsesArgmax) {
  const StubClassifier stub(3);
  const auto prediction = stub.predict_with_confidence({1.2});
  EXPECT_EQ(prediction.label, 1);
  EXPECT_DOUBLE_EQ(prediction.confidence, 0.9);
}

TEST(Classifier, ScoreCountsMatches) {
  const StubClassifier stub(2);
  Dataset data({"x"}, {"a", "b"});
  data.add({0.0}, 0);   // predicted 0, correct
  data.add({1.0}, 1);   // predicted 1, correct
  data.add({0.0}, 1);   // predicted 0, wrong
  data.add({1.0}, 0);   // predicted 1, wrong
  EXPECT_DOUBLE_EQ(stub.score(data), 0.5);
}

TEST(Classifier, ScoreOfEmptyDatasetIsZero) {
  const StubClassifier stub(2);
  EXPECT_DOUBLE_EQ(stub.score(Dataset{}), 0.0);
}

}  // namespace
}  // namespace cgctx::ml
