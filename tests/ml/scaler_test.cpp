#include "ml/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cgctx::ml {
namespace {

Dataset two_column_data() {
  Dataset data({"a", "b"}, {"c0", "c1"});
  data.add({1.0, 100.0}, 0);
  data.add({2.0, 200.0}, 0);
  data.add({3.0, 300.0}, 1);
  data.add({4.0, 400.0}, 1);
  return data;
}

TEST(StandardScaler, CentersAndScales) {
  StandardScaler scaler;
  const Dataset data = two_column_data();
  scaler.fit(data);
  EXPECT_NEAR(scaler.means()[0], 2.5, 1e-12);
  EXPECT_NEAR(scaler.means()[1], 250.0, 1e-12);

  const Dataset transformed = scaler.transform(data);
  // Transformed columns have mean 0 and unit variance.
  for (std::size_t j = 0; j < 2; ++j) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < transformed.size(); ++i) {
      sum += transformed.row(i)[j];
      sum_sq += transformed.row(i)[j] * transformed.row(i)[j];
    }
    EXPECT_NEAR(sum, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / 4.0, 1.0, 1e-9);
  }
}

TEST(StandardScaler, ConstantColumnStaysFinite) {
  Dataset data({"const", "var"}, {"c"});
  data.add({5.0, 1.0}, 0);
  data.add({5.0, 3.0}, 0);
  StandardScaler scaler;
  scaler.fit(data);
  const FeatureRow out = scaler.transform(FeatureRow{5.0, 2.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_TRUE(std::isfinite(out[1]));
}

TEST(StandardScaler, ThrowsBeforeFit) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(FeatureRow{1.0}), std::logic_error);
}

TEST(StandardScaler, ThrowsOnWidthMismatch) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  EXPECT_THROW(scaler.transform(FeatureRow{1.0}), std::invalid_argument);
}

TEST(StandardScaler, ThrowsOnEmptyDataset) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.fit(Dataset{}), std::invalid_argument);
}

TEST(StandardScaler, SerializeRoundTrip) {
  StandardScaler scaler;
  scaler.fit(two_column_data());
  const StandardScaler copy = StandardScaler::deserialize(scaler.serialize());
  const FeatureRow row{2.2, 333.0};
  const FeatureRow a = scaler.transform(row);
  const FeatureRow b = copy.transform(row);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
}

TEST(StandardScaler, DeserializeRejectsGarbage) {
  EXPECT_THROW(StandardScaler::deserialize("nonsense 2"),
               std::invalid_argument);
  EXPECT_THROW(StandardScaler::deserialize("scaler 4\n1 2\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::ml
