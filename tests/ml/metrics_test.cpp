#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "ml/knn.hpp"

namespace cgctx::ml {
namespace {

ConfusionMatrix example_matrix() {
  // truth 0: 8 correct, 2 as class 1; truth 1: 5 correct, 5 as class 0.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 5; ++i) cm.add(1, 1);
  for (int i = 0; i < 5; ++i) cm.add(1, 0);
  return cm;
}

TEST(ConfusionMatrix, CountsAndTotal) {
  const ConfusionMatrix cm = example_matrix();
  EXPECT_EQ(cm.count(0, 0), 8u);
  EXPECT_EQ(cm.count(0, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 5u);
  EXPECT_EQ(cm.count(1, 1), 5u);
  EXPECT_EQ(cm.total(), 20u);
}

TEST(ConfusionMatrix, Accuracy) {
  EXPECT_DOUBLE_EQ(example_matrix().accuracy(), 13.0 / 20.0);
}

TEST(ConfusionMatrix, PerClassRecallPrecisionF1) {
  const ConfusionMatrix cm = example_matrix();
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.8);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.per_class_accuracy(0), cm.recall(0));
  EXPECT_DOUBLE_EQ(cm.precision(0), 8.0 / 13.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 5.0 / 7.0);
  const double p0 = 8.0 / 13.0;
  const double r0 = 0.8;
  EXPECT_DOUBLE_EQ(cm.f1(0), 2 * p0 * r0 / (p0 + r0));
}

TEST(ConfusionMatrix, MacroF1IsMeanOfPerClass) {
  const ConfusionMatrix cm = example_matrix();
  EXPECT_NEAR(cm.macro_f1(), (cm.f1(0) + cm.f1(1)) / 2.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyMatrixIsZeroEverywhere) {
  const ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, RejectsOutOfRangeLabels) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
}

TEST(ConfusionMatrix, ToStringContainsClassNames) {
  const auto text = example_matrix().to_string({"cats", "dogs"});
  EXPECT_NE(text.find("cats"), std::string::npos);
  EXPECT_NE(text.find("dogs"), std::string::npos);
}

TEST(Evaluate, TalliesClassifierPredictions) {
  Dataset data({"x"}, {"lo", "hi"});
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, i < 5 ? 0 : 1);
  Knn knn(KnnParams{.k = 1});
  knn.fit(data);
  const ConfusionMatrix cm = evaluate(knn, data);
  EXPECT_EQ(cm.total(), 10u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);  // 1-NN memorizes its training set
}

TEST(ClassifierScore, MatchesConfusionAccuracy) {
  Dataset data({"x"}, {"lo", "hi"});
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    data.add({x}, x < 5.0 ? 0 : 1);
  }
  Knn knn(KnnParams{.k = 3});
  knn.fit(data);
  EXPECT_DOUBLE_EQ(knn.score(data), evaluate(knn, data).accuracy());
}

}  // namespace
}  // namespace cgctx::ml
