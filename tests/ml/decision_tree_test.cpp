#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

namespace cgctx::ml {
namespace {

/// Two well-separated 2-D Gaussian-ish blobs.
Dataset blobs(std::size_t per_class, double separation, std::uint64_t seed) {
  Dataset data({"x", "y"}, {"left", "right"});
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(-separation, 1.0), rng.normal(0.0, 1.0)}, 0);
    data.add({rng.normal(separation, 1.0), rng.normal(0.0, 1.0)}, 1);
  }
  return data;
}

/// XOR pattern: not linearly separable, needs depth >= 2.
Dataset xor_data() {
  Dataset data({"x", "y"}, {"zero", "one"});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    const double y = rng.uniform(0.0, 1.0);
    data.add({x, y}, (x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  return data;
}

TEST(DecisionTree, FitsSeparableData) {
  const Dataset data = blobs(100, 4.0, 1);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_GT(tree.score(data), 0.99);
}

TEST(DecisionTree, SolvesXor) {
  const Dataset data = xor_data();
  DecisionTree tree;
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.score(data), 1.0);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, MaxDepthOneIsAStump) {
  const Dataset data = blobs(50, 3.0, 2);
  DecisionTree tree(DecisionTreeParams{.max_depth = 1});
  tree.fit(data);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, DepthZeroMeansUnlimited) {
  const Dataset data = xor_data();
  DecisionTree tree(DecisionTreeParams{.max_depth = 0});
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.score(data), 1.0);
}

TEST(DecisionTree, MinSamplesSplitForcesLeaf) {
  const Dataset data = blobs(20, 3.0, 4);
  DecisionTree tree(DecisionTreeParams{.min_samples_split = 1000});
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);  // a single leaf
  // A single leaf predicts the majority class with its prior.
  const auto probs = tree.predict_proba({0.0, 0.0});
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset data({"x"}, {"only"});
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, 0);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({3.0}), 0);
}

TEST(DecisionTree, ConstantFeaturesYieldLeaf) {
  Dataset data({"x"}, {"a", "b"});
  for (int i = 0; i < 6; ++i) data.add({1.0}, i % 2);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  const Dataset data = blobs(50, 2.0, 7);
  DecisionTree tree(DecisionTreeParams{.max_depth = 3});
  tree.fit(data);
  const auto probs = tree.predict_proba({0.1, -0.2});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(DecisionTree, PredictTieBreaksToLowestLabel) {
  // Unsplittable data leaves one [0.5, 0.5] leaf; the exact tie must
  // resolve to the lowest label (first maximum).
  Dataset data({"x"}, {"a", "b"});
  for (int i = 0; i < 6; ++i) data.add({1.0}, i % 2);
  DecisionTree tree;
  tree.fit(data);
  const auto probs = tree.predict_proba({1.0});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_EQ(probs[0], probs[1]);
  EXPECT_EQ(tree.predict({1.0}), 0);
}

TEST(DecisionTree, LeafDistributionIsTheNoCopyPredictProba) {
  const Dataset data = blobs(50, 2.0, 7);
  DecisionTree tree(DecisionTreeParams{.max_depth = 4});
  tree.fit(data);
  const FeatureRow row{0.3, -0.4};
  const ClassProbabilities& ref = tree.leaf_distribution(row);
  EXPECT_EQ(ref, tree.predict_proba(row));
  // Same call, same leaf: the reference is stable storage, not a copy.
  EXPECT_EQ(&ref, &tree.leaf_distribution(row));
}

TEST(DecisionTree, ThrowsOnEmptyFit) {
  DecisionTree tree;
  EXPECT_THROW(tree.fit(Dataset{}), std::invalid_argument);
}

TEST(DecisionTree, ThrowsOnPredictBeforeFit) {
  DecisionTree tree;
  EXPECT_THROW((void)tree.predict({1.0}), std::logic_error);
}

TEST(DecisionTree, ThrowsOnWidthMismatch) {
  const Dataset data = blobs(10, 3.0, 9);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_THROW((void)tree.predict({1.0}), std::invalid_argument);
}

TEST(DecisionTree, FitOnSubsetUsesOnlyThoseRows) {
  Dataset data({"x"}, {"a", "b"});
  // Global pattern says class depends on x, but the subset is pure class 0.
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, i < 5 ? 0 : 1);
  DecisionTree tree;
  tree.fit_on(data, {0, 1, 2, 3, 4});
  EXPECT_EQ(tree.predict({9.0}), 0);
}

TEST(DecisionTree, FeatureSubsamplingStillLearns) {
  const Dataset data = blobs(100, 4.0, 11);
  DecisionTree tree(DecisionTreeParams{.max_features = 1, .seed = 5});
  tree.fit(data);
  EXPECT_GT(tree.score(data), 0.9);
}

TEST(DecisionTree, SerializeRoundTripPredictsIdentically) {
  const Dataset data = blobs(60, 2.5, 13);
  DecisionTree tree(DecisionTreeParams{.max_depth = 6});
  tree.fit(data);
  const DecisionTree copy = DecisionTree::deserialize(tree.serialize());
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const FeatureRow row{rng.uniform(-6, 6), rng.uniform(-3, 3)};
    EXPECT_EQ(tree.predict(row), copy.predict(row));
  }
}

TEST(DecisionTree, DeserializeRejectsCorruptHeader) {
  EXPECT_THROW(DecisionTree::deserialize("not_a_tree 1 2 3"),
               std::invalid_argument);
}

TEST(DecisionTree, DeserializeRejectsBadChildIndex) {
  // A split node pointing at node 0 (the root) is invalid.
  EXPECT_THROW(DecisionTree::deserialize("tree 1 2 2\nsplit 0 0.5 0 0\n"),
               std::invalid_argument);
}

/// Property: deeper trees never fit the training set worse.
class TreeDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeDepthSweep, TrainAccuracyMonotoneInDepth) {
  const Dataset data = blobs(80, 1.0, 19);  // overlapping blobs
  DecisionTree shallow(DecisionTreeParams{.max_depth = GetParam()});
  DecisionTree deeper(DecisionTreeParams{.max_depth = GetParam() + 2});
  shallow.fit(data);
  deeper.fit(data);
  EXPECT_GE(deeper.score(data) + 1e-12, shallow.score(data));
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace cgctx::ml
