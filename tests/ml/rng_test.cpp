#include "ml/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace cgctx::ml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformWithinRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.5, 8.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 8.25);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ScaledNormal) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(31);
  b.next_u64();  // parent consumed one draw to fork
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (fork.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Shuffle, PermutesAllElements) {
  Rng rng(37);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, values);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Shuffle, SingleElementIsNoop) {
  Rng rng(41);
  std::vector<int> one = {5};
  shuffle(one, rng);
  EXPECT_EQ(one[0], 5);
}

}  // namespace
}  // namespace cgctx::ml
