#include "ml/compiled_forest.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "ml/random_forest.hpp"

namespace cgctx::ml {
namespace {

Dataset blobs(std::size_t per_class, double separation, std::uint64_t seed,
              std::size_t classes = 2) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < classes; ++c)
    names.push_back("c" + std::to_string(c));
  Dataset data({"x", "y"}, names);
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i)
    for (std::size_t c = 0; c < classes; ++c)
      data.add({rng.normal(separation * static_cast<double>(c), 1.0),
                rng.normal(0.0, 1.0)},
               static_cast<Label>(c));
  return data;
}

/// Bit-for-bit double equality (the parity guarantee is bitwise, not
/// epsilon-based).
void expect_bitwise_equal(const ClassProbabilities& a,
                          const ClassProbabilities& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[c]),
              std::bit_cast<std::uint64_t>(b[c]))
        << "class " << c << ": " << a[c] << " vs " << b[c];
}

TEST(CompiledForest, LayoutMatchesSource) {
  const Dataset data = blobs(80, 2.0, 1, 3);
  RandomForest forest(RandomForestParams{.n_trees = 25, .seed = 2});
  forest.fit(data);
  const CompiledForest compiled(forest);
  EXPECT_TRUE(compiled.compiled());
  EXPECT_EQ(compiled.tree_count(), forest.tree_count());
  EXPECT_EQ(compiled.num_classes(), forest.num_classes());
  EXPECT_EQ(compiled.num_features(), 2u);
  std::size_t nodes = 0;
  for (const DecisionTree& tree : forest.trees()) nodes += tree.node_count();
  EXPECT_EQ(compiled.node_count(), nodes);
}

TEST(CompiledForest, BitwiseParityWithReferenceForest) {
  const Dataset data = blobs(120, 1.5, 3, 4);  // overlap -> mixed leaves
  RandomForest forest(RandomForestParams{.n_trees = 60, .seed = 4});
  forest.fit(data);
  const CompiledForest compiled(forest);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const FeatureRow row{rng.uniform(-4.0, 9.0), rng.uniform(-4.0, 4.0)};
    expect_bitwise_equal(compiled.predict_proba(row),
                         forest.predict_proba(row));
    EXPECT_EQ(compiled.predict(row), forest.predict(row));
  }
}

TEST(CompiledForest, PredictProbaIntoMatchesAllocatingForm) {
  const Dataset data = blobs(60, 2.0, 7, 3);
  RandomForest forest(RandomForestParams{.n_trees = 20, .seed = 8});
  forest.fit(data);
  const CompiledForest compiled(forest);
  std::vector<double> out(compiled.num_classes());
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const FeatureRow row{rng.uniform(-3.0, 7.0), rng.uniform(-3.0, 3.0)};
    compiled.predict_proba_into(row, out);
    expect_bitwise_equal(ClassProbabilities(out.begin(), out.end()),
                         forest.predict_proba(row));
  }
}

TEST(CompiledForest, PredictWithConfidenceMatchesReference) {
  const Dataset data = blobs(100, 2.5, 11);
  RandomForest forest(RandomForestParams{.n_trees = 30, .seed = 12});
  forest.fit(data);
  const CompiledForest compiled(forest);
  std::vector<double> scratch(compiled.num_classes());
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const FeatureRow row{rng.uniform(-3.0, 6.0), rng.uniform(-3.0, 3.0)};
    const auto reference = forest.predict_with_confidence(row);
    const auto spanned = compiled.predict_with_confidence(row, scratch);
    const auto convenience = compiled.predict_with_confidence(row);
    EXPECT_EQ(spanned.label, reference.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(spanned.confidence),
              std::bit_cast<std::uint64_t>(reference.confidence));
    EXPECT_EQ(convenience.label, reference.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(convenience.confidence),
              std::bit_cast<std::uint64_t>(reference.confidence));
  }
}

TEST(CompiledForest, BatchMatchesSingleRowPredictions) {
  const Dataset data = blobs(80, 1.0, 15, 3);
  RandomForest forest(RandomForestParams{.n_trees = 15, .seed = 16});
  forest.fit(data);
  const CompiledForest compiled(forest);
  Rng rng(17);
  std::vector<FeatureRow> rows;
  for (int i = 0; i < 64; ++i)
    rows.push_back({rng.uniform(-3.0, 6.0), rng.uniform(-3.0, 3.0)});
  std::vector<Label> batch(rows.size());
  compiled.predict_rows(rows, batch);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch[i], forest.predict(rows[i]));
    EXPECT_EQ(batch[i], compiled.predict(rows[i]));
  }
}

TEST(CompiledForest, PredictTieBreaksToLowestLabel) {
  // Identical feature rows with different labels cannot be split: every
  // tree is a single [0.5, 0.5] leaf (bootstrap off, so each tree sees
  // the exact 50/50 mix), so predict faces an exact tie and must resolve
  // to the lowest label — pinned here for both engines.
  Dataset data({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 8; ++i) data.add({1.0, 2.0}, i % 2);
  RandomForest forest(
      RandomForestParams{.n_trees = 9, .bootstrap = false, .seed = 18});
  forest.fit(data);
  const CompiledForest compiled(forest);
  const FeatureRow row{1.0, 2.0};
  const ClassProbabilities probs = compiled.predict_proba(row);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(probs[0]),
            std::bit_cast<std::uint64_t>(probs[1]));
  EXPECT_EQ(forest.predict(row), 0);
  EXPECT_EQ(compiled.predict(row), 0);
}

TEST(CompiledForest, ThreeWayTieStillPicksLowestLabel) {
  Dataset data({"x", "y"}, {"a", "b", "c"});
  for (int i = 0; i < 9; ++i) data.add({0.5, -0.5}, i % 3);
  RandomForest forest(
      RandomForestParams{.n_trees = 4, .bootstrap = false, .seed = 19});
  forest.fit(data);
  const CompiledForest compiled(forest);
  const FeatureRow row{0.5, -0.5};
  EXPECT_EQ(forest.predict(row), 0);
  EXPECT_EQ(compiled.predict(row), 0);
}

TEST(CompiledForest, UncompiledThrowsLogicError) {
  const CompiledForest empty;
  EXPECT_FALSE(empty.compiled());
  EXPECT_THROW((void)empty.predict({1.0, 2.0}), std::logic_error);
  EXPECT_THROW((void)empty.predict_proba({1.0, 2.0}), std::logic_error);
}

TEST(CompiledForest, CompileBeforeFitThrows) {
  const RandomForest unfitted;
  EXPECT_THROW(CompiledForest{unfitted}, std::logic_error);
}

TEST(CompiledForest, ValidatesSpanSizes) {
  const Dataset data = blobs(30, 3.0, 21);
  RandomForest forest(RandomForestParams{.n_trees = 5, .seed = 22});
  forest.fit(data);
  const CompiledForest compiled(forest);
  std::vector<double> out(compiled.num_classes());
  std::vector<double> narrow(compiled.num_classes() - 1);
  const FeatureRow row{0.0, 0.0};
  const FeatureRow wide{0.0, 0.0, 0.0};
  EXPECT_THROW(compiled.predict_proba_into(wide, out), std::invalid_argument);
  EXPECT_THROW(compiled.predict_proba_into(row, narrow),
               std::invalid_argument);
  std::vector<Label> short_out(1);
  const std::vector<FeatureRow> rows{row, row};
  EXPECT_THROW(compiled.predict_rows(rows, short_out), std::invalid_argument);
}

TEST(CompiledForest, SurvivesForestSerializationRoundTrip) {
  const Dataset data = blobs(70, 2.0, 23, 3);
  RandomForest forest(RandomForestParams{.n_trees = 12, .seed = 24});
  forest.fit(data);
  const RandomForest restored = RandomForest::deserialize(forest.serialize());
  const CompiledForest original(forest);
  const CompiledForest recompiled(restored);
  Rng rng(25);
  for (int i = 0; i < 100; ++i) {
    const FeatureRow row{rng.uniform(-3.0, 7.0), rng.uniform(-3.0, 3.0)};
    expect_bitwise_equal(recompiled.predict_proba(row),
                         original.predict_proba(row));
  }
}

}  // namespace
}  // namespace cgctx::ml
