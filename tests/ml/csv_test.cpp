#include "ml/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cgctx::ml {
namespace {

Dataset sample_data() {
  Dataset data({"size", "rate"}, {"Fortnite", "CS:GO/CS2"});
  data.add({1432.0, 60.5}, 0);
  data.add({800.25, 30.0}, 1);
  data.add({-3.5, 0.0}, 0);
  return data;
}

TEST(Csv, WriteReadRoundTrip) {
  std::stringstream stream;
  write_csv(stream, sample_data());
  const Dataset loaded = read_csv(stream);
  const Dataset original = sample_data();
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.feature_names(), original.feature_names());
  EXPECT_EQ(loaded.class_names(), original.class_names());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(loaded.row(i)[j], original.row(i)[j]);
  }
}

TEST(Csv, HeaderContainsNamesAndLabel) {
  std::stringstream stream;
  write_csv(stream, sample_data());
  std::string header;
  std::getline(stream, header);
  EXPECT_EQ(header, "size,rate,label");
}

TEST(Csv, QuotesCommasInClassNames) {
  Dataset data({"x"}, {"a,b"});
  data.add({1.0}, 0);
  std::stringstream stream;
  write_csv(stream, data);
  const Dataset loaded = read_csv(stream);
  EXPECT_EQ(loaded.class_names()[0], "a,b");
}

TEST(Csv, QuotesQuotesInClassNames) {
  Dataset data({"x"}, {"the \"best\" game"});
  data.add({2.0}, 0);
  std::stringstream stream;
  write_csv(stream, data);
  const Dataset loaded = read_csv(stream);
  EXPECT_EQ(loaded.class_names()[0], "the \"best\" game");
}

TEST(Csv, AutoGeneratesFeatureNames) {
  Dataset data({}, {"a"});
  data.add({1.0, 2.0}, 0);
  std::stringstream stream;
  write_csv(stream, data);
  std::string header;
  std::getline(stream, header);
  EXPECT_EQ(header, "f0,f1,label");
}

TEST(Csv, ReadRejectsMissingHeader) {
  std::stringstream empty;
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
}

TEST(Csv, ReadRejectsWrongLabelColumn) {
  std::stringstream stream("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_csv(stream), std::invalid_argument);
}

TEST(Csv, ReadRejectsRaggedRow) {
  std::stringstream stream("a,label\n1,x\n1,2,x\n");
  EXPECT_THROW(read_csv(stream), std::invalid_argument);
}

TEST(Csv, ReadRejectsNonNumericFeature) {
  std::stringstream stream("a,label\nfoo,x\n");
  EXPECT_THROW(read_csv(stream), std::invalid_argument);
}

TEST(Csv, SkipsBlankLinesAndCarriageReturns) {
  std::stringstream stream("a,label\r\n1.5,x\r\n\r\n2.5,y\r\n");
  const Dataset loaded = read_csv(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.row(1)[0], 2.5);
  EXPECT_EQ(loaded.class_names(),
            (std::vector<std::string>{"x", "y"}));
}

TEST(Csv, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "cgctx_csv_test.csv";
  write_csv(path, sample_data());
  const Dataset loaded = read_csv(path);
  EXPECT_EQ(loaded.size(), 3u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cgctx::ml
