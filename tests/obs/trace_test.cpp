#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace cgctx::obs {
namespace {

TraceEvent make_event(std::uint64_t session, double t, TraceEventType type) {
  TraceEvent event;
  event.session_id = session;
  event.at_seconds = t;
  event.type = type;
  return event;
}

TEST(TraceEvent, NameTruncatesToInlineCapacity) {
  TraceEvent event;
  event.set_name("short");
  EXPECT_EQ(event.name_view(), "short");
  const std::string long_name(64, 'x');
  event.set_name(long_name);
  EXPECT_EQ(event.name_view().size(), event.name.size() - 1);
  EXPECT_EQ(event.name_view(), std::string(event.name.size() - 1, 'x'));
}

TEST(DecisionTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(DecisionTraceRing(5).capacity(), 8u);
  EXPECT_EQ(DecisionTraceRing(8).capacity(), 8u);
  EXPECT_EQ(DecisionTraceRing(0).capacity(), 2u);
  EXPECT_EQ(DecisionTraceRing(1).capacity(), 2u);
}

TEST(DecisionTraceRing, HoldsEventsInOrderUntilFull) {
  DecisionTraceRing ring(8);
  for (int i = 0; i < 5; ++i)
    ring.push(make_event(1, i, TraceEventType::kStageTransition));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.overwritten(), 0u);
  for (std::size_t i = 0; i < ring.size(); ++i)
    EXPECT_DOUBLE_EQ(ring.at(i).at_seconds, static_cast<double>(i));
}

TEST(DecisionTraceRing, OverwritesOldestWhenFull) {
  DecisionTraceRing ring(8);
  for (int i = 0; i < 10; ++i)
    ring.push(make_event(1, i, TraceEventType::kStageTransition));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.overwritten(), 2u);
  // Oldest surviving is event #2; newest is #9.
  EXPECT_DOUBLE_EQ(ring.at(0).at_seconds, 2.0);
  EXPECT_DOUBLE_EQ(ring.at(ring.size() - 1).at_seconds, 9.0);
}

TEST(DecisionTraceRing, ClearEmptiesAndReuses) {
  DecisionTraceRing ring(4);
  ring.push(make_event(1, 0, TraceEventType::kFlowPromoted));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
  ring.push(make_event(2, 5, TraceEventType::kSessionRetired));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).session_id, 2u);
}

TEST(DecisionTraceRing, AppendToDrainsOldestFirst) {
  DecisionTraceRing ring(4);
  for (int i = 0; i < 6; ++i)
    ring.push(make_event(1, i, TraceEventType::kQoeChange));
  std::vector<TraceEvent> events;
  ring.append_to(events);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().at_seconds, 2.0);
  EXPECT_DOUBLE_EQ(events.back().at_seconds, 5.0);
}

TEST(TraceJsonl, GoldenLine) {
  TraceEvent event;
  event.session_id = 7;
  event.at_seconds = 12.5;
  event.type = TraceEventType::kTitleVerdict;
  event.label = 3;
  event.confidence = 0.8765;
  event.set_name("fortnite");
  EXPECT_EQ(to_jsonl(event),
            "{\"session\":7,\"t\":12.500,\"event\":\"title-verdict\","
            "\"label\":3,\"confidence\":0.8765,\"name\":\"fortnite\"}\n");
}

TEST(TraceJsonl, EscapesNameQuotes) {
  TraceEvent event;
  event.set_name("a\"b\\c");
  const std::string line = to_jsonl(event);
  EXPECT_NE(line.find("\"name\":\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(TraceJsonl, WritesOneLinePerHeldEvent) {
  DecisionTraceRing ring(8);
  for (int i = 0; i < 3; ++i)
    ring.push(make_event(1, i, TraceEventType::kPatternDecision));
  std::ostringstream os;
  write_jsonl(ring, os);
  const std::string text = os.str();
  std::size_t newlines = 0;
  for (const char c : text) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 3u);
  EXPECT_NE(text.find("\"event\":\"pattern-decision\""), std::string::npos);
}

}  // namespace
}  // namespace cgctx::obs
