#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cgctx::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return lines;
}

TEST(PrometheusExport, EscapesLabelValues) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(PrometheusExport, SanitizesNames) {
  EXPECT_EQ(prometheus_sanitize_name("good_name:total"), "good_name:total");
  EXPECT_EQ(prometheus_sanitize_name("weird-name!"), "weird_name_");
  EXPECT_EQ(prometheus_sanitize_name("9lead"), "_lead");
  EXPECT_EQ(prometheus_sanitize_name(""), "_");
}

TEST(PrometheusExport, CounterGoldenFormat) {
  MetricsRegistry registry;
  registry.counter("cgctx_demo_total", "A demo counter", {{"key", "va\"l"}})
      .add(3);
  const std::string page = to_prometheus(registry.snapshot());
  EXPECT_EQ(page,
            "# HELP cgctx_demo_total A demo counter\n"
            "# TYPE cgctx_demo_total counter\n"
            "cgctx_demo_total{key=\"va\\\"l\"} 3\n");
}

TEST(PrometheusExport, HelpAndTypeOncePerFamily) {
  MetricsRegistry registry;
  registry.counter("cgctx_demo_total", "help", {{"shard", "0"}}).add(1);
  registry.counter("cgctx_demo_total", "help", {{"shard", "1"}}).add(2);
  const std::string page = to_prometheus(registry.snapshot());
  const std::vector<std::string> lines = lines_of(page);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# HELP cgctx_demo_total help");
  EXPECT_EQ(lines[1], "# TYPE cgctx_demo_total counter");
  EXPECT_EQ(lines[2], "cgctx_demo_total{shard=\"0\"} 1");
  EXPECT_EQ(lines[3], "cgctx_demo_total{shard=\"1\"} 2");
}

TEST(PrometheusExport, HistogramBucketsAreCumulativeAndInfEqualsCount) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("cgctx_demo_ns", "latency");
  // One sample under 2^10, one between 2^12 and 2^14, one enormous value
  // beyond the largest finite bound.
  histogram.record(1000);
  histogram.record(5000);
  histogram.record(0xffffffffffull);
  const std::string page = to_prometheus(registry.snapshot());

  std::uint64_t last_cumulative = 0;
  std::size_t bucket_lines = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  for (const std::string& line : lines_of(page)) {
    std::uint64_t bound = 0;
    std::uint64_t value = 0;
    if (std::sscanf(line.c_str(),
                    "cgctx_demo_ns_bucket{le=\"%" PRIu64 "\"} %" PRIu64,
                    &bound, &value) == 2) {
      ++bucket_lines;
      EXPECT_GE(value, last_cumulative) << line;
      last_cumulative = value;
    } else if (std::sscanf(line.c_str(),
                           "cgctx_demo_ns_bucket{le=\"+Inf\"} %" PRIu64,
                           &value) == 1) {
      inf_value = value;
    } else if (std::sscanf(line.c_str(), "cgctx_demo_ns_count %" PRIu64,
                           &value) == 1) {
      count_value = value;
    }
  }
  // 2^10, 2^12, ..., 2^32 inclusive.
  EXPECT_EQ(bucket_lines,
            (kExportBucketMaxOctave - kExportBucketMinOctave) /
                    kExportBucketOctaveStep +
                1);
  EXPECT_EQ(count_value, 3u);
  EXPECT_EQ(inf_value, count_value);
  // The giant sample exceeds every finite bound.
  EXPECT_EQ(last_cumulative, 2u);
  EXPECT_NE(page.find("cgctx_demo_ns_sum "), std::string::npos);
}

TEST(PrometheusExport, HistogramBoundariesCountSamplesBelow) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h_ns", "");
  histogram.record(1000);  // < 2^10
  histogram.record(5000);  // in (2^12, 2^14)
  const std::string page = to_prometheus(registry.snapshot());
  EXPECT_NE(page.find("h_ns_bucket{le=\"1024\"} 1\n"), std::string::npos);
  EXPECT_NE(page.find("h_ns_bucket{le=\"4096\"} 1\n"), std::string::npos);
  EXPECT_NE(page.find("h_ns_bucket{le=\"16384\"} 2\n"), std::string::npos);
  EXPECT_NE(page.find("h_ns_sum 6000\n"), std::string::npos);
}

TEST(JsonExport, EscapesAndStructures) {
  MetricsRegistry registry;
  registry.counter("c_total", "", {{"k", "a\"b"}}).add(7);
  const std::string json = to_json(registry.snapshot());
  EXPECT_EQ(json,
            "{\"metrics\":[{\"name\":\"c_total\",\"kind\":\"counter\","
            "\"labels\":{\"k\":\"a\\\"b\"},\"value\":7}]}");
}

TEST(JsonExport, HistogramCarriesSummary) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h_ns", "");
  for (int i = 0; i < 100; ++i) histogram.record(1000);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":100000"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos);
}

TEST(JsonExport, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape("q\"\\"), "q\\\"\\\\");
}

}  // namespace
}  // namespace cgctx::obs
