#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cgctx::obs {
namespace {

TEST(MetricsRegistry, SameIdentityReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("cgctx_test_total", "help");
  Counter& b = registry.counter("cgctx_test_total", "help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("cgctx_test_total", "help",
                                {{"b", "2"}, {"a", "1"}});
  Counter& b = registry.counter("cgctx_test_total", "help",
                                {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, DifferentLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("cgctx_test_total", "help", {{"shard", "0"}});
  Counter& b = registry.counter("cgctx_test_total", "help", {{"shard", "1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("cgctx_test_total", "help");
  EXPECT_THROW(registry.gauge("cgctx_test_total", "help"),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("cgctx_test_total", "help"),
               std::invalid_argument);
}

TEST(MetricsRegistry, EmptyNameThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("", "help"), std::invalid_argument);
}

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c_total", "");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge& gauge = registry.gauge("g", "");
  gauge.set(7);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 5);
  gauge.record_max(3);  // lower: ignored
  EXPECT_EQ(gauge.value(), 5);
  gauge.record_max(9);
  EXPECT_EQ(gauge.value(), 9);

  Histogram& histogram = registry.histogram("h_ns", "");
  histogram.record(100);
  histogram.record(200);
  histogram.record(50);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 350u);
  EXPECT_EQ(histogram.max(), 200u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndCarriesValues) {
  MetricsRegistry registry;
  registry.gauge("zzz", "last").set(3);
  registry.counter("aaa_total", "first").add(5);
  registry.counter("mmm_total", "mid", {{"shard", "1"}}).add(1);
  registry.counter("mmm_total", "mid", {{"shard", "0"}}).add(2);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.series.size(), 4u);
  EXPECT_EQ(snapshot.series[0].name, "aaa_total");
  EXPECT_EQ(snapshot.series[0].value, 5.0);
  EXPECT_EQ(snapshot.series[1].name, "mmm_total");
  ASSERT_EQ(snapshot.series[1].labels.size(), 1u);
  EXPECT_EQ(snapshot.series[1].labels[0].second, "0");
  EXPECT_EQ(snapshot.series[2].labels[0].second, "1");
  EXPECT_EQ(snapshot.series[3].name, "zzz");
  EXPECT_EQ(snapshot.series[3].kind, MetricKind::kGauge);
}

TEST(MetricsRegistry, HistogramSeriesCarriesBuckets) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h_ns", "");
  histogram.record(1000);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.series.size(), 1u);
  const MetricSeries& series = snapshot.series[0];
  EXPECT_EQ(series.kind, MetricKind::kHistogram);
  EXPECT_EQ(series.count, 1u);
  EXPECT_EQ(series.sum, 1000u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : series.buckets) total += b;
  EXPECT_EQ(total, 1u);
}

// The contract the whole plane rests on: recording from many threads
// while another thread snapshots must neither lose counts nor race (this
// test also runs under the TSan CI job).
TEST(MetricsRegistry, ConcurrentRecordAndSnapshot) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c_total", "");
  Histogram& histogram = registry.histogram("h_ns", "");
  Gauge& gauge = registry.gauge("g", "");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.snapshot();
      ASSERT_EQ(snapshot.series.size(), 3u);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(static_cast<std::uint64_t>(t * kPerThread + i));
        gauge.record_max(t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_EQ(gauge.value(), kThreads * kPerThread - 1);
}

}  // namespace
}  // namespace cgctx::obs
