// Round-trip parity for the compiled inference engine across all three
// classifiers: train -> serialize -> deserialize -> compile must yield
// bitwise-identical predict_proba output, and every classify/infer front
// door (allocating and scratch-span) must agree with the reference
// forest walk.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/stage_classifier.hpp"
#include "core/title_classifier.hpp"
#include "core/transition_model.hpp"
#include "ml/rng.hpp"
#include "probe_test_models.hpp"

namespace cgctx::core {
namespace {

void expect_bitwise_equal(const ml::ClassProbabilities& a,
                          const ml::ClassProbabilities& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[c]),
              std::bit_cast<std::uint64_t>(b[c]))
        << "class " << c;
}

/// Deterministic plausible feature rows of the given width.
std::vector<ml::FeatureRow> sample_rows(std::size_t width, std::uint64_t seed,
                                        int count = 60) {
  ml::Rng rng(seed);
  std::vector<ml::FeatureRow> rows;
  rows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ml::FeatureRow row(width);
    for (double& x : row) x = rng.uniform(0.0, 1.5);
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(CompiledInference, TitleRoundTripIsBitwiseIdentical) {
  const TitleClassifier& trained = probe_test_suite().title;
  const TitleClassifier restored =
      TitleClassifier::deserialize(trained.serialize());
  ASSERT_TRUE(restored.compiled().compiled());
  std::vector<double> scratch(restored.scratch_size());
  for (const ml::FeatureRow& row : sample_rows(kNumLaunchAttributes, 41)) {
    expect_bitwise_equal(restored.compiled().predict_proba(row),
                         trained.forest().predict_proba(row));
    // Both classify front doors agree with each other and the original.
    EXPECT_EQ(restored.classify_features(row, scratch),
              trained.classify_features(row));
  }
}

TEST(CompiledInference, StageRoundTripIsBitwiseIdentical) {
  const StageClassifier& trained = probe_test_suite().stage;
  const StageClassifier restored =
      StageClassifier::deserialize(trained.serialize());
  ASSERT_TRUE(restored.compiled().compiled());
  std::vector<double> scratch(restored.scratch_size());
  for (const ml::FeatureRow& row :
       sample_rows(kNumVolumetricAttributes, 43)) {
    expect_bitwise_equal(restored.compiled().predict_proba(row),
                         trained.forest().predict_proba(row));
    EXPECT_EQ(restored.classify(row), trained.forest().predict(row));
    EXPECT_EQ(restored.classify(row, scratch), restored.classify(row));
    const auto with_scratch = restored.classify_with_confidence(row, scratch);
    const auto reference = trained.forest().predict_with_confidence(row);
    EXPECT_EQ(with_scratch.label, reference.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(with_scratch.confidence),
              std::bit_cast<std::uint64_t>(reference.confidence));
  }
}

TEST(CompiledInference, PatternRoundTripIsBitwiseIdentical) {
  const PatternInferrer& trained = probe_test_suite().pattern;
  const PatternInferrer restored =
      PatternInferrer::deserialize(trained.serialize());
  ASSERT_TRUE(restored.compiled().compiled());
  for (const ml::FeatureRow& row :
       sample_rows(kNumTransitionAttributes, 47)) {
    expect_bitwise_equal(restored.compiled().predict_proba(row),
                         trained.forest().predict_proba(row));
  }
}

TEST(CompiledInference, PatternInferScratchPathAgrees) {
  const PatternInferrer& inferrer = probe_test_suite().pattern;
  std::vector<double> scratch(inferrer.scratch_size());
  // Drive a tracker through a deterministic stage walk long enough to
  // clear the transition floor.
  TransitionTracker tracker;
  ml::Rng rng(53);
  for (std::size_t i = 0; i < inferrer.params().min_transitions + 40; ++i)
    tracker.push(static_cast<ml::Label>(rng.next_below(kNumStageLabels)));
  const PatternResult convenient = inferrer.infer_unchecked(tracker);
  const PatternResult spanned = inferrer.infer_unchecked(tracker, scratch);
  EXPECT_EQ(convenient, spanned);
  EXPECT_EQ(inferrer.infer(tracker), inferrer.infer(tracker, scratch));
}

TEST(CompiledInference, ClassifiersCompileAfterTraining) {
  const ModelSuite& suite = probe_test_suite();
  EXPECT_TRUE(suite.title.compiled().compiled());
  EXPECT_TRUE(suite.stage.compiled().compiled());
  EXPECT_TRUE(suite.pattern.compiled().compiled());
  EXPECT_EQ(suite.title.compiled().tree_count(),
            suite.title.forest().tree_count());
  EXPECT_EQ(suite.stage.scratch_size(), suite.stage.forest().num_classes());
  EXPECT_EQ(suite.pattern.scratch_size(), kNumPatternLabels);
}

TEST(CompiledInference, UntrainedClassifierStillThrowsLogicError) {
  const TitleClassifier untrained;
  EXPECT_EQ(untrained.scratch_size(), 0u);
  EXPECT_THROW((void)untrained.classify_features(
                   ml::FeatureRow(kNumLaunchAttributes, 0.0)),
               std::logic_error);
  const StageClassifier stage;
  EXPECT_THROW((void)stage.classify(
                   ml::FeatureRow(kNumVolumetricAttributes, 0.0)),
               std::logic_error);
}

}  // namespace
}  // namespace cgctx::core
