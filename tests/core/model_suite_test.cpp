#include "core/model_suite.hpp"

#include <gtest/gtest.h>

namespace cgctx::core {
namespace {

TEST(ModelSuite, TrainsAllThreeModelsWithReportedAccuracy) {
  TrainingBudget budget;
  budget.lab_scale = 0.08;
  budget.gameplay_seconds = 120.0;
  budget.augment_copies = 1;
  double title_acc = 0.0;
  double stage_acc = 0.0;
  double pattern_acc = 0.0;
  const ModelSuite suite =
      train_model_suite(budget, &title_acc, &stage_acc, &pattern_acc);
  EXPECT_GT(title_acc, 0.6);  // tiny 0.08-scale budget
  EXPECT_GT(stage_acc, 0.85);
  EXPECT_GT(pattern_acc, 0.6);
  // The models are usable.
  const auto models = suite.models();
  EXPECT_NE(models.title, nullptr);
  EXPECT_NE(models.stage, nullptr);
  EXPECT_NE(models.pattern, nullptr);
}

TEST(ModelSuite, DefaultPipelineParamsCarryDemandHints) {
  const PipelineParams params = default_pipeline_params();
  EXPECT_EQ(params.title_demand_mbps.size(), sim::kNumPopularTitles);
  EXPECT_NEAR(params.title_demand_mbps.at("Hearthstone"), 20.0, 1e-9);
  EXPECT_NEAR(params.title_demand_mbps.at("Fortnite"), 68.0, 1e-9);
}

}  // namespace
}  // namespace cgctx::core
