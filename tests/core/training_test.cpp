#include "core/training.hpp"

#include <gtest/gtest.h>

namespace cgctx::core {
namespace {

std::vector<sim::SessionSpec> tiny_plan(double gameplay_seconds,
                                        std::uint64_t seed) {
  sim::LabPlanOptions plan;
  plan.scale = 0.03;  // ~16 sessions
  plan.gameplay_seconds = gameplay_seconds;
  plan.seed = seed;
  return sim::lab_session_plan(plan);
}

TEST(Training, PopularTitleClassNamesMatchCatalog) {
  const auto names = popular_title_class_names();
  ASSERT_EQ(names.size(), sim::kNumPopularTitles);
  EXPECT_EQ(names[0], "Fortnite");
  EXPECT_EQ(names[12], "Hearthstone");
}

TEST(Training, ForEachRenderedSessionVisitsAllSpecs) {
  const auto specs = tiny_plan(5.0, 1);
  std::size_t visits = 0;
  for_each_rendered_session(specs, [&](const sim::LabeledSession& session) {
    ++visits;
    EXPECT_FALSE(session.packets.empty());
  });
  EXPECT_EQ(visits, specs.size());
}

TEST(Training, TitleDatasetRowPerSessionPlusAugmentation) {
  const auto specs = tiny_plan(5.0, 2);
  TitleDatasetOptions options;
  options.augment_copies = 2;
  const auto data = build_title_dataset(specs, options);
  EXPECT_EQ(data.size(), specs.size() * 3);
  EXPECT_EQ(data.num_features(), kNumLaunchAttributes);
}

TEST(Training, AugmentedCopiesShareLabelButDiffer) {
  const auto specs = tiny_plan(5.0, 3);
  TitleDatasetOptions options;
  options.augment_copies = 1;
  const auto data = build_title_dataset(specs, options);
  // Rows come in (original, copy) order per spec.
  for (std::size_t i = 0; i + 1 < 2 * specs.size(); i += 2) {
    EXPECT_EQ(data.label(i), data.label(i + 1));
    EXPECT_NE(data.row(i), data.row(i + 1));  // different rendering noise
  }
}

TEST(Training, TitleDatasetRejectsLongTailSpecs) {
  auto specs = tiny_plan(5.0, 4);
  specs[0].title = sim::GameTitle::kOtherContinuous;
  EXPECT_THROW(build_title_dataset(specs), std::invalid_argument);
}

TEST(Training, FlowVolumetricDatasetShape) {
  const auto specs = tiny_plan(5.0, 5);
  const auto data = build_flow_volumetric_dataset(specs);
  EXPECT_EQ(data.size(), specs.size());
  EXPECT_EQ(data.num_features(), 10u);  // 2 x 5 slots
}

TEST(Training, AggregateSlotsBinsBothDirections) {
  std::vector<net::PacketRecord> packets;
  net::PacketRecord pkt;
  pkt.direction = net::Direction::kDownstream;
  pkt.timestamp = net::duration_from_seconds(0.5);
  pkt.payload_size = 1000;
  packets.push_back(pkt);
  pkt.direction = net::Direction::kUpstream;
  pkt.timestamp = net::duration_from_seconds(1.5);
  pkt.payload_size = 90;
  packets.push_back(pkt);
  const auto slots = aggregate_slots(packets, 0, net::kNanosPerSecond, 3);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].down_bytes, 1000u);
  EXPECT_EQ(slots[0].down_packets, 1u);
  EXPECT_EQ(slots[1].up_bytes, 90u);
  EXPECT_EQ(slots[1].up_packets, 1u);
  EXPECT_EQ(slots[2].down_packets + slots[2].up_packets, 0u);
}

TEST(Training, StageRowsFromSlotsExcludeLaunch) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 120;
  spec.seed = 6;
  const auto session = gen.generate_slots_only(spec);
  const auto rows = stage_rows_from_slots(session);
  // One row per gameplay second (plus/minus boundary slots).
  EXPECT_NEAR(static_cast<double>(rows.size()), 120.0, 3.0);
  for (const StageRow& row : rows) {
    EXPECT_EQ(row.attributes.size(), kNumVolumetricAttributes);
    EXPECT_GE(row.stage, 0);
    EXPECT_LT(row.stage, static_cast<ml::Label>(kNumStageLabels));
  }
}

TEST(Training, StageRowsFromPacketsMatchSlotFidelityStatistically) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kOverwatch2;
  spec.gameplay_seconds = 90;
  spec.seed = 7;
  const auto packet_session = gen.generate(spec);
  const auto rows = stage_rows_from_packets(packet_session, 1.0);
  EXPECT_NEAR(static_cast<double>(rows.size()), 90.0, 3.0);
}

TEST(Training, StageRowsSupportSubSecondSlots) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kRocketLeague;
  spec.gameplay_seconds = 30;
  spec.seed = 8;
  const auto session = gen.generate(spec);
  const auto rows_half = stage_rows_from_packets(session, 0.5);
  const auto rows_two = stage_rows_from_packets(session, 2.0);
  EXPECT_GT(rows_half.size(), rows_two.size() * 3);
}

TEST(Training, StageDatasetCoversAllStages) {
  const auto specs = tiny_plan(240.0, 9);
  const auto data = build_stage_dataset(specs);
  const auto counts = data.class_counts();
  for (std::size_t c = 0; c < kNumStageLabels; ++c)
    EXPECT_GT(counts[c], 10u) << "stage " << c;
}

TEST(Training, PatternDatasetLabelsFollowCatalog) {
  const auto stage_specs = tiny_plan(200.0, 10);
  StageClassifier stages;
  stages.train(build_stage_dataset(stage_specs));
  const auto pattern_specs = tiny_plan(300.0, 11);
  const auto data = build_pattern_dataset(pattern_specs, stages);
  // Each session contributes several distinct horizon-checkpoint rows
  // (so the inferrer also learns partial-session matrices).
  EXPECT_GE(data.size(), 2 * pattern_specs.size());
  EXPECT_LE(data.size(), 6 * pattern_specs.size());
  EXPECT_EQ(data.num_features(), kNumTransitionAttributes);
  // Class balance mirrors the plan's pattern mix (labels are valid).
  const auto counts = data.class_counts();
  EXPECT_GT(counts[static_cast<std::size_t>(kPatternContinuous)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(kPatternSpectate)], 0u);
}

TEST(Training, PatternDatasetFinalOnlyYieldsOneRowPerSession) {
  const auto stage_specs = tiny_plan(200.0, 12);
  StageClassifier stages;
  stages.train(build_stage_dataset(stage_specs));
  const auto pattern_specs = tiny_plan(300.0, 13);
  const auto data = build_pattern_dataset(pattern_specs, stages, {},
                                          /*include_prefix_horizons=*/false);
  ASSERT_EQ(data.size(), pattern_specs.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto expected = sim::info(pattern_specs[i].title).pattern ==
                                  sim::ActivityPattern::kContinuousPlay
                              ? kPatternContinuous
                              : kPatternSpectate;
    EXPECT_EQ(data.label(i), expected);
  }
}

}  // namespace
}  // namespace cgctx::core
