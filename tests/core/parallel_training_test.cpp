// Determinism contract of the parallel training stack (DESIGN.md §9):
// every dataset builder, forest fit, and grid search must produce
// byte-identical output at any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/stage_classifier.hpp"
#include "core/thread_pool.hpp"
#include "core/title_classifier.hpp"
#include "core/training.hpp"
#include "ml/grid_search.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "sim/lab_dataset.hpp"

namespace cgctx::core {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 4};

std::vector<sim::SessionSpec> tiny_plan(double gameplay_seconds,
                                        std::uint64_t seed,
                                        double scale = 0.03) {
  sim::LabPlanOptions plan;
  plan.scale = scale;
  plan.gameplay_seconds = gameplay_seconds;
  plan.seed = seed;
  return sim::lab_session_plan(plan);
}

/// Fits a fresh forest on `data` under each thread count and requires
/// the full serialized payload and the OOB score to match the
/// single-thread fit exactly.
void expect_fit_identical_across_pools(const ml::Dataset& data,
                                       ml::RandomForestParams params) {
  std::string reference;
  double reference_oob = 0.0;
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ml::RandomForest forest(params);
    forest.fit(data, pool);
    const std::string model = forest.serialize();
    if (threads == 1) {
      reference = model;
      reference_oob = forest.oob_score();
    } else {
      EXPECT_EQ(model, reference) << "forest diverged at " << threads
                                  << " threads";
      if (std::isnan(reference_oob))
        EXPECT_TRUE(std::isnan(forest.oob_score()));  // no-bootstrap: no OOB
      else
        EXPECT_EQ(forest.oob_score(), reference_oob);
    }
  }
}

TEST(ParallelTraining, TitleForestIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(5.0, 11);
  TitleDatasetOptions options;
  options.augment_copies = 1;
  const ml::Dataset data = build_title_dataset(specs, options);
  ml::RandomForestParams params = TitleClassifierParams{}.forest;
  params.n_trees = 40;  // enough trees to exercise several chunks
  expect_fit_identical_across_pools(data, params);
}

TEST(ParallelTraining, StageForestIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(40.0, 12);
  const ml::Dataset data = build_stage_dataset(specs);
  ml::RandomForestParams params = StageClassifierParams{}.forest;
  params.n_trees = 40;
  expect_fit_identical_across_pools(data, params);
}

TEST(ParallelTraining, PatternForestIdenticalAcrossThreadCounts) {
  const auto stage_specs = tiny_plan(40.0, 13);
  StageClassifier stages;
  stages.train(build_stage_dataset(stage_specs));
  const auto pattern_specs = tiny_plan(60.0, 14);
  const ml::Dataset data = build_pattern_dataset(pattern_specs, stages);
  ml::RandomForestParams params = TitleClassifierParams{}.forest;
  params.n_trees = 40;
  expect_fit_identical_across_pools(data, params);
}

TEST(ParallelTraining, NoBootstrapFitIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(5.0, 15);
  const ml::Dataset data = build_title_dataset(specs);
  ml::RandomForestParams params = TitleClassifierParams{}.forest;
  params.n_trees = 24;
  params.bootstrap = false;
  expect_fit_identical_across_pools(data, params);
}

TEST(ParallelTraining, DatasetBuildersIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(20.0, 16);
  TitleDatasetOptions options;
  options.augment_copies = 1;
  StageClassifier stages;
  stages.train(build_stage_dataset(tiny_plan(40.0, 17)));

  ThreadPool serial(1);
  const ml::Dataset title_ref = build_title_dataset(specs, options, &serial);
  const ml::Dataset flow_ref =
      build_flow_volumetric_dataset(specs, options, &serial);
  const ml::Dataset stage_ref = build_stage_dataset(specs, {}, &serial);
  const ml::Dataset pattern_ref =
      build_pattern_dataset(specs, stages, {}, true, &serial);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(build_title_dataset(specs, options, &pool).rows(),
              title_ref.rows());
    EXPECT_EQ(build_flow_volumetric_dataset(specs, options, &pool).rows(),
              flow_ref.rows());
    EXPECT_EQ(build_stage_dataset(specs, {}, &pool).rows(), stage_ref.rows());
    const ml::Dataset pattern =
        build_pattern_dataset(specs, stages, {}, true, &pool);
    EXPECT_EQ(pattern.rows(), pattern_ref.rows());
    ASSERT_EQ(pattern.size(), pattern_ref.size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
      EXPECT_EQ(pattern.label(i), pattern_ref.label(i));
  }
}

TEST(ParallelTraining, GridSearchWinnerIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(5.0, 18, 0.05);
  const ml::Dataset data = build_title_dataset(specs);
  std::vector<ml::GridCandidate> grid;
  for (const std::size_t trees : {std::size_t{10}, std::size_t{25}}) {
    ml::RandomForestParams p = TitleClassifierParams{}.forest;
    p.n_trees = trees;
    grid.push_back({"rf" + std::to_string(trees),
                    [p] { return std::make_unique<ml::RandomForest>(p); }});
  }
  grid.push_back({"knn3", [] {
                    return std::make_unique<ml::Knn>(ml::KnnParams{.k = 3});
                  }});

  std::vector<double> reference_scores;
  std::size_t reference_best = 0;
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ml::Rng rng(99);
    const ml::GridSearchResult result =
        ml::grid_search(grid, data, 3, rng, &pool);
    if (threads == 1) {
      reference_scores = result.scores;
      reference_best = result.best_index;
    } else {
      EXPECT_EQ(result.scores, reference_scores)
          << "grid scores diverged at " << threads << " threads";
      EXPECT_EQ(result.best_index, reference_best);
    }
  }
}

TEST(ParallelTraining, CrossValScoreIdenticalAcrossThreadCounts) {
  const auto specs = tiny_plan(5.0, 19, 0.05);
  const ml::Dataset data = build_title_dataset(specs);
  ml::RandomForestParams p = TitleClassifierParams{}.forest;
  p.n_trees = 15;
  const ml::GridCandidate candidate{
      "rf15", [p] { return std::make_unique<ml::RandomForest>(p); }};
  double reference = 0.0;
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    ml::Rng rng(7);
    const double score = ml::cross_val_score(candidate, data, 4, rng, &pool);
    if (threads == 1)
      reference = score;
    else
      EXPECT_EQ(score, reference);
  }
}

}  // namespace
}  // namespace cgctx::core
