#include "core/transition_model.hpp"

#include <gtest/gtest.h>

#include "core/stage_classifier.hpp"

namespace cgctx::core {
namespace {

TEST(TransitionTracker, FirstPushOnlySetsState) {
  TransitionTracker tracker;
  tracker.push(kStageActive);
  EXPECT_EQ(tracker.transition_count(), 0u);
  const auto probs = tracker.probabilities();
  for (double p : probs) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(TransitionTracker, CountsTransitionsIncludingRetention) {
  TransitionTracker tracker;
  tracker.push(kStageIdle);
  tracker.push(kStageIdle);    // idle->idle
  tracker.push(kStageActive);  // idle->active
  tracker.push(kStageActive);  // active->active
  tracker.push(kStagePassive); // active->passive
  EXPECT_EQ(tracker.transition_count(), 4u);
  const auto& counts = tracker.counts();
  EXPECT_EQ(counts[kStageIdle * 3 + kStageIdle], 1u);
  EXPECT_EQ(counts[kStageIdle * 3 + kStageActive], 1u);
  EXPECT_EQ(counts[kStageActive * 3 + kStageActive], 1u);
  EXPECT_EQ(counts[kStageActive * 3 + kStagePassive], 1u);
}

TEST(TransitionTracker, ProbabilitiesSumToOne) {
  TransitionTracker tracker;
  tracker.push(kStageIdle);
  for (int i = 0; i < 10; ++i) tracker.push(i % 2 == 0 ? kStageActive : kStagePassive);
  const auto probs = tracker.probabilities();
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TransitionTracker, RejectsBadLabels) {
  TransitionTracker tracker;
  EXPECT_THROW(tracker.push(-1), std::invalid_argument);
  EXPECT_THROW(tracker.push(3), std::invalid_argument);
}

TEST(TransitionTracker, ResetClears) {
  TransitionTracker tracker;
  tracker.push(kStageIdle);
  tracker.push(kStageActive);
  tracker.reset();
  EXPECT_EQ(tracker.transition_count(), 0u);
  tracker.push(kStagePassive);
  EXPECT_EQ(tracker.transition_count(), 0u);  // first push after reset
}

TEST(TransitionAttributes, NineNamedAttributes) {
  const auto names = transition_attribute_names();
  EXPECT_EQ(names.size(), kNumTransitionAttributes);
  EXPECT_EQ(names[0], "active->active");
  EXPECT_EQ(names[2], "active->idle");
  EXPECT_EQ(names[8], "idle->idle");
}

/// Builds a dataset where continuous-play has long active runs with idle
/// breaks, and spectate-and-play cycles through all three stages.
ml::Dataset synthetic_pattern_data(std::size_t per_class) {
  ml::Dataset data(transition_attribute_names(), pattern_class_names());
  ml::Rng rng(99);
  for (std::size_t i = 0; i < per_class; ++i) {
    {
      TransitionTracker t;
      t.push(kStageIdle);
      for (int s = 0; s < 200; ++s) {
        // Continuous: mostly active, occasional idle, almost no passive.
        const double u = rng.next_double();
        t.push(u < 0.8 ? kStageActive : u < 0.99 ? kStageIdle : kStagePassive);
      }
      data.add(t.probabilities(), kPatternContinuous);
    }
    {
      TransitionTracker t;
      t.push(kStageIdle);
      for (int s = 0; s < 200; ++s) {
        const double u = rng.next_double();
        t.push(u < 0.5 ? kStageActive : u < 0.85 ? kStagePassive : kStageIdle);
      }
      data.add(t.probabilities(), kPatternSpectate);
    }
  }
  return data;
}

TEST(PatternInferrer, LearnsSyntheticPatterns) {
  const auto data = synthetic_pattern_data(60);
  ml::Rng rng(1);
  const auto split = ml::stratified_split(data, 0.3, rng);
  PatternInferrer inferrer;
  inferrer.train(split.train);
  double correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    TransitionTracker t;  // rebuild a tracker-compatible row check
    (void)t;
    if (inferrer.forest().predict(split.test.row(i)) == split.test.label(i))
      ++correct;
  }
  EXPECT_GT(correct / static_cast<double>(split.test.size()), 0.95);
}

TEST(PatternInferrer, InferRequiresMinimumTransitions) {
  const auto data = synthetic_pattern_data(30);
  PatternInferrer inferrer;
  inferrer.train(data);
  TransitionTracker tracker;
  tracker.push(kStageActive);
  for (int i = 0; i < 10; ++i) tracker.push(kStageActive);
  EXPECT_FALSE(inferrer.infer(tracker).has_value());  // < min_transitions
}

TEST(PatternInferrer, InferRespectsConfidenceThreshold) {
  const auto data = synthetic_pattern_data(30);
  PatternInferrerParams params;
  params.confidence_threshold = 1.01;  // unreachable
  params.min_transitions = 5;
  PatternInferrer inferrer(params);
  inferrer.train(data);
  TransitionTracker tracker;
  tracker.push(kStageIdle);
  for (int i = 0; i < 100; ++i) tracker.push(kStageActive);
  EXPECT_FALSE(inferrer.infer(tracker).has_value());
  // Unchecked inference still produces a result.
  const auto result = inferrer.infer_unchecked(tracker);
  EXPECT_GE(result.label, 0);
  EXPECT_GT(result.confidence, 0.0);
}

TEST(PatternInferrer, ConfidentContinuousRunInfersContinuous) {
  const auto data = synthetic_pattern_data(60);
  PatternInferrer inferrer;
  inferrer.train(data);
  TransitionTracker tracker;
  ml::Rng rng(7);
  tracker.push(kStageIdle);
  for (int i = 0; i < 300; ++i)
    tracker.push(rng.next_double() < 0.85 ? kStageActive : kStageIdle);
  const auto result = inferrer.infer(tracker);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->label, kPatternContinuous);
  EXPECT_GE(result->confidence, 0.75);
}

TEST(PatternInferrer, TrainRejectsWrongWidth) {
  ml::Dataset bad({"a", "b"}, pattern_class_names());
  bad.add({1.0, 2.0}, 0);
  PatternInferrer inferrer;
  EXPECT_THROW(inferrer.train(bad), std::invalid_argument);
}

TEST(PatternInferrer, SerializeRoundTrip) {
  const auto data = synthetic_pattern_data(20);
  PatternInferrer inferrer;
  inferrer.train(data);
  const auto copy = PatternInferrer::deserialize(inferrer.serialize());
  EXPECT_DOUBLE_EQ(copy.params().confidence_threshold,
                   inferrer.params().confidence_threshold);
  TransitionTracker tracker;
  tracker.push(kStageIdle);
  for (int i = 0; i < 60; ++i) tracker.push(kStageActive);
  const auto a = inferrer.infer_unchecked(tracker);
  const auto b = copy.infer_unchecked(tracker);
  EXPECT_EQ(a.label, b.label);
  EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
}

TEST(PatternInferrer, DeserializeRejectsGarbage) {
  EXPECT_THROW(PatternInferrer::deserialize("junk"), std::invalid_argument);
  EXPECT_THROW(PatternInferrer::deserialize("wrong 0.75 30\nforest 0 0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::core
