#include "core/streaming_analyzer.hpp"

#include <gtest/gtest.h>

#include "core/model_suite.hpp"
#include "sim/cross_traffic.hpp"

namespace cgctx::core {
namespace {

const ModelSuite& suite() {
  static const ModelSuite models = [] {
    TrainingBudget budget;
    budget.lab_scale = 0.12;
    budget.gameplay_seconds = 150.0;
    budget.augment_copies = 1;
    return train_model_suite(budget);
  }();
  return models;
}

sim::LabeledSession packet_session(sim::GameTitle title, double gameplay_s,
                                   std::uint64_t seed) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = gameplay_s;
  spec.seed = seed;
  return gen.generate(spec);
}

TEST(StreamingAnalyzer, EmitsEventsInOrder) {
  std::vector<StreamEvent> events;
  StreamingAnalyzer analyzer(
      suite().models(), default_pipeline_params(),
      [&](const StreamEvent& e) { events.push_back(e); });

  const auto session = packet_session(sim::GameTitle::kFortnite, 60, 11);
  for (const auto& pkt : session.packets) analyzer.push(pkt);
  const SessionReport report = analyzer.finish();

  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].type, StreamEventType::kFlowDetected);
  ASSERT_TRUE(events[0].detection.has_value());
  EXPECT_EQ(events[0].detection->flow, session.tuple.canonical());

  // A title verdict arrives shortly after the five-second window.
  const auto title_event =
      std::find_if(events.begin(), events.end(), [](const StreamEvent& e) {
        return e.type == StreamEventType::kTitleClassified;
      });
  ASSERT_NE(title_event, events.end());
  EXPECT_GE(title_event->at_seconds, 5.0);
  EXPECT_LT(title_event->at_seconds, 7.0);
  ASSERT_TRUE(title_event->title.has_value());

  // Stage changes appear, and events are time-ordered.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].at_seconds + 1.5, events[i - 1].at_seconds);

  EXPECT_GT(report.slots.size(), 60u);
}

TEST(StreamingAnalyzer, MatchesBatchPipelineVerdicts) {
  const auto session = packet_session(sim::GameTitle::kGenshinImpact, 90, 13);
  const RealtimePipeline batch(suite().models(), default_pipeline_params());
  const auto batch_report = batch.process_packets(session.packets);
  ASSERT_TRUE(batch_report.has_value());

  StreamingAnalyzer analyzer(suite().models(), default_pipeline_params(),
                             {});
  for (const auto& pkt : session.packets) analyzer.push(pkt);
  const SessionReport streamed = analyzer.finish();

  // Both drivers advance the same SessionEngine, so the reports are
  // byte-identical — not merely close.
  EXPECT_EQ(streamed, *batch_report);
}

TEST(StreamingAnalyzer, IgnoresCrossTrafficBeforeAndAfterDetection) {
  std::vector<StreamEvent> events;
  StreamingAnalyzer analyzer(
      suite().models(), default_pipeline_params(),
      [&](const StreamEvent& e) { events.push_back(e); });

  const auto session = packet_session(sim::GameTitle::kCsgo, 40, 15);
  ml::Rng rng(16);
  auto wire = session.packets;
  for (const auto& pkt : sim::voip_flow(session.client_ip, 90.0, rng))
    wire.push_back(pkt);
  std::sort(wire.begin(), wire.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  for (const auto& pkt : wire) analyzer.push(pkt);
  const SessionReport report = analyzer.finish();
  ASSERT_TRUE(report.detection.has_value());
  EXPECT_EQ(report.detection->flow, session.tuple.canonical());
  // Throughput must reflect the gaming flow only (VoIP adds ~0.13 Mbps
  // which would be visible in idle slots if mixed in).
  EXPECT_GT(report.mean_down_mbps, 1.0);
}

TEST(StreamingAnalyzer, PureCrossTrafficNeverDetects) {
  std::vector<StreamEvent> events;
  StreamingAnalyzer analyzer(
      suite().models(), default_pipeline_params(),
      [&](const StreamEvent& e) { events.push_back(e); });
  ml::Rng rng(17);
  for (const auto& pkt :
       sim::web_browsing_flow(net::Ipv4Addr::from_octets(10, 9, 9, 9), 60.0,
                              rng))
    analyzer.push(pkt);
  EXPECT_FALSE(analyzer.flow_detected());
  EXPECT_TRUE(events.empty());
  const SessionReport report = analyzer.finish();
  EXPECT_TRUE(report.slots.empty());
}

TEST(StreamingAnalyzer, ReusableAcrossSessions) {
  StreamingAnalyzer analyzer(suite().models(), default_pipeline_params(), {});
  const auto first = packet_session(sim::GameTitle::kDota2, 30, 18);
  for (const auto& pkt : first.packets) analyzer.push(pkt);
  const SessionReport report_a = analyzer.finish();
  EXPECT_TRUE(report_a.detection.has_value());

  const auto second = packet_session(sim::GameTitle::kHearthstone, 30, 19);
  for (const auto& pkt : second.packets) analyzer.push(pkt);
  const SessionReport report_b = analyzer.finish();
  ASSERT_TRUE(report_b.detection.has_value());
  EXPECT_EQ(report_b.detection->flow, second.tuple.canonical());
  EXPECT_NE(report_a.detection->flow, report_b.detection->flow);

  // finish() resets the engine in place; the reused analyzer's second
  // report must match a fresh analyzer's byte-for-byte.
  StreamingAnalyzer fresh(suite().models(), default_pipeline_params(), {});
  for (const auto& pkt : second.packets) fresh.push(pkt);
  EXPECT_EQ(report_b, fresh.finish());
}

TEST(StreamingAnalyzer, RequiresModels) {
  EXPECT_THROW(StreamingAnalyzer(PipelineModels{}, PipelineParams{}, {}),
               std::invalid_argument);
}

TEST(StreamEvent, TypeNames) {
  EXPECT_STREQ(to_string(StreamEventType::kFlowDetected), "flow-detected");
  EXPECT_STREQ(to_string(StreamEventType::kTitleClassified),
               "title-classified");
  EXPECT_STREQ(to_string(StreamEventType::kStageChanged), "stage-changed");
  EXPECT_STREQ(to_string(StreamEventType::kPatternInferred),
               "pattern-inferred");
}

}  // namespace
}  // namespace cgctx::core
