#include "core/title_classifier.hpp"

#include <gtest/gtest.h>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "sim/lab_dataset.hpp"

namespace cgctx::core {
namespace {

/// Small title dataset shared across tests (built once; ~130 sessions).
const ml::Dataset& title_data() {
  static const ml::Dataset data = [] {
    sim::LabPlanOptions plan;
    plan.scale = 0.25;
    plan.gameplay_seconds = 8.0;
    plan.seed = 77;
    TitleDatasetOptions options;
    options.augment_copies = 1;
    return build_title_dataset(sim::lab_session_plan(plan), options);
  }();
  return data;
}

TitleClassifier trained_classifier(ml::Rng& rng, double test_fraction,
                                   ml::Dataset* test_out) {
  const auto split = ml::stratified_split(title_data(), test_fraction, rng);
  // Smaller forest keeps the test fast; accuracy bound is set accordingly.
  TitleClassifierParams params;
  params.forest.n_trees = 150;
  TitleClassifier classifier(params);
  classifier.train(split.train);
  if (test_out != nullptr) *test_out = split.test;
  return classifier;
}

TEST(TitleClassifier, DatasetShape) {
  EXPECT_EQ(title_data().num_features(), kNumLaunchAttributes);
  EXPECT_EQ(title_data().num_classes(), sim::kNumPopularTitles);
  EXPECT_GT(title_data().size(), 200u);
}

TEST(TitleClassifier, AccuracyInPaperBand) {
  ml::Rng rng(1);
  ml::Dataset test;
  const TitleClassifier classifier = trained_classifier(rng, 0.25, &test);
  const auto cm = ml::evaluate(classifier.forest(), test);
  // Paper Table 3: 92.7-98.0% per title, ~95% overall; allow slack for
  // the reduced test-size forest and quarter-scale training plan (the
  // full-scale benches evaluate the paper band itself).
  EXPECT_GT(cm.accuracy(), 0.78);
}

TEST(TitleClassifier, ConfidentPredictionCarriesClassName) {
  ml::Rng rng(2);
  ml::Dataset test;
  const TitleClassifier classifier = trained_classifier(rng, 0.25, &test);
  // Find a confidently classified test row.
  bool found = false;
  for (std::size_t i = 0; i < test.size() && !found; ++i) {
    const auto result = classifier.classify_features(test.row(i));
    if (result.label.has_value() && result.confidence > 0.7) {
      EXPECT_FALSE(result.class_name.empty());
      EXPECT_EQ(result.class_name,
                test.class_names()[static_cast<std::size_t>(*result.label)]);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TitleClassifier, LowConfidenceBecomesUnknown) {
  ml::Rng rng(3);
  TitleClassifierParams params;
  params.forest.n_trees = 60;
  params.unknown_threshold = 1.01;  // force every result to "unknown"
  const auto split = ml::stratified_split(title_data(), 0.3, rng);
  TitleClassifier classifier(params);
  classifier.train(split.train);
  const auto result = classifier.classify_features(split.test.row(0));
  EXPECT_FALSE(result.label.has_value());
  EXPECT_TRUE(result.class_name.empty());
  EXPECT_GT(result.confidence, 0.0);
}

TEST(TitleClassifier, UnknownTitleSessionsGetLowerConfidence) {
  ml::Rng rng(4);
  const TitleClassifier classifier = trained_classifier(rng, 0.3, nullptr);
  // Sessions of a long-tail title outside the trained catalog.
  const sim::SessionGenerator gen;
  double tail_conf = 0.0;
  double known_conf = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    sim::SessionSpec tail;
    tail.title = sim::GameTitle::kOtherContinuous;
    tail.gameplay_seconds = 8;
    tail.seed = 1000 + static_cast<std::uint64_t>(i);
    const auto session = gen.generate(tail);
    tail_conf +=
        classifier.classify(session.packets, session.launch_begin).confidence;

    sim::SessionSpec known = tail;
    known.title = sim::GameTitle::kGenshinImpact;
    const auto known_session = gen.generate(known);
    known_conf += classifier
                      .classify(known_session.packets,
                                known_session.launch_begin)
                      .confidence;
  }
  EXPECT_LT(tail_conf / n, known_conf / n);
}

TEST(TitleClassifier, TrainRejectsWrongWidth) {
  ml::Dataset bad({"a", "b"}, {"x"});
  bad.add({1.0, 2.0}, 0);
  TitleClassifier classifier;
  EXPECT_THROW(classifier.train(bad), std::invalid_argument);
}

TEST(TitleClassifier, SerializeRoundTrip) {
  ml::Rng rng(5);
  ml::Dataset test;
  const TitleClassifier classifier = trained_classifier(rng, 0.5, &test);
  const auto copy = TitleClassifier::deserialize(classifier.serialize());
  for (std::size_t i = 0; i < std::min<std::size_t>(100, test.size()); ++i) {
    const auto a = classifier.classify_features(test.row(i));
    const auto b = copy.classify_features(test.row(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.class_name, b.class_name);
  }
}

TEST(TitleClassifier, DeserializeRejectsGarbage) {
  EXPECT_THROW(TitleClassifier::deserialize("nope 1 2 3"),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::core
