#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cgctx::core {
namespace {

TEST(ThreadPool, SingleThreadPoolOwnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SizeMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.parallel_for(0, kCount,
                      [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleChunkRunsInlineOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  // grain >= range: one chunk, which the caller must execute itself.
  pool.parallel_chunks(0, 3, 100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ExceptionOnSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [](std::size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ThreadPool, NestedUseRunsInlineWithoutDeadlock) {
  // A task that itself calls parallel_for on the same pool must not
  // deadlock: nested regions run inline on the worker (DESIGN.md §9).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(64);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.in_parallel_region());
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      visits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_FALSE(pool.in_parallel_region());
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, TrainingSingletonIsStable) {
  ThreadPool& a = ThreadPool::training();
  ThreadPool& b = ThreadPool::training();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, ParallelChunksCoversRangeWithArbitraryGrain) {
  ThreadPool pool(3);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{50}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(101);
    pool.parallel_chunks(0, 101, grain,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                             visits[i].fetch_add(1);
                         });
    for (std::size_t i = 0; i < visits.size(); ++i)
      ASSERT_EQ(visits[i].load(), 1) << "grain " << grain << " index " << i;
  }
}

}  // namespace
}  // namespace cgctx::core
