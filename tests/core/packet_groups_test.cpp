#include "core/packet_groups.hpp"

#include <gtest/gtest.h>

namespace cgctx::core {
namespace {

TEST(PacketGroups, FullPacketsByMaxPayload) {
  const std::uint32_t sizes[] = {1432, 500, 1432, 1433};
  const auto labels = label_packet_groups(sizes);
  EXPECT_EQ(labels[0], PacketGroup::kFull);
  EXPECT_NE(labels[1], PacketGroup::kFull);
  EXPECT_EQ(labels[2], PacketGroup::kFull);
  EXPECT_EQ(labels[3], PacketGroup::kFull);  // >= threshold counts as full
}

TEST(PacketGroups, NarrowBandIsSteady) {
  // Payloads within +-10% of one another.
  const std::uint32_t sizes[] = {500, 510, 495, 505, 498, 502};
  const auto labels = label_packet_groups(sizes);
  for (const PacketGroup g : labels) EXPECT_EQ(g, PacketGroup::kSteady);
}

TEST(PacketGroups, RandomSpreadIsSparse) {
  const std::uint32_t sizes[] = {100, 900, 300, 1200, 60, 700};
  const auto labels = label_packet_groups(sizes);
  for (const PacketGroup g : labels) EXPECT_EQ(g, PacketGroup::kSparse);
}

TEST(PacketGroups, MixedStreamSplitsCorrectly) {
  // Band at ~800 with two outliers interleaved.
  const std::uint32_t sizes[] = {800, 1432, 810, 790, 200, 805, 795, 1432, 798};
  const auto labels = label_packet_groups(sizes);
  EXPECT_EQ(labels[0], PacketGroup::kSteady);
  EXPECT_EQ(labels[1], PacketGroup::kFull);
  EXPECT_EQ(labels[2], PacketGroup::kSteady);
  EXPECT_EQ(labels[4], PacketGroup::kSparse);  // 200 is far from the band
  EXPECT_EQ(labels[8], PacketGroup::kSteady);
}

TEST(PacketGroups, VParameterControlsTolerance) {
  // Two interleaved bands ~18% apart: steady at V=20%, sparse at V=1%.
  const std::uint32_t sizes[] = {500, 590, 500, 590, 500, 590};
  GroupLabelerParams tight;
  tight.v_fraction = 0.01;
  GroupLabelerParams loose;
  loose.v_fraction = 0.20;
  for (const PacketGroup g : label_packet_groups(sizes, tight))
    EXPECT_EQ(g, PacketGroup::kSparse);
  for (const PacketGroup g : label_packet_groups(sizes, loose))
    EXPECT_EQ(g, PacketGroup::kSteady);
}

TEST(PacketGroups, SingleNonFullPacketIsSparse) {
  const std::uint32_t sizes[] = {700};
  const auto labels = label_packet_groups(sizes);
  EXPECT_EQ(labels[0], PacketGroup::kSparse);
}

TEST(PacketGroups, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(label_packet_groups({}).empty());
}

TEST(PacketGroups, AllFullStreamHasNoNeighborCrash) {
  const std::uint32_t sizes[] = {1432, 1432, 1432};
  const auto labels = label_packet_groups(sizes);
  for (const PacketGroup g : labels) EXPECT_EQ(g, PacketGroup::kFull);
}

TEST(PacketGroups, NeighborWindowLimitsVoting) {
  // A lone band member surrounded by distant sizes beyond the window.
  const std::uint32_t sizes[] = {100, 1000, 101, 99, 1000, 100};
  GroupLabelerParams params;
  params.neighbor_window = 1;
  const auto labels = label_packet_groups(sizes, params);
  // With window 1, each packet only sees immediate neighbors; the 1000s
  // see dissimilar neighbors on both sides -> sparse.
  EXPECT_EQ(labels[1], PacketGroup::kSparse);
  EXPECT_EQ(labels[4], PacketGroup::kSparse);
}

net::PacketRecord down_packet(double t_seconds, std::uint32_t payload) {
  net::PacketRecord pkt;
  pkt.timestamp = net::duration_from_seconds(t_seconds);
  pkt.direction = net::Direction::kDownstream;
  pkt.payload_size = payload;
  return pkt;
}

TEST(LabelWindow, SlicesPacketsIntoSlots) {
  std::vector<net::PacketRecord> packets = {
      down_packet(0.1, 1432), down_packet(0.5, 800), down_packet(1.2, 900),
      down_packet(2.7, 1432), down_packet(5.5, 700)};  // last is outside
  const auto slots =
      label_window(packets, 0, net::kNanosPerSecond, 5);
  ASSERT_EQ(slots.size(), 5u);
  EXPECT_EQ(slots[0].size(), 2u);
  EXPECT_EQ(slots[1].size(), 1u);
  EXPECT_EQ(slots[2].size(), 1u);
  EXPECT_TRUE(slots[3].empty());
  EXPECT_TRUE(slots[4].empty());
  EXPECT_EQ(slots[0][0].group, PacketGroup::kFull);
}

TEST(LabelWindow, IgnoresUpstreamPackets) {
  net::PacketRecord up = down_packet(0.5, 100);
  up.direction = net::Direction::kUpstream;
  const auto slots = label_window({&up, 1}, 0, net::kNanosPerSecond, 2);
  EXPECT_TRUE(slots[0].empty());
}

TEST(LabelWindow, IgnoresPacketsBeforeWindowBegin) {
  std::vector<net::PacketRecord> packets = {down_packet(0.5, 1432)};
  const auto slots = label_window(packets, net::duration_from_seconds(1.0),
                                  net::kNanosPerSecond, 2);
  EXPECT_TRUE(slots[0].empty());
}

TEST(LabelWindow, SubSecondSlotsWork) {
  std::vector<net::PacketRecord> packets = {down_packet(0.05, 1432),
                                            down_packet(0.15, 1432),
                                            down_packet(0.25, 1432)};
  const auto slots =
      label_window(packets, 0, net::duration_from_millis(100.0), 3);
  EXPECT_EQ(slots[0].size(), 1u);
  EXPECT_EQ(slots[1].size(), 1u);
  EXPECT_EQ(slots[2].size(), 1u);
}

TEST(PacketGroups, GroupNames) {
  EXPECT_STREQ(to_string(PacketGroup::kFull), "full");
  EXPECT_STREQ(to_string(PacketGroup::kSteady), "steady");
  EXPECT_STREQ(to_string(PacketGroup::kSparse), "sparse");
}

/// Property sweep over V: a tight band is steady for all V >= 5%, and the
/// labeling is monotone (larger V never turns steady into sparse).
class VSweep : public ::testing::TestWithParam<double> {};

TEST_P(VSweep, TightBandSteadyAboveFivePercent) {
  const std::uint32_t sizes[] = {1000, 1020, 990, 1010, 1005, 985};
  GroupLabelerParams params;
  params.v_fraction = GetParam();
  const auto labels = label_packet_groups(sizes, params);
  if (GetParam() >= 0.05) {
    for (const PacketGroup g : labels) EXPECT_EQ(g, PacketGroup::kSteady);
  }
}

INSTANTIATE_TEST_SUITE_P(VValues, VSweep,
                         ::testing::Values(0.01, 0.05, 0.10, 0.15, 0.20));

}  // namespace
}  // namespace cgctx::core
