// Shared smoke-scale model suite for the probe tests. One program-wide
// instance (inline function static) so multi_session_probe_test and
// sharded_probe_test, which link into one test binary, train it once.
#pragma once

#include "core/model_suite.hpp"

namespace cgctx::core {

inline const ModelSuite& probe_test_suite() {
  static const ModelSuite models = [] {
    TrainingBudget budget;
    budget.lab_scale = 0.12;
    budget.gameplay_seconds = 150.0;
    budget.augment_copies = 1;
    return train_model_suite(budget);
  }();
  return models;
}

}  // namespace cgctx::core
