#include "core/stage_classifier.hpp"

#include <gtest/gtest.h>

#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "sim/lab_dataset.hpp"

namespace cgctx::core {
namespace {

/// Small lab slice shared by the tests in this file (built once).
const ml::Dataset& stage_data() {
  static const ml::Dataset data = [] {
    sim::LabPlanOptions plan;
    plan.scale = 0.08;
    plan.gameplay_seconds = 180.0;
    plan.seed = 31;
    return build_stage_dataset(sim::lab_session_plan(plan));
  }();
  return data;
}

TEST(StageClassifier, DatasetHasFourAttributesThreeClasses) {
  const auto& data = stage_data();
  EXPECT_EQ(data.num_features(), kNumVolumetricAttributes);
  EXPECT_EQ(data.num_classes(), kNumStageLabels);
  EXPECT_GT(data.size(), 1000u);
  // All three stages represented.
  const auto counts = data.class_counts();
  for (std::size_t c = 0; c < kNumStageLabels; ++c) EXPECT_GT(counts[c], 50u);
}

TEST(StageClassifier, AccuracyInPaperBand) {
  ml::Rng rng(5);
  const auto split = ml::stratified_split(stage_data(), 0.25, rng);
  StageClassifier classifier;
  classifier.train(split.train);
  const auto cm = ml::evaluate(classifier.forest(), split.test);
  // Paper Table 4 reports 92.5-98.4% per stage; overall in the mid-90s.
  EXPECT_GT(cm.accuracy(), 0.90);
  EXPECT_GT(cm.per_class_accuracy(kStageActive), 0.90);
  EXPECT_GT(cm.per_class_accuracy(kStagePassive), 0.85);
  EXPECT_GT(cm.per_class_accuracy(kStageIdle), 0.90);
}

TEST(StageClassifier, ClassifiesArchetypalSlots) {
  ml::Rng rng(7);
  const auto split = ml::stratified_split(stage_data(), 0.25, rng);
  StageClassifier classifier;
  classifier.train(split.train);
  // Archetypal attribute vectors (down tput, down rate, up tput, up rate).
  EXPECT_EQ(classifier.classify({0.98, 0.97, 0.95, 0.96}), kStageActive);
  EXPECT_EQ(classifier.classify({0.85, 0.84, 0.25, 0.26}), kStagePassive);
  EXPECT_EQ(classifier.classify({0.12, 0.13, 0.09, 0.10}), kStageIdle);
}

TEST(StageClassifier, ConfidenceAccompaniesPrediction) {
  ml::Rng rng(9);
  const auto split = ml::stratified_split(stage_data(), 0.25, rng);
  StageClassifier classifier;
  classifier.train(split.train);
  const auto prediction =
      classifier.classify_with_confidence({0.99, 0.99, 0.99, 0.99});
  EXPECT_EQ(prediction.label, kStageActive);
  EXPECT_GT(prediction.confidence, 0.8);
}

TEST(StageClassifier, TrainRejectsWrongWidth) {
  ml::Dataset bad({"a"}, stage_class_names());
  bad.add({1.0}, 0);
  StageClassifier classifier;
  EXPECT_THROW(classifier.train(bad), std::invalid_argument);
}

TEST(StageClassifier, SerializeRoundTrip) {
  ml::Rng rng(11);
  const auto split = ml::stratified_split(stage_data(), 0.5, rng);
  StageClassifier classifier;
  classifier.train(split.train);
  const auto copy = StageClassifier::deserialize(classifier.serialize());
  for (std::size_t i = 0; i < std::min<std::size_t>(200, split.test.size()); ++i)
    EXPECT_EQ(classifier.classify(split.test.row(i)),
              copy.classify(split.test.row(i)));
}

TEST(StageClassifier, DeserializeRejectsGarbage) {
  EXPECT_THROW(StageClassifier::deserialize("bogus\nforest 0 0"),
               std::invalid_argument);
}

TEST(StageClassifier, ClassNamesMatchLabelOrder) {
  const auto names = stage_class_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[static_cast<std::size_t>(kStageActive)], "active");
  EXPECT_EQ(names[static_cast<std::size_t>(kStagePassive)], "passive");
  EXPECT_EQ(names[static_cast<std::size_t>(kStageIdle)], "idle");
}

}  // namespace
}  // namespace cgctx::core
