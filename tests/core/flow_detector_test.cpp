#include "core/flow_detector.hpp"

#include <gtest/gtest.h>

#include "sim/cross_traffic.hpp"
#include "sim/session.hpp"

namespace cgctx::core {
namespace {

const net::Ipv4Addr kClient = net::Ipv4Addr::from_octets(10, 8, 8, 8);

/// Runs all packets through a flow table and returns the detector's first
/// positive verdict, if any.
std::optional<DetectionResult> detect_over(
    const std::vector<net::PacketRecord>& packets) {
  net::FlowTable table;
  const CloudGamingFlowDetector detector;
  for (const auto& pkt : packets) {
    const auto& flow = table.add(pkt);
    if (auto result = detector.detect(flow)) return result;
  }
  return std::nullopt;
}

TEST(FlowDetector, DetectsGeforceNowSession) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 5;
  spec.seed = 1;
  const auto session = gen.generate(spec);
  const auto result = detect_over(session.packets);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->platform, Platform::kGeforceNow);
  EXPECT_EQ(result->flow, session.tuple.canonical());
}

TEST(FlowDetector, DetectsEveryPopularTitleQuickly) {
  const sim::SessionGenerator gen;
  for (std::size_t t = 0; t < sim::kNumPopularTitles; ++t) {
    sim::SessionSpec spec;
    spec.title = static_cast<sim::GameTitle>(t);
    spec.gameplay_seconds = 2;
    spec.seed = 100 + t;
    const auto session = gen.generate(spec);
    // Feed only the first five seconds: detection must be early.
    std::vector<net::PacketRecord> head;
    for (const auto& pkt : session.packets) {
      if (pkt.timestamp > net::duration_from_seconds(5.0)) break;
      head.push_back(pkt);
    }
    EXPECT_TRUE(detect_over(head).has_value()) << "title " << t;
  }
}

TEST(FlowDetector, RejectsVoip) {
  ml::Rng rng(2);
  EXPECT_FALSE(detect_over(sim::voip_flow(kClient, 30.0, rng)).has_value());
}

TEST(FlowDetector, RejectsWebBrowsing) {
  ml::Rng rng(3);
  EXPECT_FALSE(
      detect_over(sim::web_browsing_flow(kClient, 30.0, rng)).has_value());
}

TEST(FlowDetector, RejectsVideoStreaming) {
  ml::Rng rng(4);
  EXPECT_FALSE(
      detect_over(sim::video_streaming_flow(kClient, 30.0, rng)).has_value());
}

TEST(FlowDetector, FindsGamingFlowInMixedTraffic) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 5;
  spec.seed = 5;
  const auto session = gen.generate(spec);
  ml::Rng rng(6);
  std::vector<net::PacketRecord> mixed = session.packets;
  for (const auto& pkt : sim::voip_flow(session.client_ip, 30.0, rng))
    mixed.push_back(pkt);
  for (const auto& pkt : sim::web_browsing_flow(session.client_ip, 30.0, rng))
    mixed.push_back(pkt);
  std::sort(mixed.begin(), mixed.end(),
            [](const auto& a, const auto& b) { return a.timestamp < b.timestamp; });
  const auto result = detect_over(mixed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->flow, session.tuple.canonical());
}

TEST(FlowDetector, RequiresObservationFloor) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kDota2;
  spec.gameplay_seconds = 2;
  spec.seed = 7;
  const auto session = gen.generate(spec);
  net::FlowTable table;
  const CloudGamingFlowDetector detector;
  // The first 50 packets are below the floor.
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& flow = table.add(session.packets[i]);
    EXPECT_FALSE(detector.detect(flow).has_value()) << "packet " << i;
  }
}

TEST(FlowDetector, PortRangesMapToPlatforms) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kOverwatch2;
  spec.gameplay_seconds = 3;
  spec.seed = 8;
  auto session = gen.generate(spec);
  // Rewrite the server port to each platform's range and re-detect.
  const struct {
    std::uint16_t port;
    Platform platform;
  } kCases[] = {{49004, Platform::kGeforceNow},
                {9002, Platform::kXboxCloud},
                {44353, Platform::kAmazonLuna},
                {9295, Platform::kPsCloudStreaming}};
  for (const auto& test_case : kCases) {
    std::vector<net::PacketRecord> rewritten = session.packets;
    for (auto& pkt : rewritten) {
      if (pkt.direction == net::Direction::kUpstream) {
        pkt.tuple.dst_port = test_case.port;
      } else {
        pkt.tuple.src_port = test_case.port;
      }
    }
    const auto result = detect_over(rewritten);
    ASSERT_TRUE(result.has_value()) << test_case.port;
    EXPECT_EQ(result->platform, test_case.platform);
  }
}

TEST(FlowDetector, UnknownPortIsRejected) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 3;
  spec.seed = 9;
  auto session = gen.generate(spec);
  for (auto& pkt : session.packets) {
    if (pkt.direction == net::Direction::kUpstream) {
      pkt.tuple.dst_port = 12345;
    } else {
      pkt.tuple.src_port = 12345;
    }
  }
  EXPECT_FALSE(detect_over(session.packets).has_value());
}

TEST(FlowDetector, PlatformNames) {
  EXPECT_STREQ(to_string(Platform::kGeforceNow), "GeForce NOW");
  EXPECT_STREQ(to_string(Platform::kXboxCloud), "Xbox Cloud Gaming");
  EXPECT_STREQ(to_string(Platform::kAmazonLuna), "Amazon Luna");
  EXPECT_STREQ(to_string(Platform::kPsCloudStreaming), "PS5 Cloud Streaming");
}

}  // namespace
}  // namespace cgctx::core
