#include "core/multi_session_probe.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/model_suite.hpp"
#include "core/streaming_analyzer.hpp"
#include "probe_test_models.hpp"
#include "sim/cross_traffic.hpp"

namespace cgctx::core {
namespace {

const ModelSuite& suite() { return probe_test_suite(); }

sim::LabeledSession make_session(sim::GameTitle title, double start_s,
                                 std::uint64_t seed) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = 40;
  spec.seed = seed;
  spec.start_time = net::duration_from_seconds(start_s);
  return gen.generate(spec);
}

std::vector<net::PacketRecord> interleave(
    std::initializer_list<const std::vector<net::PacketRecord>*> streams) {
  std::vector<net::PacketRecord> wire;
  for (const auto* stream : streams)
    wire.insert(wire.end(), stream->begin(), stream->end());
  std::sort(wire.begin(), wire.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  return wire;
}

TEST(MultiSessionProbe, SeparatesTwoConcurrentSubscribers) {
  const auto a = make_session(sim::GameTitle::kGenshinImpact, 0.0, 51);
  const auto b = make_session(sim::GameTitle::kFortnite, 12.0, 52);
  const auto wire = interleave({&a.packets, &b.packets});

  std::vector<SessionReport> reports;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { reports.push_back(r); });
  for (const auto& pkt : wire) probe.push(pkt);
  EXPECT_EQ(probe.live_sessions(), 2u);
  probe.flush();
  EXPECT_EQ(probe.live_sessions(), 0u);
  ASSERT_EQ(reports.size(), 2u);

  // Each report maps to exactly one of the two sessions by flow tuple.
  std::set<net::FiveTuple> flows;
  for (const auto& report : reports) {
    ASSERT_TRUE(report.detection.has_value());
    flows.insert(report.detection->flow);
    EXPECT_GT(report.slots.size(), 40u);
  }
  EXPECT_TRUE(flows.count(a.tuple.canonical()));
  EXPECT_TRUE(flows.count(b.tuple.canonical()));
}

TEST(MultiSessionProbe, IdleTimeoutRetiresFinishedSessions) {
  // Session A ends long before B starts; B's traffic should trigger A's
  // retirement via the idle sweep.
  const auto a = make_session(sim::GameTitle::kCsgo, 0.0, 53);
  const auto b = make_session(sim::GameTitle::kDota2, 200.0, 54);
  const auto wire = interleave({&a.packets, &b.packets});

  std::size_t live_when_b_active = 0;
  std::vector<SessionReport> reports;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { reports.push_back(r); });
  for (const auto& pkt : wire) {
    probe.push(pkt);
    if (pkt.timestamp > net::duration_from_seconds(260.0))
      live_when_b_active = probe.live_sessions();
  }
  // A was retired mid-stream once it idled out.
  EXPECT_EQ(live_when_b_active, 1u);
  EXPECT_GE(reports.size(), 1u);
  probe.flush();
  EXPECT_EQ(reports.size(), 2u);
}

TEST(MultiSessionProbe, IgnoresPureCrossTraffic) {
  ml::Rng rng(55);
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      {});
  for (const auto& pkt : sim::voip_flow(
           net::Ipv4Addr::from_octets(10, 7, 7, 7), 40.0, rng))
    probe.push(pkt);
  EXPECT_EQ(probe.live_sessions(), 0u);
  probe.flush();
  EXPECT_EQ(probe.reports_emitted(), 0u);
}

TEST(MultiSessionProbe, ReportsMatchSingleSessionAnalysis) {
  const auto session = make_session(sim::GameTitle::kOverwatch2, 0.0, 56);
  SessionReport probe_report;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { probe_report = r; });
  for (const auto& pkt : session.packets) probe.push(pkt);
  probe.flush();

  StreamingAnalyzer single(suite().models(), default_pipeline_params(), {});
  for (const auto& pkt : session.packets) single.push(pkt);
  const SessionReport single_report = single.finish();

  EXPECT_EQ(probe_report.title.label, single_report.title.label);
  EXPECT_EQ(probe_report.slots.size(), single_report.slots.size());
}

TEST(MultiSessionProbe, RetireThenResumeSameTupleRedetects) {
  // The same five-tuple carries two sessions separated by a long idle
  // gap (client reconnects to the same server from the same port). The
  // first session's flow-table entry must not survive its retirement:
  // stale cumulative stats dilute the lifetime-mean downstream rate below
  // the detector's threshold and the resumed session never re-fires.
  const auto first = make_session(sim::GameTitle::kFortnite, 0.0, 57);
  sim::SessionSpec resumed_spec = first.spec;
  resumed_spec.start_time = net::duration_from_seconds(200.0);
  const auto resumed = sim::SessionGenerator().generate(resumed_spec);
  ASSERT_EQ(first.tuple.canonical(), resumed.tuple.canonical());

  std::vector<SessionReport> reports;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { reports.push_back(r); });
  for (const auto& pkt : first.packets) probe.push(pkt);
  for (const auto& pkt : resumed.packets) probe.push(pkt);
  // First session was retired by the idle sweep when the resume began.
  EXPECT_EQ(reports.size(), 1u);
  probe.flush();
  ASSERT_EQ(reports.size(), 2u);
  // Both sessions were fully analyzed, not just the first.
  for (const auto& report : reports) {
    ASSERT_TRUE(report.detection.has_value());
    EXPECT_EQ(report.detection->flow, first.tuple.canonical());
    EXPECT_GT(report.slots.size(), 35u);
  }
}

TEST(MultiSessionProbe, FlowTableStaysBoundedUnderSustainedCrossTraffic) {
  // A vantage point sees an endless churn of short non-gaming flows; the
  // shared table must evict them instead of growing monotonically.
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      {});
  ml::Rng rng(58);
  constexpr std::size_t kFlows = 120;
  std::size_t peak_table = 0;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const auto client = net::Ipv4Addr::from_octets(
        10, 50, static_cast<std::uint8_t>(i / 250 + 1),
        static_cast<std::uint8_t>(i % 250 + 1));
    auto flow = sim::voip_flow(client, 4.0, rng);
    const net::Duration offset =
        static_cast<net::Duration>(i) * 2 * net::kNanosPerSecond;
    for (auto& pkt : flow) pkt.timestamp += offset;
    for (const auto& pkt : flow) probe.push(pkt);
    peak_table = std::max(peak_table, probe.flow_table_size());
  }
  // 120 distinct flows entered over ~240 s of wire time; with a 60 s idle
  // timeout only a recent window can be live at once.
  EXPECT_LT(peak_table, 60u);
  EXPECT_GT(probe.flow_evictions(), 60u);
  EXPECT_EQ(probe.live_sessions(), 0u);
}

TEST(MultiSessionProbe, LookbackReplayReproducesSingleAnalyzerExactly) {
  // Promotion replays the flow's lookback packets into the new analyzer,
  // so the probe's report must match a dedicated StreamingAnalyzer fed
  // the same wire field-for-field — including the earliest launch slots.
  const auto session = make_session(sim::GameTitle::kGenshinImpact, 3.0, 59);
  SessionReport probe_report;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { probe_report = r; });
  for (const auto& pkt : session.packets) probe.push(pkt);
  probe.flush();

  StreamingAnalyzer single(suite().models(), default_pipeline_params(), {});
  for (const auto& pkt : session.packets) single.push(pkt);
  EXPECT_EQ(probe_report, single.finish());
}

TEST(MultiSessionProbe, RequiresModels) {
  EXPECT_THROW(
      MultiSessionProbe(PipelineModels{}, MultiSessionProbeParams{}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::core
