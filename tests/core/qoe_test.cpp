#include "core/qoe.hpp"

#include <gtest/gtest.h>

namespace cgctx::core {
namespace {

SlotQoeMetrics healthy() {
  return SlotQoeMetrics{.frame_rate = 60.0, .throughput_mbps = 25.0,
                        .rtt_ms = 12.0, .loss_rate = 0.0005};
}

TEST(ObjectiveQoe, HealthySlotIsGood) {
  EXPECT_EQ(objective_qoe(healthy()), QoeLevel::kGood);
}

TEST(ObjectiveQoe, PaperBadExamples) {
  // §5.3: frame rate below 30 fps and/or throughput below 8 Mbps -> bad.
  auto low_fps = healthy();
  low_fps.frame_rate = 25.0;
  EXPECT_EQ(objective_qoe(low_fps), QoeLevel::kBad);
  auto low_tput = healthy();
  low_tput.throughput_mbps = 5.0;
  EXPECT_EQ(objective_qoe(low_tput), QoeLevel::kBad);
}

TEST(ObjectiveQoe, MidRangeIsMedium) {
  auto mid = healthy();
  mid.frame_rate = 40.0;  // >= 30, < 48
  EXPECT_EQ(objective_qoe(mid), QoeLevel::kMedium);
  auto mid_tput = healthy();
  mid_tput.throughput_mbps = 10.0;
  EXPECT_EQ(objective_qoe(mid_tput), QoeLevel::kMedium);
}

TEST(ObjectiveQoe, NetworkGatesApply) {
  auto high_rtt = healthy();
  high_rtt.rtt_ms = 90.0;
  EXPECT_EQ(objective_qoe(high_rtt), QoeLevel::kBad);
  auto some_rtt = healthy();
  some_rtt.rtt_ms = 55.0;
  EXPECT_EQ(objective_qoe(some_rtt), QoeLevel::kMedium);
  auto lossy = healthy();
  lossy.loss_rate = 0.05;
  EXPECT_EQ(objective_qoe(lossy), QoeLevel::kBad);
  auto some_loss = healthy();
  some_loss.loss_rate = 0.01;
  EXPECT_EQ(objective_qoe(some_loss), QoeLevel::kMedium);
}

QoeContext idle_context() {
  return QoeContext{.expected_peak_mbps = 25.0, .expected_peak_fps = 60.0,
                    .stage = kStageIdle};
}

TEST(EffectiveQoe, IdleStageDropsAreNotPenalized) {
  // An idle lobby at 20 fps / 3 Mbps is objectively "bad" but effectively
  // fine — the paper's headline correction.
  SlotQoeMetrics idle_slot{.frame_rate = 20.0, .throughput_mbps = 3.0,
                           .rtt_ms = 12.0, .loss_rate = 0.0005};
  EXPECT_EQ(objective_qoe(idle_slot), QoeLevel::kBad);
  EXPECT_EQ(effective_qoe(idle_slot, idle_context()), QoeLevel::kGood);
}

TEST(EffectiveQoe, LowDemandTitleActiveIsGood) {
  // Hearthstone-like: demand 6 Mbps, delivering 6 Mbps at 50 fps while
  // active. Objective says bad (tput < 8); effective says good.
  SlotQoeMetrics slot{.frame_rate = 50.0, .throughput_mbps = 6.0,
                      .rtt_ms = 10.0, .loss_rate = 0.0};
  QoeContext context{.expected_peak_mbps = 6.0, .expected_peak_fps = 60.0,
                     .stage = kStageActive};
  EXPECT_EQ(objective_qoe(slot), QoeLevel::kBad);
  EXPECT_EQ(effective_qoe(slot, context), QoeLevel::kGood);
}

TEST(EffectiveQoe, GenuineDegradationStaysBad) {
  // Active stage of a high-demand title starved to 3 Mbps / 15 fps with
  // bad latency: context must NOT excuse it.
  SlotQoeMetrics slot{.frame_rate = 15.0, .throughput_mbps = 3.0,
                      .rtt_ms = 85.0, .loss_rate = 0.03};
  QoeContext context{.expected_peak_mbps = 45.0, .expected_peak_fps = 60.0,
                     .stage = kStageActive};
  EXPECT_EQ(effective_qoe(slot, context), QoeLevel::kBad);
}

TEST(EffectiveQoe, LatencyLossGatesUnchangedByContext) {
  // §5.3: latency/loss expectations are NOT calibrated. Even a fully
  // satisfied idle stage with terrible RTT cannot be good.
  SlotQoeMetrics slot{.frame_rate = 25.0, .throughput_mbps = 4.0,
                      .rtt_ms = 95.0, .loss_rate = 0.0};
  EXPECT_EQ(effective_qoe(slot, idle_context()), QoeLevel::kBad);
  auto medium_rtt = slot;
  medium_rtt.rtt_ms = 50.0;
  EXPECT_EQ(effective_qoe(medium_rtt, idle_context()), QoeLevel::kMedium);
}

TEST(EffectiveQoe, PassiveStageToleratesReducedUpstreamDemand) {
  // Passive: downstream stays high; modest throughput dip is fine.
  SlotQoeMetrics slot{.frame_rate = 55.0, .throughput_mbps = 16.0,
                      .rtt_ms = 15.0, .loss_rate = 0.001};
  QoeContext context{.expected_peak_mbps = 25.0, .expected_peak_fps = 60.0,
                     .stage = kStagePassive};
  EXPECT_EQ(effective_qoe(slot, context), QoeLevel::kGood);
}

TEST(EffectiveQoe, NeverWorseForMeetingAbsoluteThresholds) {
  // A stream exceeding the generic good thresholds is good regardless of
  // a modest context expectation.
  SlotQoeMetrics slot{.frame_rate = 90.0, .throughput_mbps = 40.0,
                      .rtt_ms = 8.0, .loss_rate = 0.0};
  QoeContext context{.expected_peak_mbps = 200.0, .expected_peak_fps = 144.0,
                     .stage = kStageActive};
  EXPECT_EQ(effective_qoe(slot, context), QoeLevel::kGood);
}

TEST(SessionLevel, MajorityWins) {
  EXPECT_EQ(session_level({QoeLevel::kGood, QoeLevel::kGood, QoeLevel::kBad}),
            QoeLevel::kGood);
  EXPECT_EQ(session_level({QoeLevel::kBad, QoeLevel::kBad, QoeLevel::kGood}),
            QoeLevel::kBad);
}

TEST(SessionLevel, TieResolvesTowardWorse) {
  EXPECT_EQ(session_level({QoeLevel::kGood, QoeLevel::kBad}), QoeLevel::kBad);
  EXPECT_EQ(session_level({QoeLevel::kGood, QoeLevel::kMedium}),
            QoeLevel::kMedium);
}

TEST(SessionLevel, EmptyIsBadByConvention) {
  EXPECT_EQ(session_level(std::vector<QoeLevel>{}), QoeLevel::kBad);
}

TEST(SessionLevel, CountsOverloadMatchesVectorOverload) {
  const std::vector<QoeLevel> levels{QoeLevel::kGood, QoeLevel::kGood,
                                     QoeLevel::kMedium, QoeLevel::kBad,
                                     QoeLevel::kMedium};
  std::array<std::size_t, kNumQoeLevels> counts{};
  for (QoeLevel level : levels) ++counts[static_cast<std::size_t>(level)];
  EXPECT_EQ(session_level(counts), session_level(levels));
  EXPECT_EQ(session_level(std::array<std::size_t, kNumQoeLevels>{}),
            QoeLevel::kBad);
}

TEST(QoeLevel, Names) {
  EXPECT_STREQ(to_string(QoeLevel::kBad), "bad");
  EXPECT_STREQ(to_string(QoeLevel::kMedium), "medium");
  EXPECT_STREQ(to_string(QoeLevel::kGood), "good");
}

/// Property: effective QoE is never worse than objective QoE when the
/// network gates pass — context only relaxes media expectations.
class QoeMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(QoeMonotonicity, EffectiveAtLeastObjectiveWithCleanNetwork) {
  ml::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  for (int i = 0; i < 200; ++i) {
    SlotQoeMetrics slot{.frame_rate = rng.uniform(5.0, 120.0),
                        .throughput_mbps = rng.uniform(0.5, 70.0),
                        .rtt_ms = rng.uniform(5.0, 35.0),
                        .loss_rate = rng.uniform(0.0, 0.004)};
    QoeContext context{
        .expected_peak_mbps = rng.uniform(5.0, 70.0),
        .expected_peak_fps = rng.uniform(30.0, 120.0),
        .stage = static_cast<ml::Label>(GetParam() % 3)};
    EXPECT_GE(static_cast<int>(effective_qoe(slot, context)),
              static_cast<int>(objective_qoe(slot)) - 1)
        << "fps=" << slot.frame_rate << " tput=" << slot.throughput_mbps;
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, QoeMonotonicity, ::testing::Range(0, 3));

}  // namespace
}  // namespace cgctx::core
