#include "core/sharded_probe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/model_suite.hpp"
#include "probe_test_models.hpp"
#include "sim/fleet.hpp"

namespace cgctx::core {
namespace {

const ModelSuite& suite() { return probe_test_suite(); }

sim::FleetReplay small_fleet(std::size_t sessions, std::size_t cross_flows,
                             std::uint64_t seed) {
  sim::FleetReplayOptions options;
  options.sessions = sessions;
  options.seed = seed;
  options.gameplay_seconds = 30.0;
  options.start_spread_s = 15.0;
  options.cross_traffic_flows = cross_flows;
  options.cross_traffic_duration_s = 20.0;
  return sim::build_fleet_replay(options);
}

std::vector<SessionReport> run_sharded(
    const std::vector<net::PacketRecord>& wire, std::size_t shards,
    ProbeStatsSnapshot* stats_out = nullptr) {
  ShardedProbeParams params;
  params.probe.pipeline = default_pipeline_params();
  params.num_shards = shards;
  std::vector<SessionReport> reports;
  ShardedProbe probe(suite().models(), params,
                     [&](const SessionReport& r) { reports.push_back(r); });
  for (const auto& pkt : wire) probe.push(pkt);
  probe.flush();
  if (stats_out != nullptr) *stats_out = probe.stats();
  return reports;
}

TEST(ShardedProbe, SingleShardMatchesMultiSessionProbeExactly) {
  const sim::FleetReplay replay = small_fleet(3, 2, 71);

  std::vector<SessionReport> direct;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { direct.push_back(r); });
  for (const auto& pkt : replay.wire) probe.push(pkt);
  probe.flush();

  const std::vector<SessionReport> sharded = run_sharded(replay.wire, 1);
  // One shard preserves global packet order, so the engine must be a
  // behavior-preserving wrapper: same reports, same order, every field.
  EXPECT_EQ(sharded, direct);
}

TEST(ShardedProbe, MultiShardReportsAreComplete) {
  const sim::FleetReplay replay = small_fleet(5, 3, 72);
  ProbeStatsSnapshot stats;
  const std::vector<SessionReport> reports =
      run_sharded(replay.wire, 4, &stats);

  // Every gaming session surfaces exactly once; nothing was dropped.
  ASSERT_EQ(reports.size(), replay.session_flows.size());
  std::set<net::FiveTuple> reported;
  for (const auto& report : reports) {
    ASSERT_TRUE(report.detection.has_value());
    reported.insert(report.detection->flow);
    EXPECT_GT(report.slots.size(), 25u);
  }
  const std::set<net::FiveTuple> expected(replay.session_flows.begin(),
                                          replay.session_flows.end());
  EXPECT_EQ(reported, expected);
  EXPECT_EQ(stats.packets_dropped, 0u);
  EXPECT_EQ(stats.packets_in, replay.wire.size());
  EXPECT_EQ(stats.packets_processed, replay.wire.size());
  EXPECT_EQ(stats.reports_emitted, reports.size());
  EXPECT_EQ(stats.sessions_started, reports.size());
  EXPECT_GE(stats.queue_depth_hwm, 1u);
}

TEST(ShardedProbe, FlowsKeepShardAffinity) {
  ShardedProbeParams params;
  params.probe.pipeline = default_pipeline_params();
  params.num_shards = 4;
  ShardedProbe probe(suite().models(), params, {});
  const net::FiveTuple tuple{net::Ipv4Addr::from_octets(10, 1, 2, 3),
                             net::Ipv4Addr::from_octets(119, 81, 1, 9),
                             50123, 49004, 17};
  // Both orientations of one conversation land on one shard.
  EXPECT_EQ(probe.shard_of(tuple.canonical()),
            probe.shard_of(tuple.reversed().canonical()));
  probe.flush();
}

TEST(ShardedProbe, DropNewestPolicyCountsDropsInsteadOfBlocking) {
  ShardedProbeParams params;
  params.probe.pipeline = default_pipeline_params();
  params.num_shards = 1;
  params.queue_capacity = 1;
  params.overflow = OverflowPolicy::kDropNewest;
  ShardedProbe probe(suite().models(), params, {});

  // Flood one shard faster than its worker can possibly drain a
  // capacity-1 queue; the capture path must never wedge and every
  // rejected packet must be counted.
  net::PacketRecord pkt;
  pkt.tuple = net::FiveTuple{net::Ipv4Addr::from_octets(10, 9, 9, 9),
                             net::Ipv4Addr::from_octets(119, 81, 2, 2),
                             50555, 49004, 17};
  pkt.payload_size = 1200;
  constexpr std::size_t kPackets = 20000;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    pkt.timestamp = static_cast<net::Timestamp>(i) * 1'000'000;
    if (probe.push(pkt)) ++accepted;
  }
  probe.flush();
  const ProbeStatsSnapshot stats = probe.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_in + stats.packets_dropped, kPackets);
  EXPECT_EQ(stats.packets_processed, accepted);
}

TEST(ShardedProbe, StatsSnapshotReadableWhileRunning) {
  const sim::FleetReplay replay = small_fleet(2, 1, 73);
  ShardedProbeParams params;
  params.probe.pipeline = default_pipeline_params();
  params.num_shards = 2;
  ShardedProbe probe(suite().models(), params, {});
  std::uint64_t mid_run_packets = 0;
  for (std::size_t i = 0; i < replay.wire.size(); ++i) {
    probe.push(replay.wire[i]);
    if (i == replay.wire.size() / 2)
      mid_run_packets = probe.stats().packets_in;
  }
  probe.flush();
  EXPECT_GT(mid_run_packets, 0u);
  EXPECT_EQ(probe.stats().packets_in, replay.wire.size());
  EXPECT_GT(probe.stats().latency().samples, 0u);
}

TEST(ShardedProbe, RejectsZeroShards) {
  ShardedProbeParams params;
  params.probe.pipeline = default_pipeline_params();
  params.num_shards = 0;
  EXPECT_THROW(ShardedProbe(suite().models(), params, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::core
