#include "core/volumetric_tracker.hpp"

#include <gtest/gtest.h>

namespace cgctx::core {
namespace {

RawSlotVolumetrics slot(std::uint64_t down_bytes, std::uint64_t down_pkts,
                        std::uint64_t up_bytes, std::uint64_t up_pkts) {
  return RawSlotVolumetrics{down_bytes, down_pkts, up_bytes, up_pkts};
}

TEST(VolumetricTracker, FourNamedAttributes) {
  EXPECT_EQ(volumetric_attribute_names().size(), kNumVolumetricAttributes);
  EXPECT_EQ(kNumVolumetricAttributes, 4u);
}

TEST(VolumetricTracker, FirstSlotIsItsOwnPeak) {
  VolumetricTracker tracker;
  const auto attrs = tracker.push(slot(1000, 10, 100, 5));
  ASSERT_EQ(attrs.size(), 4u);
  for (double a : attrs) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(VolumetricTracker, RelativeValuesTrackRunningPeak) {
  VolumetricTrackerParams params;
  params.enable_ema = false;  // isolate the normalization
  VolumetricTracker tracker(params);
  tracker.push(slot(1000, 10, 100, 10));
  const auto half = tracker.push(slot(500, 5, 50, 5));
  for (double a : half) EXPECT_NEAR(a, 0.5, 1e-12);
  // A new peak renormalizes subsequent slots.
  const auto peak = tracker.push(slot(2000, 20, 200, 20));
  for (double a : peak) EXPECT_NEAR(a, 1.0, 1e-12);
  const auto quarter = tracker.push(slot(500, 5, 50, 5));
  for (double a : quarter) EXPECT_NEAR(a, 0.25, 1e-12);
}

TEST(VolumetricTracker, EmaSmoothsTransitions) {
  VolumetricTrackerParams params;
  params.alpha = 0.5;
  VolumetricTracker tracker(params);
  tracker.push(slot(1000, 10, 100, 10));  // peak, value 1.0
  // Drop to 0 raw; EMA keeps half the history.
  const auto smoothed = tracker.push(slot(0, 0, 0, 0));
  for (double a : smoothed) EXPECT_NEAR(a, 0.5, 1e-12);
  const auto next = tracker.push(slot(0, 0, 0, 0));
  for (double a : next) EXPECT_NEAR(a, 0.25, 1e-12);
}

TEST(VolumetricTracker, AlphaOneDisablesHistory) {
  VolumetricTrackerParams params;
  params.alpha = 1.0;
  VolumetricTracker tracker(params);
  tracker.push(slot(1000, 10, 100, 10));
  const auto attrs = tracker.push(slot(0, 0, 0, 0));
  for (double a : attrs) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(VolumetricTracker, EmaDisabledReturnsRawRelatives) {
  VolumetricTrackerParams params;
  params.enable_ema = false;
  VolumetricTracker tracker(params);
  tracker.push(slot(1000, 10, 100, 10));
  const auto attrs = tracker.push(slot(100, 1, 10, 1));
  for (double a : attrs) EXPECT_NEAR(a, 0.1, 1e-12);
}

TEST(VolumetricTracker, AbsoluteModeSkipsNormalization) {
  VolumetricTrackerParams params;
  params.relative_to_peak = false;
  params.enable_ema = false;
  VolumetricTracker tracker(params);
  const auto attrs = tracker.push(slot(1234, 56, 78, 9));
  EXPECT_DOUBLE_EQ(attrs[0], 1234.0);
  EXPECT_DOUBLE_EQ(attrs[1], 56.0);
  EXPECT_DOUBLE_EQ(attrs[2], 78.0);
  EXPECT_DOUBLE_EQ(attrs[3], 9.0);
}

TEST(VolumetricTracker, ZeroTrafficNeverDividesByZero) {
  VolumetricTracker tracker;
  const auto attrs = tracker.push(slot(0, 0, 0, 0));
  for (double a : attrs) {
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_DOUBLE_EQ(a, 0.0);
  }
}

TEST(VolumetricTracker, ResetClearsState) {
  VolumetricTracker tracker;
  tracker.push(slot(1000, 10, 100, 10));
  tracker.push(slot(500, 5, 50, 5));
  tracker.reset();
  EXPECT_EQ(tracker.slots_seen(), 0u);
  const auto attrs = tracker.push(slot(10, 1, 1, 1));
  for (double a : attrs) EXPECT_DOUBLE_EQ(a, 1.0);  // fresh peak
}

TEST(VolumetricTracker, SlotsSeenCounts) {
  VolumetricTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.push(slot(1, 1, 1, 1));
  EXPECT_EQ(tracker.slots_seen(), 5u);
}

/// Property sweep over alpha: outputs always within [0, 1] in relative
/// mode and converge toward the steady-state input level.
class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, ConvergesToSteadyLevel) {
  VolumetricTrackerParams params;
  params.alpha = GetParam();
  VolumetricTracker tracker(params);
  tracker.push(slot(1000, 10, 100, 10));  // arm the peak
  ml::FeatureRow attrs;
  for (int i = 0; i < 60; ++i) attrs = tracker.push(slot(300, 3, 30, 3));
  for (double a : attrs) {
    EXPECT_NEAR(a, 0.3, 0.02);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

}  // namespace
}  // namespace cgctx::core
