// The telemetry plane wired through the session pipeline: the
// classification-health counters PipelineMetrics publishes, the decision
// trace the engine emits through trace-aware sinks, and the promise that
// instrumentation never changes a report.
#include "core/pipeline_metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sharded_probe.hpp"
#include "core/streaming_analyzer.hpp"
#include "core/trace_sink.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "probe_test_models.hpp"

namespace cgctx::core {
namespace {

const ModelSuite& suite() { return probe_test_suite(); }

sim::LabeledSession packet_session(std::uint64_t seed, double start_s = 0.0) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 30.0;
  spec.seed = seed;
  spec.start_time = net::duration_from_seconds(start_s);
  return gen.generate(spec);
}

TEST(TelemetryPlane, PipelineCountsDecisionsAndTimesStages) {
  obs::MetricsRegistry registry;
  PipelineMetrics metrics = PipelineMetrics::create(registry);
  metrics.timer_sample_stride = 1;  // exact timer counts below
  RealtimePipeline pipeline(suite().models(), default_pipeline_params());
  pipeline.set_metrics(&metrics);

  const sim::LabeledSession session = packet_session(11);
  const auto report = pipeline.process_packets(session.packets);
  ASSERT_TRUE(report.has_value());

  EXPECT_EQ(metrics.title_verdicts->value(), 1u);
  EXPECT_EQ(metrics.sessions_finished->value(), 1u);
  EXPECT_EQ(metrics.slots_processed->value(), report->slots.size());
  // A confident pattern verdict either landed (decision) or never did
  // (never-confident); the two tallies must cover the session.
  EXPECT_EQ(metrics.pattern_decisions->value() +
                metrics.never_confident_patterns->value(),
            1u);
  // The stage classifier ran once per slot; the timers saw every run.
  EXPECT_EQ(metrics.stage_classify_ns->count(), report->slots.size());
  EXPECT_EQ(metrics.slot_close_ns->count(), report->slots.size());
  EXPECT_EQ(metrics.title_classify_ns->count(), 1u);
  EXPECT_GT(metrics.slot_close_ns->sum(), 0u);
}

TEST(TelemetryPlane, UnknownTitleCountsAsUnknownAndLowConfidence) {
  obs::MetricsRegistry registry;
  const PipelineMetrics metrics = PipelineMetrics::create(registry);

  static const PipelineParams params = default_pipeline_params();
  SessionEngine engine(suite().models(), &params);
  engine.set_metrics(&metrics);
  TitleResult unknown;
  unknown.label.reset();
  unknown.confidence = 0.2;
  engine.set_title(unknown);
  EXPECT_EQ(metrics.title_verdicts->value(), 1u);
  EXPECT_EQ(metrics.unknown_titles->value(), 1u);
  EXPECT_EQ(metrics.low_confidence_titles->value(), 1u);
}

TEST(TelemetryPlane, InstrumentationDoesNotChangeReports) {
  const sim::LabeledSession session = packet_session(23);
  RealtimePipeline plain(suite().models(), default_pipeline_params());
  const auto baseline = plain.process_packets(session.packets);
  ASSERT_TRUE(baseline.has_value());

  obs::MetricsRegistry registry;
  const PipelineMetrics metrics = PipelineMetrics::create(registry);
  obs::DecisionTraceRing ring(256);
  RealtimePipeline instrumented(suite().models(), default_pipeline_params());
  instrumented.set_metrics(&metrics);
  instrumented.set_trace(&ring);
  const auto traced = instrumented.process_packets(session.packets);
  ASSERT_TRUE(traced.has_value());

  EXPECT_EQ(baseline->title.class_name, traced->title.class_name);
  EXPECT_EQ(baseline->slots.size(), traced->slots.size());
  EXPECT_EQ(baseline->effective_session, traced->effective_session);
  EXPECT_EQ(baseline->mean_down_mbps, traced->mean_down_mbps);
}

TEST(TelemetryPlane, PipelineTraceTellsTheSessionStory) {
  obs::DecisionTraceRing ring(256);
  RealtimePipeline pipeline(suite().models(), default_pipeline_params());
  pipeline.set_trace(&ring);
  const sim::LabeledSession session = packet_session(31);
  ASSERT_TRUE(pipeline.process_packets(session.packets).has_value());

  ASSERT_GT(ring.size(), 0u);
  // First event: the flow promotion; last: retirement. Every event
  // belongs to session 1 (the pipeline's first traced session).
  EXPECT_EQ(ring.at(0).type, obs::TraceEventType::kFlowPromoted);
  EXPECT_EQ(ring.at(ring.size() - 1).type,
            obs::TraceEventType::kSessionRetired);
  bool saw_title = false;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).session_id, 1u);
    saw_title |= ring.at(i).type == obs::TraceEventType::kTitleVerdict;
  }
  EXPECT_TRUE(saw_title);

  // A second session gets the next id.
  ring.clear();
  ASSERT_TRUE(pipeline.process_packets(session.packets).has_value());
  ASSERT_GT(ring.size(), 0u);
  EXPECT_EQ(ring.at(0).session_id, 2u);
}

TEST(TelemetryPlane, StreamingAnalyzerTracesAndHidesQoeFromCallbacks) {
  obs::DecisionTraceRing ring(256);
  std::vector<StreamEventType> callback_events;
  StreamingAnalyzer analyzer(
      suite().models(), default_pipeline_params(),
      [&](const StreamEvent& event) { callback_events.push_back(event.type); });
  analyzer.set_trace(&ring);

  const sim::LabeledSession session = packet_session(47);
  for (const auto& pkt : session.packets) analyzer.push(pkt);
  const SessionReport report = analyzer.finish();
  ASSERT_FALSE(report.slots.empty());

  ASSERT_GT(ring.size(), 0u);
  EXPECT_EQ(ring.at(ring.size() - 1).type,
            obs::TraceEventType::kSessionRetired);
  // The std::function callback predates QoE events and must never see
  // one, traced or not.
  for (const StreamEventType type : callback_events)
    EXPECT_NE(type, StreamEventType::kQoeChanged);
}

TEST(TelemetryPlane, ShardedProbePublishesRegistryAndTrace) {
  ShardedProbeParams params;
  params.probe = MultiSessionProbeParams{default_pipeline_params()};
  params.num_shards = 2;
  params.trace_capacity = 256;

  std::size_t reports = 0;
  ShardedProbe probe(suite().models(), params,
                     [&](const SessionReport&) { ++reports; });
  // Two sessions, spaced past the flow-idle timeout so state ages out.
  for (const auto& pkt : packet_session(101).packets) probe.push(pkt);
  for (const auto& pkt : packet_session(202, 120.0).packets) probe.push(pkt);
  probe.flush();
  ASSERT_EQ(reports, 2u);

  // The registry carries per-shard probe series and the shared pipeline
  // counters; the Prometheus page renders them.
  const obs::MetricsSnapshot snapshot = probe.metrics_snapshot();
  bool saw_shard0 = false;
  bool saw_shard1 = false;
  double sessions_finished = 0.0;
  for (const obs::MetricSeries& series : snapshot.series) {
    if (series.name == "cgctx_probe_packets_in_total") {
      for (const auto& [key, value] : series.labels) {
        saw_shard0 |= key == "shard" && value == "0";
        saw_shard1 |= key == "shard" && value == "1";
      }
    }
    if (series.name == "cgctx_session_finished_total")
      sessions_finished = series.value;
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_shard1);
  EXPECT_EQ(sessions_finished, 2.0);
  const std::string page = obs::to_prometheus(snapshot);
  EXPECT_NE(page.find("cgctx_probe_packets_in_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(page.find("cgctx_pipeline_slot_close_ns_bucket"),
            std::string::npos);

  // The merged trace holds both sessions' stories with globally unique,
  // shard-interleaved ids (shard i numbers i+1, i+1+N, ...).
  const std::vector<obs::TraceEvent> events = probe.drain_trace();
  ASSERT_GT(events.size(), 0u);
  std::size_t retired = 0;
  for (const obs::TraceEvent& event : events) {
    EXPECT_GE(event.session_id, 1u);
    retired += event.type == obs::TraceEventType::kSessionRetired ? 1 : 0;
  }
  EXPECT_EQ(retired, 2u);
}

}  // namespace
}  // namespace cgctx::core
