#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/model_suite.hpp"
#include "sim/cross_traffic.hpp"
#include "sim/fleet.hpp"

namespace cgctx::core {
namespace {

/// One shared small model suite for every pipeline test (trained once).
const ModelSuite& suite() {
  static const ModelSuite models = [] {
    TrainingBudget budget;
    budget.lab_scale = 0.12;
    budget.gameplay_seconds = 150.0;
    budget.augment_copies = 1;
    return train_model_suite(budget);
  }();
  return models;
}

RealtimePipeline make_pipeline() {
  return RealtimePipeline(suite().models(), default_pipeline_params());
}

sim::LabeledSession lab_session(sim::GameTitle title, double gameplay_seconds,
                                std::uint64_t seed, bool slots_only = true) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = title;
  spec.gameplay_seconds = gameplay_seconds;
  spec.seed = seed;
  return slots_only ? gen.generate_slots_only(spec) : gen.generate(spec);
}

TEST(Pipeline, RequiresAllModels) {
  PipelineModels incomplete;
  incomplete.title = &suite().title;
  EXPECT_THROW(RealtimePipeline(incomplete, PipelineParams{}),
               std::invalid_argument);
}

TEST(Pipeline, ClassifiesTitleOfKnownSession) {
  const auto pipeline = make_pipeline();
  int correct = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    const auto session =
        lab_session(sim::GameTitle::kGenshinImpact, 200, 500 + i);
    const auto report = pipeline.process_session(session);
    if (report.title.label &&
        report.title.class_name == "Genshin Impact")
      ++correct;
  }
  EXPECT_GE(correct, n - 2);
}

TEST(Pipeline, StageTimelineRoughlyMatchesGroundTruth) {
  const auto pipeline = make_pipeline();
  const auto session = lab_session(sim::GameTitle::kCsgo, 400, 42);
  const auto report = pipeline.process_session(session);
  ASSERT_EQ(report.slots.size(), session.slots.size());
  // Compare classified stages against ground truth over gameplay slots.
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t s = 0; s < report.slots.size(); ++s) {
    const net::Timestamp mid =
        session.launch_begin + net::duration_from_seconds(s + 0.5);
    if (session.in_launch(mid) || mid >= session.end) continue;
    ++total;
    const auto truth = static_cast<ml::Label>(session.stage_label_at(mid));
    if (report.slots[s].stage == truth) ++correct;
  }
  ASSERT_GT(total, 300u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.85);
}

TEST(Pipeline, InfersPatternWithinMinutes) {
  const auto pipeline = make_pipeline();
  int correct = 0;
  double decided_sum = 0.0;
  int decided_count = 0;
  const int n = 5;
  for (int i = 0; i < n; ++i) {
    const auto report = pipeline.process_session(
        lab_session(sim::GameTitle::kOverwatch2, 1200, 700 + i));
    ASSERT_TRUE(report.pattern.has_value());
    if (report.pattern->label == kPatternSpectate) ++correct;
    if (report.pattern_decided_at_s > 0) {
      decided_sum += report.pattern_decided_at_s;
      ++decided_count;
    }
  }
  EXPECT_GE(correct, n - 1);
  // The paper reports confident inference ~5 minutes in on average.
  if (decided_count > 0) {
    EXPECT_LT(decided_sum / decided_count, 900.0);
  }
}

TEST(Pipeline, ContinuousPlayPatternInferred) {
  const auto pipeline = make_pipeline();
  int correct = 0;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    const auto report = pipeline.process_session(
        lab_session(sim::GameTitle::kCyberpunk2077, 1200, 600 + i));
    if (report.pattern && report.pattern->label == kPatternContinuous)
      ++correct;
  }
  EXPECT_GE(correct, n - 1);
}

TEST(Pipeline, LabNetworkSessionsHaveGoodEffectiveQoe) {
  const auto pipeline = make_pipeline();
  const auto report = pipeline.process_session(
      lab_session(sim::GameTitle::kFortnite, 300, 11));
  EXPECT_EQ(report.effective_session, QoeLevel::kGood);
}

TEST(Pipeline, LowDemandTitleCorrectedByEffectiveQoe) {
  const auto pipeline = make_pipeline();
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kHearthstone;
  spec.gameplay_seconds = 300;
  spec.seed = 13;
  spec.config.resolution = sim::Resolution::kHd;  // modest setting
  spec.config.fps = 60;
  const auto report = pipeline.process_session(gen.generate_slots_only(spec));
  // Objectively poor (below generic throughput expectations)...
  EXPECT_NE(report.objective_session, QoeLevel::kGood);
  // ...but effectively fine given the title's low demand.
  EXPECT_EQ(report.effective_session, QoeLevel::kGood);
}

TEST(Pipeline, CongestedSessionStaysBadUnderBothMappings) {
  const auto pipeline = make_pipeline();
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 300;
  spec.seed = 17;
  spec.network = sim::NetworkConditions::congested();
  const auto report = pipeline.process_session(gen.generate_slots_only(spec));
  EXPECT_EQ(report.objective_session, QoeLevel::kBad);
  EXPECT_EQ(report.effective_session, QoeLevel::kBad);
}

TEST(Pipeline, ProcessPacketsDetectsAndAnalyzes) {
  const auto pipeline = make_pipeline();
  const auto session = lab_session(sim::GameTitle::kCsgo, 60, 19,
                                   /*slots_only=*/false);
  const auto report = pipeline.process_packets(session.packets);
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->detection.has_value());
  EXPECT_EQ(report->detection->platform, Platform::kGeforceNow);
  EXPECT_GT(report->duration_s, 60.0);
  EXPECT_GT(report->mean_down_mbps, 0.5);
}

TEST(Pipeline, ProcessPacketsIgnoresPureCrossTraffic) {
  const auto pipeline = make_pipeline();
  ml::Rng rng(21);
  const auto packets =
      sim::voip_flow(net::Ipv4Addr::from_octets(10, 2, 3, 4), 30.0, rng);
  EXPECT_FALSE(pipeline.process_packets(packets).has_value());
}

TEST(Pipeline, ProcessPacketsSeparatesGamingFromCrossTraffic) {
  const auto pipeline = make_pipeline();
  const auto session = lab_session(sim::GameTitle::kFortnite, 45, 23,
                                   /*slots_only=*/false);
  ml::Rng rng(25);
  auto mixed = session.packets;
  for (const auto& pkt :
       sim::web_browsing_flow(session.client_ip, 60.0, rng))
    mixed.push_back(pkt);
  std::sort(mixed.begin(), mixed.end(), [](const auto& a, const auto& b) {
    return a.timestamp < b.timestamp;
  });
  const auto report = pipeline.process_packets(mixed);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->detection->flow, session.tuple.canonical());
}

TEST(Pipeline, StageSecondsSumToDuration) {
  const auto pipeline = make_pipeline();
  const auto session = lab_session(sim::GameTitle::kDota2, 200, 27);
  const auto report = pipeline.process_session(session);
  const double total = report.stage_seconds[0] + report.stage_seconds[1] +
                       report.stage_seconds[2];
  EXPECT_NEAR(total, report.duration_s, 1e-6);
}

TEST(Pipeline, ReportsPerSlotRecords) {
  const auto pipeline = make_pipeline();
  const auto session = lab_session(sim::GameTitle::kRocketLeague, 100, 29);
  const auto report = pipeline.process_session(session);
  ASSERT_FALSE(report.slots.empty());
  for (const SlotRecord& slot : report.slots) {
    EXPECT_GE(slot.stage, 0);
    EXPECT_LT(slot.stage, 3);
    EXPECT_GE(slot.throughput_mbps, 0.0);
    EXPECT_GE(slot.frame_rate, 0.0);
  }
}

}  // namespace
}  // namespace cgctx::core
