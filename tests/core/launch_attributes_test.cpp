#include "core/launch_attributes.hpp"

#include <gtest/gtest.h>

#include "sim/session.hpp"

namespace cgctx::core {
namespace {

net::PacketRecord down_packet(double t_seconds, std::uint32_t payload) {
  net::PacketRecord pkt;
  pkt.timestamp = net::duration_from_seconds(t_seconds);
  pkt.direction = net::Direction::kDownstream;
  pkt.payload_size = payload;
  return pkt;
}

TEST(LaunchAttributes, ExactlyFiftyOneNamedAttributes) {
  const auto names = launch_attribute_names();
  EXPECT_EQ(names.size(), kNumLaunchAttributes);
  EXPECT_EQ(kNumLaunchAttributes, 51u);
  EXPECT_EQ(names[0], "full_ct_sum");  // paper Fig. 7 example attribute
  EXPECT_EQ(names[17], "steady_ct_sum");
  EXPECT_EQ(names[34], "sparse_ct_sum");
  // All names unique.
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(LaunchAttributes, EmptyWindowIsAllZeros) {
  const auto row = launch_attributes({}, 0);
  ASSERT_EQ(row.size(), kNumLaunchAttributes);
  for (double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LaunchAttributes, FullCountSumMatchesInput) {
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 20; ++i)
    packets.push_back(down_packet(0.1 + i * 0.2, 1432));
  const auto row = launch_attributes(packets, 0);
  EXPECT_DOUBLE_EQ(row[0], 20.0);  // full_ct_sum: all 20 within 5 s
}

TEST(LaunchAttributes, SizeStatsReflectPayloads) {
  std::vector<net::PacketRecord> packets;
  // A steady band at exactly 600 bytes.
  for (int i = 0; i < 10; ++i) packets.push_back(down_packet(0.1 * i, 600));
  const auto row = launch_attributes(packets, 0);
  const auto names = launch_attribute_names();
  const auto idx = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin());
  };
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_mean")], 600.0);
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_std")], 0.0);
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_min")], 600.0);
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_max")], 600.0);
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_median")], 600.0);
  EXPECT_DOUBLE_EQ(row[idx("steady_sz_sum")], 6000.0);
}

TEST(LaunchAttributes, InterArrivalInMilliseconds) {
  std::vector<net::PacketRecord> packets;
  for (int i = 0; i < 5; ++i) packets.push_back(down_packet(0.1 * i, 1432));
  const auto row = launch_attributes(packets, 0);
  const auto names = launch_attribute_names();
  const auto idx = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin());
  };
  EXPECT_NEAR(row[idx("full_iat_mean")], 100.0, 1e-6);
  EXPECT_NEAR(row[idx("full_iat_std")], 0.0, 1e-6);
  EXPECT_NEAR(row[idx("full_iat_burst")], 0.0, 1e-6);
}

TEST(LaunchAttributes, WindowParameterLimitsScope) {
  std::vector<net::PacketRecord> packets = {down_packet(0.5, 1432),
                                            down_packet(7.0, 1432)};
  LaunchAttributeParams params;
  params.window_seconds = 5.0;
  const auto row = launch_attributes(packets, 0, params);
  EXPECT_DOUBLE_EQ(row[0], 1.0);  // only the first packet is in-window
}

TEST(LaunchAttributes, FlowBeginShiftsTheWindow) {
  std::vector<net::PacketRecord> packets = {down_packet(10.5, 1432)};
  const auto row =
      launch_attributes(packets, net::duration_from_seconds(10.0));
  EXPECT_DOUBLE_EQ(row[0], 1.0);
}

TEST(LaunchAttributes, DifferentTitlesYieldDifferentVectors) {
  const sim::SessionGenerator gen;
  sim::SessionSpec a;
  a.title = sim::GameTitle::kGenshinImpact;
  a.gameplay_seconds = 5;
  a.seed = 1;
  sim::SessionSpec b = a;
  b.title = sim::GameTitle::kHearthstone;
  const auto sa = gen.generate(a);
  const auto sb = gen.generate(b);
  const auto ra = launch_attributes(sa.packets, sa.launch_begin);
  const auto rb = launch_attributes(sb.packets, sb.launch_begin);
  double distance = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    distance += std::abs(ra[i] - rb[i]);
  EXPECT_GT(distance, 100.0);
}

TEST(LaunchAttributes, SameTitleDifferentConfigsStayClose) {
  // The paper's key invariance: same title, different device/settings ->
  // similar launch profile. Compare relative distance against a
  // different-title pair.
  const sim::SessionGenerator gen;
  sim::SessionSpec base;
  base.title = sim::GameTitle::kGenshinImpact;
  base.gameplay_seconds = 5;
  base.seed = 11;
  base.config.resolution = sim::Resolution::kUhd;
  sim::SessionSpec other_config = base;
  other_config.seed = 12;
  other_config.config.resolution = sim::Resolution::kSd;
  other_config.config.device = sim::DeviceClass::kMobile;
  sim::SessionSpec other_title = base;
  other_title.seed = 13;
  other_title.title = sim::GameTitle::kHearthstone;

  const auto r_base = launch_attributes(gen.generate(base).packets, 0);
  const auto r_config = launch_attributes(gen.generate(other_config).packets, 0);
  const auto r_title = launch_attributes(gen.generate(other_title).packets, 0);

  auto l1 = [](const ml::FeatureRow& x, const ml::FeatureRow& y) {
    double d = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) d += std::abs(x[i] - y[i]);
    return d;
  };
  EXPECT_LT(l1(r_base, r_config), l1(r_base, r_title));
}

TEST(FlowVolumetricAttributes, TwoPerSlot) {
  LaunchAttributeParams params;
  params.window_seconds = 5.0;
  params.slot_seconds = 1.0;
  EXPECT_EQ(flow_volumetric_attribute_names(params).size(), 10u);
  std::vector<net::PacketRecord> packets = {down_packet(0.5, 1000),
                                            down_packet(0.6, 500),
                                            down_packet(3.2, 700)};
  const auto row = flow_volumetric_attributes(packets, 0, params);
  ASSERT_EQ(row.size(), 10u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);     // slot 0 packet count
  EXPECT_DOUBLE_EQ(row[1], 1500.0);  // slot 0 bytes
  EXPECT_DOUBLE_EQ(row[6], 1.0);     // slot 3 packet count
  EXPECT_DOUBLE_EQ(row[7], 700.0);
}

TEST(FlowVolumetricAttributes, UpstreamIgnored) {
  net::PacketRecord up = down_packet(0.5, 100);
  up.direction = net::Direction::kUpstream;
  const auto row = flow_volumetric_attributes({&up, 1}, 0);
  for (double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

/// Property sweep over slot sizes: attribute extraction is well-formed
/// for the paper's Fig. 8 slot options.
class SlotSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlotSweep, AttributesWellFormed) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 5;
  spec.seed = 21;
  const auto session = gen.generate(spec);
  LaunchAttributeParams params;
  params.slot_seconds = GetParam();
  params.window_seconds = 5.0;
  const auto row =
      launch_attributes(session.packets, session.launch_begin, params);
  ASSERT_EQ(row.size(), kNumLaunchAttributes);
  for (double v : row) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GT(row[0], 0.0);  // some full packets observed
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace cgctx::core
