#include "core/qoe_estimator.hpp"

#include <gtest/gtest.h>

#include "sim/session.hpp"

namespace cgctx::core {
namespace {

net::PacketRecord rtp_packet(double t_seconds, std::uint16_t seq, bool marker,
                             std::uint32_t payload = 1000) {
  net::PacketRecord pkt;
  pkt.timestamp = net::duration_from_seconds(t_seconds);
  pkt.direction = net::Direction::kDownstream;
  pkt.payload_size = payload;
  pkt.rtp = net::RtpHeader{.payload_type = 98, .marker = marker,
                           .sequence = seq, .rtp_timestamp = 0, .ssrc = 1};
  return pkt;
}

TEST(QoeEstimator, CountsFramesFromMarkers) {
  QoeEstimator estimator(60.0);
  std::uint16_t seq = 0;
  // 30 frames of 3 packets each within one second.
  for (int f = 0; f < 30; ++f) {
    const double t = f / 30.0;
    estimator.add(rtp_packet(t, seq++, false));
    estimator.add(rtp_packet(t + 0.001, seq++, false));
    estimator.add(rtp_packet(t + 0.002, seq++, true));
  }
  const auto slot = estimator.end_slot();
  EXPECT_DOUBLE_EQ(slot.frame_rate, 30.0);
  EXPECT_EQ(slot.video_packets, 90u);
  EXPECT_DOUBLE_EQ(slot.bytes_per_frame, 3000.0);
  EXPECT_DOUBLE_EQ(slot.loss_rate, 0.0);
}

TEST(QoeEstimator, DetectsSequenceGapsAsLoss) {
  QoeEstimator estimator;
  estimator.add(rtp_packet(0.00, 0, true));
  estimator.add(rtp_packet(0.02, 1, true));
  estimator.add(rtp_packet(0.04, 4, true));  // 2 and 3 lost
  const auto slot = estimator.end_slot();
  // Expected 1 + 1 + 3 = 5 sequence steps, 3 received -> 2/5 lost.
  EXPECT_NEAR(slot.loss_rate, 2.0 / 5.0, 1e-12);
}

TEST(QoeEstimator, SequenceWraparoundIsNotLoss) {
  QoeEstimator estimator;
  estimator.add(rtp_packet(0.00, 65534, true));
  estimator.add(rtp_packet(0.02, 65535, true));
  estimator.add(rtp_packet(0.04, 0, true));
  estimator.add(rtp_packet(0.06, 1, true));
  EXPECT_DOUBLE_EQ(estimator.end_slot().loss_rate, 0.0);
}

TEST(QoeEstimator, ReorderedPacketIsNotLoss) {
  QoeEstimator estimator;
  estimator.add(rtp_packet(0.00, 10, true));
  estimator.add(rtp_packet(0.02, 12, true));
  estimator.add(rtp_packet(0.03, 11, false));  // late arrival
  estimator.add(rtp_packet(0.04, 13, true));
  // Extended-highest tracking (RFC 3550): 4 expected (10..13), 4
  // received, no loss despite the out-of-order arrival.
  EXPECT_DOUBLE_EQ(estimator.end_slot().loss_rate, 0.0);
}

TEST(QoeEstimator, FrameLagMeasuresExcessGap) {
  QoeEstimator estimator(50.0);  // nominal period 20 ms
  estimator.add(rtp_packet(0.000, 0, true));
  estimator.add(rtp_packet(0.020, 1, true));  // on time
  estimator.add(rtp_packet(0.060, 2, true));  // 40 ms gap -> 20 ms lag
  const auto slot = estimator.end_slot();
  EXPECT_NEAR(slot.frame_lag_ms, (0.0 + 20.0) / 2.0, 1e-9);
}

TEST(QoeEstimator, IgnoresUpstreamAndNonRtp) {
  QoeEstimator estimator;
  net::PacketRecord up = rtp_packet(0.0, 0, true);
  up.direction = net::Direction::kUpstream;
  estimator.add(up);
  net::PacketRecord no_rtp = rtp_packet(0.1, 1, true);
  no_rtp.rtp.reset();
  estimator.add(no_rtp);
  const auto slot = estimator.end_slot();
  EXPECT_EQ(slot.video_packets, 0u);
  EXPECT_DOUBLE_EQ(slot.frame_rate, 0.0);
}

TEST(QoeEstimator, EmptySlotIsZeros) {
  QoeEstimator estimator;
  const auto slot = estimator.end_slot();
  EXPECT_DOUBLE_EQ(slot.frame_rate, 0.0);
  EXPECT_DOUBLE_EQ(slot.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(slot.bytes_per_frame, 0.0);
}

TEST(QoeEstimator, ContinuityAcrossSlots) {
  QoeEstimator estimator;
  estimator.add(rtp_packet(0.5, 0, true));
  estimator.end_slot();
  // The gap from seq 0 to seq 3 spans the slot boundary; the two lost
  // packets are charged to the second slot.
  estimator.add(rtp_packet(1.5, 3, true));
  EXPECT_NEAR(estimator.end_slot().loss_rate, 2.0 / 3.0, 1e-12);
}

TEST(QoeEstimator, SetNominalFpsIgnoresNonPositive) {
  QoeEstimator estimator(60.0);
  estimator.set_nominal_fps(-5.0);
  EXPECT_DOUBLE_EQ(estimator.nominal_fps(), 60.0);
  estimator.set_nominal_fps(120.0);
  EXPECT_DOUBLE_EQ(estimator.nominal_fps(), 120.0);
}

TEST(EstimateSlotQoe, BatchMatchesGroundTruthOnSyntheticSession) {
  // Render a packet-fidelity session and compare estimated frame rate
  // against the simulator's per-slot ground truth.
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 60;
  spec.seed = 77;
  spec.config.fps = 60;
  const auto session = gen.generate(spec);
  const auto slot_count = session.slots.size();
  const auto estimated =
      estimate_slot_qoe(session.packets, session.launch_begin,
                        net::kNanosPerSecond, slot_count, spec.config.fps);
  ASSERT_EQ(estimated.size(), slot_count);
  // Compare gameplay slots (launch frames are not rendered as packets).
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t s = 0; s < slot_count; ++s) {
    const net::Timestamp mid =
        session.launch_begin + net::duration_from_seconds(s + 0.5);
    if (session.in_launch(mid) || mid >= session.end) continue;
    err += std::abs(estimated[s].frame_rate - session.slots[s].frames);
    ++n;
  }
  ASSERT_GT(n, 40u);
  EXPECT_LT(err / static_cast<double>(n), 6.0);  // within a few fps
}

TEST(EstimateSlotQoe, LossySessionShowsLoss) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kCsgo;
  spec.gameplay_seconds = 30;
  spec.seed = 78;
  spec.network = sim::NetworkConditions::congested();  // 3% loss
  const auto session = gen.generate(spec);
  const auto estimated =
      estimate_slot_qoe(session.packets, session.launch_begin,
                        net::kNanosPerSecond, session.slots.size());
  double mean_loss = 0.0;
  for (const auto& slot : estimated) mean_loss += slot.loss_rate;
  mean_loss /= static_cast<double>(estimated.size());
  EXPECT_GT(mean_loss, 0.015);
  EXPECT_LT(mean_loss, 0.06);
}

}  // namespace
}  // namespace cgctx::core
