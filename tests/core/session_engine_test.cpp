// Batch ≡ streaming ≡ probe equivalence for the unified SessionEngine.
//
// All three entry points — RealtimePipeline::process_packets (offline
// batch), StreamingAnalyzer (event-driven), MultiSessionProbe (vantage
// point with lookback replay and pooled engines) — drive the same
// core::SessionEngine, so their SessionReports must be byte-identical
// (field-wise, doubles bitwise-equal) for every platform, title, and
// seed. The sweep reuses one analyzer and one probe across all combos,
// so the pooled reset path is exercised dozens of times, not once.
#include "core/session_engine.hpp"

#include <gtest/gtest.h>

#include "core/model_suite.hpp"
#include "core/multi_session_probe.hpp"
#include "core/pipeline.hpp"
#include "core/streaming_analyzer.hpp"
#include "probe_test_models.hpp"

namespace cgctx::core {
namespace {

const ModelSuite& suite() { return probe_test_suite(); }

sim::LabeledSession packet_session(sim::CloudPlatform platform,
                                   sim::GameTitle title, std::uint64_t seed,
                                   double start_s = 0.0) {
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.platform = platform;
  spec.title = title;
  spec.gameplay_seconds = 30.0;
  spec.seed = seed;
  spec.start_time = net::duration_from_seconds(start_s);
  return gen.generate(spec);
}

TEST(SessionEngineEquivalence, BatchStreamingProbeByteIdenticalAcrossSweep) {
  constexpr sim::CloudPlatform kPlatforms[] = {
      sim::CloudPlatform::kGeforceNow, sim::CloudPlatform::kXboxCloud,
      sim::CloudPlatform::kAmazonLuna, sim::CloudPlatform::kPsCloudStreaming};
  // Titles spanning the demand/pattern space: a high-demand shooter, a
  // mid-demand RPG, and the low-demand card game whose spectate-heavy
  // profile stresses the effective-QoE calibration.
  constexpr sim::GameTitle kTitles[] = {sim::GameTitle::kFortnite,
                                        sim::GameTitle::kGenshinImpact,
                                        sim::GameTitle::kHearthstone};
  constexpr std::uint64_t kSeeds[] = {101, 202};

  const RealtimePipeline batch(suite().models(), default_pipeline_params());
  StreamingAnalyzer streaming(suite().models(), default_pipeline_params(), {});
  std::vector<SessionReport> probe_reports;
  MultiSessionProbe probe(
      suite().models(), MultiSessionProbeParams{default_pipeline_params()},
      [&](const SessionReport& r) { probe_reports.push_back(r); });

  std::size_t combos = 0;
  for (const sim::CloudPlatform platform : kPlatforms) {
    for (const sim::GameTitle title : kTitles) {
      for (const std::uint64_t seed : kSeeds) {
        SCOPED_TRACE(std::string(sim::to_string(platform)) + " / " +
                     sim::to_string(title) + " / seed " +
                     std::to_string(seed));
        // The reused probe needs monotonic wire time: space the combos
        // out past its flow-idle timeout so each one's lookback and
        // flow-table state ages out before the next (the same seed
        // yields the same five-tuple regardless of title, so stale
        // lookback packets would otherwise replay into the next combo).
        const sim::LabeledSession session = packet_session(
            platform, title, seed, static_cast<double>(combos) * 120.0);

        const auto batch_report = batch.process_packets(session.packets);
        ASSERT_TRUE(batch_report.has_value());

        for (const auto& pkt : session.packets) streaming.push(pkt);
        const SessionReport streamed = streaming.finish();

        probe_reports.clear();
        for (const auto& pkt : session.packets) probe.push(pkt);
        probe.flush();
        ASSERT_EQ(probe_reports.size(), 1u);

        ASSERT_TRUE(batch_report->detection.has_value());
        EXPECT_EQ(batch_report->detection->flow, session.tuple.canonical());
        EXPECT_EQ(streamed, *batch_report);
        EXPECT_EQ(probe_reports.front(), *batch_report);
        ++combos;
      }
    }
  }
  EXPECT_EQ(combos, 24u);
  // One engine served all the probe's sessions via the pool.
  EXPECT_EQ(probe.pooled_engines(), 1u);
}

TEST(SessionEngine, PooledResetReproducesFreshEngineByteIdentically) {
  const PipelineParams params = default_pipeline_params();
  const auto first =
      packet_session(sim::CloudPlatform::kGeforceNow, sim::GameTitle::kCsgo, 7);
  const auto second = packet_session(sim::CloudPlatform::kXboxCloud,
                                     sim::GameTitle::kDota2, 8);

  NullSessionSink sink;
  const auto run = [&](SessionEngine& engine,
                       const sim::LabeledSession& session) {
    engine.start(session.packets.front().timestamp);
    for (const auto& pkt : session.packets) engine.on_packet(pkt, sink);
    return engine.finish(sink);  // copies via the caller's SessionReport
  };

  SessionEngine reused(suite().models(), &params);
  const SessionReport first_report = run(reused, first);
  EXPECT_GT(first_report.slots.size(), 25u);
  reused.reset();
  const SessionReport second_reused = run(reused, second);

  SessionEngine fresh(suite().models(), &params);
  const SessionReport second_fresh = run(fresh, second);
  EXPECT_EQ(second_reused, second_fresh);
  EXPECT_NE(second_reused, first_report);
}

TEST(SessionEngine, TelemetryModeMatchesPipelineProcessSession) {
  const PipelineParams params = default_pipeline_params();
  const sim::SessionGenerator gen;
  sim::SessionSpec spec;
  spec.title = sim::GameTitle::kFortnite;
  spec.gameplay_seconds = 200.0;
  spec.seed = 9;
  const sim::LabeledSession session = gen.generate_slots_only(spec);

  const RealtimePipeline pipeline(suite().models(), params);
  const SessionReport expected = pipeline.process_session(session);

  SessionEngine engine(suite().models(), &params);
  engine.start(session.launch_begin);
  engine.set_title(suite().models().title->classify(session.packets,
                                                    session.launch_begin));
  NullSessionSink sink;
  for (const sim::SlotSample& sample : session.slots) {
    SlotTelemetry slot;
    slot.volumetrics = RawSlotVolumetrics{sample.down_bytes,
                                          sample.down_packets, sample.up_bytes,
                                          sample.up_packets};
    slot.frames = sample.frames;
    slot.rtt_ms = sample.rtt_ms;
    slot.loss_rate = sample.loss_rate;
    engine.push_slot(slot, sink);
  }
  EXPECT_EQ(engine.finish(sink), expected);
}

TEST(SessionEngine, RequiresModelsAndParams) {
  const PipelineParams params = default_pipeline_params();
  EXPECT_THROW(SessionEngine(PipelineModels{}, &params),
               std::invalid_argument);
  EXPECT_THROW(SessionEngine(suite().models(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgctx::core
