#include "sim/launch_signature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cgctx::sim {
namespace {

TEST(LaunchSignature, DeterministicAcrossCalls) {
  const LaunchSignature& a = launch_signature(GameTitle::kFortnite);
  const LaunchSignature& b = launch_signature(GameTitle::kFortnite);
  EXPECT_EQ(&a, &b);  // cached
  EXPECT_EQ(a.full_pps, b.full_pps);
}

TEST(LaunchSignature, DurationMatchesCatalog) {
  for (const GameInfo& game : catalog()) {
    const LaunchSignature& sig = launch_signature(game.title);
    EXPECT_DOUBLE_EQ(sig.duration_s, game.launch_seconds) << game.name;
    EXPECT_EQ(sig.full_pps.size(),
              static_cast<std::size_t>(game.launch_seconds));
  }
}

TEST(LaunchSignature, EveryTitleHasEarlyWindowContent) {
  // The paper classifies from the first 5 seconds: every title must have
  // steady bands and sparse bursts starting inside that window.
  for (const GameInfo& game : catalog()) {
    const LaunchSignature& sig = launch_signature(game.title);
    bool early_band = false;
    for (const SteadyBand& band : sig.steady_bands)
      if (band.start_s < 5.0 && band.end_s > band.start_s) early_band = true;
    bool early_burst = false;
    for (const SparseBurst& burst : sig.sparse_bursts)
      if (burst.start_s < 5.0 && burst.end_s > burst.start_s) early_burst = true;
    EXPECT_TRUE(early_band) << game.name;
    EXPECT_TRUE(early_burst) << game.name;
  }
}

TEST(LaunchSignature, BandsAreNarrowAndBelowFullPayload) {
  for (const GameInfo& game : catalog()) {
    for (const SteadyBand& band : launch_signature(game.title).steady_bands) {
      EXPECT_GT(band.payload_center, 50.0);
      EXPECT_LT(band.payload_center + band.payload_width, kFullPayloadBytes);
      EXPECT_LT(band.payload_width, 60.0);  // "narrow bands" (paper Fig. 3)
      EXPECT_GT(band.pps, 0.0);
      EXPECT_LE(band.end_s, game.launch_seconds + 1e-9);
    }
  }
}

TEST(LaunchSignature, SparseBurstsHaveWidePayloadRanges) {
  for (const GameInfo& game : catalog()) {
    for (const SparseBurst& burst : launch_signature(game.title).sparse_bursts) {
      EXPECT_GT(burst.payload_max - burst.payload_min, 200.0);
      EXPECT_LT(burst.payload_max, kFullPayloadBytes);
    }
  }
}

TEST(LaunchSignature, FullRateProfilesArePositive) {
  for (const GameInfo& game : catalog())
    for (double pps : launch_signature(game.title).full_pps) EXPECT_GT(pps, 0.0);
}

TEST(LaunchSignature, TitlesWithinGenreStillDiffer) {
  // Same-genre titles share structure but must not be identical: compare
  // the full-packet profiles of two shooters.
  const auto& cod = launch_signature(GameTitle::kCallOfDuty);
  const auto& ow = launch_signature(GameTitle::kOverwatch2);
  const std::size_t n = std::min(cod.full_pps.size(), ow.full_pps.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diff += std::abs(cod.full_pps[i] - ow.full_pps[i]);
  EXPECT_GT(diff / static_cast<double>(n), 1.0);
}

TEST(LaunchSignature, DifferentGenresDifferMore) {
  // Average per-slot full-rate distance across genres should exceed the
  // within-genre distance on average (genre layering).
  auto mean_rate = [](GameTitle t) {
    const auto& sig = launch_signature(t);
    double total = 0.0;
    for (double pps : sig.full_pps) total += pps;
    return total / static_cast<double>(sig.full_pps.size());
  };
  // Shooters cluster around one genre base; the card game sits elsewhere.
  const double shooter_a = mean_rate(GameTitle::kCsgo);
  const double shooter_b = mean_rate(GameTitle::kOverwatch2);
  const double card = mean_rate(GameTitle::kHearthstone);
  EXPECT_LT(std::abs(shooter_a - shooter_b),
            std::abs(shooter_a - card) + std::abs(shooter_b - card));
}

}  // namespace
}  // namespace cgctx::sim
