#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cgctx::sim {
namespace {

TEST(Fleet, TitleMixFollowsPopularity) {
  FleetOptions options;
  options.seed = 1;
  FleetSampler sampler(options);
  std::map<GameTitle, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample().title];
  // Fortnite ~37.8%, Genshin ~20.1%, Hearthstone ~0.04%.
  EXPECT_NEAR(counts[GameTitle::kFortnite] / static_cast<double>(n), 0.378,
              0.02);
  EXPECT_NEAR(counts[GameTitle::kGenshinImpact] / static_cast<double>(n), 0.201,
              0.02);
  EXPECT_LT(counts[GameTitle::kHearthstone], 50);
  // Long tail present (~31%).
  const double tail =
      (counts[GameTitle::kOtherContinuous] + counts[GameTitle::kOtherSpectate]) /
      static_cast<double>(n);
  EXPECT_NEAR(tail, 0.31, 0.02);
}

TEST(Fleet, NetworkMixFollowsOptions) {
  FleetOptions options;
  options.seed = 2;
  FleetSampler sampler(options);
  int congested = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (sampler.sample().network.loss_rate >=
        NetworkConditions::congested().loss_rate)
      ++congested;
  EXPECT_NEAR(congested / static_cast<double>(n), options.fraction_congested,
              0.01);
}

TEST(Fleet, DurationsScaleWithOption) {
  FleetOptions short_options;
  short_options.seed = 3;
  short_options.duration_scale = 0.1;
  FleetOptions long_options = short_options;
  long_options.duration_scale = 1.0;
  FleetSampler short_sampler(short_options);
  FleetSampler long_sampler(long_options);
  double short_sum = 0.0;
  double long_sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    short_sum += short_sampler.sample().gameplay_seconds;
    long_sum += long_sampler.sample().gameplay_seconds;
  }
  EXPECT_NEAR(long_sum / short_sum, 10.0, 1.5);
}

TEST(Fleet, DurationsHaveAFloor) {
  FleetOptions options;
  options.seed = 4;
  options.duration_scale = 1.0;
  FleetSampler sampler(options);
  for (int i = 0; i < 2000; ++i)
    EXPECT_GE(sampler.sample().gameplay_seconds, 120.0);
}

TEST(Fleet, SeedsAreUniquePerSession) {
  FleetOptions options;
  options.seed = 5;
  FleetSampler sampler(options);
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(seeds.insert(sampler.sample().seed).second);
}

TEST(Fleet, LongSessionTitlesYieldLongerDurations) {
  FleetOptions options;
  options.seed = 6;
  FleetSampler sampler(options);
  std::map<GameTitle, std::pair<double, int>> sums;
  for (int i = 0; i < 30000; ++i) {
    const auto spec = sampler.sample();
    auto& [sum, count] = sums[spec.title];
    sum += spec.gameplay_seconds;
    ++count;
  }
  const auto& bg3 = sums[GameTitle::kBaldursGate3];
  const auto& rl = sums[GameTitle::kRocketLeague];
  ASSERT_GT(bg3.second, 50);
  ASSERT_GT(rl.second, 50);
  EXPECT_GT(bg3.first / bg3.second, 1.5 * rl.first / rl.second);
}

TEST(FleetReplay, WireIsSortedWithDistinctSessionFlows) {
  FleetReplayOptions options;
  options.sessions = 4;
  options.seed = 7;
  options.gameplay_seconds = 12.0;
  options.cross_traffic_flows = 3;
  options.cross_traffic_duration_s = 8.0;
  const FleetReplay replay = build_fleet_replay(options);

  ASSERT_EQ(replay.session_flows.size(), 4u);
  const std::set<net::FiveTuple> distinct(replay.session_flows.begin(),
                                          replay.session_flows.end());
  EXPECT_EQ(distinct.size(), 4u);

  ASSERT_FALSE(replay.wire.empty());
  std::set<net::FiveTuple> wire_flows;
  for (std::size_t i = 0; i < replay.wire.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(replay.wire[i].timestamp, replay.wire[i - 1].timestamp);
    }
    wire_flows.insert(replay.wire[i].tuple.canonical());
  }
  // The wire interleaves the gaming flows with the cross traffic.
  for (const auto& flow : replay.session_flows)
    EXPECT_TRUE(wire_flows.count(flow));
  EXPECT_GE(wire_flows.size(), 4u + 3u);
}

TEST(FleetReplay, DeterministicForASeed) {
  FleetReplayOptions options;
  options.sessions = 2;
  options.seed = 8;
  options.gameplay_seconds = 10.0;
  const FleetReplay a = build_fleet_replay(options);
  const FleetReplay b = build_fleet_replay(options);
  ASSERT_EQ(a.wire.size(), b.wire.size());
  EXPECT_EQ(a.session_flows, b.session_flows);
  for (std::size_t i = 0; i < a.wire.size(); ++i) {
    EXPECT_EQ(a.wire[i].timestamp, b.wire[i].timestamp);
    EXPECT_EQ(a.wire[i].tuple, b.wire[i].tuple);
  }
}

}  // namespace
}  // namespace cgctx::sim
