#include "sim/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cgctx::sim {
namespace {

TEST(Catalog, HasThirteenPopularTitlesPlusLongTail) {
  EXPECT_EQ(popular_titles().size(), 13u);
  EXPECT_EQ(catalog().size(), kNumTitles);
}

TEST(Catalog, PopularityMatchesPaperTable1) {
  // Spot-check the paper's published popularity column.
  EXPECT_NEAR(info(GameTitle::kFortnite).popularity, 0.378, 1e-9);
  EXPECT_NEAR(info(GameTitle::kGenshinImpact).popularity, 0.201, 1e-9);
  EXPECT_NEAR(info(GameTitle::kHearthstone).popularity, 0.0004, 1e-9);
  EXPECT_NEAR(info(GameTitle::kDota2).popularity, 0.0055, 1e-9);
}

TEST(Catalog, PopularThirteenCoverAbout69Percent) {
  double total = 0.0;
  for (const GameInfo& game : popular_titles()) total += game.popularity;
  EXPECT_NEAR(total, 0.69, 0.01);  // paper: "over 69% of total playtime"
}

TEST(Catalog, FullPopularitySumsToOne) {
  double total = 0.0;
  for (const GameInfo& game : catalog()) total += game.popularity;
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(Catalog, GenresMatchPaperTable1) {
  EXPECT_EQ(info(GameTitle::kFortnite).genre, Genre::kShooter);
  EXPECT_EQ(info(GameTitle::kGenshinImpact).genre, Genre::kRolePlaying);
  EXPECT_EQ(info(GameTitle::kRocketLeague).genre, Genre::kSports);
  EXPECT_EQ(info(GameTitle::kDota2).genre, Genre::kMoba);
  EXPECT_EQ(info(GameTitle::kHearthstone).genre, Genre::kCard);
}

TEST(Catalog, RolePlayingIsContinuousEverythingElseSpectate) {
  for (const GameInfo& game : popular_titles()) {
    if (game.genre == Genre::kRolePlaying) {
      EXPECT_EQ(game.pattern, ActivityPattern::kContinuousPlay) << game.name;
    } else {
      EXPECT_EQ(game.pattern, ActivityPattern::kSpectateAndPlay) << game.name;
    }
  }
}

TEST(Catalog, StageFractionsSumToOne) {
  for (const GameInfo& game : catalog()) {
    const double total = game.stage_fraction[0] + game.stage_fraction[1] +
                         game.stage_fraction[2];
    EXPECT_NEAR(total, 1.0, 1e-9) << game.name;
  }
}

TEST(Catalog, ContinuousPlayHasUnderFivePercentPassive) {
  for (const GameInfo& game : catalog()) {
    if (game.pattern == ActivityPattern::kContinuousPlay) {
      EXPECT_LT(game.stage_fraction[1], 0.05) << game.name;
    }
  }
}

TEST(Catalog, SpectateAndPlayActiveFractionInPaperRange) {
  for (const GameInfo& game : catalog())
    if (game.pattern == ActivityPattern::kSpectateAndPlay) {
      EXPECT_GE(game.stage_fraction[0], 0.40) << game.name;
      EXPECT_LE(game.stage_fraction[0], 0.70) << game.name;
    }
}

TEST(Catalog, DemandShapeMatchesSection5) {
  // Hearthstone is the low-demand outlier; Fortnite and BG3 peak highest.
  const double hearthstone = info(GameTitle::kHearthstone).peak_demand_mbps;
  for (const GameInfo& game : popular_titles()) {
    if (game.title != GameTitle::kHearthstone) {
      EXPECT_GT(game.peak_demand_mbps, hearthstone) << game.name;
    }
  }
  EXPECT_NEAR(info(GameTitle::kFortnite).peak_demand_mbps, 68, 1e-9);
  EXPECT_NEAR(info(GameTitle::kBaldursGate3).peak_demand_mbps, 68, 1e-9);
}

TEST(Catalog, SessionDurationShapeMatchesFig11) {
  // BG3 longest; Rocket League and CS:GO shortest.
  const auto& bg3 = info(GameTitle::kBaldursGate3);
  for (const GameInfo& game : popular_titles()) {
    if (game.title != GameTitle::kBaldursGate3) {
      EXPECT_LE(game.mean_session_minutes, bg3.mean_session_minutes)
          << game.name;
    }
  }
  EXPECT_LT(info(GameTitle::kRocketLeague).mean_session_minutes, 40);
  EXPECT_LT(info(GameTitle::kCsgo).mean_session_minutes, 40);
}

TEST(Catalog, NamesRoundTrip) {
  std::set<std::string> names;
  for (const GameInfo& game : catalog()) {
    EXPECT_TRUE(names.insert(game.name).second) << "duplicate " << game.name;
    const auto parsed = title_from_name(game.name);
    ASSERT_TRUE(parsed.has_value()) << game.name;
    EXPECT_EQ(*parsed, game.title);
  }
  EXPECT_FALSE(title_from_name("Tetris").has_value());
}

TEST(Catalog, InfoRejectsBadIndex) {
  EXPECT_THROW(info(static_cast<GameTitle>(200)), std::out_of_range);
}

TEST(Catalog, EnumStringsAreStable) {
  EXPECT_STREQ(to_string(Genre::kMoba), "MOBA");
  EXPECT_STREQ(to_string(ActivityPattern::kContinuousPlay), "Continuous-play");
  EXPECT_STREQ(to_string(GameTitle::kCyberpunk2077), "Cyberpunk 2077");
}

}  // namespace
}  // namespace cgctx::sim
