#include "sim/stage_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cgctx::sim {
namespace {

TEST(StageModel, TimelineCoversRequestedSpanContiguously) {
  const StageMarkovModel model =
      StageMarkovModel::for_title(info(GameTitle::kCsgo));
  ml::Rng rng(1);
  const auto start = net::duration_from_seconds(100.0);
  const auto duration = net::duration_from_seconds(600.0);
  const auto timeline = model.generate(start, duration, rng);
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.front().begin, start);
  EXPECT_EQ(timeline.back().end, start + duration);
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].begin, timeline[i - 1].end);
    EXPECT_NE(timeline[i].stage, timeline[i - 1].stage);  // merged runs
  }
}

TEST(StageModel, StartsIdleInLobby) {
  for (const GameTitle title : {GameTitle::kFortnite, GameTitle::kCyberpunk2077}) {
    const StageMarkovModel model = StageMarkovModel::for_title(info(title));
    ml::Rng rng(2);
    const auto timeline =
        model.generate(0, net::duration_from_seconds(300.0), rng);
    EXPECT_EQ(timeline.front().stage, Stage::kIdle);
  }
}

TEST(StageModel, PassiveNeverPrecedesActive) {
  const StageMarkovModel model =
      StageMarkovModel::for_title(info(GameTitle::kOverwatch2));
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    ml::Rng rng(seed);
    const auto timeline =
        model.generate(0, net::duration_from_seconds(900.0), rng);
    bool played = false;
    for (const StageInterval& interval : timeline) {
      if (interval.stage == Stage::kActive) played = true;
      if (interval.stage == Stage::kPassive) {
        EXPECT_TRUE(played) << "seed " << seed;
      }
    }
  }
}

TEST(StageModel, LongRunFractionsApproachCatalogTargets) {
  for (const GameTitle title :
       {GameTitle::kCsgo, GameTitle::kGenshinImpact, GameTitle::kHearthstone}) {
    const GameInfo& game = info(title);
    const StageMarkovModel model = StageMarkovModel::for_title(game);
    std::array<double, kNumStages> totals{};
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      ml::Rng rng(seed * 7 + 1);
      const auto timeline =
          model.generate(0, net::duration_from_seconds(3600.0), rng);
      const auto seconds = stage_seconds(timeline);
      for (std::size_t s = 0; s < kNumStages; ++s) totals[s] += seconds[s];
    }
    const double total = totals[0] + totals[1] + totals[2];
    for (std::size_t s = 0; s < kNumStages; ++s) {
      EXPECT_NEAR(totals[s] / total, game.stage_fraction[s], 0.12)
          << game.name << " stage " << s;
    }
  }
}

TEST(StageModel, SlotTransitionMatrixRowsSumToOne) {
  const StageMarkovModel model =
      StageMarkovModel::for_title(info(GameTitle::kDota2));
  const auto matrix = model.slot_transition_matrix();
  for (std::size_t s = 0; s < kNumStages; ++s) {
    double row = 0.0;
    for (std::size_t t = 0; t < kNumStages; ++t) {
      EXPECT_GE(matrix[s][t], 0.0);
      row += matrix[s][t];
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(StageModel, SelfRetentionDominatesPerSlot) {
  // Dwell times are tens of seconds, so per-second self-transition
  // probability is high (this is what makes the transition-matrix
  // diagonal large in Fig. 5).
  const StageMarkovModel model =
      StageMarkovModel::for_title(info(GameTitle::kFortnite));
  const auto matrix = model.slot_transition_matrix();
  for (std::size_t s = 0; s < kNumStages; ++s)
    EXPECT_GT(matrix[s][s], 0.9);
}

TEST(StageModel, ContinuousPlayRarelyEntersPassive) {
  const StageMarkovModel model =
      StageMarkovModel::for_title(info(GameTitle::kGenshinImpact));
  ml::Rng rng(11);
  const auto timeline =
      model.generate(0, net::duration_from_seconds(7200.0), rng);
  const auto seconds = stage_seconds(timeline);
  const double total = seconds[0] + seconds[1] + seconds[2];
  EXPECT_LT(seconds[static_cast<std::size_t>(Stage::kPassive)] / total, 0.08);
}

TEST(StageModel, StageAtFindsCoveringInterval) {
  std::vector<StageInterval> timeline = {
      {0, 10, Stage::kIdle}, {10, 30, Stage::kActive}, {30, 40, Stage::kPassive}};
  EXPECT_EQ(stage_at(timeline, 0), Stage::kIdle);
  EXPECT_EQ(stage_at(timeline, 9), Stage::kIdle);
  EXPECT_EQ(stage_at(timeline, 10), Stage::kActive);
  EXPECT_EQ(stage_at(timeline, 35), Stage::kPassive);
  EXPECT_EQ(stage_at(timeline, 40), Stage::kIdle);  // outside -> idle
}

TEST(StageModel, StageSecondsSums) {
  std::vector<StageInterval> timeline = {
      {0, net::duration_from_seconds(5.0), Stage::kActive},
      {net::duration_from_seconds(5.0), net::duration_from_seconds(8.0),
       Stage::kIdle}};
  const auto seconds = stage_seconds(timeline);
  EXPECT_DOUBLE_EQ(seconds[static_cast<std::size_t>(Stage::kActive)], 5.0);
  EXPECT_DOUBLE_EQ(seconds[static_cast<std::size_t>(Stage::kIdle)], 3.0);
  EXPECT_DOUBLE_EQ(seconds[static_cast<std::size_t>(Stage::kPassive)], 0.0);
}

TEST(StageModel, ToStringNames) {
  EXPECT_STREQ(to_string(Stage::kActive), "active");
  EXPECT_STREQ(to_string(Stage::kPassive), "passive");
  EXPECT_STREQ(to_string(Stage::kIdle), "idle");
}

/// Property sweep: every popular title generates a valid timeline.
class StageTimelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(StageTimelineSweep, ValidForEveryTitle) {
  const auto title = static_cast<GameTitle>(GetParam());
  const StageMarkovModel model = StageMarkovModel::for_title(info(title));
  ml::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto duration = net::duration_from_seconds(1200.0);
  const auto timeline = model.generate(0, duration, rng);
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.back().end, duration);
  for (const StageInterval& interval : timeline)
    EXPECT_GT(interval.duration(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllTitles, StageTimelineSweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace cgctx::sim
