#include "sim/config.hpp"

#include <gtest/gtest.h>

namespace cgctx::sim {
namespace {

TEST(LabConfig, EightRowsTotalling531Sessions) {
  int total = 0;
  for (const LabConfigRow& row : lab_config_rows()) total += row.sessions;
  EXPECT_EQ(lab_config_rows().size(), 8u);
  EXPECT_EQ(total, 531);
}

TEST(LabConfig, RowsMatchPaperTable2DeviceMix) {
  const auto rows = lab_config_rows();
  EXPECT_EQ(rows[0].device, DeviceClass::kPc);
  EXPECT_EQ(rows[0].os, Os::kWindows);
  EXPECT_EQ(rows[0].software, Software::kNativeApp);
  EXPECT_EQ(rows[0].sessions, 89);
  EXPECT_EQ(rows[7].device, DeviceClass::kConsole);
  EXPECT_EQ(rows[7].os, Os::kXboxOs);
  EXPECT_EQ(rows[7].sessions, 54);
}

TEST(LabConfig, SampleConfigStaysWithinRowResolutionRange) {
  ml::Rng rng(1);
  for (const LabConfigRow& row : lab_config_rows()) {
    for (int i = 0; i < 50; ++i) {
      const ClientConfig cfg = sample_config(row, rng);
      EXPECT_GE(static_cast<int>(cfg.resolution),
                static_cast<int>(row.min_resolution));
      EXPECT_LE(static_cast<int>(cfg.resolution),
                static_cast<int>(row.max_resolution));
      EXPECT_TRUE(cfg.fps == 30 || cfg.fps == 60 || cfg.fps == 120);
      EXPECT_EQ(cfg.device, row.device);
    }
  }
}

TEST(LabConfig, FleetSamplingCoversAllDeviceClasses) {
  ml::Rng rng(2);
  bool seen[4] = {};
  for (int i = 0; i < 500; ++i)
    seen[static_cast<int>(sample_config(rng).device)] = true;
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(Resolution, BitrateFactorsAreMonotone) {
  EXPECT_LT(resolution_bitrate_factor(Resolution::kSd),
            resolution_bitrate_factor(Resolution::kHd));
  EXPECT_LT(resolution_bitrate_factor(Resolution::kHd),
            resolution_bitrate_factor(Resolution::kFhd));
  EXPECT_LT(resolution_bitrate_factor(Resolution::kFhd),
            resolution_bitrate_factor(Resolution::kQhd));
  EXPECT_LT(resolution_bitrate_factor(Resolution::kQhd),
            resolution_bitrate_factor(Resolution::kUhd));
  EXPECT_DOUBLE_EQ(resolution_bitrate_factor(Resolution::kFhd), 1.0);
}

TEST(ClientConfig, DescribeMentionsEverything) {
  ClientConfig cfg;
  cfg.device = DeviceClass::kMobile;
  cfg.os = Os::kAndroid;
  cfg.software = Software::kNativeApp;
  cfg.resolution = Resolution::kQhd;
  cfg.fps = 120;
  const std::string text = cfg.describe();
  EXPECT_NE(text.find("Mobile"), std::string::npos);
  EXPECT_NE(text.find("Android"), std::string::npos);
  EXPECT_NE(text.find("QHD"), std::string::npos);
  EXPECT_NE(text.find("120"), std::string::npos);
}

TEST(NetworkConditions, ProfilesAreOrdered) {
  const auto lab = NetworkConditions::lab();
  const auto good = NetworkConditions::good();
  const auto congested = NetworkConditions::congested();
  EXPECT_LT(lab.rtt_ms, good.rtt_ms);
  EXPECT_LT(good.rtt_ms, congested.rtt_ms);
  EXPECT_LT(lab.loss_rate, congested.loss_rate);
  EXPECT_GT(lab.bandwidth_mbps, congested.bandwidth_mbps);
  // The lab access network matches the paper: ~1 Gbps, <10 ms, <0.1% loss.
  EXPECT_GE(lab.bandwidth_mbps, 1000.0);
  EXPECT_LT(lab.rtt_ms, 10.0);
  EXPECT_LT(lab.loss_rate, 0.001);
}

}  // namespace
}  // namespace cgctx::sim
