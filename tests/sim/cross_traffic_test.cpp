#include "sim/cross_traffic.hpp"

#include <gtest/gtest.h>

namespace cgctx::sim {
namespace {

const net::Ipv4Addr kClient = net::Ipv4Addr::from_octets(10, 1, 2, 3);

TEST(CrossTraffic, WebBrowsingIsTcp443AndBursty) {
  ml::Rng rng(1);
  const auto packets = web_browsing_flow(kClient, 30.0, rng);
  ASSERT_FALSE(packets.empty());
  for (const auto& pkt : packets) {
    EXPECT_EQ(pkt.tuple.protocol, 6);
    EXPECT_FALSE(pkt.rtp.has_value());
  }
  // Server port is 443 in the upstream orientation.
  const auto& up = packets.front().direction == net::Direction::kUpstream
                       ? packets.front().tuple
                       : packets.front().tuple.reversed();
  EXPECT_EQ(up.dst_port, 443);
}

TEST(CrossTraffic, VideoStreamingIsDownstreamHeavy) {
  ml::Rng rng(2);
  const auto packets = video_streaming_flow(kClient, 20.0, rng);
  std::size_t up = 0;
  std::size_t down = 0;
  for (const auto& pkt : packets)
    (pkt.direction == net::Direction::kUpstream ? up : down) += 1;
  EXPECT_GT(down, 5 * up);
}

TEST(CrossTraffic, VoipIsSymmetricRtpAtLowRate) {
  ml::Rng rng(3);
  const double duration = 20.0;
  const auto packets = voip_flow(kClient, duration, rng);
  std::size_t up = 0;
  std::size_t down = 0;
  std::uint64_t bytes = 0;
  for (const auto& pkt : packets) {
    ASSERT_TRUE(pkt.rtp.has_value());
    EXPECT_EQ(pkt.tuple.protocol, 17);
    EXPECT_LT(pkt.payload_size, 200u);
    (pkt.direction == net::Direction::kUpstream ? up : down) += 1;
    if (pkt.direction == net::Direction::kDownstream) bytes += pkt.payload_size;
  }
  EXPECT_NEAR(static_cast<double>(up), static_cast<double>(down), 5.0);
  // ~50 pps per direction.
  EXPECT_NEAR(static_cast<double>(down) / duration, 50.0, 5.0);
  // Well under 1 Mbps downstream: the detector's rate gate excludes VoIP.
  EXPECT_LT(static_cast<double>(bytes) * 8.0 / duration, 1e6);
}

TEST(CrossTraffic, AllFlowsAreTimeSorted) {
  ml::Rng rng(4);
  for (const auto& packets :
       {web_browsing_flow(kClient, 10.0, rng),
        video_streaming_flow(kClient, 10.0, rng), voip_flow(kClient, 10.0, rng)}) {
    for (std::size_t i = 1; i < packets.size(); ++i)
      EXPECT_LE(packets[i - 1].timestamp, packets[i].timestamp);
  }
}

TEST(CrossTraffic, FlowsUseDistinctServerEndpoints) {
  ml::Rng rng(5);
  const auto a = web_browsing_flow(kClient, 5.0, rng);
  const auto b = web_browsing_flow(kClient, 5.0, rng);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a.front().tuple.canonical(), b.front().tuple.canonical());
}

}  // namespace
}  // namespace cgctx::sim
